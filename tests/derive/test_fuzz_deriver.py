"""Fuzzing the deriver: random relations → derive → validate.

The strongest end-to-end test we can run: generate random inductive
relations inside the supported class (random constructor-term
conclusions, possibly non-linear; random premises over the relation
itself and helpers, possibly with existentials and function calls),
derive a checker, and discharge the Section 5.1 obligations against
the reference proof search.  Any disagreement is a derivation bug.
"""

from __future__ import annotations

import contextlib
import random
import signal

import pytest

from repro.core.errors import ReproError
from repro.core.relations import Relation, RelPremise, Rule
from repro.core.terms import C, Ctor, F, Term, Var
from repro.core.types import NAT, Ty
from repro.stdlib import standard_context
from repro.validation import ValidationConfig, certify_checker

CFG = ValidationConfig(
    domain_depth=2, max_tuples=40, ref_depth=6, max_fuel=6, max_outcomes=120
)


@contextlib.contextmanager
def deadline(seconds: int):
    """Skip the test if certification runs away (some random relations
    have pathological search spaces — slowness is not a correctness
    signal; disagreement is)."""

    def handler(signum, frame):
        raise TimeoutError

    previous = signal.signal(signal.SIGALRM, handler)
    signal.alarm(seconds)
    try:
        yield
    except TimeoutError:
        pytest.skip("certification exceeded the fuzz deadline")
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)

HELPER = """
Inductive helper : nat -> nat -> Prop :=
| h_zero : forall n, helper 0 n
| h_step : forall n m, helper n m -> helper (S n) (S m).
"""


def _random_pattern(rng: random.Random, vars_pool: list[str], depth: int) -> Term:
    """A random constructor term over nat."""
    if depth == 0 or rng.random() < 0.4:
        if rng.random() < 0.7:
            return Var(rng.choice(vars_pool))
        return C("O")
    return C("S", _random_pattern(rng, vars_pool, depth - 1))


def _random_relation(rng: random.Random, name: str) -> Relation:
    """A random binary relation over nat in the supported class."""
    rules = []
    n_rules = rng.randint(1, 3)
    # Always include a base rule so the relation is inhabited.
    base_vars = ["a", "b"]
    rules.append(
        Rule(
            "base",
            (),
            (
                _random_pattern(rng, base_vars, 1),
                _random_pattern(rng, base_vars, 1),
            ),
        )
    )
    for i in range(n_rules):
        vars_pool = ["x", "y", "z"]
        conclusion = (
            _random_pattern(rng, vars_pool, 2),
            _random_pattern(rng, vars_pool, 2),
        )
        premises = []
        for _ in range(rng.randint(0, 2)):
            kind = rng.random()
            if kind < 0.5:
                # Recursive premise (may introduce existentials).
                args = (
                    Var(rng.choice(vars_pool + ["w"])),
                    Var(rng.choice(vars_pool)),
                )
                premises.append(RelPremise(name, args))
            elif kind < 0.8:
                premises.append(
                    RelPremise(
                        "helper",
                        (Var(rng.choice(vars_pool)), Var(rng.choice(vars_pool))),
                    )
                )
            else:
                # Function call in a premise.
                premises.append(
                    RelPremise(
                        "helper",
                        (
                            F("plus", Var(rng.choice(vars_pool)), C("O")),
                            Var(rng.choice(vars_pool)),
                        ),
                    )
                )
        rules.append(Rule(f"r{i}", tuple(premises), conclusion))
    return Relation(name, (NAT, NAT), tuple(rules))


@pytest.mark.parametrize("seed", range(8))
def test_random_relation_checker_certifies(seed):
    rng = random.Random(seed)
    ctx = standard_context()
    from repro.core import parse_declarations

    parse_declarations(ctx, HELPER)
    rel = _random_relation(rng, f"fuzz{seed}")
    try:
        ctx.declare_relation(rel)
    except ReproError:
        pytest.skip("generated an ill-typed relation")
    with deadline(20):
        cert = certify_checker(ctx, rel.name, CFG)
    assert cert.ok, f"seed {seed}:\n{ctx.relations.get(rel.name)}\n{cert.summary()}"


@pytest.mark.parametrize("seed", range(4))
def test_random_relation_enumerator_certifies(seed):
    from repro.validation import certify_enumerator

    rng = random.Random(1000 + seed)
    ctx = standard_context()
    from repro.core import parse_declarations

    parse_declarations(ctx, HELPER)
    rel = _random_relation(rng, f"fuzzenum{seed}")
    try:
        ctx.declare_relation(rel)
    except ReproError:
        pytest.skip("generated an ill-typed relation")
    with deadline(20):
        cert = certify_enumerator(ctx, rel.name, "oi", CFG)
    bad = [o for o in cert.obligations if o.status == "refuted"]
    assert not bad, (
        f"seed {seed}:\n{ctx.relations.get(rel.name)}\n{cert.summary()}"
    )
