"""Behavioral tests for derived enumerators and generators."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.values import V, from_int, from_list, nat_list, to_int, to_list
from repro.derive import derive_checker, derive_enumerator, derive_generator
from repro.producers.outcome import OUT_OF_FUEL, is_value
from repro.semantics import derivable


class TestLeEnumerators:
    def test_mode_oi_enumerates_smaller(self, nat_ctx):
        en = derive_enumerator(nat_ctx, "le", "oi")
        outs = {to_int(t[0]) for t in en.values(10, from_int(3))}
        assert outs == {0, 1, 2, 3}

    def test_mode_oi_exhaustive_no_marker(self, nat_ctx):
        en = derive_enumerator(nat_ctx, "le", "oi")
        assert en.exhaustive_at(10, from_int(3))

    def test_mode_io_enumerates_larger_with_marker(self, nat_ctx):
        en = derive_enumerator(nat_ctx, "le", "io")
        items = list(en(6, from_int(2)))
        values = {to_int(t[0]) for t in items if is_value(t)}
        assert values == set(range(2, 2 + 7))
        assert OUT_OF_FUEL in items  # infinitely many more exist

    def test_fuel_zero(self, nat_ctx):
        en = derive_enumerator(nat_ctx, "le", "oi")
        items = list(en(0, from_int(2)))
        # Only the base rule (le_n) applies; recursion is cut.
        assert OUT_OF_FUEL in items

    def test_monotone_outcomes(self, nat_ctx):
        en = derive_enumerator(nat_ctx, "le", "io")
        small = {t for t in en(3, from_int(1)) if is_value(t)}
        large = {t for t in en(6, from_int(1)) if is_value(t)}
        assert small <= large


class TestSquareRoots:
    def test_forward_mode_deterministic(self, nat_ctx):
        en = derive_enumerator(nat_ctx, "square_of", "io")
        assert [to_int(t[0]) for t in en.values(5, from_int(3))] == [9]
        assert en.exhaustive_at(5, from_int(3))

    def test_inverse_mode_enumerates_roots(self, nat_ctx):
        en = derive_enumerator(nat_ctx, "square_of", "oi")
        assert [to_int(t[0]) for t in en.values(10, from_int(9))] == [3]
        assert [to_int(t[0]) for t in en.values(10, from_int(10))] == []


class TestSortedProducers:
    def test_enumerated_lists_are_sorted(self, list_ctx):
        en = derive_enumerator(list_ctx, "Sorted", "o")
        for (lst,) in en.values(3):
            xs = [to_int(x) for x in to_list(lst)]
            assert xs == sorted(xs)

    def test_enumeration_contains_all_small_sorted_lists(self, list_ctx):
        en = derive_enumerator(list_ctx, "Sorted", "o")
        produced = {tuple(to_int(x) for x in to_list(t[0])) for t in en.values(3)}
        import itertools

        for xs in itertools.product(range(2), repeat=2):
            if list(xs) == sorted(xs):
                assert tuple(xs) in produced

    def test_generated_lists_are_sorted(self, list_ctx):
        gen = derive_generator(list_ctx, "Sorted", "o")
        for (lst,) in gen.samples(6, count=100, seed=5):
            xs = [to_int(x) for x in to_list(lst)]
            assert xs == sorted(xs)

    def test_generator_reproducible(self, list_ctx):
        gen = derive_generator(list_ctx, "Sorted", "o")
        a = gen.samples(5, count=10, seed=42)
        b = gen.samples(5, count=10, seed=42)
        assert a == b


class TestSTLCProducers:
    @pytest.fixture(autouse=True)
    def _setup(self, stlc_ctx):
        self.ctx = stlc_ctx
        self.chk = derive_checker(stlc_ctx, "typing")
        self.empty = from_list([])
        self.N = V("N")

    def test_type_inference_enumerator(self):
        en = derive_enumerator(self.ctx, "typing", "iio")
        identity = V("Abs", self.N, V("Vart", from_int(0)))
        types = [t for (t,) in en.values(6, self.empty, identity)]
        assert types == [V("Arr", self.N, self.N)]

    def test_inference_of_untypeable_term(self):
        en = derive_enumerator(self.ctx, "typing", "iio")
        bad = V("App", V("Con", from_int(1)), V("Con", from_int(2)))
        assert en.values(6, self.empty, bad) == []

    def test_generated_terms_typecheck(self):
        gen = derive_generator(self.ctx, "typing", "ioi")
        count = 0
        for (e,) in gen.samples(6, self.empty, self.N, count=60, seed=3):
            assert self.chk(30, self.empty, e, self.N).is_true
            count += 1
        assert count == 60

    def test_generated_function_terms_typecheck(self):
        gen = derive_generator(self.ctx, "typing", "ioi")
        ty = V("Arr", self.N, self.N)
        for (e,) in gen.samples(6, self.empty, ty, count=30, seed=4):
            assert self.chk(40, self.empty, e, ty).is_true

    def test_enumerated_terms_typecheck_and_cover(self):
        en = derive_enumerator(self.ctx, "typing", "ioi")
        terms = [e for (e,) in en.values(2, self.empty, self.N)]
        assert V("Con", from_int(0)) in terms
        for e in terms[:50]:
            assert self.chk(20, self.empty, e, self.N).is_true

    def test_generation_in_nonempty_context_uses_variables(self):
        gen = derive_generator(self.ctx, "typing", "ioi")
        env = from_list([self.N])
        seen_var = False
        for (e,) in gen.samples(4, env, self.N, count=150, seed=9):
            if "Vart" in str(e):
                seen_var = True
        assert seen_var


class TestLookupProducers:
    def test_lookup_enumerates_bindings(self, stlc_ctx):
        en = derive_enumerator(stlc_ctx, "lookup", "ioo")
        env = from_list([V("N"), V("Arr", V("N"), V("N"))])
        pairs = {(to_int(i), str(t)) for (i, t) in en.values(5, env)}
        assert pairs == {(0, "N"), (1, "Arr N N")}
        assert en.exhaustive_at(5, env)


class TestMultipleOutputs:
    """The §8 extension: producer modes with several outputs."""

    def test_le_both_outputs(self, nat_ctx):
        en = derive_enumerator(nat_ctx, "le", "oo")
        pairs = {(to_int(a), to_int(b)) for (a, b) in en.values(3)}
        assert all(a <= b for a, b in pairs)
        assert (0, 0) in pairs and (0, 1) in pairs

    def test_typing_term_and_type(self, stlc_ctx):
        en = derive_enumerator(stlc_ctx, "typing", "ioo")
        chk = derive_checker(stlc_ctx, "typing")
        empty = from_list([])
        found = 0
        for item in en(2, empty):
            if not is_value(item):
                continue
            e, t = item
            assert chk(20, empty, e, t).is_true
            found += 1
            if found >= 25:
                break
        assert found >= 10
