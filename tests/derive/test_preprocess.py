"""Tests for conclusion normalization (Section 3.1)."""

import pytest

from repro.core import parse_declarations
from repro.core.relations import EqPremise
from repro.core.terms import Ctor, Fun, Var, contains_fun, is_linear
from repro.derive import preprocess_relation, preprocess_rule
from repro.stdlib import standard_context


@pytest.fixture
def ctx():
    return standard_context()


def get_rel(ctx, text, name):
    parse_declarations(ctx, text)
    return ctx.relations.get(name)


class TestFunctionCallExtraction:
    def test_square_of(self, ctx):
        rel = get_rel(
            ctx,
            """
            Inductive square_of : nat -> nat -> Prop :=
            | sq : forall n, square_of n (n * n).
            """,
            "square_of",
        )
        out = preprocess_relation(rel, ctx)
        rule = out.rules[0]
        # Conclusion is now (n, fresh) with a premise  n * n = fresh.
        assert rule.conclusion[0] == Var("n")
        assert isinstance(rule.conclusion[1], Var)
        fresh = rule.conclusion[1].name
        assert fresh != "n"
        (eq,) = rule.premises
        assert isinstance(eq, EqPremise)
        assert eq.lhs == Fun("mult", (Var("n"), Var("n")))
        assert eq.rhs == Var(fresh)
        assert eq.ty is not None  # re-inferred

    def test_nested_call_extracted_maximally(self, ctx):
        rel = get_rel(
            ctx,
            """
            Inductive doub : nat -> nat -> Prop :=
            | d : forall n, doub n (S (n + n)).
            """,
            "doub",
        )
        out = preprocess_relation(rel, ctx)
        rule = out.rules[0]
        # S (...) stays a constructor; only the call moves out.
        conclusion = rule.conclusion[1]
        assert isinstance(conclusion, Ctor) and conclusion.name == "S"
        assert isinstance(conclusion.args[0], Var)
        assert len(rule.premises) == 1


class TestLinearization:
    def test_stlc_tabs(self, stlc_ctx):
        rel = stlc_ctx.relations.get("typing")
        out = preprocess_relation(rel, stlc_ctx)
        tabs = out.rule("TAbs")
        assert is_linear(tabs.conclusion)
        eqs = [p for p in tabs.premises if isinstance(p, EqPremise)]
        assert len(eqs) == 1
        assert eqs[0].lhs == Var("t1")

    def test_first_occurrence_keeps_name(self, ctx):
        rel = get_rel(
            ctx,
            """
            Inductive diag : nat -> nat -> Prop :=
            | dg : forall n, diag n n.
            """,
            "diag",
        )
        out = preprocess_relation(rel, ctx)
        rule = out.rules[0]
        assert rule.conclusion[0] == Var("n")
        assert rule.conclusion[1] != Var("n")

    def test_repetition_within_one_argument(self, ctx):
        rel = get_rel(
            ctx,
            """
            Inductive twin : list nat -> Prop :=
            | tw : forall x l, twin (x :: x :: l).
            """,
            "twin",
        )
        out = preprocess_relation(rel, ctx)
        assert is_linear(out.rules[0].conclusion)
        assert len(out.rules[0].premises) == 1


class TestIdempotence:
    def test_already_linear_untouched(self, nat_ctx):
        rel = nat_ctx.relations.get("ev")
        assert preprocess_relation(rel, nat_ctx) is rel

    def test_preprocessing_is_idempotent(self, nat_ctx):
        rel = nat_ctx.relations.get("square_of")
        once = preprocess_relation(rel, nat_ctx)
        twice = preprocess_relation(once, nat_ctx)
        assert once is twice

    def test_all_conclusions_become_patterns(self, stlc_ctx):
        for name in ("lookup", "typing"):
            out = preprocess_relation(stlc_ctx.relations.get(name), stlc_ctx)
            for rule in out.rules:
                assert is_linear(rule.conclusion)
                assert not any(contains_fun(t) for t in rule.conclusion)

    def test_fresh_vars_do_not_collide(self, ctx):
        rel = get_rel(
            ctx,
            """
            Inductive tricky : nat -> nat -> Prop :=
            | tk : forall n n_nl, le n n_nl -> tricky n n.
            """
            .replace("le n n_nl", "n = n_nl"),
            "tricky",
        )
        out = preprocess_relation(rel, ctx)
        rule = out.rules[0]
        names = rule.variables()
        # Three distinct variables: n, the user's n_nl, and the fresh one.
        assert len(names) == 3
