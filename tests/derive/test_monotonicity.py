"""Fuel-monotonicity property tests (the paper's Section 5 theorems).

These are the soundness preconditions the memoization layer relies on:

* **upward persistence of definite answers** — if the derived checker
  answers ``Some b`` at fuel ``f``, it answers ``Some b`` at every
  larger fuel;
* **downward persistence of None** — if it answers ``None`` at fuel
  ``f``, it answers ``None`` at every smaller fuel.

Checked on the BST and STLC case studies over generated inputs, for
both the interpreter and compiled backends.
"""

from __future__ import annotations

import random

import pytest

from repro.casestudies import bst, stlc
from repro.core.values import V, Value, from_int, from_list
from repro.derive import Mode
from repro.derive.instances import CHECKER, resolve

FUEL_LADDER = (1, 2, 4, 8, 16, 32)


def _assert_monotone(check, args, fuels=FUEL_LADDER):
    """Check both §5 monotonicity directions along a fuel ladder."""
    results = [check(f, args) for f in fuels]
    for i, (fi, ri) in enumerate(zip(fuels, results)):
        for fj, rj in zip(fuels[i + 1:], results[i + 1:]):
            if not ri.is_none:
                assert rj is ri, (
                    f"definite answer unstable: fuel {fi} -> {ri}, "
                    f"fuel {fj} -> {rj} on {args}"
                )
            if rj.is_none:
                assert ri.is_none, (
                    f"None not downward monotone: fuel {fj} -> None but "
                    f"fuel {fi} -> {ri} on {args}"
                )


def _random_trees(count: int, seed: int) -> list[Value]:
    """A mix of valid BSTs (handwritten generator) and mutated ones."""
    rng = random.Random(seed)
    lo, hi = from_int(0), from_int(16)
    trees = []
    while len(trees) < count:
        out = bst.handwritten_bst_gen(8, (lo, hi), rng)
        if not isinstance(out, tuple):
            continue
        tree = out[0]
        trees.append(tree)
        # A mutated sibling: insert with a buggy implementation.
        trees.append(bst.insert_swapped(rng.randrange(1, 16), tree))
    return trees[:count]


def _random_terms(count: int, seed: int) -> list[Value]:
    """Small random STLC terms, typed and ill-typed alike."""
    rng = random.Random(seed)

    def go(depth: int) -> Value:
        if depth == 0 or rng.random() < 0.3:
            if rng.random() < 0.5:
                return V("Con", from_int(rng.randrange(0, 3)))
            return V("Vart", from_int(rng.randrange(0, 3)))
        pick = rng.randrange(3)
        if pick == 0:
            return V("Add", go(depth - 1), go(depth - 1))
        if pick == 1:
            ty = V("N") if rng.random() < 0.6 else V("Arr", V("N"), V("N"))
            return V("Abs", ty, go(depth - 1))
        return V("App", go(depth - 1), go(depth - 1))

    return [go(3) for _ in range(count)]


@pytest.mark.parametrize("backend", ["interp", "compiled"])
def test_bst_checker_fuel_monotone(backend):
    ctx = bst.make_context()
    check = resolve(ctx, CHECKER, "bst", Mode.checker(3), backend=backend).fn
    lo, hi = from_int(0), from_int(16)
    for tree in _random_trees(count=30, seed=101):
        _assert_monotone(check, (lo, hi, tree))


@pytest.mark.parametrize("backend", ["interp", "compiled"])
def test_stlc_typing_fuel_monotone(backend):
    ctx = stlc.make_context()
    check = resolve(ctx, CHECKER, "typing", Mode.checker(3), backend=backend).fn
    env = from_list([])
    types = (V("N"), V("Arr", V("N"), V("N")))
    for i, term in enumerate(_random_terms(count=25, seed=202)):
        _assert_monotone(check, (env, term, types[i % 2]))


@pytest.mark.parametrize("backend", ["interp", "compiled"])
def test_le_checker_fuel_monotone(backend, nat_ctx):
    """A relation where None genuinely appears low on the ladder."""
    check = resolve(nat_ctx, CHECKER, "le", Mode.checker(2), backend=backend).fn
    rng = random.Random(7)
    for _ in range(40):
        a, b = rng.randrange(0, 20), rng.randrange(0, 20)
        _assert_monotone(check, (from_int(a), from_int(b)))
