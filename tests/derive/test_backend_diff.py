"""Differential property test: interpreter vs compiled backends.

Both backends execute the same lowered Plan (one lowering, two
executions), so on any input they must produce *identical* outcomes:

* checkers — the same ``OptionBool`` singleton;
* enumerators — the same value/marker sequence, in the same order;
* generators — the same sample (or marker) under the same RNG seed.

The corpus is every monomorphic relation the deriver handles in
``repro.sf`` (the Table 1 population) and the ``repro.casestudies``
relations, plus all derivable producer modes of the small shared
fixtures.  Inputs are seeded slices of each argument type's value
enumeration, capped to keep the product tractable.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.core.errors import ReproError
from repro.derive import Mode, disable_functionalization
from repro.derive.instances import (
    CHECKER,
    ENUM,
    GEN,
    resolve,
    resolve_compiled,
)
from repro.derive.specialize import disable_specialization
from repro.producers.combinators import _enum_values
from repro.producers.option_bool import NONE_OB
from repro.resilience import FaultPlan, budget_scope
from repro.sf.registry import CHAPTER_MODULES, load_chapter

CHECK_FUELS = (0, 2, 5)
MAX_PER_POSITION = 4
MAX_TUPLES = 40

_CHAPTERS = {}
_PLAIN_CHAPTERS = {}
_FUNC_OFF_CHAPTERS = {}


def chapter(module):
    if module not in _CHAPTERS:
        _CHAPTERS[module] = load_chapter(module)
    return _CHAPTERS[module]


def plain_chapter(module):
    """The same chapter with term-representation specialization off —
    its compiled instances are boxed-only (the pre-specialization
    emitter's behaviour)."""
    if module not in _PLAIN_CHAPTERS:
        ch = load_chapter(module)
        disable_specialization(ch.ctx)
        _PLAIN_CHAPTERS[module] = ch
    return _PLAIN_CHAPTERS[module]


def func_off_chapter(module):
    """The same chapter with premise functionalization off — plans
    keep their enumerate-then-check premises and codegen splices no
    premise bodies (the pre-pass behaviour)."""
    if module not in _FUNC_OFF_CHAPTERS:
        ch = load_chapter(module)
        disable_functionalization(ch.ctx)
        _FUNC_OFF_CHAPTERS[module] = ch
    return _FUNC_OFF_CHAPTERS[module]


def seeded_inputs(ctx, arg_types, seed=0):
    """A capped product of small values of each argument type."""
    per_position = []
    for ty in arg_types:
        values = list(itertools.islice(_enum_values(ctx, ty, 2), 12))
        if not values:
            return []
        rng = random.Random((seed, str(ty)).__repr__())
        if len(values) > MAX_PER_POSITION:
            values = rng.sample(values, MAX_PER_POSITION)
        per_position.append(values)
    return list(itertools.islice(itertools.product(*per_position), MAX_TUPLES))


def assert_checkers_agree(ctx, rel, fuels=CHECK_FUELS):
    relation = ctx.relations.get(rel)
    mode = Mode.checker(relation.arity)
    interp = resolve(ctx, CHECKER, rel, mode).fn
    compiled = resolve_compiled(ctx, CHECKER, rel, mode)
    cases = seeded_inputs(ctx, relation.arg_types)
    assert cases, f"no seeded inputs for {rel}"
    for args in cases:
        for fuel in fuels:
            assert interp(fuel, args) is compiled(fuel, args), (
                f"checker mismatch: {rel} fuel={fuel} args={args}"
            )


def assert_enums_agree(ctx, rel, mode_str, fuels=(0, 2, 4)):
    relation = ctx.relations.get(rel)
    mode = Mode.from_string(mode_str)
    interp = resolve(ctx, ENUM, rel, mode).fn
    compiled = resolve_compiled(ctx, ENUM, rel, mode)
    in_types = [relation.arg_types[i] for i in mode.ins]
    for ins in seeded_inputs(ctx, in_types) or [()]:
        for fuel in fuels:
            a = list(interp(fuel, ins))
            b = list(compiled(fuel, ins))
            assert a == b, (
                f"enum mismatch: {rel}[{mode_str}] fuel={fuel} ins={ins}"
            )


def assert_gens_agree(ctx, rel, mode_str, fuel=4, seeds=range(25)):
    relation = ctx.relations.get(rel)
    mode = Mode.from_string(mode_str)
    interp = resolve(ctx, GEN, rel, mode).fn
    compiled = resolve_compiled(ctx, GEN, rel, mode)
    in_types = [relation.arg_types[i] for i in mode.ins]
    for ins in (seeded_inputs(ctx, in_types) or [()])[:6]:
        for seed in seeds:
            a = interp(fuel, ins, random.Random(seed))
            b = compiled(fuel, ins, random.Random(seed))
            assert a == b, (
                f"gen mismatch: {rel}[{mode_str}] seed={seed} ins={ins}"
            )


def _diff_within_budget(ctx, rel, fuels, max_ops=60_000, seconds=2.0):
    """Run the checker diff with every call resource-bounded.

    A handful of corpus relations are exponential even at fuel 2
    (plf_sub's ``subtype`` checks transitivity by producing the middle
    type unconstrained).  Each backend call runs under a fresh
    :class:`~repro.resilience.Budget`, so a blowup degrades that call
    to ``None`` instead of wedging the suite — a genuine backend
    divergence still fails fast.  Agreement is asserted on whatever
    completed, and also on pairs where *both* backends tripped the op
    cap (op charges are mirrored site-for-site, so both unwind at the
    same index and must still answer identically); only wall-clock
    trips — which land at backend-dependent op indices — skip the
    comparison.  Returns the number of compared pairs.
    """
    relation = ctx.relations.get(rel)
    mode = Mode.checker(relation.arity)
    interp = resolve(ctx, CHECKER, rel, mode).fn
    compiled = resolve_compiled(ctx, CHECKER, rel, mode)
    cases = seeded_inputs(ctx, relation.arg_types)
    assert cases, f"no seeded inputs for {rel}"
    compared = 0
    for args in cases:
        for fuel in fuels:
            with budget_scope(
                ctx, max_ops=max_ops, deadline_seconds=seconds
            ) as b_i:
                a = interp(fuel, args)
            with budget_scope(
                ctx, max_ops=max_ops, deadline_seconds=seconds
            ) as b_c:
                b = compiled(fuel, args)
            tripped = (
                b_i.exhausted.limit if b_i.exhausted else None,
                b_c.exhausted.limit if b_c.exhausted else None,
            )
            if "deadline" in tripped or tripped.count("ops") == 1:
                # Wall trips land at nondeterministic op indices, and a
                # one-sided op trip means the wall backstop fired first
                # on the other side — no comparable outcome either way.
                continue
            assert a is b, (
                f"checker mismatch: {rel} fuel={fuel} args={args} "
                f"(trips={tripped})"
            )
            compared += 1
    return compared


def _spec_unspec_diff(
    ctx_spec, ctx_plain, rel, fuels, max_ops=60_000, seconds=2.0
):
    """Diff the specialized compiled checker against a boxed-only
    compiled checker from an identical context.  Same budget/skip
    discipline as :func:`_diff_within_budget`; op charges are emitted
    site-for-site in both twins, so two-sided op trips still compare.
    Returns the number of compared pairs."""
    relation = ctx_spec.relations.get(rel)
    mode = Mode.checker(relation.arity)
    spec = resolve_compiled(ctx_spec, CHECKER, rel, mode)
    plain = resolve_compiled(ctx_plain, CHECKER, rel, mode)
    cases = seeded_inputs(ctx_spec, relation.arg_types)
    assert cases, f"no seeded inputs for {rel}"
    compared = 0
    for args in cases:
        for fuel in fuels:
            with budget_scope(
                ctx_spec, max_ops=max_ops, deadline_seconds=seconds
            ) as b_s:
                a = spec(fuel, args)
            with budget_scope(
                ctx_plain, max_ops=max_ops, deadline_seconds=seconds
            ) as b_p:
                b = plain(fuel, args)
            tripped = (
                b_s.exhausted.limit if b_s.exhausted else None,
                b_p.exhausted.limit if b_p.exhausted else None,
            )
            if "deadline" in tripped or tripped.count("ops") == 1:
                continue
            assert a is b, (
                f"spec/unspec mismatch: {rel} fuel={fuel} args={args} "
                f"(trips={tripped})"
            )
            compared += 1
    return compared


FUNC_FAULT_SEEDS = (11, 22)


def _func_on_off_diff(
    ctx_on, ctx_off, rel, fuels, max_ops=60_000, seconds=2.0
):
    """Diff checkers with the functionalization pass on vs off.

    The pass is a *refinement*, not an equivalence: an OP_EVALREL
    premise computes its answer directly, so the pass-on checker may
    answer definitely where pass-off ran out of fuel enumerating — but
    it must never flip or lose a definite pass-off verdict.  The two
    plans charge different op streams by construction, so any budget
    trip on either side skips the pair (unlike the spec/unspec diff,
    where charges mirror site-for-site).  Within each configuration
    the interpreter and compiled twins must still agree exactly, under
    plain budgets and under seeded fault schedules (interruption
    soundness survives the transform).  Returns compared on/off pairs.
    """
    relation = ctx_on.relations.get(rel)
    mode = Mode.checker(relation.arity)
    on_i = resolve(ctx_on, CHECKER, rel, mode).fn
    on_c = resolve_compiled(ctx_on, CHECKER, rel, mode)
    off_i = resolve(ctx_off, CHECKER, rel, mode).fn
    off_c = resolve_compiled(ctx_off, CHECKER, rel, mode)
    cases = seeded_inputs(ctx_on, relation.arg_types)
    assert cases, f"no seeded inputs for {rel}"
    compared = 0
    for args in cases:
        for fuel in fuels:
            answers = {}
            for key, ctx, fn in (
                ("on", ctx_on, on_c),
                ("on_i", ctx_on, on_i),
                ("off", ctx_off, off_c),
                ("off_i", ctx_off, off_i),
            ):
                with budget_scope(
                    ctx, max_ops=max_ops, deadline_seconds=seconds
                ) as b:
                    answers[key] = (fn(fuel, args), b.exhausted is not None)
            for key in ("on", "off"):
                (a, ta), (b, tb) = answers[key], answers[key + "_i"]
                if not ta and not tb:
                    assert a is b, (
                        f"backends diverge ({key}): {rel} fuel={fuel} "
                        f"args={args}"
                    )
            (on, t_on), (off, t_off) = answers["on"], answers["off"]
            if t_on or t_off:
                continue
            assert on is off or (off is NONE_OB and on is not NONE_OB), (
                f"functionalization broke a verdict: {rel} fuel={fuel} "
                f"args={args} on={on} off={off}"
            )
            compared += 1
    # Interruption soundness per configuration: an injected fuel-out
    # may degrade a definite verdict to indefinite, never flip it, and
    # both backends must unwind identically at the injected op.
    plans = [
        FaultPlan.seeded(s, n_events=6, horizon=2048)
        for s in FUNC_FAULT_SEEDS
    ]
    for args in cases[:2]:
        for ctx, interp, compiled in (
            (ctx_on, on_i, on_c),
            (ctx_off, off_i, off_c),
        ):
            with budget_scope(ctx, max_ops=max_ops) as b0:
                base = compiled(2, args)
            base_definite = b0.exhausted is None and base is not NONE_OB
            for plan in plans:
                with budget_scope(
                    ctx, max_ops=max_ops, faults=plan, check_every=1
                ):
                    fi = interp(2, args)
                with budget_scope(
                    ctx, max_ops=max_ops, faults=plan, check_every=1
                ):
                    fc = compiled(2, args)
                assert fi is fc, (
                    f"backends diverge under faults: {rel} args={args} "
                    f"plan={list(plan)}"
                )
                if base_definite and fi is not NONE_OB:
                    assert fi is base, (
                        f"fault flipped a definite verdict: {rel} "
                        f"args={args} plan={list(plan)}"
                    )
    return compared


class TestSFCorpusCheckers:
    """Every derivable SF relation: interp and compiled checkers agree."""

    @pytest.mark.parametrize("module", CHAPTER_MODULES)
    def test_chapter_checkers_agree(self, module):
        ch = chapter(module)
        covered = 0
        for entry in ch.entries:
            if entry.higher_order:
                continue
            relation = ch.ctx.relations.get(entry.name)
            if not relation.is_monomorphic():
                continue
            try:
                # Fuel 2 exercises base handlers, one recursion level
                # and external calls; fuel 3+ hits exponential search
                # cliffs on some relations (e.g. lf_indprop's evp)
                # without adding diff coverage.
                if _diff_within_budget(ch.ctx, entry.name, fuels=(0, 2)):
                    covered += 1
            except ReproError:
                continue  # out of the deriver's scope: census covers it
        assert covered, f"no relation in {module} was diffable"


class TestSpecializedVsUnspecialized:
    """The specialization pass must be invisible in verdicts: the
    specialized compiled checker and a boxed-only compiled checker
    agree over the whole corpus (all SF chapters + case studies)."""

    @pytest.mark.parametrize("module", CHAPTER_MODULES)
    def test_chapter_spec_unspec_agree(self, module):
        ch, plain = chapter(module), plain_chapter(module)
        covered = 0
        for entry in ch.entries:
            if entry.higher_order:
                continue
            relation = ch.ctx.relations.get(entry.name)
            if not relation.is_monomorphic():
                continue
            try:
                if _spec_unspec_diff(
                    ch.ctx, plain.ctx, entry.name, fuels=(0, 2)
                ):
                    covered += 1
            except ReproError:
                continue
        assert covered, f"no relation in {module} was diffable"

    @pytest.mark.parametrize(
        "maker, rels",
        [
            ("bst", ("bst", "lt")),
            ("stlc", ("typing", "lookup")),
            ("ifc", ("indist_atom", "indist_list")),
        ],
    )
    def test_case_study_spec_unspec_agree(self, maker, rels):
        import importlib

        mod = importlib.import_module(f"repro.casestudies.{maker}")
        ctx_spec = mod.make_context()
        ctx_plain = mod.make_context()
        disable_specialization(ctx_plain)
        for rel in rels:
            assert _spec_unspec_diff(ctx_spec, ctx_plain, rel, fuels=(0, 2))


class TestFunctionalizeOnOff:
    """The functionalization pass (OP_EVALREL + cross-relation
    inlining) refines but never breaks verdicts, over the whole corpus
    (all SF chapters + case studies), under budgets and seeded fault
    schedules."""

    @pytest.mark.parametrize("module", CHAPTER_MODULES)
    def test_chapter_on_off_agree(self, module):
        ch, off = chapter(module), func_off_chapter(module)
        covered = 0
        for entry in ch.entries:
            if entry.higher_order:
                continue
            relation = ch.ctx.relations.get(entry.name)
            if not relation.is_monomorphic():
                continue
            try:
                if _func_on_off_diff(
                    ch.ctx, off.ctx, entry.name, fuels=(0, 2)
                ):
                    covered += 1
            except ReproError:
                continue
        assert covered, f"no relation in {module} was diffable"

    @pytest.mark.parametrize(
        "maker, rels",
        [
            ("bst", ("bst", "lt")),
            ("stlc", ("typing", "lookup")),
            ("ifc", ("indist_atom", "indist_list")),
        ],
    )
    def test_case_study_on_off_agree(self, maker, rels):
        import importlib

        mod = importlib.import_module(f"repro.casestudies.{maker}")
        ctx_on = mod.make_context()
        ctx_off = mod.make_context()
        disable_functionalization(ctx_off)
        for rel in rels:
            assert _func_on_off_diff(ctx_on, ctx_off, rel, fuels=(0, 2))


class TestCaseStudies:
    def test_bst_checker_and_producers(self):
        from repro.casestudies import bst

        ctx = bst.make_context()
        assert_checkers_agree(ctx, "bst")
        assert_enums_agree(ctx, "bst", "iio", fuels=(0, 2, 3))
        assert_gens_agree(ctx, "bst", "iio")

    def test_stlc_checker_and_producers(self):
        from repro.casestudies import stlc

        ctx = stlc.make_context()
        assert_checkers_agree(ctx, "typing", fuels=(0, 2))
        assert_checkers_agree(ctx, "lookup", fuels=(0, 3))
        assert_enums_agree(ctx, "typing", "iio", fuels=(0, 3))
        assert_gens_agree(ctx, "typing", "ioi")

    def test_ifc_checker_and_producers(self):
        from repro.casestudies import ifc

        ctx = ifc.make_context()
        assert_checkers_agree(ctx, "indist_atom", fuels=(0, 3))
        assert_checkers_agree(ctx, "indist_list", fuels=(0, 2))
        assert_gens_agree(ctx, "indist_list", "io")


class TestAllModesSmallRelations:
    """Every producer mode of the small fixtures, both producer kinds."""

    @pytest.mark.parametrize("mode", ["io", "oi", "oo"])
    def test_le_modes(self, nat_ctx, mode):
        assert_enums_agree(nat_ctx, "le", mode)
        assert_gens_agree(nat_ctx, "le", mode)

    def test_ev_output_mode(self, nat_ctx):
        assert_enums_agree(nat_ctx, "ev", "o")
        assert_gens_agree(nat_ctx, "ev", "o")

    @pytest.mark.parametrize("mode", ["o"])
    def test_sorted_modes(self, list_ctx, mode):
        assert_enums_agree(list_ctx, "Sorted", mode)
        assert_gens_agree(list_ctx, "Sorted", mode)

    @pytest.mark.parametrize("mode", ["io", "oi", "oo"])
    def test_innat_modes(self, list_ctx, mode):
        assert_enums_agree(list_ctx, "InNat", mode, fuels=(0, 2, 3))
        assert_gens_agree(list_ctx, "InNat", mode)

    @pytest.mark.parametrize("mode", ["iio", "ioi"])
    def test_typing_modes(self, stlc_ctx, mode):
        assert_enums_agree(stlc_ctx, "typing", mode, fuels=(0, 2))
        assert_gens_agree(stlc_ctx, "typing", mode, seeds=range(15))
