"""The premise-reordering cost model (scheduler._order_premises) and a
schedule-validity property: no step may read a variable before some
earlier step bound it."""

from __future__ import annotations

import itertools

import pytest

from repro.core import parse_declarations
from repro.core.errors import DerivationError
from repro.core.terms import free_vars
from repro.derive import Mode, build_schedule
from repro.derive.scheduler import DEFAULT_POLICY, PAPER_POLICY
from repro.derive.schedule import (
    SAssign,
    SCheckCall,
    SEqCheck,
    SInstantiate,
    SMatch,
    SProduce,
    SRecCheck,
)
from repro.stdlib import standard_context

DECLS = """
Inductive le : nat -> nat -> Prop :=
| le_n : forall n, le n n
| le_S : forall n m, le n m -> le n (S m).

Inductive pyth : nat -> Prop :=
| py : forall n m, le (n * n) m -> le n 5 -> pyth m.

Inductive pr : nat -> Prop :=
| pr0 : pr 0
| prS : forall m, le m 7 -> pr m -> pr (S m).

Inductive dup : nat -> nat -> Prop :=
| d : forall n, dup n n.

Inductive big : nat -> Prop :=
| bg : forall n a b c d e f g,
    le (n * n) a -> le n 1 -> le b 1 -> le c 1 -> le d 1 ->
    le e 1 -> le f 1 -> le g 1 -> big n.
"""


@pytest.fixture()
def ctx():
    c = standard_context()
    parse_declarations(c, DECLS)
    return c


def mode_for(ctx, rel, spec):
    return Mode.for_relation(ctx.relations.get(rel), spec)


def handler(schedule, rule):
    (h,) = [h for h in schedule.handlers if h.rule == rule]
    return h


def assert_schedule_valid(schedule):
    """Every variable a step reads must have been bound by the input
    match or by an earlier step, and the outputs must be known at the
    end.  This is the invariant all premise orders must preserve."""
    for h in schedule.handlers:
        known: set[str] = set()
        for pat in h.in_patterns:
            known.update(free_vars(pat))
        for step in h.steps:
            if isinstance(step, SAssign):
                assert set(free_vars(step.term)) <= known, (h.rule, step)
                known.add(step.var)
            elif isinstance(step, SMatch):
                assert set(free_vars(step.scrutinee)) <= known, (h.rule, step)
                assert set(free_vars(step.pattern)) - step.binds <= known
                known |= step.binds
            elif isinstance(step, SEqCheck):
                reads = set(free_vars(step.lhs)) | set(free_vars(step.rhs))
                assert reads <= known, (h.rule, step)
            elif isinstance(step, (SCheckCall, SRecCheck)):
                for arg in step.args:
                    assert set(free_vars(arg)) <= known, (h.rule, step)
            elif isinstance(step, SProduce):
                for arg in step.in_args:
                    assert set(free_vars(arg)) <= known, (h.rule, step)
                known |= set(step.binds)
            elif isinstance(step, SInstantiate):
                known.add(step.var)
            else:  # pragma: no cover - new step kinds must be handled
                raise AssertionError(f"unknown step {step!r}")
        for t in h.out_terms:
            assert set(free_vars(t)) <= known, (h.rule, "outputs")


class TestCostModel:
    def test_funcall_blocked_premise_deferred(self, ctx):
        """'le (n * n) m' before 'le n 5' forces an unconstrained
        instantiation of n; the reorderer runs the cheap premise first
        so n arrives from a constrained producer instead."""
        s = build_schedule(ctx, "pyth", mode_for(ctx, "pyth", "o"))
        steps = handler(s, "py").steps
        assert not any(isinstance(st, SInstantiate) for st in steps)
        produces = [st for st in steps if isinstance(st, SProduce)]
        # First production binds n from 'le n 5', not 'le (n*n) m'.
        assert produces[0].binds == ("n",)

    def test_paper_policy_keeps_source_order(self, ctx):
        s = build_schedule(ctx, "pyth", mode_for(ctx, "pyth", "o"), PAPER_POLICY)
        steps = handler(s, "py").steps
        inst = [st for st in steps if isinstance(st, SInstantiate)]
        assert [st.var for st in inst] == ["n"]

    def test_recursive_filter_runs_first(self, ctx):
        """Producing m through the recursive self-call is cheaper than
        producing it via 'le m 7' and then filtering the recursive
        enumeration against a fixed m."""
        s = build_schedule(ctx, "pr", mode_for(ctx, "pr", "o"))
        steps = handler(s, "prS").steps
        produces = [st for st in steps if isinstance(st, SProduce)]
        assert produces[0].rel == "pr" and produces[0].recursive

        paper = build_schedule(ctx, "pr", mode_for(ctx, "pr", "o"), PAPER_POLICY)
        paper_produces = [
            st for st in handler(paper, "prS").steps if isinstance(st, SProduce)
        ]
        assert paper_produces[0].rel == "le"

    def test_checker_mode_never_reorders(self, ctx):
        """Checkers route existentials through external producers, so
        the cost model stays out of the way: both policies agree."""
        a = build_schedule(ctx, "pyth", Mode.checker(1))
        b = build_schedule(ctx, "pyth", Mode.checker(1), PAPER_POLICY)
        assert a.handlers == b.handlers

    def test_wide_rules_skip_the_permutation_search(self, ctx):
        """Eight premises (> 7) would mean 40320 simulated orders; the
        scheduler keeps the source order even though reordering would
        save the unconstrained instantiation of n."""
        s = build_schedule(ctx, "big", mode_for(ctx, "big", "o"))
        steps = handler(s, "bg").steps
        assert any(
            isinstance(st, SInstantiate) and st.var == "n" for st in steps
        )

    def test_equalities_stay_free(self, ctx):
        """Reordering never penalises equality premises: le's schedules
        are identical under both policies (its only extra premise is
        the synthetic non-linearity equality)."""
        for spec in ("io", "oi"):
            a = build_schedule(ctx, "le", mode_for(ctx, "le", spec))
            b = build_schedule(ctx, "le", mode_for(ctx, "le", spec), PAPER_POLICY)
            assert a.handlers == b.handlers


class TestScheduleValidity:
    REL_NAMES = ["le", "pyth", "pr", "dup", "big"]

    @pytest.mark.parametrize("policy", [DEFAULT_POLICY, PAPER_POLICY])
    def test_every_derivable_mode_yields_a_valid_schedule(self, ctx, policy):
        checked = 0
        for name in self.REL_NAMES:
            rel = ctx.relations.get(name)
            for bits in itertools.product("io", repeat=rel.arity):
                spec = "".join(bits)
                try:
                    s = build_schedule(ctx, name, mode_for(ctx, name, spec), policy)
                except DerivationError:
                    continue
                assert_schedule_valid(s)
                checked += 1
        assert checked >= 10  # the sweep must not silently skip everything

    def test_reordered_schedules_stay_valid(self, ctx):
        for name, spec in [("pyth", "o"), ("pr", "o"), ("big", "o")]:
            assert_schedule_valid(
                build_schedule(ctx, name, mode_for(ctx, name, spec))
            )
