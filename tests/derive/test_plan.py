"""Tests for the lowered Plan IR: slots, ops, dispatch, caching."""

from __future__ import annotations

import pytest

from repro.core import parse_declarations
from repro.core.values import from_int
from repro.derive import Mode, build_schedule, lower_schedule
from repro.derive.api import derive_checker, derive_enumerator
from repro.derive.plan import (
    OP_CHECK,
    OP_PRODUCE,
    OP_RECCHECK,
    OP_TESTCTOR,
    PLANS_KEY,
    X_SLOT,
)
from repro.stdlib import standard_context


class TestLowering:
    def test_slots_inputs_first(self, nat_ctx):
        schedule = build_schedule(nat_ctx, "le", Mode.checker(2))
        plan = lower_schedule(nat_ctx, schedule)
        assert plan.n_ins == 2
        for h in plan.handlers:
            assert h.n_ins == 2
            assert h.n_slots >= 2
            assert h.tail == (None,) * (h.n_slots - 2)

    def test_ops_are_tagged_tuples(self, nat_ctx):
        schedule = build_schedule(nat_ctx, "le", Mode.checker(2))
        plan = lower_schedule(nat_ctx, schedule)
        for h in plan.handlers:
            for op in h.ops:
                assert isinstance(op, tuple) and isinstance(op[0], int)

    def test_recursive_flag_and_base_split(self, nat_ctx):
        schedule = build_schedule(nat_ctx, "ev", Mode.checker(1))
        plan = lower_schedule(nat_ctx, schedule)
        assert plan.has_recursive
        assert {h.recursive for h in plan.handlers} == {False, True}
        assert all(not h.recursive for h in plan.base)
        recursive = [h for h in plan.handlers if h.recursive]
        assert any(
            op[0] == OP_RECCHECK for h in recursive for op in h.ops
        )

    def test_external_call_carries_registry_key(self, list_ctx):
        schedule = build_schedule(list_ctx, "Sorted", Mode.checker(1))
        plan = lower_schedule(list_ctx, schedule)
        keys = [
            op[1]
            for h in plan.handlers
            for op in h.ops
            if op[0] == OP_CHECK
        ]
        assert ("checker", "le", "ii") in keys

    def test_produce_carries_both_keys(self, stlc_ctx):
        schedule = build_schedule(
            stlc_ctx, "typing", Mode.from_string("iio")
        )
        plan = lower_schedule(stlc_ctx, schedule)
        produces = [
            op for h in plan.handlers for op in h.ops if op[0] == OP_PRODUCE
        ]
        assert produces
        for op in produces:
            assert op[1][0] == "enum" and op[2][0] == "gen"
            assert op[1][1:] == op[2][1:]

    def test_key3_matches_schedule(self, nat_ctx):
        schedule = build_schedule(nat_ctx, "le", Mode.checker(2))
        plan = lower_schedule(nat_ctx, schedule)
        for h in plan.handlers:
            assert h.key3 == ("le", "ii", h.rule)

    def test_describe_smoke(self, nat_ctx):
        schedule = build_schedule(nat_ctx, "le", Mode.checker(2))
        text = lower_schedule(nat_ctx, schedule).describe()
        assert "plan for le [ii]" in text
        assert "plan-handler" in text


class TestDispatchIndex:
    def test_checker_dispatch_on_ctor_headed_position(self, nat_ctx):
        schedule = build_schedule(nat_ctx, "ev", Mode.checker(1))
        plan = lower_schedule(nat_ctx, schedule)
        # ev_0 matches O, ev_SS matches S (S n): position 0 is fully
        # constructor-headed, so dispatch engages there.
        assert plan.dispatch_pos == 0
        assert set(plan.full_table) == {"O", "S"}
        assert plan.full_default == ()

    def test_candidates_filter_but_preserve_order(self, list_ctx):
        schedule = build_schedule(list_ctx, "Sorted", Mode.checker(1))
        plan = lower_schedule(list_ctx, schedule)
        assert plan.dispatch_pos == 0
        from repro.core.values import nat_list

        nil_candidates = plan.candidates((nat_list([]),))
        cons_candidates = plan.candidates((nat_list([1, 2]),))
        assert [h.rule for h in nil_candidates] == ["Sorted_nil"]
        assert [h.rule for h in cons_candidates] == [
            "Sorted_sing",
            "Sorted_cons",
        ]
        # Order within any candidate set is the declaration order.
        indices = [h.index for h in cons_candidates]
        assert indices == sorted(indices)

    def test_unknown_ctor_falls_back_to_default(self, nat_ctx):
        schedule = build_schedule(nat_ctx, "le", Mode.checker(2))
        plan = lower_schedule(nat_ctx, schedule)
        # le_n has a variable pattern at both positions; le_S has
        # (S m) at position 1 — dispatch picks position 1 and the
        # var-headed handler lands in every bucket and the default.
        assert plan.dispatch_pos == 1
        assert [h.rule for h in plan.full_default] == ["le_n"]
        # S-headed second argument: both handlers are candidates.
        assert [h.rule for h in plan.candidates(
            (from_int(1), from_int(3))
        )] == ["le_n", "le_S"]
        # O-headed second argument: no bucket, so only the var-headed
        # handler (the default set) is attempted.
        assert [h.rule for h in plan.candidates(
            (from_int(1), from_int(0))
        )] == ["le_n"]

    def test_all_var_heads_disable_dispatch(self, nat_ctx):
        # square_of: conclusion (n, n*n) — no constructor heads.
        schedule = build_schedule(nat_ctx, "square_of", Mode.checker(2))
        plan = lower_schedule(nat_ctx, schedule)
        assert plan.dispatch_pos == -1
        assert plan.candidates((from_int(2), from_int(4))) == plan.handlers

    def test_dispatch_does_not_change_checker_answers(self):
        # A relation whose handlers disagree per constructor: every
        # head constructor must still get the right answer through the
        # filtered candidate sets.
        ctx = standard_context()
        parse_declarations(ctx, """
        Inductive small : nat -> Prop :=
        | s_zero : small 0
        | s_one : small 1
        | s_two : small 2.
        """)
        checker = derive_checker(ctx, "small")
        for n, expect in [(0, True), (1, True), (2, True), (3, False)]:
            assert checker(5, from_int(n)).is_true is expect


class TestPlanCache:
    def test_lowering_cached_per_schedule(self, nat_ctx):
        schedule = build_schedule(nat_ctx, "le", Mode.checker(2))
        a = lower_schedule(nat_ctx, schedule)
        b = lower_schedule(nat_ctx, schedule)
        assert a is b
        assert nat_ctx.artifacts[PLANS_KEY][id(schedule)] is a

    def test_interpreter_and_codegen_share_the_lowering(self, nat_ctx):
        from repro.derive.instances import CHECKER, resolve, resolve_compiled

        before = len(nat_ctx.artifacts.get(PLANS_KEY, {}))
        resolve(nat_ctx, CHECKER, "ev", Mode.checker(1))
        mid = len(nat_ctx.artifacts[PLANS_KEY])
        resolve_compiled(nat_ctx, CHECKER, "ev", Mode.checker(1))
        after = len(nat_ctx.artifacts[PLANS_KEY])
        assert mid > before
        # The compiled backend reuses the interpreter's lowered plan.
        assert after == mid

    def test_public_surface_exposes_plan(self, nat_ctx):
        checker = derive_checker(nat_ctx, "ev")
        assert checker.plan.rel == "ev"
        enum = derive_enumerator(nat_ctx, "le", "io")
        assert enum.plan.mode_str == "io"


class TestShadowingBind:
    def test_duplicate_produce_binds_last_wins(self):
        # A non-linear recursive premise at mode oo produces both
        # occurrences of x; dict-environment semantics (which the Plan
        # lowering reproduces) let the last bind win with no equality
        # constraint.  Guarded here so a future soundness fix is a
        # deliberate semantics change, not an accident of lowering.
        ctx = standard_context()
        parse_declarations(ctx, """
        Inductive dup : nat -> nat -> Prop :=
        | dup_z : dup 0 0
        | dup_s : forall x y, dup x x -> dup (S y) y.
        """)
        # Checking dup_s needs `x, x <- produce dup[oo]()` — the same
        # name bound once per output position.
        checker = derive_checker(ctx, "dup")
        assert checker(8, from_int(1), from_int(0)).is_true
        assert not checker(8, from_int(0), from_int(3)).is_true
