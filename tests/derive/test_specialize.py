"""Tests for the term-representation specialization pass.

Covers the coercion algebra (box/unbox round-trips and their failure
mode), repr inference and the worthwhileness demotion, the per-context
on/off switch, specialized/boxed/interpreter agreement (including the
entry-coercion fallback on ill-typed values), canonical memo keys and
the cross-backend cache-contamination regression, the batched entry
points, and certificate discharge against specialized artifacts.
"""

from __future__ import annotations

import pytest

from repro.core.types import Ty
from repro.core.values import NIL, Value, V, from_int, from_list, nat_list
from repro.derive import Mode
from repro.derive.instances import CHECKER, resolve, resolve_compiled
from repro.derive.memo import (
    CHECKER_MEMO,
    definite_answer,
    enable_memoization,
)
from repro.derive import specialize as sp
from repro.producers.option_bool import NONE_OB, SOME_FALSE, SOME_TRUE
from repro.validation import ValidationConfig, certify_checker


# ---------------------------------------------------------------------------
# Coercions.
# ---------------------------------------------------------------------------


class TestCoercions:
    @pytest.mark.parametrize("n", [0, 1, 2, 7, 30])
    def test_nat_round_trip(self, n):
        assert sp.box_nat(n) == from_int(n)
        assert sp.unbox_nat(from_int(n)) == n
        assert sp.unbox_nat(sp.box_nat(n)) == n

    def test_box_nat_shares_spines(self):
        assert sp.box_nat(5) is sp.box_nat(5)
        assert sp.box_nat(5).args[0] is sp.box_nat(4)

    def test_unbox_nat_is_partial(self):
        with pytest.raises(sp.SpecCoercionError):
            sp.unbox_nat(V("true"))
        with pytest.raises(sp.SpecCoercionError):
            sp.unbox_nat(V("cons", from_int(1), NIL))
        with pytest.raises(sp.SpecCoercionError):
            sp.unbox_nat(42)  # not even a Value

    @pytest.mark.parametrize(
        "r, boxed, native",
        [
            (("list", sp.NAT), nat_list([1, 2, 3]), (1, (2, (3, ())))),
            (("list", sp.NAT), nat_list([]), ()),
            (
                ("list", sp.BOX),
                from_list([V("true"), V("false")]),
                (V("true"), (V("false"), ())),
            ),
            (
                ("list", ("list", sp.NAT)),
                from_list([nat_list([1]), nat_list([])]),
                ((1, ()), ((), ())),
            ),
        ],
    )
    def test_list_round_trip(self, r, boxed, native):
        assert sp.unboxer(r)(boxed) == native
        assert sp.boxer(r)(native) == boxed

    def test_list_unbox_is_partial(self):
        with pytest.raises(sp.SpecCoercionError):
            sp.unboxer(("list", sp.NAT))(from_int(3))
        with pytest.raises(sp.SpecCoercionError):
            sp.unboxer(("list", sp.NAT))(from_list([V("true")]))

    def test_nullary_constructors_intern(self):
        assert sp.intern_value(V("O")) is sp.intern_value(V("O"))
        assert sp.intern_value(V("nil")) is sp.intern_value(V("nil"))
        deep = V("S", V("S", V("O")))
        assert sp.intern_value(deep) is sp.intern_value(from_int(2))

    def test_value_in_repr_compile_time_failure(self):
        with pytest.raises(sp.SpecCoercionError):
            sp.value_in_repr(V("true"), sp.NAT)


# ---------------------------------------------------------------------------
# Repr inference and demotion.
# ---------------------------------------------------------------------------


class TestReprInference:
    def test_repr_of(self):
        assert sp.repr_of(Ty("nat")) == sp.NAT
        assert sp.repr_of(Ty("list", (Ty("nat"),))) == ("list", sp.NAT)
        assert sp.repr_of(Ty("bool")) == sp.BOX
        assert sp.repr_of(None) == sp.BOX

    def test_worthwhile(self):
        assert sp.worthwhile(sp.NAT)
        assert sp.worthwhile(("list", sp.NAT))
        assert sp.worthwhile(("list", ("list", sp.NAT)))
        assert not sp.worthwhile(sp.BOX)
        assert not sp.worthwhile(("list", sp.BOX))

    def test_nat_relation_specializes(self, nat_ctx):
        fn = resolve_compiled(nat_ctx, CHECKER, "le", Mode.checker(2))
        assert fn.__spec_reprs__ == (sp.NAT, sp.NAT)

    def test_list_of_box_is_demoted(self, stlc_ctx):
        """``typing``'s context is ``list type`` — no nat inside, so
        the entry stays boxed (pair conversion would only add a
        traversal); the term argument's nat components still make the
        plan worth specializing."""
        fn = resolve_compiled(stlc_ctx, CHECKER, "typing", Mode.checker(3))
        assert fn.__spec_reprs__ == (sp.BOX, sp.BOX, sp.BOX)

    def test_list_of_nat_stays_specialized(self, list_ctx):
        fn = resolve_compiled(list_ctx, CHECKER, "Sorted", Mode.checker(1))
        assert fn.__spec_reprs__ == (("list", sp.NAT),)


# ---------------------------------------------------------------------------
# The on/off switch.
# ---------------------------------------------------------------------------


class TestSpecializationFlag:
    def test_disable_compiles_boxed_only(self, nat_ctx):
        sp.disable_specialization(nat_ctx)
        fn = resolve_compiled(nat_ctx, CHECKER, "le", Mode.checker(2))
        assert not hasattr(fn, "__spec_rec__")
        assert not hasattr(fn, "__spec_fast__")
        assert fn(5, (from_int(1), from_int(2))) is SOME_TRUE

    def test_env_var_off_switch(self, nat_ctx, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SPECIALIZE", "1")
        assert not sp.specialization_enabled(nat_ctx)
        fn = resolve_compiled(nat_ctx, CHECKER, "le", Mode.checker(2))
        assert not hasattr(fn, "__spec_rec__")

    def test_enabled_by_default(self, nat_ctx):
        assert sp.specialization_enabled(nat_ctx)


# ---------------------------------------------------------------------------
# Agreement between the twins.
# ---------------------------------------------------------------------------


def _le_cases():
    return [
        (from_int(a), from_int(b)) for a in range(4) for b in range(4)
    ]


class TestTwinAgreement:
    def test_spec_vs_interpreter(self, nat_ctx):
        interp = resolve(nat_ctx, CHECKER, "le", Mode.checker(2)).fn
        compiled = resolve_compiled(nat_ctx, CHECKER, "le", Mode.checker(2))
        for args in _le_cases():
            for fuel in (0, 1, 2, 5):
                assert interp(fuel, args) is compiled(fuel, args)

    def test_fast_twin_matches_instrumented_twin(self, nat_ctx):
        fn = resolve_compiled(nat_ctx, CHECKER, "le", Mode.checker(2))
        for a in range(4):
            for b in range(4):
                for fuel in (0, 2, 5):
                    assert fn.__spec_fast__(fuel, fuel, a, b) is fn.__spec_rec__(
                        fuel, fuel, a, b
                    )

    def test_fast_twin_matches_public_entry(self, nat_ctx):
        fn = resolve_compiled(nat_ctx, CHECKER, "le", Mode.checker(2))
        for args in _le_cases():
            native = tuple(sp.unbox_nat(a) for a in args)
            assert fn.__spec_fast__(5, 5, *native) is fn(5, args)

    def test_ill_typed_argument_falls_back_to_boxed_twin(self, nat_ctx):
        """An argument outside the specialized repr (not a Peano nat)
        must not raise out of the public entry: the wrapper catches the
        coercion failure and re-runs the boxed twin."""
        interp = resolve(nat_ctx, CHECKER, "le", Mode.checker(2)).fn
        compiled = resolve_compiled(nat_ctx, CHECKER, "le", Mode.checker(2))
        weird = (V("true"), from_int(2))
        assert compiled(5, weird) is interp(5, weird)


# ---------------------------------------------------------------------------
# Canonical memo keys.
# ---------------------------------------------------------------------------


class TestCanonicalizeArgs:
    def test_all_boxed_tuple_is_returned_unchanged(self):
        args = (from_int(1), V("true"))
        assert sp.canonicalize_args(args) is args

    def test_native_forms_canonicalize_to_boxed(self):
        assert sp.canonicalize_args((3,)) == (from_int(3),)
        assert sp.canonicalize_args(((),)) == (NIL,)
        assert sp.canonicalize_args(((1, (2, ())),)) == (nat_list([1, 2]),)

    def test_bool_passthrough(self):
        assert sp.canonicalize_args((True,)) == (True,)

    def test_memo_cross_contamination_regression(self, nat_ctx):
        """A boxed caller and a native-repr caller of one ground query
        must share a single memo line with one definite answer."""
        enable_memoization(nat_ctx)
        interp = resolve(nat_ctx, CHECKER, "le", Mode.checker(2)).fn
        compiled = resolve_compiled(nat_ctx, CHECKER, "le", Mode.checker(2))
        boxed = (from_int(2), from_int(3))
        a = interp(8, boxed)
        b = compiled(8, boxed)
        assert a is b is SOME_TRUE
        keys = [k for k in nat_ctx.caches[CHECKER_MEMO] if k[0] == "le"]
        assert len(keys) == 1
        # The fuel-independent lookup answers identically for boxed
        # and native key spellings of the same ground query.
        assert definite_answer(nat_ctx, "le", boxed) is SOME_TRUE
        assert definite_answer(nat_ctx, "le", (2, 3)) is SOME_TRUE
        assert len(nat_ctx.caches[CHECKER_MEMO]) == len(
            set(nat_ctx.caches[CHECKER_MEMO])
        )


# ---------------------------------------------------------------------------
# Batched entry points.
# ---------------------------------------------------------------------------


class TestBatchEntryPoints:
    def test_compiled_batch_matches_elementwise(self, nat_ctx):
        fn = resolve_compiled(nat_ctx, CHECKER, "le", Mode.checker(2))
        argses = _le_cases()
        assert fn.__batch__(5, argses) == [fn(5, args) for args in argses]

    def test_compiled_batch_survives_ill_typed_elements(self, nat_ctx):
        fn = resolve_compiled(nat_ctx, CHECKER, "le", Mode.checker(2))
        argses = [
            (from_int(1), from_int(2)),
            (V("true"), from_int(2)),  # falls back per element
            (from_int(3), from_int(1)),
        ]
        assert fn.__batch__(5, argses) == [fn(5, args) for args in argses]

    def test_interpreter_batch_parity(self, nat_ctx):
        from repro.derive.exec_core import run_checker_batch

        checker = resolve(nat_ctx, CHECKER, "le", Mode.checker(2)).fn.__self__
        compiled = resolve_compiled(nat_ctx, CHECKER, "le", Mode.checker(2))
        argses = _le_cases()
        batch = checker.check_batch(5, argses)
        assert batch == compiled.__batch__(5, argses)
        assert batch == run_checker_batch(
            nat_ctx, checker._plans, checker._plan, 5, argses
        )

    def test_batch_unspecialized_plan(self, stlc_ctx):
        sp.disable_specialization(stlc_ctx)
        fn = resolve_compiled(stlc_ctx, CHECKER, "lookup", Mode.checker(3))
        args = (nat_list([]), from_int(0), V("N"))
        assert fn.__batch__(4, [args, args]) == [fn(4, args)] * 2


# ---------------------------------------------------------------------------
# Certificates discharge against specialized artifacts.
# ---------------------------------------------------------------------------

FAST_CFG = ValidationConfig(
    domain_depth=3, max_tuples=100, ref_depth=10, max_fuel=16, gen_samples=60
)


class TestValidationOfSpecializedArtifacts:
    @pytest.mark.parametrize("rel", ["le", "ev"])
    def test_specialized_nat_checkers_certify(self, nat_ctx, rel):
        inst = resolve(
            nat_ctx,
            CHECKER,
            rel,
            Mode.checker(nat_ctx.relations.get(rel).arity),
            backend="compiled",
        )
        assert inst.fn.__spec_reprs__  # genuinely specialized
        cert = certify_checker(nat_ctx, rel, FAST_CFG, instance=inst)
        assert cert.ok, cert.summary()

    def test_specialized_list_checker_certifies(self, list_ctx):
        inst = resolve(
            list_ctx, CHECKER, "Sorted", Mode.checker(1), backend="compiled"
        )
        assert inst.fn.__spec_reprs__ == (("list", sp.NAT),)
        cert = certify_checker(list_ctx, "Sorted", FAST_CFG, instance=inst)
        assert cert.ok, cert.summary()
