"""Tests for derive-time profiling (repro.derive.trace)."""

from __future__ import annotations

import random

from repro.core.values import from_int, nat_list
from repro.derive import (
    Mode,
    derive_checker,
    derive_enumerator,
    derive_generator,
    enable_memoization,
    disable_memoization,
    profile,
    trace_of,
)
from repro.derive.instances import CHECKER, resolve_compiled
from repro.derive.stats import STATS_KEY, stats_of
from repro.derive.trace import TRACE_KEY, DeriveTrace


class TestProfileContext:
    def test_off_by_default_and_removed_after(self, nat_ctx):
        assert trace_of(nat_ctx) is None
        with profile(nat_ctx) as tr:
            assert trace_of(nat_ctx) is tr
        assert trace_of(nat_ctx) is None

    def test_nested_blocks_restore_outer(self, nat_ctx):
        with profile(nat_ctx) as outer:
            with profile(nat_ctx) as inner:
                assert trace_of(nat_ctx) is inner
            assert trace_of(nat_ctx) is outer

    def test_installs_and_removes_stats(self, nat_ctx):
        assert stats_of(nat_ctx) is None
        with profile(nat_ctx):
            assert stats_of(nat_ctx) is not None
        assert stats_of(nat_ctx) is None

    def test_leaves_existing_stats_in_place(self, nat_ctx):
        enable_memoization(nat_ctx)
        try:
            existing = stats_of(nat_ctx)
            assert existing is not None
            with profile(nat_ctx):
                assert stats_of(nat_ctx) is existing
            assert stats_of(nat_ctx) is existing
        finally:
            disable_memoization(nat_ctx)


class TestInterpreterTraces:
    def test_checker_records_per_rule(self, nat_ctx):
        le = derive_checker(nat_ctx, "le")
        with profile(nat_ctx) as tr:
            assert le(10, from_int(2), from_int(5)).is_true
        keys = set(tr.entries)
        assert any(k[0] == "checker" and k[1] == "le" for k in keys)
        assert tr.total_attempts > 0
        # Successful derivation: some handler succeeded somewhere.
        assert any(e[1] > 0 for e in tr.entries.values())

    def test_backtracks_counted(self, nat_ctx):
        le = derive_checker(nat_ctx, "le")
        with profile(nat_ctx) as tr:
            assert not le(10, from_int(5), from_int(2)).is_true
        assert any(e[2] > 0 for e in tr.entries.values())

    def test_enum_records(self, nat_ctx):
        enum = derive_enumerator(nat_ctx, "le", "io")
        with profile(nat_ctx) as tr:
            list(enum(4, from_int(2)))
        assert any(k[0] == "enum" for k in tr.entries)

    def test_gen_records(self, nat_ctx):
        gen = derive_generator(nat_ctx, "le", "io")
        with profile(nat_ctx) as tr:
            for seed in range(10):
                gen(5, from_int(3), rng=random.Random(seed))
        assert any(k[0] == "gen" for k in tr.entries)

    def test_profiling_does_not_change_answers(self, list_ctx):
        sorted_checker = derive_checker(list_ctx, "Sorted")
        args = [nat_list(xs) for xs in ([], [1, 2, 3], [3, 1])]
        plain = [sorted_checker(10, a) for a in args]
        with profile(list_ctx):
            traced = [sorted_checker(10, a) for a in args]
        assert plain == traced


class TestCompiledTraces:
    def test_compiled_checker_records_same_keys(self, nat_ctx):
        interp = derive_checker(nat_ctx, "le")
        compiled = resolve_compiled(nat_ctx, CHECKER, "le", Mode.checker(2))
        args = (from_int(2), from_int(5))
        with profile(nat_ctx) as tr_interp:
            interp(10, *args)
        with profile(nat_ctx) as tr_compiled:
            compiled(10, args)
        interp_keys = set(tr_interp.entries)
        compiled_keys = set(tr_compiled.entries)
        # Same (backend, rel, mode, rule) key space: traces from mixed
        # backends aggregate into the same rows.
        assert interp_keys == compiled_keys
        assert tr_interp.entries == tr_compiled.entries


class TestReporting:
    def test_report_table(self, nat_ctx):
        le = derive_checker(nat_ctx, "le")
        with profile(nat_ctx) as tr:
            le(10, from_int(2), from_int(5))
        text = tr.report()
        assert "DeriveTrace" in text
        assert "checker:le[ii]" in text

    def test_empty_report(self):
        assert "no handler activity" in DeriveTrace().report()

    def test_stats_footer(self, nat_ctx):
        from repro.derive.stats import DeriveStats

        le = derive_checker(nat_ctx, "le")
        with profile(nat_ctx) as tr:
            le(10, from_int(2), from_int(5))
        stats = DeriveStats()
        stats.functionalized_calls = 3
        stats.inlined_frames = 2
        text = tr.report(stats=stats)
        assert "functionalized premise evaluations: 3" in text
        assert "inlined premise frames (compile-time): 2" in text
        # Footer also decorates the empty report, and is absent
        # without a stats object.
        assert "functionalized" in DeriveTrace().report(stats=stats)
        assert "functionalized" not in tr.report()

    def test_as_dict_and_reset(self, nat_ctx):
        le = derive_checker(nat_ctx, "le")
        with profile(nat_ctx) as tr:
            le(10, from_int(0), from_int(1))
        d = tr.as_dict()
        assert d and all(
            set(v) == {"attempts", "successes", "backtracks", "fuel_outs"}
            for v in d.values()
        )
        tr.reset()
        assert tr.total_attempts == 0

    def test_record_key_is_not_left_installed(self, nat_ctx):
        with profile(nat_ctx):
            pass
        assert TRACE_KEY not in nat_ctx.caches
        assert STATS_KEY not in nat_ctx.caches


class TestRecord4:
    def test_pre_merged_key_equivalent_to_record(self):
        a, b = DeriveTrace(), DeriveTrace()
        a.record("checker", ("le", "ii", "le_n"), True, False)
        b.record4(("checker", "le", "ii", "le_n"), True, False)
        assert a.entries == b.entries

    def test_plan_handlers_carry_backend_keys(self, nat_ctx):
        from repro.derive.plan import lower_schedule
        from repro.derive.scheduler import build_schedule

        schedule = build_schedule(nat_ctx, "le", Mode.checker(2))
        plan = lower_schedule(nat_ctx, schedule)
        for h in plan.handlers:
            assert h.key_checker == ("checker",) + h.key3
            assert h.key_enum == ("enum",) + h.key3
            assert h.key_gen == ("gen",) + h.key3


class TestReportFilters:
    def _traced(self, nat_ctx):
        le = derive_checker(nat_ctx, "le")
        ev = derive_checker(nat_ctx, "ev")
        with profile(nat_ctx) as tr:
            le(10, from_int(2), from_int(5))
            ev(10, from_int(4))
        return tr

    def test_top_truncates_with_footer(self, nat_ctx):
        tr = self._traced(nat_ctx)
        assert len(tr.entries) > 1
        text = tr.report(top=1)
        assert "more handlers" in text
        assert len([l for l in text.splitlines() if ":" in l and "[" in l]) == 1

    def test_relation_filter(self, nat_ctx):
        tr = self._traced(nat_ctx)
        text = tr.report(relation="ev")
        assert "ev[" in text and "le[" not in text

    def test_empty_filter_result(self, nat_ctx):
        tr = self._traced(nat_ctx)
        assert "no handler activity" in tr.report(relation="nope")

    def test_unfiltered_report_unchanged(self, nat_ctx):
        tr = self._traced(nat_ctx)
        assert "more handlers" not in tr.report()


MUTUAL_EVEN_ODD = """
Inductive even : nat -> Prop :=
| even_0 : even 0
| even_S : forall n, odd n -> even (S n)
with odd : nat -> Prop :=
| odd_S : forall n, even n -> odd (S n).
"""


class TestMutualGroups:
    """Tracing and observation across a mutual-recursion group (the
    group shares fuel and routes RECCHECK to sibling plans; spans and
    trace rows must attribute to the right member)."""

    def _mutual_ctx(self):
        from repro.core import parse_declarations
        from repro.derive.mutual import derive_mutual_checkers
        from repro.stdlib import standard_context

        ctx = standard_context()
        parse_declarations(ctx, MUTUAL_EVEN_ODD)
        return ctx, derive_mutual_checkers(ctx, ["even", "odd"])

    def test_trace_rows_per_member(self):
        ctx, checkers = self._mutual_ctx()
        with profile(ctx) as tr:
            assert checkers["even"](10, from_int(4)).is_true
        rels = {k[1] for k in tr.entries}
        assert rels == {"even", "odd"}
        # even 4 -> odd 3 -> even 2 -> odd 1 -> even 0: every recursive
        # step fired exactly one rule.
        assert all(e[0] == e[1] for e in tr.entries.values())

    def test_span_tree_alternates_members(self):
        from repro.observe import observe

        ctx, checkers = self._mutual_ctx()
        with observe(ctx) as obs:
            assert checkers["even"](10, from_int(4)).is_true
        chain = [(s.rel, s.size) for s in reversed(list(obs.spans))]
        assert chain == [
            ("even", 10), ("odd", 9), ("even", 8), ("odd", 7), ("even", 6),
        ]
        # One root; each level nests under the previous (shared fuel).
        roots = obs.spans.roots()
        assert len(roots) == 1
        depths = sorted(s.depth for s in obs.spans)
        assert depths == [0, 1, 2, 3, 4]

    def test_group_coverage_attributes_rules_to_members(self):
        from repro.observe import observe

        ctx, checkers = self._mutual_ctx()
        with observe(ctx) as obs:
            assert checkers["even"](12, from_int(6)).is_true
            assert checkers["odd"](12, from_int(3)).is_true
        cov = obs.coverage()
        assert cov.fired("even") == {"even_0", "even_S"}
        assert cov.fired("odd") == {"odd_S"}

    def test_mutual_spans_deterministic_across_runs(self):
        """Two separate sessions over the same group workload produce
        identical timing-stripped span trees (the single-backend
        analogue of test_backend_diff; mutual groups are interpreter-
        only, so interp-vs-interp determinism is the contract)."""
        from repro.observe import observe

        def run():
            ctx, checkers = self._mutual_ctx()
            with observe(ctx) as obs:
                checkers["even"](10, from_int(7))
                checkers["odd"](10, from_int(7))
            return obs.spans.identities(), obs.coverage().table

        ids_a, cov_a = run()
        ids_b, cov_b = run()
        assert ids_a and ids_a == ids_b
        assert cov_a == cov_b


class TestMixedBackendRuns:
    def test_interp_and_compiled_aggregate_one_trace(self, nat_ctx):
        """One profile session over both backends: rows merge into the
        same (kind, rel, mode, rule) keys, each counted twice."""
        interp = derive_checker(nat_ctx, "le")
        compiled = resolve_compiled(nat_ctx, CHECKER, "le", Mode.checker(2))
        args = (from_int(2), from_int(5))
        with profile(nat_ctx) as tr_single:
            interp(10, *args)
        with profile(nat_ctx) as tr_mixed:
            interp(10, *args)
            compiled(10, args)
        assert set(tr_mixed.entries) == set(tr_single.entries)
        for key, entry in tr_mixed.entries.items():
            assert entry == [c * 2 for c in tr_single.entries[key]]

    def test_mixed_run_span_subtrees_identical(self, list_ctx):
        from repro.observe import observe

        interp = derive_checker(list_ctx, "Sorted")
        compiled = resolve_compiled(
            list_ctx, CHECKER, "Sorted", Mode.checker(1)
        )
        arg = nat_list([1, 2, 3])
        with observe(list_ctx) as obs:
            interp(8, arg)
            compiled(8, (arg,))
        roots = obs.spans.roots()
        assert len(roots) == 2
        interp_tree, compiled_tree = (obs.spans.tree(r) for r in roots)
        assert interp_tree == compiled_tree
