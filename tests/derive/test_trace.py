"""Tests for derive-time profiling (repro.derive.trace)."""

from __future__ import annotations

import random

from repro.core.values import from_int, nat_list
from repro.derive import (
    Mode,
    derive_checker,
    derive_enumerator,
    derive_generator,
    enable_memoization,
    disable_memoization,
    profile,
    trace_of,
)
from repro.derive.instances import CHECKER, resolve_compiled
from repro.derive.stats import STATS_KEY, stats_of
from repro.derive.trace import TRACE_KEY, DeriveTrace


class TestProfileContext:
    def test_off_by_default_and_removed_after(self, nat_ctx):
        assert trace_of(nat_ctx) is None
        with profile(nat_ctx) as tr:
            assert trace_of(nat_ctx) is tr
        assert trace_of(nat_ctx) is None

    def test_nested_blocks_restore_outer(self, nat_ctx):
        with profile(nat_ctx) as outer:
            with profile(nat_ctx) as inner:
                assert trace_of(nat_ctx) is inner
            assert trace_of(nat_ctx) is outer

    def test_installs_and_removes_stats(self, nat_ctx):
        assert stats_of(nat_ctx) is None
        with profile(nat_ctx):
            assert stats_of(nat_ctx) is not None
        assert stats_of(nat_ctx) is None

    def test_leaves_existing_stats_in_place(self, nat_ctx):
        enable_memoization(nat_ctx)
        try:
            existing = stats_of(nat_ctx)
            assert existing is not None
            with profile(nat_ctx):
                assert stats_of(nat_ctx) is existing
            assert stats_of(nat_ctx) is existing
        finally:
            disable_memoization(nat_ctx)


class TestInterpreterTraces:
    def test_checker_records_per_rule(self, nat_ctx):
        le = derive_checker(nat_ctx, "le")
        with profile(nat_ctx) as tr:
            assert le(10, from_int(2), from_int(5)).is_true
        keys = set(tr.entries)
        assert any(k[0] == "checker" and k[1] == "le" for k in keys)
        assert tr.total_attempts > 0
        # Successful derivation: some handler succeeded somewhere.
        assert any(e[1] > 0 for e in tr.entries.values())

    def test_backtracks_counted(self, nat_ctx):
        le = derive_checker(nat_ctx, "le")
        with profile(nat_ctx) as tr:
            assert not le(10, from_int(5), from_int(2)).is_true
        assert any(e[2] > 0 for e in tr.entries.values())

    def test_enum_records(self, nat_ctx):
        enum = derive_enumerator(nat_ctx, "le", "io")
        with profile(nat_ctx) as tr:
            list(enum(4, from_int(2)))
        assert any(k[0] == "enum" for k in tr.entries)

    def test_gen_records(self, nat_ctx):
        gen = derive_generator(nat_ctx, "le", "io")
        with profile(nat_ctx) as tr:
            for seed in range(10):
                gen(5, from_int(3), rng=random.Random(seed))
        assert any(k[0] == "gen" for k in tr.entries)

    def test_profiling_does_not_change_answers(self, list_ctx):
        sorted_checker = derive_checker(list_ctx, "Sorted")
        args = [nat_list(xs) for xs in ([], [1, 2, 3], [3, 1])]
        plain = [sorted_checker(10, a) for a in args]
        with profile(list_ctx):
            traced = [sorted_checker(10, a) for a in args]
        assert plain == traced


class TestCompiledTraces:
    def test_compiled_checker_records_same_keys(self, nat_ctx):
        interp = derive_checker(nat_ctx, "le")
        compiled = resolve_compiled(nat_ctx, CHECKER, "le", Mode.checker(2))
        args = (from_int(2), from_int(5))
        with profile(nat_ctx) as tr_interp:
            interp(10, *args)
        with profile(nat_ctx) as tr_compiled:
            compiled(10, args)
        interp_keys = set(tr_interp.entries)
        compiled_keys = set(tr_compiled.entries)
        # Same (backend, rel, mode, rule) key space: traces from mixed
        # backends aggregate into the same rows.
        assert interp_keys == compiled_keys
        assert tr_interp.entries == tr_compiled.entries


class TestReporting:
    def test_report_table(self, nat_ctx):
        le = derive_checker(nat_ctx, "le")
        with profile(nat_ctx) as tr:
            le(10, from_int(2), from_int(5))
        text = tr.report()
        assert "DeriveTrace" in text
        assert "checker:le[ii]" in text

    def test_empty_report(self):
        assert "no handler activity" in DeriveTrace().report()

    def test_as_dict_and_reset(self, nat_ctx):
        le = derive_checker(nat_ctx, "le")
        with profile(nat_ctx) as tr:
            le(10, from_int(0), from_int(1))
        d = tr.as_dict()
        assert d and all(
            set(v) == {"attempts", "successes", "backtracks", "fuel_outs"}
            for v in d.values()
        )
        tr.reset()
        assert tr.total_attempts == 0

    def test_record_key_is_not_left_installed(self, nat_ctx):
        with profile(nat_ctx):
            pass
        assert TRACE_KEY not in nat_ctx.caches
        assert STATS_KEY not in nat_ctx.caches
