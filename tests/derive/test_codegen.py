"""Tests for the compiled backend: semantics must match the interpreter."""

import random

import pytest

from repro.core import parse_declarations
from repro.core.values import V, from_int, from_list, nat_list
from repro.derive import Mode
from repro.derive.instances import CHECKER, ENUM, GEN, resolve, resolve_compiled
from repro.producers.outcome import OUT_OF_FUEL, is_value


def checker_pair(ctx, rel):
    arity = ctx.relations.get(rel).arity
    interp = resolve(ctx, CHECKER, rel, Mode.checker(arity)).fn
    compiled = resolve_compiled(ctx, CHECKER, rel, Mode.checker(arity))
    return interp, compiled


class TestCompiledCheckers:
    def test_le_agreement(self, nat_ctx):
        interp, compiled = checker_pair(nat_ctx, "le")
        for a in range(7):
            for b in range(7):
                for fuel in (0, 1, 3, 10):
                    args = (from_int(a), from_int(b))
                    assert interp(fuel, args) is compiled(fuel, args)

    def test_square_of_agreement(self, nat_ctx):
        interp, compiled = checker_pair(nat_ctx, "square_of")
        for a in range(5):
            for b in range(20):
                args = (from_int(a), from_int(b))
                assert interp(8, args) is compiled(8, args)

    def test_sorted_agreement(self, list_ctx):
        interp, compiled = checker_pair(list_ctx, "Sorted")
        cases = [[], [1], [1, 2, 3], [3, 1], [0, 0], [2, 2, 1]]
        for xs in cases:
            for fuel in (0, 2, 12):
                args = (nat_list(xs),)
                assert interp(fuel, args) is compiled(fuel, args)

    def test_stlc_agreement_including_existentials(self, stlc_ctx):
        interp, compiled = checker_pair(stlc_ctx, "typing")
        N = V("N")
        empty = from_list([])
        terms = [
            (V("Con", from_int(1)), N),
            (V("App", V("Abs", N, V("Vart", from_int(0))), V("Con", from_int(2))), N),
            (V("App", V("Con", from_int(1)), V("Con", from_int(2))), N),
            (V("Abs", N, V("Vart", from_int(0))), V("Arr", N, N)),
        ]
        for e, t in terms:
            for fuel in (1, 4, 10):
                args = (empty, e, t)
                assert interp(fuel, args) is compiled(fuel, args)

    def test_zero_relation_fuel_semantics(self, zero_ctx):
        interp, compiled = checker_pair(zero_ctx, "zero")
        for fuel in (1, 4, 16):
            assert compiled(fuel, (from_int(5),)).is_none
            assert compiled(fuel, (from_int(0),)).is_true

    def test_compiled_source_attached(self, nat_ctx):
        _, compiled = checker_pair(nat_ctx, "le")
        assert "def rec(" in compiled.__derived_source__

    def test_faster_than_interpreter(self, list_ctx):
        import timeit

        interp, compiled = checker_pair(list_ctx, "Sorted")
        args = (nat_list(list(range(8))),)
        t_interp = timeit.timeit(lambda: interp(20, args), number=60)
        t_comp = timeit.timeit(lambda: compiled(20, args), number=60)
        assert t_comp < t_interp


class TestCompiledEnumerators:
    def _pair(self, ctx, rel, mode):
        interp = resolve(ctx, ENUM, rel, Mode.from_string(mode)).fn
        compiled = resolve_compiled(ctx, ENUM, rel, Mode.from_string(mode))
        return interp, compiled

    def _outcomes(self, fn, fuel, ins):
        values = set()
        fuel_marker = False
        for x in fn(fuel, ins):
            if x is OUT_OF_FUEL:
                fuel_marker = True
            else:
                values.add(x)
        return values, fuel_marker

    @pytest.mark.parametrize("mode", ["io", "oi", "oo"])
    def test_le_same_outcomes(self, nat_ctx, mode):
        interp, compiled = self._pair(nat_ctx, "le", mode)
        ins = (from_int(3),) if mode != "oo" else ()
        for fuel in (0, 2, 6):
            a = self._outcomes(interp, fuel, ins)
            b = self._outcomes(compiled, fuel, ins)
            assert a == b

    def test_typing_inference_same(self, stlc_ctx):
        interp, compiled = self._pair(stlc_ctx, "typing", "iio")
        empty = from_list([])
        e = V("Abs", V("N"), V("Vart", from_int(0)))
        assert self._outcomes(interp, 6, (empty, e)) == self._outcomes(
            compiled, 6, (empty, e)
        )

    def test_sorted_same(self, list_ctx):
        interp, compiled = self._pair(list_ctx, "Sorted", "o")
        for fuel in (0, 2, 4):
            assert self._outcomes(interp, fuel, ()) == self._outcomes(
                compiled, fuel, ()
            )


class TestCompiledGenerators:
    def test_outputs_satisfy_relation(self, stlc_ctx):
        compiled_gen = resolve_compiled(
            stlc_ctx, GEN, "typing", Mode.from_string("ioi")
        )
        checker = resolve_compiled(stlc_ctx, CHECKER, "typing", Mode.checker(3))
        empty = from_list([])
        N = V("N")
        rng = random.Random(9)
        produced = 0
        for _ in range(150):
            out = compiled_gen(6, (empty, N), rng)
            if is_value(out):
                produced += 1
                assert checker(30, (empty, out[0], N)).is_true
        assert produced > 100

    def test_sorted_outputs(self, list_ctx):
        from repro.core.values import to_int, to_list

        compiled_gen = resolve_compiled(list_ctx, GEN, "Sorted", Mode.from_string("o"))
        rng = random.Random(4)
        for _ in range(80):
            out = compiled_gen(6, (), rng)
            if is_value(out):
                xs = [to_int(x) for x in to_list(out[0])]
                assert xs == sorted(xs)

    def test_deterministic_under_seed(self, list_ctx):
        compiled_gen = resolve_compiled(list_ctx, GEN, "Sorted", Mode.from_string("o"))
        a = [compiled_gen(5, (), random.Random(7)) for _ in range(10)]
        b = [compiled_gen(5, (), random.Random(7)) for _ in range(10)]
        assert a == b


class TestEvalTwin:
    """The direct-eval twin attached to enum instances of functional
    (rel, mode) pairs — the no-producer-loop artifact fast twins call
    at OP_EVALREL sites."""

    def test_attached_iff_functional(self, stlc_ctx):
        from repro.analysis import relation_verdict

        for mode in ("iio", "ioi", "oii"):
            enum_st = resolve_compiled(
                stlc_ctx, ENUM, "typing", Mode.from_string(mode)
            )
            expect = relation_verdict(stlc_ctx, "typing", mode).at_most_one
            assert hasattr(enum_st, "__spec_eval__") == expect
            assert hasattr(enum_st, "__spec_eval_rec__") == expect

    def test_not_attached_with_pass_off(self, stlc_ctx):
        from repro.casestudies import stlc
        from repro.derive import disable_functionalization

        ctx = stlc.make_context()
        disable_functionalization(ctx)
        enum_st = resolve_compiled(
            ctx, ENUM, "typing", Mode.from_string("iio")
        )
        assert not hasattr(enum_st, "__spec_eval__")

    def test_agrees_with_enumeration(self, stlc_ctx):
        from repro.casestudies import stlc
        from repro.producers.outcome import FAIL

        enum_st = resolve_compiled(
            stlc_ctx, ENUM, "typing", Mode.from_string("iio")
        )
        ev = enum_st.__spec_eval__
        rng = random.Random(23)
        env = stlc.StlcWorkload(None).environment()
        cases = []
        while len(cases) < 40:
            ty = stlc._gen_type(2, rng)
            out = stlc.handwritten_typing_gen(6, (env, ty), rng)
            if is_value(out):
                cases.append((env, out[0]))
        # Ill-typed / unsynthesizable terms exercise the miss paths.
        cases += [(env, V("Unit"))] * 2
        for fuel in (2, 6, 24):
            for args in cases:
                items = list(enum_st(fuel, args))
                definite = [x for x in items if x is not OUT_OF_FUEL]
                r = ev(fuel, args)
                if definite:
                    # Functional: the unique answer, and the twin
                    # commits to exactly it.
                    assert r == definite[0]
                elif items:
                    # Incomplete empty stream: the twin may only be
                    # more definite, never invent an answer.
                    assert r is OUT_OF_FUEL or r is FAIL
                else:
                    assert r is FAIL
