"""Tests for modes, the schedule IR surface, and the public API."""

import pytest

from repro.core.errors import ArityError, DeclarationError, DerivationError
from repro.core.terms import C, Var
from repro.derive import (
    Mode,
    build_schedule,
    derive,
    derive_checker,
    derive_enumerator,
    derive_generator,
)
from repro.derive.modes import VarsMap, init_env


class TestMode:
    def test_from_string(self):
        m = Mode.from_string("ioi")
        assert m.arity == 3
        assert m.outs == frozenset({1})
        assert str(m) == "ioi"

    def test_checker_mode(self):
        m = Mode.checker(2)
        assert m.is_checker
        assert m.ins == (0, 1)
        assert m.out_list == ()

    def test_producer_requires_output(self):
        with pytest.raises(DeclarationError):
            Mode.producer(2, [])

    def test_bad_mode_char(self):
        with pytest.raises(DeclarationError):
            Mode.from_string("ix")

    def test_empty_mode_spec(self):
        with pytest.raises(DeclarationError, match="empty mode spec"):
            Mode.from_string("")

    def test_out_of_range_position(self):
        with pytest.raises(DeclarationError):
            Mode(2, frozenset({5}))

    def test_hashable_and_eq(self):
        assert Mode.from_string("io") == Mode(2, frozenset({1}))
        assert len({Mode.from_string("io"), Mode(2, frozenset({1}))}) == 1


class TestVarsMap:
    def test_init_env_partitions_by_position(self):
        conclusion = (C("S", Var("n")), Var("m"))
        vars_map = init_env(conclusion, Mode.from_string("io"))
        assert vars_map.is_known("n")
        assert not vars_map.is_known("m")

    def test_shared_var_in_input_position_wins(self):
        conclusion = (Var("x"), C("S", Var("x")))
        vars_map = init_env(conclusion, Mode.from_string("io"))
        assert vars_map.is_known("x")

    def test_unknown_in(self):
        vars_map = VarsMap()
        vars_map.mark_known("a")
        vars_map.add("b", known=False)
        term = C("pair", Var("a"), C("S", Var("b")))
        assert vars_map.unknown_in(term) == ["b"]
        assert not vars_map.term_known(term)


class TestScheduleSurface:
    def test_describe_mentions_all_handlers(self, stlc_ctx):
        text = build_schedule(stlc_ctx, "typing", Mode.checker(3)).describe()
        for rule in ("TCon", "TAdd", "TAbs", "TVar", "TApp"):
            assert rule in text

    def test_base_and_recursive_split(self, nat_ctx):
        s = build_schedule(nat_ctx, "le", Mode.checker(2))
        assert [h.rule for h in s.base_handlers] == ["le_n"]
        assert s.has_recursive_handlers


class TestPublicApi:
    def test_derive_vernacular(self, nat_ctx):
        checker = derive(nat_ctx, "DecOpt", "le")
        from repro.core.values import from_int

        assert checker(5, from_int(1), from_int(2)).is_true
        enum = derive(nat_ctx, "EnumSizedSuchThat", "le", "oi")
        assert enum.values(5, from_int(2))
        gen = derive(nat_ctx, "GenSizedSuchThat", "le", "oi")
        assert gen.samples(5, from_int(2), count=3, seed=0)

    def test_unknown_kind(self, nat_ctx):
        with pytest.raises(DerivationError):
            derive(nat_ctx, "Frobnicate", "le")

    def test_producer_kinds_need_mode(self, nat_ctx):
        with pytest.raises(DerivationError):
            derive(nat_ctx, "EnumSizedSuchThat", "le")

    def test_checker_mode_rejected_for_producers(self, nat_ctx):
        with pytest.raises(DerivationError):
            derive_enumerator(nat_ctx, "le", "ii")
        with pytest.raises(DerivationError):
            derive_generator(nat_ctx, "le", "ii")

    def test_wrong_arity_mode(self, nat_ctx):
        # The arity mismatch is caught at declaration time, naming the
        # relation (satellite: Mode.for_relation cross-check).
        with pytest.raises(ArityError, match="le"):
            derive_enumerator(nat_ctx, "le", "oio")

    def test_for_relation_accepts_mode_and_iterable(self, nat_ctx):
        rel = nat_ctx.relations.get("le")
        assert Mode.for_relation(rel, "oi") == Mode(2, frozenset({0}))
        assert Mode.for_relation(rel, [1]) == Mode(2, frozenset({1}))
        m = Mode(2, frozenset({1}))
        assert Mode.for_relation(rel, m) is m
        with pytest.raises(ArityError, match="le"):
            Mode.for_relation(rel, Mode(3, frozenset({0})))
        # Iterable specs can only go wrong via out-of-range positions.
        with pytest.raises(DeclarationError):
            Mode.for_relation(rel, [0, 1, 2])

    def test_idempotent_wrappers(self, nat_ctx):
        a = derive_checker(nat_ctx, "le")
        b = derive_checker(nat_ctx, "le")
        assert a is b  # same DerivedChecker behind the instance

    def test_mode_accepts_iterable(self, nat_ctx):
        enum = derive_enumerator(nat_ctx, "le", [0])
        from repro.core.values import from_int

        assert enum.values(5, from_int(1))
