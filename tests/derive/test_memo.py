"""Tests for the memoization layer and its instrumentation.

Covers the cache policy (definite answers served at or above their
computing fuel; ``None`` served at or below its recorded frontier),
the stats counters, invalidation on instance replacement, and the
regression for ``derive_checker`` discarding handwritten instances.
"""

from __future__ import annotations

import random

import pytest

from repro.core import parse_declarations
from repro.core.values import from_int, from_list, nat_list
from repro.derive import (
    CHECKER,
    ENUM,
    GEN,
    HandwrittenChecker,
    HandwrittenEnumerator,
    HandwrittenGenerator,
    Mode,
    clear_memo,
    derive_checker,
    derive_enumerator,
    derive_generator,
    derive_stats,
    disable_memoization,
    enable_memoization,
    memoization_enabled,
    register_checker,
    register_producer,
)
from repro.derive.instances import lookup, resolve, resolve_compiled_checker
from repro.derive.memo import CHECKER_MEMO, ENUM_MEMO
from repro.producers.option_bool import NONE_OB, SOME_FALSE, SOME_TRUE
from repro.producers.outcome import FAIL
from repro.stdlib import standard_context

from ..conftest import LIST_RELATIONS, NAT_RELATIONS, STLC_DECLS


def _list_ctx():
    c = standard_context()
    parse_declarations(c, NAT_RELATIONS)
    parse_declarations(c, LIST_RELATIONS)
    return c


def _random_nat_lists(seed: int, count: int) -> list:
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        n = rng.randrange(0, 6)
        out.append(nat_list([rng.randrange(0, 6) for _ in range(n)]))
    return out


class TestEnableDisable:
    def test_flag_and_stats_lifecycle(self, list_ctx):
        assert not memoization_enabled(list_ctx)
        assert derive_stats(list_ctx) is None
        stats = enable_memoization(list_ctx)
        assert memoization_enabled(list_ctx)
        assert derive_stats(list_ctx) is stats
        disable_memoization(list_ctx)
        assert not memoization_enabled(list_ctx)
        assert derive_stats(list_ctx) is None

    def test_disable_unwraps_instances(self, list_ctx):
        register_checker(list_ctx, "le", lambda fuel, args: SOME_TRUE)
        enable_memoization(list_ctx)
        wrapped = lookup(list_ctx, CHECKER, "le", Mode.checker(2)).fn
        assert getattr(wrapped, "__memo_wrapped__", False)
        disable_memoization(list_ctx)
        raw = lookup(list_ctx, CHECKER, "le", Mode.checker(2)).fn
        assert not getattr(raw, "__memo_wrapped__", False)

    def test_as_dict_and_report(self, list_ctx):
        stats = enable_memoization(list_ctx)
        chk = derive_checker(list_ctx, "Sorted")
        chk(10, nat_list([1, 2]))
        d = stats.as_dict()
        assert d["checker_calls"] >= 1
        assert "cache_hits" in d and "cache_misses" in d
        assert "DeriveStats" in stats.report()
        assert "memo" in stats.report()


class TestCachePolicy:
    def test_repeat_query_hits(self, list_ctx):
        stats = enable_memoization(list_ctx)
        chk = derive_checker(list_ctx, "Sorted")
        v = nat_list([1, 2, 3])
        first = chk(12, v)
        misses = stats.checker_cache_misses
        second = chk(12, v)
        assert first is second
        assert stats.checker_cache_hits >= 1
        assert stats.checker_cache_misses == misses  # no recompute

    def test_definite_served_only_at_or_above_fuel(self, nat_ctx):
        """A definite answer cached at fuel f must not answer a query
        at fuel < f — smaller fuel might legitimately return None, and
        the cache must stay extensionally invisible."""
        stats = enable_memoization(nat_ctx)
        chk = derive_checker(nat_ctx, "le")
        a, b = from_int(3), from_int(5)
        assert chk(10, a, b).is_true  # cached definite at fuel 10
        misses = stats.checker_cache_misses
        low = chk(1, a, b)  # below the computing fuel: recomputed
        assert stats.checker_cache_misses == misses + 1
        # And the recomputed low-fuel answer matches a fresh context.
        fresh = standard_context()
        parse_declarations(fresh, NAT_RELATIONS)
        assert derive_checker(fresh, "le")(1, a, b) is low

    def test_none_frontier_short_circuits_below(self, nat_ctx):
        stats = enable_memoization(nat_ctx)
        chk = derive_checker(nat_ctx, "le")
        a, b = from_int(40), from_int(50)
        assert chk(4, a, b).is_none  # records None frontier at 4
        misses = stats.checker_cache_misses
        assert chk(2, a, b).is_none  # below frontier: pure lookup
        assert chk(4, a, b).is_none
        assert stats.checker_cache_misses == misses
        assert stats.checker_cache_hits >= 2

    def test_decide_collapses_to_lookup(self, list_ctx):
        stats = enable_memoization(list_ctx)
        chk = derive_checker(list_ctx, "Sorted")
        v = nat_list([3, 1])
        first = chk.decide((v,))
        assert first.is_false
        misses = stats.checker_cache_misses
        again = chk.decide((v,))
        assert again is first
        assert stats.checker_cache_misses == misses  # pure lookup

    def test_enum_slice_memoized(self, stlc_ctx):
        stats = enable_memoization(stlc_ctx)
        chk = derive_checker(stlc_ctx, "typing")
        # App forces the existential-type enumerator; repeating the
        # same ground query must reuse the enumerator slice.
        term = parse_term_app()
        env = from_list([])
        ty = _ty_n()
        chk(8, env, term, ty)
        chk(8, env, term, ty)
        assert stats.enum_calls >= 1
        assert stats.enum_cache_hits + stats.checker_cache_hits >= 1

    def test_clear_memo_drops_entries(self, list_ctx):
        enable_memoization(list_ctx)
        chk = derive_checker(list_ctx, "Sorted")
        chk(10, nat_list([1, 2]))
        assert list_ctx.caches[CHECKER_MEMO]
        clear_memo(list_ctx)
        assert not list_ctx.caches[CHECKER_MEMO]
        assert not list_ctx.caches[ENUM_MEMO]


def parse_term_app():
    """(App (Abs N (Vart 0)) (Con 1)) — has type N under []."""
    from repro.core.values import V

    return V(
        "App",
        V("Abs", V("N"), V("Vart", V("O"))),
        V("Con", V("S", V("O"))),
    )


def _ty_n():
    from repro.core.values import V

    return V("N")


class TestEquivalence:
    """Memoized and unmemoized checkers agree on every query."""

    @pytest.mark.parametrize("backend", ["interp", "compiled"])
    def test_sorted_memo_equivalence(self, backend):
        plain, memo = _list_ctx(), _list_ctx()
        enable_memoization(memo)
        mode = Mode.checker(1)
        plain_fn = resolve(plain, CHECKER, "Sorted", mode, backend=backend).fn
        memo_fn = resolve(memo, CHECKER, "Sorted", mode, backend=backend).fn
        for v in _random_nat_lists(seed=7, count=40):
            for fuel in (1, 2, 4, 8, 16):
                assert plain_fn(fuel, (v,)) is memo_fn(fuel, (v,)), (
                    f"divergence at fuel={fuel} on {v}"
                )

    @pytest.mark.parametrize("backend", ["interp", "compiled"])
    def test_le_memo_equivalence(self, backend):
        plain, memo = _list_ctx(), _list_ctx()
        enable_memoization(memo)
        mode = Mode.checker(2)
        plain_fn = resolve(plain, CHECKER, "le", mode, backend=backend).fn
        memo_fn = resolve(memo, CHECKER, "le", mode, backend=backend).fn
        rng = random.Random(13)
        for _ in range(60):
            a, b = from_int(rng.randrange(0, 12)), from_int(rng.randrange(0, 12))
            for fuel in (1, 3, 6, 12, 24):
                assert plain_fn(fuel, (a, b)) is memo_fn(fuel, (a, b))


class TestHandwrittenDelegation:
    """Regression: derive_* must delegate to registered handwritten
    instances instead of silently re-deriving."""

    def test_derive_checker_invokes_handwritten(self, nat_ctx):
        calls = []

        def sentinel(fuel, args):
            calls.append(args)
            return SOME_TRUE

        register_checker(nat_ctx, "le", sentinel)
        chk = derive_checker(nat_ctx, "le")
        assert isinstance(chk, HandwrittenChecker)
        # `le 9 1` is false; only the sentinel answers Some true, so a
        # true verdict proves the handwritten fn actually ran.
        assert chk(5, from_int(9), from_int(1)).is_true
        assert calls == [(from_int(9), from_int(1))]
        assert chk.decide((from_int(9), from_int(1))).is_true
        assert len(calls) == 2

    def test_handwritten_checker_decide_doubles_fuel(self, nat_ctx):
        fuels = []

        def needs_fuel(fuel, args):
            fuels.append(fuel)
            return SOME_TRUE if fuel >= 8 else NONE_OB

        register_checker(nat_ctx, "le", needs_fuel)
        chk = derive_checker(nat_ctx, "le")
        assert chk.decide((from_int(0), from_int(0))).is_true
        assert fuels == [2, 4, 8]

    def test_derive_enumerator_invokes_handwritten(self, nat_ctx):
        def sentinel_enum(fuel, ins):
            yield (from_int(41),)
            yield (from_int(42),)

        register_producer(
            nat_ctx, ENUM, "le", Mode.from_string("io"), sentinel_enum
        )
        enum = derive_enumerator(nat_ctx, "le", "io")
        assert isinstance(enum, HandwrittenEnumerator)
        assert enum.values(5, from_int(0)) == [
            (from_int(41),),
            (from_int(42),),
        ]
        assert enum.exhaustive_at(5, from_int(0))

    def test_derive_generator_invokes_handwritten(self, nat_ctx):
        def sentinel_gen(fuel, ins, rng):
            return (from_int(99),)

        register_producer(
            nat_ctx, GEN, "le", Mode.from_string("io"), sentinel_gen
        )
        gen = derive_generator(nat_ctx, "le", "io")
        assert isinstance(gen, HandwrittenGenerator)
        assert gen(5, from_int(0)) == (from_int(99),)
        assert gen.samples(5, from_int(0), count=3) == [(from_int(99),)] * 3

    def test_handwritten_wrapper_sees_replacement(self, nat_ctx):
        register_checker(nat_ctx, "le", lambda fuel, args: SOME_TRUE)
        chk = derive_checker(nat_ctx, "le")
        assert chk(5, from_int(0), from_int(0)).is_true
        register_checker(
            nat_ctx, "le", lambda fuel, args: SOME_FALSE, replace=True
        )
        # The wrapper delegates to the live instance, not a snapshot.
        assert chk(5, from_int(0), from_int(0)).is_false


class TestReplaceInvalidation:
    def test_replace_purges_compiled_backend_key(self, nat_ctx):
        mode = Mode.checker(2)
        # Compile first: both interp and compiled keys get registered.
        compiled = resolve_compiled_checker(nat_ctx, "le")
        assert compiled(6, (from_int(1), from_int(2))).is_true
        compiled_key = (CHECKER, "le", str(mode), "compiled")
        assert compiled_key in nat_ctx.instances
        register_checker(
            nat_ctx, "le", lambda fuel, args: SOME_FALSE, replace=True
        )
        # Every backend key for (checker, le, ii) is gone...
        assert compiled_key not in nat_ctx.instances
        # ...and re-resolution prefers the new handwritten instance.
        fresh = resolve_compiled_checker(nat_ctx, "le")
        assert fresh(6, (from_int(1), from_int(2))).is_false

    def test_replace_invalidates_memo_tables(self, nat_ctx):
        stats = enable_memoization(nat_ctx)
        chk = derive_checker(nat_ctx, "le")
        a, b = from_int(1), from_int(2)
        assert chk(8, a, b).is_true
        assert nat_ctx.caches[CHECKER_MEMO]
        register_checker(
            nat_ctx, "le", lambda fuel, args: SOME_FALSE, replace=True
        )
        assert not nat_ctx.caches[CHECKER_MEMO]
        assert stats.invalidations == 1
        # The replacement is live (and memoized) through derive_checker.
        assert derive_checker(nat_ctx, "le")(8, a, b).is_false

    def test_replace_nonexistent_still_registers(self, nat_ctx):
        inst = register_checker(
            nat_ctx, "le", lambda fuel, args: SOME_TRUE, replace=True
        )
        assert lookup(nat_ctx, CHECKER, "le", Mode.checker(2)) is inst


class TestStatsCounters:
    def test_handler_and_backtrack_counting(self, list_ctx):
        stats = enable_memoization(list_ctx)
        chk = derive_checker(list_ctx, "Sorted")
        chk(10, nat_list([2, 1]))  # unsorted: handlers fail
        assert stats.handler_attempts > 0
        assert stats.backtracks > 0

    def test_fuel_exhaustion_counting(self, nat_ctx):
        stats = enable_memoization(nat_ctx)
        chk = derive_checker(nat_ctx, "le")
        assert chk(2, from_int(30), from_int(40)).is_none
        assert stats.fuel_exhaustions >= 1

    def test_resolution_counting(self, stlc_ctx):
        stats = enable_memoization(stlc_ctx)
        derive_checker(stlc_ctx, "typing")
        assert stats.external_resolutions > 0

    def test_gen_calls_counted(self, stlc_ctx):
        from repro.core.values import V

        stats = enable_memoization(stlc_ctx)
        derive_generator(stlc_ctx, "typing", "iio")
        rng = random.Random(3)
        # The registered instance fn is wrapped with call counting.
        resolved = resolve(stlc_ctx, GEN, "typing", Mode.from_string("iio"))
        out = resolved.fn(6, (from_list([]), V("Con", V("O"))), rng)
        assert out is not None
        assert stats.gen_calls >= 1
