"""Tests for the derivation scheduler (Section 4) and its schedules."""

import pytest

from repro.core import parse_declarations
from repro.core.errors import DerivationError, OutOfScopeError
from repro.derive import DerivePolicy, Mode, build_schedule
from repro.derive.schedule import (
    SAssign,
    SCheckCall,
    SEqCheck,
    SInstantiate,
    SMatch,
    SProduce,
    SRecCheck,
)
from repro.stdlib import standard_context


def steps_of(schedule, rule):
    (handler,) = [h for h in schedule.handlers if h.rule == rule]
    return handler.steps


class TestCheckerSchedules:
    def test_le_structure(self, nat_ctx):
        s = build_schedule(nat_ctx, "le", Mode.checker(2))
        assert [h.rule for h in s.handlers] == ["le_n", "le_S"]
        assert not s.handlers[0].recursive
        assert s.handlers[1].recursive
        (rec,) = steps_of(s, "le_S")
        assert isinstance(rec, SRecCheck)

    def test_nonlinear_becomes_eq_check(self, nat_ctx):
        s = build_schedule(nat_ctx, "le", Mode.checker(2))
        (eq,) = steps_of(s, "le_n")
        assert isinstance(eq, SEqCheck)

    def test_external_premise_becomes_check_call(self, list_ctx):
        s = build_schedule(list_ctx, "Sorted", Mode.checker(1))
        steps = steps_of(s, "Sorted_cons")
        assert isinstance(steps[0], SCheckCall) and steps[0].rel == "le"
        assert isinstance(steps[1], SRecCheck)

    def test_existential_uses_enumeration(self, stlc_ctx):
        """TApp's t1 is existential: the checker enumerates it through
        a producer call (the paper's bindEC handler)."""
        s = build_schedule(stlc_ctx, "typing", Mode.checker(3))
        steps = steps_of(s, "TApp")
        assert isinstance(steps[0], SProduce)
        assert steps[0].rel == "typing"
        assert str(steps[0].mode) == "iio"
        assert not steps[0].recursive
        assert isinstance(steps[1], SRecCheck)

    def test_schedules_cached(self, nat_ctx):
        a = build_schedule(nat_ctx, "le", Mode.checker(2))
        b = build_schedule(nat_ctx, "le", Mode.checker(2))
        assert a is b


class TestProducerSchedules:
    def test_typing_iio_matches_figure_2(self, stlc_ctx):
        s = build_schedule(stlc_ctx, "typing", Mode.from_string("iio"))
        # TAdd: two recursive produce-and-filter calls.
        tadd = steps_of(s, "TAdd")
        produces = [st for st in tadd if isinstance(st, SProduce)]
        assert len(produces) == 2
        assert all(p.recursive for p in produces)
        matches = [st for st in tadd if isinstance(st, SMatch)]
        assert len(matches) == 2  # each result filtered against N
        # TApp: recursive produce + match against Arr.
        tapp = steps_of(s, "TApp")
        assert any(
            isinstance(st, SMatch) and st.pattern.name == "Arr"
            for st in tapp
            if isinstance(st, SMatch)
        )
        # TVar: external lookup producer.
        tvar = steps_of(s, "TVar")
        assert any(
            isinstance(st, SProduce) and st.rel == "lookup" and not st.recursive
            for st in tvar
        )

    def test_typing_ioi_generates_terms(self, stlc_ctx):
        s = build_schedule(stlc_ctx, "typing", Mode.from_string("ioi"))
        tapp = steps_of(s, "TApp")
        # Classic QuickChick shape: instantiate t1, recurse twice.
        assert isinstance(tapp[0], SInstantiate)
        assert sum(isinstance(st, SProduce) and st.recursive for st in tapp) == 2

    def test_out_terms_at_output_positions(self, stlc_ctx):
        s = build_schedule(stlc_ctx, "typing", Mode.from_string("iio"))
        (tcon,) = [h for h in s.handlers if h.rule == "TCon"]
        assert len(tcon.out_terms) == 1
        assert str(tcon.out_terms[0]) == "N"

    def test_unconstrained_output_instantiated(self, stlc_ctx):
        s = build_schedule(stlc_ctx, "typing", Mode.from_string("ioi"))
        tcon = steps_of(s, "TCon")
        assert any(isinstance(st, SInstantiate) for st in tcon)

    def test_assignment_for_deterministic_eq(self, nat_ctx):
        s = build_schedule(nat_ctx, "square_of", Mode.from_string("io"))
        (sq,) = s.handlers
        assert any(isinstance(st, SAssign) for st in sq.steps)

    def test_inversion_requires_instantiation(self, nat_ctx):
        s = build_schedule(nat_ctx, "square_of", Mode.from_string("oi"))
        (sq,) = s.handlers
        assert any(isinstance(st, SInstantiate) for st in sq.steps)


class TestPolicies:
    def test_generate_and_test_policy(self, stlc_ctx):
        naive = DerivePolicy(prefer_producer=False)
        s = build_schedule(stlc_ctx, "typing", Mode.checker(3), naive)
        tapp = steps_of(s, "TApp")
        # t1 instantiated arbitrarily, both premises checked.
        assert isinstance(tapp[0], SInstantiate)
        assert sum(isinstance(st, SRecCheck) for st in tapp) == 2


class TestScopeChecks:
    def test_polymorphic_rejected(self, ctx):
        parse_declarations(
            ctx,
            """
            Inductive inl (A : Type) : A -> list A -> Prop :=
            | here : forall x l, inl x (x :: l).
            """,
        )
        with pytest.raises(OutOfScopeError):
            build_schedule(ctx, "inl", Mode.checker(2))

    def test_instantiated_polymorphic_accepted(self, ctx):
        from repro.core.types import NAT

        parse_declarations(
            ctx,
            """
            Inductive inl (A : Type) : A -> list A -> Prop :=
            | here : forall x l, inl x (x :: l)
            | there : forall x y l, inl x l -> inl x (y :: l).
            """,
        )
        mono = ctx.relations.get("inl").instantiate(NAT)
        ctx.relations.declare(mono)
        s = build_schedule(ctx, mono.name, Mode.checker(2))
        assert len(s.handlers) == 2

    def test_wrong_mode_arity(self, nat_ctx):
        with pytest.raises(DerivationError):
            build_schedule(nat_ctx, "le", Mode.checker(3))


@pytest.fixture
def ctx():
    return standard_context()
