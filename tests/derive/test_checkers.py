"""Behavioral tests for derived checkers, against the reference search."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import parse_declarations
from repro.core.values import V, from_int, from_list, nat_list
from repro.derive import derive_checker
from repro.semantics import derivable


class TestLe:
    def test_agrees_with_reference_exhaustively(self, nat_ctx):
        chk = derive_checker(nat_ctx, "le")
        for a in range(6):
            for b in range(6):
                expected = a <= b
                result = chk(12, from_int(a), from_int(b))
                assert result.is_true == expected
                assert result.is_false == (not expected)

    def test_fuel_exhaustion_returns_none(self, nat_ctx):
        chk = derive_checker(nat_ctx, "le")
        assert chk(2, from_int(0), from_int(9)).is_none

    def test_decide_doubles_fuel(self, nat_ctx):
        chk = derive_checker(nat_ctx, "le")
        assert chk.decide((from_int(0), from_int(30)), max_fuel=64).is_true

    @settings(max_examples=60, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(st.integers(0, 25), st.integers(0, 25))
    def test_property_against_python(self, nat_ctx, a, b):
        chk = derive_checker(nat_ctx, "le")
        assert chk(40, from_int(a), from_int(b)).is_true == (a <= b)


class TestEv:
    @given(st.integers(0, 30))
    @settings(max_examples=40, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_parity(self, nat_ctx, n):
        chk = derive_checker(nat_ctx, "ev")
        assert chk(40, from_int(n)).is_true == (n % 2 == 0)


class TestSquareOf:
    def test_squares(self, nat_ctx):
        chk = derive_checker(nat_ctx, "square_of")
        for n in range(6):
            assert chk(4, from_int(n), from_int(n * n)).is_true
            assert chk(4, from_int(n), from_int(n * n + 1)).is_false


class TestSorted:
    @given(st.lists(st.integers(0, 8), max_size=6))
    @settings(max_examples=60, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_against_python_sorted(self, list_ctx, xs):
        chk = derive_checker(list_ctx, "Sorted")
        expected = xs == sorted(xs)
        result = chk(40, nat_list(xs))
        assert result.is_true == expected


class TestSTLC:
    """The running example, including the existential TApp case."""

    @pytest.fixture(autouse=True)
    def _setup(self, stlc_ctx):
        self.ctx = stlc_ctx
        self.chk = derive_checker(stlc_ctx, "typing")
        self.N = V("N")
        self.empty = from_list([])

    def arr(self, a, b):
        return V("Arr", a, b)

    def test_constants(self):
        assert self.chk(5, self.empty, V("Con", from_int(3)), self.N).is_true

    def test_application_with_existential(self):
        # (\x:N. x + 1) 2 : N — requires enumerating t1 = N.
        tm = V(
            "App",
            V("Abs", self.N, V("Add", V("Vart", from_int(0)), V("Con", from_int(1)))),
            V("Con", from_int(2)),
        )
        assert self.chk(10, self.empty, tm, self.N).is_true

    def test_ill_typed_application(self):
        tm = V("App", V("Con", from_int(1)), V("Con", from_int(2)))
        assert self.chk(10, self.empty, tm, self.N).is_false

    def test_unbound_variable(self):
        assert self.chk(10, self.empty, V("Vart", from_int(0)), self.N).is_false

    def test_variable_in_context(self):
        env = from_list([self.N])
        assert self.chk(10, env, V("Vart", from_int(0)), self.N).is_true
        assert self.chk(10, env, V("Vart", from_int(0)), self.arr(self.N, self.N)).is_false

    def test_nonlinear_abs_type_mismatch(self):
        # Abs annotated N but used at Arr N N -> N type: TAbs nonlinear
        # equality must reject mismatched annotations.
        tm = V("Abs", self.N, V("Con", from_int(0)))
        bad = self.arr(self.arr(self.N, self.N), self.N)
        assert self.chk(10, self.empty, tm, bad).is_false

    def test_agreement_with_reference(self):
        tm = V("Abs", self.N, V("Vart", from_int(0)))
        ty = self.arr(self.N, self.N)
        assert self.chk(10, self.empty, tm, ty).is_true
        assert derivable(self.ctx, "typing", (self.empty, tm, ty), 10)


class TestZeroRelation:
    """Section 5.1: the checker must answer None forever on nonzero
    inputs — completeness for negation fails by design."""

    def test_zero_accepted(self, zero_ctx):
        chk = derive_checker(zero_ctx, "zero")
        assert chk(3, from_int(0)).is_true

    def test_nonzero_never_decided(self, zero_ctx):
        chk = derive_checker(zero_ctx, "zero")
        for fuel in (1, 2, 8, 32):
            assert chk(fuel, from_int(3)).is_none


class TestNegatedPremises:
    def test_negation_soundness(self, ctx):
        parse_declarations(
            ctx,
            """
            Inductive isz : nat -> Prop := | isz0 : isz 0.
            Inductive notz : nat -> Prop :=
            | nz : forall n, ~ isz n -> notz n.
            """,
        )
        chk = derive_checker(ctx, "notz")
        assert chk(5, from_int(0)).is_false
        assert chk(5, from_int(4)).is_true


@pytest.fixture
def ctx():
    from repro.stdlib import standard_context

    return standard_context()
