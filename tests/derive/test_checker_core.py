"""Tests for Algorithm 1 (the restricted baseline)."""

import pytest

from repro.core import parse_declarations
from repro.core.errors import OutOfScopeError
from repro.core.values import from_int, nat_list
from repro.derive.checker_core import (
    algorithm1_supported,
    algorithm1_unsupported_reasons,
    derive_checker_core,
)
from repro.derive.interp_checker import DerivedChecker
from repro.stdlib import standard_context


@pytest.fixture
def ctx():
    return standard_context()


class TestScope:
    def test_ev_supported(self, nat_ctx):
        assert algorithm1_supported(nat_ctx.relations.get("ev"))

    def test_nonlinear_unsupported(self, nat_ctx):
        reasons = algorithm1_unsupported_reasons(nat_ctx.relations.get("le"))
        assert any("non-linear" in r for r in reasons)

    def test_function_call_unsupported(self, nat_ctx):
        reasons = algorithm1_unsupported_reasons(
            nat_ctx.relations.get("square_of")
        )
        assert any("function call" in r for r in reasons)

    def test_existentials_unsupported(self, stlc_ctx):
        reasons = algorithm1_unsupported_reasons(
            stlc_ctx.relations.get("typing")
        )
        assert any("existential" in r for r in reasons)

    def test_sorted_supported(self, list_ctx):
        # Sorted's premises are external relation calls: in scope.
        assert algorithm1_supported(list_ctx.relations.get("Sorted"))

    def test_negation_unsupported(self, ctx):
        parse_declarations(
            ctx,
            """
            Inductive isz : nat -> Prop := | isz0 : isz 0.
            Inductive notz : nat -> Prop :=
            | nz : forall n, ~ isz n -> notz n.
            """,
        )
        assert not algorithm1_supported(ctx.relations.get("notz"))


class TestDerivedCore:
    def test_out_of_scope_raises(self, nat_ctx):
        with pytest.raises(OutOfScopeError):
            derive_checker_core(nat_ctx, "le")

    def test_core_checker_runs(self, nat_ctx):
        schedule = derive_checker_core(nat_ctx, "ev")
        assert schedule.algorithm == "core"
        chk = DerivedChecker(nat_ctx, schedule)
        assert chk(10, from_int(4)).is_true
        assert chk(10, from_int(5)).is_false
        assert chk(1, from_int(8)).is_none

    def test_core_agrees_with_full_algorithm(self, list_ctx):
        from repro.derive import Mode, build_schedule

        core = DerivedChecker(list_ctx, derive_checker_core(list_ctx, "Sorted"))
        full = DerivedChecker(
            list_ctx, build_schedule(list_ctx, "Sorted", Mode.checker(1))
        )
        cases = [[], [1], [1, 2], [2, 1], [0, 0, 5], [5, 0]]
        for xs in cases:
            assert core(12, nat_list(xs)).tag == full(12, nat_list(xs)).tag
