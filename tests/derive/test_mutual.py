"""Tests for the mutual-recursion extension (§8)."""

import pytest

from repro.core import parse_declarations
from repro.core.errors import DerivationError
from repro.core.values import from_int
from repro.derive.instances import resolve_checker
from repro.derive.mutual import derive_mutual_checkers, mutual_components
from repro.stdlib import standard_context

EVEN_ODD = """
Inductive even : nat -> Prop :=
| even_0 : even 0
| even_S : forall n, odd n -> even (S n)
with odd : nat -> Prop :=
| odd_S : forall n, even n -> odd (S n).
"""


@pytest.fixture
def ctx():
    c = standard_context()
    parse_declarations(c, EVEN_ODD)
    return c


class TestComponents:
    def test_even_odd_one_component(self, ctx):
        assert mutual_components(ctx, ["even", "odd"]) == [["even", "odd"]]

    def test_independent_relations_split(self, ctx):
        parse_declarations(
            ctx, "Inductive trivial : nat -> Prop := | t0 : trivial 0."
        )
        components = mutual_components(ctx, ["even", "odd", "trivial"])
        assert ["even", "odd"] in components
        assert ["trivial"] in components


class TestMutualCheckers:
    def test_rejected_without_extension(self, ctx):
        with pytest.raises(DerivationError, match="cyclic"):
            resolve_checker(ctx, "even")

    def test_group_derivation_succeeds(self, ctx):
        checkers = derive_mutual_checkers(ctx, ["even", "odd"])
        even, odd = checkers["even"], checkers["odd"]
        for n in range(12):
            assert even(30, from_int(n)).is_true == (n % 2 == 0)
            assert odd(30, from_int(n)).is_true == (n % 2 == 1)

    def test_shared_fuel_semantics(self, ctx):
        checkers = derive_mutual_checkers(ctx, ["even", "odd"])
        # Deciding even 9 needs ~9 shared size steps.
        assert checkers["even"](4, from_int(9)).is_none
        assert checkers["even"](12, from_int(9)).is_false

    def test_registered_for_downstream_use(self, ctx):
        derive_mutual_checkers(ctx, ["even", "odd"])
        # Now a relation with an `even` premise derives normally.
        parse_declarations(
            ctx,
            """
            Inductive even_pair : nat -> nat -> Prop :=
            | ep : forall n m, even n -> even m -> even_pair n m.
            """,
        )
        chk = resolve_checker(ctx, "even_pair")
        assert chk.fn(20, (from_int(2), from_int(4))).is_true
        assert chk.fn(20, (from_int(2), from_int(3))).is_false

    def test_monotone(self, ctx):
        checkers = derive_mutual_checkers(ctx, ["even", "odd"])
        even = checkers["even"]
        decided = None
        for fuel in (1, 2, 4, 8, 16, 32):
            r = even(fuel, from_int(10))
            if decided is None and not r.is_none:
                decided = r
            elif decided is not None and not r.is_none:
                assert r is decided

    def test_empty_group_rejected(self, ctx):
        with pytest.raises(DerivationError):
            derive_mutual_checkers(ctx, [])
