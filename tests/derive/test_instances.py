"""Tests for the typeclass-style instance registry."""

import pytest

from repro.core import parse_declarations
from repro.core.errors import DerivationError, InstanceNotFoundError
from repro.core.values import from_int
from repro.derive import Mode, derive_checker
from repro.derive.instances import (
    CHECKER,
    ENUM,
    GEN,
    lookup,
    register_checker,
    resolve,
    resolve_checker,
)
from repro.producers.option_bool import SOME_FALSE, SOME_TRUE
from repro.stdlib import standard_context


@pytest.fixture
def ctx():
    return standard_context()


class TestRegistration:
    def test_auto_derivation_registers(self, nat_ctx):
        assert lookup(nat_ctx, CHECKER, "le", Mode.checker(2)) is None
        resolve_checker(nat_ctx, "le")
        assert lookup(nat_ctx, CHECKER, "le", Mode.checker(2)) is not None

    def test_resolution_idempotent(self, nat_ctx):
        a = resolve_checker(nat_ctx, "le")
        b = resolve_checker(nat_ctx, "le")
        assert a is b

    def test_no_auto_derive_raises(self, nat_ctx):
        with pytest.raises(InstanceNotFoundError):
            resolve(nat_ctx, ENUM, "le", Mode.from_string("io"), auto_derive=False)

    def test_duplicate_registration_rejected(self, nat_ctx):
        register_checker(nat_ctx, "le", lambda fuel, args: SOME_TRUE)
        with pytest.raises(DerivationError):
            register_checker(nat_ctx, "le", lambda fuel, args: SOME_FALSE)

    def test_replace_allowed_explicitly(self, nat_ctx):
        register_checker(nat_ctx, "le", lambda fuel, args: SOME_TRUE)
        register_checker(
            nat_ctx, "le", lambda fuel, args: SOME_FALSE, replace=True
        )
        inst = lookup(nat_ctx, CHECKER, "le", Mode.checker(2))
        assert inst.fn(0, ()) is SOME_FALSE


class TestHandwrittenInstances:
    def test_handwritten_checker_used_by_derived_code(self, list_ctx):
        """Register a handwritten `le` checker; Sorted's derived
        checker must route its premise checks through it."""
        calls = []

        def manual_le(fuel, args):
            calls.append(args)
            a, b = args
            x, y = 0, 0
            while a.ctor == "S":
                x += 1
                a = a.args[0]
            while b.ctor == "S":
                y += 1
                b = b.args[0]
            return SOME_TRUE if x <= y else SOME_FALSE

        register_checker(list_ctx, "le", manual_le)
        chk = derive_checker(list_ctx, "Sorted")
        from repro.core.values import nat_list

        assert chk(10, nat_list([1, 2, 3])).is_true
        assert calls  # the handwritten instance was exercised


class TestDependencyClosure:
    def test_checker_closure_pulls_enumerators(self, stlc_ctx):
        resolve_checker(stlc_ctx, "typing")
        # The TApp existential requires the iio enumerator, which in
        # turn requires lookup instances — all resolved eagerly.
        assert lookup(stlc_ctx, ENUM, "typing", Mode.from_string("iio"))
        assert lookup(stlc_ctx, CHECKER, "lookup", Mode.checker(3))

    def test_cyclic_instances_rejected(self, ctx):
        """Mutually recursive relations create cyclic checker needs."""
        parse_declarations(
            ctx,
            """
            Inductive even : nat -> Prop :=
            | even_0 : even 0
            | even_S : forall n, odd n -> even (S n)
            with odd : nat -> Prop :=
            | odd_S : forall n, even n -> odd (S n).
            """,
        )
        with pytest.raises(DerivationError, match="cyclic"):
            resolve_checker(ctx, "even")
