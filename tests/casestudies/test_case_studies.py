"""Integration tests for the three evaluation case studies."""

import random

import pytest

from repro.casestudies import bst, ifc, stlc
from repro.core.values import V, from_int, from_list, to_int
from repro.derive.instances import CHECKER, GEN, resolve, resolve_compiled
from repro.derive.modes import Mode
from repro.quickchick import for_all, quick_check


# ---------------------------------------------------------------------------
# BST
# ---------------------------------------------------------------------------

class TestBst:
    @pytest.fixture(scope="class")
    def ctx(self):
        return bst.make_context()

    def test_handwritten_and_derived_checkers_agree(self, ctx):
        derived = resolve_compiled(ctx, CHECKER, "bst", Mode.checker(3))
        rng = random.Random(0)
        lo, hi = from_int(0), from_int(12)
        for _ in range(60):
            out = bst.handwritten_bst_gen(8, (lo, hi), rng)
            tree = out[0]
            args = (lo, hi, tree)
            assert bst.handwritten_bst_check(24, args).tag == derived(24, args).tag
            # A deliberately broken tree must be rejected identically.
            broken = bst.node(tree, 0, bst.LEAF)
            broken_args = (lo, hi, broken)
            assert (
                bst.handwritten_bst_check(24, broken_args).tag
                == derived(24, broken_args).tag
            )

    def test_derived_generator_produces_valid_trees(self, ctx):
        gen = resolve_compiled(ctx, GEN, "bst", Mode.from_string("iio"))
        rng = random.Random(1)
        lo, hi = from_int(0), from_int(12)
        produced = 0
        for _ in range(80):
            out = gen(8, (lo, hi), rng)
            if isinstance(out, tuple):
                produced += 1
                verdict = bst.handwritten_bst_check(30, (lo, hi, out[0]))
                assert verdict.is_true
        assert produced > 40

    def test_property_passes_with_correct_insert(self, ctx):
        workload = bst.BstWorkload(ctx)
        gen, prop = workload.property_fn(
            bst.handwritten_bst_gen, bst.handwritten_bst_check, bst.insert
        )
        report = quick_check(for_all(gen, prop, "bst"), num_tests=300, seed=3)
        assert not report.failed and report.tests_run == 300

    @pytest.mark.parametrize("mutant", bst.MUTANTS, ids=lambda m: m.name)
    def test_mutants_caught(self, ctx, mutant):
        workload = bst.BstWorkload(ctx)
        gen, prop = workload.property_fn(
            bst.handwritten_bst_gen, bst.handwritten_bst_check, mutant.impl
        )
        report = quick_check(for_all(gen, prop, mutant.name),
                             num_tests=30000, seed=5)
        assert report.failed, f"{mutant.name} escaped"


# ---------------------------------------------------------------------------
# STLC
# ---------------------------------------------------------------------------

class TestStlc:
    @pytest.fixture(scope="class")
    def ctx(self):
        return stlc.make_context()

    def test_infer_examples(self, ctx):
        env = []
        assert stlc.infer(env, stlc.con(3)) == stlc.N
        identity = stlc.abs_(stlc.N, stlc.var(0))
        assert stlc.infer(env, identity) == stlc.arr(stlc.N, stlc.N)
        assert stlc.infer(env, stlc.app(stlc.con(1), stlc.con(2))) is None
        assert stlc.infer(env, stlc.var(0)) is None

    def test_handwritten_checker_agrees_with_derived(self, ctx):
        derived = resolve_compiled(ctx, CHECKER, "typing", Mode.checker(3))
        rng = random.Random(2)
        env_value = from_list([stlc.N, stlc.arr(stlc.N, stlc.N)])
        for _ in range(40):
            ty = stlc._gen_type(2, rng)
            out = stlc.handwritten_typing_gen(6, (env_value, ty), rng)
            if not isinstance(out, tuple):
                continue
            args = (env_value, out[0], ty)
            assert stlc.handwritten_typing_check(1, args).is_true
            assert derived(30, args).is_true

    def test_step_reduces_redex(self, ctx):
        redex = stlc.app(stlc.abs_(stlc.N, stlc.var(0)), stlc.con(7))
        assert stlc.step(redex) == stlc.con(7)
        assert stlc.step(stlc.con(1)) is None

    def test_subst_examples(self, ctx):
        # [0 := 5] (\x:N. Var 1)  ->  \x:N. 5
        body = stlc.abs_(stlc.N, stlc.var(1))
        out = stlc.subst(0, stlc.con(5), body)
        assert out == stlc.abs_(stlc.N, stlc.con(5))
        # lift under a binder skips the bound variable
        assert stlc.lift(0, 1, stlc.abs_(stlc.N, stlc.var(0))) == stlc.abs_(
            stlc.N, stlc.var(0)
        )

    def test_preservation_with_correct_subst(self, ctx):
        workload = stlc.StlcWorkload(ctx)
        gen, prop = workload.property_fn(
            stlc.handwritten_typing_gen, stlc.handwritten_typing_check, stlc.subst
        )
        report = quick_check(for_all(gen, prop, "preservation"),
                             num_tests=300, seed=4)
        assert not report.failed

    @pytest.mark.parametrize("mutant", stlc.MUTANTS, ids=lambda m: m.name)
    def test_mutants_caught(self, ctx, mutant):
        workload = stlc.StlcWorkload(ctx)
        gen, prop = workload.property_fn(
            stlc.handwritten_typing_gen, stlc.handwritten_typing_check, mutant.impl
        )
        report = quick_check(for_all(gen, prop, mutant.name),
                             num_tests=40000, seed=6, size=6)
        assert report.failed, f"{mutant.name} escaped"


# ---------------------------------------------------------------------------
# IFC
# ---------------------------------------------------------------------------

class TestIfc:
    @pytest.fixture(scope="class")
    def ctx(self):
        return ifc.make_context()

    def test_indist_checker_agreement(self, ctx):
        derived = resolve_compiled(ctx, CHECKER, "indist_list", Mode.checker(2))
        rng = random.Random(3)
        for _ in range(60):
            mem1 = [
                (rng.randint(0, 5), "H" if rng.random() < 0.5 else "L")
                for _ in range(4)
            ]
            out = ifc.handwritten_indist_gen(6, (ifc.mem_to_value(mem1),), rng)
            mem2v = out[0]
            args = (ifc.mem_to_value(mem1), mem2v)
            assert ifc.handwritten_indist_check(12, args).tag == derived(12, args).tag
            # Tampering with a low value must be caught by both.
            tampered = list(ifc.value_to_mem(mem2v))
            tampered[0] = (tampered[0][0] + 1, tampered[0][1])
            targs = (ifc.mem_to_value(mem1), ifc.mem_to_value(tampered))
            assert (
                ifc.handwritten_indist_check(12, targs).tag
                == derived(12, targs).tag
            )

    def test_machine_executes(self, ctx):
        program = [ifc.Instr(ifc.PUSH, (1, "L")), ifc.Instr(ifc.PUSH, (2, "L")),
                   ifc.Instr(ifc.ADD)]
        m = ifc.Machine(stack=[], mem=[(0, "L")])
        for _ in range(3):
            ifc.step_machine(m, program)
        assert m.stack == [(3, "L")]

    def test_add_joins_labels(self, ctx):
        program = [ifc.Instr(ifc.PUSH, (1, "H")), ifc.Instr(ifc.PUSH, (2, "L")),
                   ifc.Instr(ifc.ADD)]
        m = ifc.Machine(stack=[], mem=[])
        for _ in range(3):
            ifc.step_machine(m, program)
        assert m.stack == [(3, "H")]

    def test_store_halts_on_high_address(self, ctx):
        program = [
            ifc.Instr(ifc.PUSH, (7, "L")),   # value
            ifc.Instr(ifc.PUSH, (0, "H")),   # address (high!)
            ifc.Instr(ifc.STORE),
        ]
        m = ifc.Machine(stack=[], mem=[(0, "L")])
        for _ in range(3):
            ifc.step_machine(m, program)
        assert m.halted
        assert m.mem == [(0, "L")]

    def test_noninterference_with_correct_machine(self, ctx):
        workload = ifc.IfcWorkload(ctx)
        gen, prop = workload.property_fn(
            ifc.handwritten_indist_gen, ifc.handwritten_indist_check,
            ifc.CORRECT_STEP,
        )
        report = quick_check(for_all(gen, prop, "noninterference"),
                             num_tests=800, seed=7)
        assert not report.failed

    @pytest.mark.parametrize("mutant", ifc.MUTANTS, ids=lambda m: m.name)
    def test_mutants_caught(self, ctx, mutant):
        workload = ifc.IfcWorkload(ctx)
        gen, prop = workload.property_fn(
            ifc.handwritten_indist_gen, ifc.handwritten_indist_check, mutant.impl
        )
        report = quick_check(for_all(gen, prop, mutant.name),
                             num_tests=30000, seed=8)
        assert report.failed, f"{mutant.name} escaped"

    def test_derived_indist_generator_sound(self, ctx):
        gen = resolve_compiled(ctx, GEN, "indist_list", Mode.from_string("io"))
        rng = random.Random(9)
        for _ in range(50):
            mem1 = [
                (rng.randint(0, 5), "H" if rng.random() < 0.5 else "L")
                for _ in range(4)
            ]
            out = gen(8, (ifc.mem_to_value(mem1),), rng)
            if not isinstance(out, tuple):
                continue
            args = (ifc.mem_to_value(mem1), out[0])
            assert ifc.handwritten_indist_check(12, args).is_true
