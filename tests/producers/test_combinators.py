"""Tests for mixed binds and unconstrained datatype producers."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.types import BOOL, NAT, Ty
from repro.core.values import Value, to_int
from repro.producers.combinators import (
    bind_CE,
    bind_CG,
    bind_EC,
    enum_datatype,
    gen_datatype,
    slice_exhaustive,
)
from repro.producers.enumerators import Enumerator
from repro.producers.generators import Generator
from repro.producers.option_bool import NONE_OB, SOME_FALSE, SOME_TRUE
from repro.producers.outcome import OUT_OF_FUEL, is_value
from repro.stdlib import standard_context


@pytest.fixture(scope="module")
def ctx():
    return standard_context()


class TestBindEC:
    def test_finds_witness(self):
        result = bind_EC(
            iter([1, 2, 3]), lambda x: SOME_TRUE if x == 2 else SOME_FALSE
        )
        assert result is SOME_TRUE

    def test_complete_search_gives_false(self):
        assert bind_EC(iter([1, 2]), lambda x: SOME_FALSE) is SOME_FALSE

    def test_fuel_marker_prevents_false(self):
        result = bind_EC(iter([1, OUT_OF_FUEL]), lambda x: SOME_FALSE)
        assert result is NONE_OB

    def test_none_continuation_prevents_false(self):
        result = bind_EC(iter([1, 2]), lambda x: NONE_OB)
        assert result is NONE_OB

    def test_short_circuits_on_witness(self):
        seen = []

        def k(x):
            seen.append(x)
            return SOME_TRUE

        bind_EC(iter([1, 2, 3]), k)
        assert seen == [1]

    def test_empty_enumeration_is_false(self):
        assert bind_EC(iter(()), lambda x: SOME_TRUE) is SOME_FALSE


class TestBindCE_CG:
    def test_true_continues(self):
        e = bind_CE(SOME_TRUE, lambda: Enumerator.from_values([1]))
        assert list(e.run(0)) == [1]

    def test_false_is_fail(self):
        assert list(bind_CE(SOME_FALSE, lambda: Enumerator.ret(1)).run(0)) == []

    def test_none_is_fuel(self):
        assert list(bind_CE(NONE_OB, lambda: Enumerator.ret(1)).run(0)) == [
            OUT_OF_FUEL
        ]

    def test_generator_variants(self):
        rng = random.Random(0)
        assert bind_CG(SOME_TRUE, lambda: Generator.ret(5)).run(0, rng) == 5
        assert not is_value(bind_CG(SOME_FALSE, lambda: Generator.ret(5)).run(0, rng))
        assert bind_CG(NONE_OB, lambda: Generator.ret(5)).run(0, rng) is OUT_OF_FUEL


class TestSliceExhaustive:
    def test_finite_types(self, ctx):
        assert slice_exhaustive(ctx, BOOL, 0)
        assert slice_exhaustive(ctx, Ty("unit"), 0)

    def test_nested_finite_needs_depth(self, ctx):
        opt_bool = Ty("option", (BOOL,))
        assert not slice_exhaustive(ctx, opt_bool, 0)
        assert slice_exhaustive(ctx, opt_bool, 1)

    def test_recursive_types_never_exhaust(self, ctx):
        assert not slice_exhaustive(ctx, NAT, 50)
        assert not slice_exhaustive(ctx, Ty("list", (BOOL,)), 50)


class TestEnumDatatype:
    def test_nat_sizes(self, ctx):
        e = enum_datatype(ctx, NAT)
        assert sorted(to_int(v) for v in e.outcomes(4)) == [0, 1, 2, 3, 4]

    def test_fuel_marker_for_infinite(self, ctx):
        e = enum_datatype(ctx, NAT)
        assert not e.complete_at(4)

    def test_no_marker_when_exhaustive(self, ctx):
        e = enum_datatype(ctx, BOOL)
        assert e.complete_at(0)
        assert e.outcomes(0) == {Value("true"), Value("false")}

    def test_monotone_in_size(self, ctx):
        e = enum_datatype(ctx, Ty("list", (BOOL,)))
        assert e.outcomes(1) <= e.outcomes(2) <= e.outcomes(3)

    def test_depth_bound(self, ctx):
        e = enum_datatype(ctx, Ty("list", (NAT,)))
        assert all(v.depth() <= 4 for v in e.outcomes(3))

    def test_no_duplicates(self, ctx):
        e = enum_datatype(ctx, Ty("option", (NAT,)))
        items = [v for v in e.run(3) if is_value(v)]
        assert len(items) == len(set(items))


class TestGenDatatype:
    def test_values_well_typed(self, ctx):
        g = gen_datatype(ctx, Ty("list", (NAT,)))
        for v in g.sample_values(4, 50, seed=0):
            assert ctx.datatypes.check_value(v, Ty("list", (NAT,)))

    def test_depth_bound(self, ctx):
        g = gen_datatype(ctx, NAT)
        for v in g.sample_values(3, 50, seed=1):
            assert v.depth() <= 4

    def test_size_zero_only_nullary(self, ctx):
        g = gen_datatype(ctx, NAT)
        assert set(g.sample_values(0, 20, seed=2)) == {Value("O")}

    @settings(max_examples=20, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(st.integers(min_value=0, max_value=2**31))
    def test_gen_within_enum_outcomes(self, ctx, seed):
        """Generated values always lie in the enumerator's outcome set
        at the same size (shared possibilistic semantics)."""
        size = 3
        ty = Ty("option", (BOOL,))
        allowed = enum_datatype(ctx, ty).outcomes(size)
        v = gen_datatype(ctx, ty).run(size, random.Random(seed))
        assert v in allowed
