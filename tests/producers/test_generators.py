"""Tests for the generator monad and combinators."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.producers.generators import (
    Generator,
    backtrack,
    choose_nat,
    frequency,
    oneof,
    sized,
)
from repro.producers.outcome import FAIL, OUT_OF_FUEL, is_value


def run(g, size=5, seed=0):
    return g.run(size, random.Random(seed))


class TestMonad:
    def test_ret(self):
        assert run(Generator.ret(42)) == 42

    def test_fail(self):
        assert run(Generator.fail()) is FAIL

    def test_fuel(self):
        assert run(Generator.fuel()) is OUT_OF_FUEL

    def test_bind(self):
        g = Generator.ret(1).bind(lambda x: Generator.ret(x + 1))
        assert run(g) == 2

    def test_bind_propagates_fail(self):
        g = Generator.fail().bind(lambda x: Generator.ret(x))
        assert run(g) is FAIL

    def test_map_and_guard(self):
        g = Generator.ret(3).map(lambda x: x * 2)
        assert run(g) == 6
        assert run(Generator.ret(3).guard(lambda x: x > 5)) is FAIL

    def test_resize(self):
        g = sized(lambda s: Generator.ret(s)).resize(9)
        assert run(g, size=1) == 9

    def test_retry_on_fail(self):
        attempts = []

        def flaky(size, rng):
            attempts.append(1)
            return FAIL if len(attempts) < 3 else 7

        assert run(Generator(flaky).retry(5)) == 7

    def test_retry_does_not_retry_fuel(self):
        attempts = []

        def fueled(size, rng):
            attempts.append(1)
            return OUT_OF_FUEL

        assert run(Generator(fueled).retry(5)) is OUT_OF_FUEL
        assert len(attempts) == 1

    def test_determinism_with_seed(self):
        g = choose_nat(0, 1000)
        assert g.sample(5, 10, seed=3) == g.sample(5, 10, seed=3)


class TestChoice:
    def test_oneof_empty_fails(self):
        assert run(oneof([])) is FAIL

    def test_oneof_covers_options(self):
        g = oneof([lambda: Generator.ret(1), lambda: Generator.ret(2)])
        seen = set(g.sample(0, 50, seed=1))
        assert seen == {1, 2}

    def test_frequency_respects_zero_weight(self):
        g = frequency([(0, lambda: Generator.ret(1)), (3, lambda: Generator.ret(2))])
        assert set(g.sample(0, 30, seed=1)) == {2}

    def test_frequency_skews(self):
        g = frequency([(9, lambda: Generator.ret(1)), (1, lambda: Generator.ret(2))])
        samples = g.sample(0, 400, seed=1)
        assert samples.count(1) > samples.count(2) * 3


class TestBacktrack:
    def test_skips_failing_options(self):
        g = backtrack(
            [(1, lambda: Generator.fail()), (1, lambda: Generator.ret(5))],
            retries_per_option=1,
        )
        assert all(x == 5 for x in g.sample(0, 20, seed=2))

    def test_all_fail_gives_fail(self):
        g = backtrack([(1, lambda: Generator.fail())])
        assert run(g) is FAIL

    def test_fuel_dominates_fail(self):
        g = backtrack(
            [(1, lambda: Generator.fail()), (1, lambda: Generator.fuel())]
        )
        assert run(g) is OUT_OF_FUEL

    def test_empty_backtrack(self):
        assert run(backtrack([])) is FAIL

    @given(st.integers(min_value=0, max_value=10_000))
    def test_first_success_wins(self, seed):
        g = backtrack(
            [
                (1, lambda: Generator.ret("a")),
                (1, lambda: Generator.ret("b")),
            ]
        )
        assert g.run(0, random.Random(seed)) in ("a", "b")


class TestSampleHelpers:
    def test_sample_values_discards_markers(self):
        toggle = []

        def flaky(size, rng):
            toggle.append(1)
            return FAIL if len(toggle) % 2 else 1

        values = Generator(flaky).sample_values(0, 5, seed=0)
        assert values == [1] * 5

    def test_outcomes_sampled(self):
        g = oneof([lambda: Generator.ret(1), lambda: Generator.ret(2)])
        assert g.outcomes(0, 60, seed=0) == {1, 2}
