"""Tests for the three-valued logic and its combinators (Section 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.producers.option_bool import (
    NONE_OB,
    SOME_FALSE,
    SOME_TRUE,
    OptionBool,
    and_then,
    backtracking,
    from_bool,
    negate,
)

VALUES = [SOME_TRUE, SOME_FALSE, NONE_OB]
ob = st.sampled_from(VALUES)


class TestBasics:
    def test_singletons(self):
        assert OptionBool("some_true") is SOME_TRUE
        assert OptionBool("none") is NONE_OB

    def test_repr(self):
        assert repr(SOME_TRUE) == "Some true"
        assert repr(SOME_FALSE) == "Some false"
        assert repr(NONE_OB) == "None"

    def test_bool_coercion_forbidden(self):
        with pytest.raises(TypeError):
            bool(SOME_TRUE)

    def test_from_bool(self):
        assert from_bool(True) is SOME_TRUE
        assert from_bool(False) is SOME_FALSE


class TestAndThen:
    """The paper's `.&&` definition, case by case."""

    def test_false_short_circuits(self):
        assert and_then(SOME_FALSE, lambda: SOME_TRUE) is SOME_FALSE

    def test_none_short_circuits(self):
        assert and_then(NONE_OB, lambda: SOME_TRUE) is NONE_OB

    def test_true_continues(self):
        for b in VALUES:
            assert and_then(SOME_TRUE, lambda: b) is b

    def test_laziness(self):
        called = []
        and_then(SOME_FALSE, lambda: called.append(1) or SOME_TRUE)
        assert not called

    @given(ob, ob, ob)
    def test_associativity(self, a, b, c):
        left = and_then(and_then(a, lambda: b), lambda: c)
        right = and_then(a, lambda: and_then(b, lambda: c))
        assert left is right


class TestNegate:
    def test_cases(self):
        assert negate(SOME_TRUE) is SOME_FALSE
        assert negate(SOME_FALSE) is SOME_TRUE
        assert negate(NONE_OB) is NONE_OB

    @given(ob)
    def test_involutive(self, a):
        assert negate(negate(a)) is a


class TestBacktracking:
    """The backtrack specification of Section 5.2: Some true iff some
    option returns Some true; Some false iff all do."""

    def test_empty_is_false(self):
        assert backtracking([]) is SOME_FALSE

    @given(st.lists(ob, max_size=6))
    def test_specification(self, results):
        outcome = backtracking([lambda r=r: r for r in results])
        if any(r is SOME_TRUE for r in results):
            assert outcome is SOME_TRUE
        elif all(r is SOME_FALSE for r in results):
            assert outcome is SOME_FALSE
        else:
            assert outcome is NONE_OB

    def test_stops_at_first_true(self):
        called = []

        def option(r, tag):
            def thunk():
                called.append(tag)
                return r

            return thunk

        backtracking(
            [option(SOME_FALSE, 1), option(SOME_TRUE, 2), option(SOME_FALSE, 3)]
        )
        assert called == [1, 2]
