"""Tests for the set-of-outcomes semantics helpers, including the
cross-backend coherence law on *derived* producers."""

import pytest

from repro.core.types import NAT, Ty
from repro.core.values import from_int, to_int
from repro.producers.combinators import enum_datatype, gen_datatype
from repro.producers.enumerators import Enumerator
from repro.producers.generators import Generator
from repro.producers.semantics import (
    complete_for,
    enum_outcomes,
    enum_outcomes_upto,
    gen_outcomes,
    gen_within_enum,
    size_monotonic,
    sound_for,
)


class TestHelpers:
    def test_enum_outcomes(self):
        e = Enumerator.from_sized(lambda s: range(s))
        assert enum_outcomes(e, 3) == {0, 1, 2}
        assert enum_outcomes_upto(e, 3) == {0, 1, 2}

    def test_size_monotonic_detects_shrinkage(self):
        shrinking = Enumerator.from_sized(lambda s: range(5 - s))
        ok, pair = size_monotonic(shrinking, [0, 1, 2])
        assert not ok and pair == (0, 1)

    def test_size_monotonic_passes(self):
        growing = Enumerator.from_sized(lambda s: range(s))
        ok, pair = size_monotonic(growing, [0, 2, 4])
        assert ok and pair is None

    def test_soundness_and_completeness(self):
        evens = Enumerator.from_sized(lambda s: range(0, 2 * s, 2))
        assert sound_for(evens, 5, lambda x: x % 2 == 0) == []
        assert sound_for(evens, 5, lambda x: x < 4) == [4, 6, 8]
        assert complete_for(evens, 5, [0, 2, 4]) == []
        assert complete_for(evens, 5, [1]) == [1]

    def test_gen_outcomes_sampled(self):
        g = Generator(lambda size, rng: rng.randint(0, 2))
        assert gen_outcomes(g, 0, samples=200) == {0, 1, 2}


class TestCrossBackendCoherence:
    """Unconstrained and derived producers must satisfy
    [gen]_s ⊆ [enum]_s (shared possibilistic semantics)."""

    def test_datatype_producers(self):
        from repro.stdlib import standard_context

        ctx = standard_context()
        for ty in (NAT, Ty("list", (Ty("bool"),)), Ty("option", (NAT,))):
            enum = enum_datatype(ctx, ty)
            gen = gen_datatype(ctx, ty)
            assert gen_within_enum(gen, enum, 3, samples=150) == []

    def test_derived_producers(self, nat_ctx):
        from repro.derive import derive_enumerator, derive_generator

        enum = derive_enumerator(nat_ctx, "le", "oi")
        gen = derive_generator(nat_ctx, "le", "oi")
        five = from_int(5)
        wrapped_enum = Enumerator(lambda size: enum(size, five))
        wrapped_gen = Generator(lambda size, rng: gen.gen_st(size, (five,), rng))
        assert gen_within_enum(wrapped_gen, wrapped_enum, 8, samples=200) == []

    def test_derived_size_monotonic(self, nat_ctx):
        from repro.derive import derive_enumerator

        enum = derive_enumerator(nat_ctx, "le", "io")
        wrapped = Enumerator(lambda size: enum(size, from_int(2)))
        ok, _ = size_monotonic(wrapped, [0, 1, 2, 4, 8])
        assert ok
