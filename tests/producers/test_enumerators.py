"""Tests for the enumerator monad and combinators."""

from hypothesis import given
from hypothesis import strategies as st

from repro.producers.enumerators import Enumerator, enumerating, interleaving
from repro.producers.outcome import FAIL, OUT_OF_FUEL, is_value


class TestMonad:
    def test_ret(self):
        assert list(Enumerator.ret(5).run(0)) == [5]

    def test_fail_empty(self):
        assert list(Enumerator.fail().run(3)) == []

    def test_fuel_single_marker(self):
        assert list(Enumerator.fuel().run(3)) == [OUT_OF_FUEL]

    def test_bind_flattens(self):
        e = Enumerator.from_values([1, 2]).bind(
            lambda x: Enumerator.from_values([x, x * 10])
        )
        assert list(e.run(0)) == [1, 10, 2, 20]

    def test_bind_propagates_fuel(self):
        e = Enumerator.from_values([1, OUT_OF_FUEL, 2]).bind(
            lambda x: Enumerator.ret(x + 1)
        )
        assert list(e.run(0)) == [2, OUT_OF_FUEL, 3]

    def test_map_skips_markers(self):
        e = Enumerator.from_values([1, OUT_OF_FUEL]).map(lambda x: -x)
        assert list(e.run(0)) == [-1, OUT_OF_FUEL]

    def test_guard(self):
        e = Enumerator.from_values([1, 2, 3, OUT_OF_FUEL]).guard(lambda x: x > 1)
        assert list(e.run(0)) == [2, 3, OUT_OF_FUEL]

    @given(st.lists(st.integers(), max_size=8))
    def test_monad_left_identity(self, xs):
        k = lambda x: Enumerator.from_values([x, x])
        via_bind = Enumerator.ret(7).bind(k)
        assert list(via_bind.run(0)) == list(k(7).run(0))

    def test_rerunnable(self):
        e = Enumerator.from_sized(lambda size: range(size))
        assert list(e.run(3)) == [0, 1, 2]
        assert list(e.run(3)) == [0, 1, 2]
        assert list(e.run(2)) == [0, 1]


class TestConsumers:
    def test_outcomes_drops_markers(self):
        e = Enumerator.from_values([1, OUT_OF_FUEL, 2])
        assert e.outcomes(0) == {1, 2}

    def test_complete_at(self):
        assert Enumerator.from_values([1, 2]).complete_at(0)
        assert not Enumerator.from_values([1, OUT_OF_FUEL]).complete_at(0)

    def test_first_value(self):
        assert Enumerator.from_values([OUT_OF_FUEL, 5]).first_value(0) == 5
        assert Enumerator.from_values([OUT_OF_FUEL]).first_value(0) is OUT_OF_FUEL
        assert Enumerator.fail().first_value(0) is FAIL

    def test_lazy_wrapping(self):
        e = Enumerator.from_sized(lambda size: range(size))
        assert e.lazy(4).to_list() == [0, 1, 2, 3]


class TestCombinators:
    def test_enumerating_concatenates(self):
        e = enumerating(
            [lambda: Enumerator.from_values([1]), lambda: Enumerator.from_values([2, 3])]
        )
        assert list(e.run(0)) == [1, 2, 3]

    def test_enumerating_lazy_in_options(self):
        calls = []

        def expensive():
            calls.append(1)
            return Enumerator.from_values([9])

        e = enumerating([lambda: Enumerator.from_values([1]), expensive])
        it = e.run(0)
        assert next(it) == 1
        assert not calls  # second option not built yet

    def test_interleaving_fair(self):
        e = interleaving(
            [
                lambda: Enumerator.from_values([1, 3, 5]),
                lambda: Enumerator.from_values([2, 4]),
            ]
        )
        assert list(e.run(0)) == [1, 2, 3, 4, 5]

    def test_resize(self):
        e = Enumerator.from_sized(lambda size: range(size)).resize(2)
        assert list(e.run(99)) == [0, 1]
