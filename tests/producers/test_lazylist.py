"""Tests for memoized lazy lists."""

import itertools

from hypothesis import given
from hypothesis import strategies as st

from repro.producers.lazylist import LazyList


class TestConstruction:
    def test_empty(self):
        assert LazyList.empty().is_empty()
        assert LazyList.empty().to_list() == []

    def test_cons_and_accessors(self):
        ll = LazyList.cons(1, LazyList.singleton(2))
        assert ll.head() == 1
        assert ll.tail().to_list() == [2]

    @given(st.lists(st.integers(), max_size=20))
    def test_from_iterable_roundtrip(self, xs):
        assert LazyList.from_iterable(xs).to_list() == xs

    def test_one_shot_iterator_is_memoized(self):
        it = iter([1, 2, 3])
        ll = LazyList.from_iterable(it)
        assert ll.to_list() == [1, 2, 3]
        # A second traversal sees the memoized values, not the spent iterator.
        assert ll.to_list() == [1, 2, 3]

    def test_infinite_stream_take(self):
        ll = LazyList.from_iterable(itertools.count())
        assert ll.take(5) == [0, 1, 2, 3, 4]


class TestLaziness:
    def test_defer_not_forced_until_demanded(self):
        forced = []

        def make():
            forced.append(True)
            return LazyList.singleton(42)

        ll = LazyList.defer(make)
        assert not forced
        assert ll.head() == 42
        assert forced == [True]

    def test_map_is_lazy(self):
        calls = []

        def f(x):
            calls.append(x)
            return x * 2

        ll = LazyList.from_iterable(itertools.count()).map(f)
        assert ll.take(3) == [0, 2, 4]
        assert calls == [0, 1, 2]


class TestCombinators:
    @given(st.lists(st.integers(), max_size=10), st.lists(st.integers(), max_size=10))
    def test_append(self, xs, ys):
        a = LazyList.from_iterable(xs)
        b = LazyList.from_iterable(ys)
        assert a.append(b).to_list() == xs + ys

    @given(st.lists(st.integers(), max_size=15))
    def test_filter(self, xs):
        ll = LazyList.from_iterable(xs).filter(lambda x: x % 2 == 0)
        assert ll.to_list() == [x for x in xs if x % 2 == 0]

    @given(st.lists(st.integers(), max_size=8), st.lists(st.integers(), max_size=8))
    def test_interleave_fair(self, xs, ys):
        merged = LazyList.from_iterable(xs).interleave(LazyList.from_iterable(ys))
        out = merged.to_list()
        assert sorted(out) == sorted(xs + ys)
        # The first min(len) * 2 elements alternate.
        k = min(len(xs), len(ys))
        assert out[: 2 * k : 2] == xs[:k]

    @given(st.lists(st.lists(st.integers(), max_size=5), max_size=5))
    def test_concat(self, xss):
        lls = [LazyList.from_iterable(xs) for xs in xss]
        assert LazyList.concat(lls).to_list() == [x for xs in xss for x in xs]

    def test_infinite_append_left_biased(self):
        inf = LazyList.from_iterable(itertools.count())
        appended = inf.append(LazyList.singleton(-1))
        assert appended.take(4) == [0, 1, 2, 3]
