"""Tests for the reference proof-search semantics."""

import pytest

from repro.core import parse_declarations
from repro.core.terms import Var, value_to_term
from repro.core.values import from_int, nat_list
from repro.semantics import (
    SearchConfig,
    check_derivation,
    derivable,
    search_derivation,
    solutions,
)


class TestGroundQueries:
    def test_le(self, nat_ctx):
        assert derivable(nat_ctx, "le", (from_int(2), from_int(5)), 10)
        assert not derivable(nat_ctx, "le", (from_int(5), from_int(2)), 10)

    def test_le_reflexive(self, nat_ctx):
        for n in range(5):
            assert derivable(nat_ctx, "le", (from_int(n), from_int(n)), 2)

    def test_depth_bound_respected(self, nat_ctx):
        # le 0 5 needs 6 rule applications.
        assert not derivable(nat_ctx, "le", (from_int(0), from_int(5)), 3)
        assert derivable(nat_ctx, "le", (from_int(0), from_int(5)), 6)

    def test_ev(self, nat_ctx):
        assert derivable(nat_ctx, "ev", (from_int(8),), 10)
        assert not derivable(nat_ctx, "ev", (from_int(7),), 10)

    def test_square_of_function_calls(self, nat_ctx):
        assert derivable(nat_ctx, "square_of", (from_int(4), from_int(16)), 3)
        assert not derivable(nat_ctx, "square_of", (from_int(4), from_int(15)), 3)

    def test_sorted(self, list_ctx):
        assert derivable(list_ctx, "Sorted", (nat_list([]),), 3)
        assert derivable(list_ctx, "Sorted", (nat_list([1, 1, 2]),), 10)
        assert not derivable(list_ctx, "Sorted", (nat_list([2, 1]),), 10)

    def test_memoization_consistent(self, nat_ctx):
        args = (from_int(3), from_int(7))
        assert derivable(nat_ctx, "le", args, 10)
        assert derivable(nat_ctx, "le", args, 10)  # memo hit
        assert derivable(nat_ctx, "le", args, 12)  # monotone fast path


class TestOpenGoals:
    def test_enumerate_smaller(self, nat_ctx):
        sols = solutions(
            nat_ctx, "le", (Var("x"), value_to_term(from_int(3))), 10
        )
        xs = sorted((s["x"] for s in sols), key=str)
        assert len(xs) == 4

    def test_inversion_through_functions(self, nat_ctx):
        """square_of ? 16 needs generate-and-test."""
        sols = solutions(
            nat_ctx, "square_of", (Var("x"), value_to_term(from_int(16))), 4
        )
        assert [s["x"] for s in sols] == [from_int(4)]

    def test_no_solutions(self, nat_ctx):
        sols = solutions(
            nat_ctx, "square_of", (Var("x"), value_to_term(from_int(17))), 4
        )
        assert sols == []

    def test_limit_respected(self, nat_ctx):
        sols = solutions(
            nat_ctx, "le", (value_to_term(from_int(0)), Var("y")), 8, limit=3
        )
        assert len(sols) == 3

    def test_fully_open_goal(self, nat_ctx):
        sols = solutions(nat_ctx, "ev", (Var("n"),), 4)
        ns = {str(s["n"]) for s in sols}
        assert {"0", "2", "4"} <= ns | {"6"}


class TestDerivationTrees:
    def test_tree_checks(self, list_ctx):
        args = (nat_list([0, 1, 2]),)
        tree = search_derivation(list_ctx, "Sorted", args, 12)
        assert tree is not None
        assert check_derivation(list_ctx, tree, args)

    def test_tree_size_grows_with_list(self, list_ctx):
        small = search_derivation(list_ctx, "Sorted", (nat_list([1]),), 12)
        large = search_derivation(list_ctx, "Sorted", (nat_list([1, 1, 1, 1]),), 12)
        assert large.size() > small.size()

    def test_unprovable_gives_none(self, list_ctx):
        assert search_derivation(list_ctx, "Sorted", (nat_list([9, 1]),), 12) is None

    def test_height_within_budget(self, nat_ctx):
        tree = search_derivation(nat_ctx, "le", (from_int(0), from_int(4)), 10)
        assert tree.height() <= 10


class TestNonterminatingRelation:
    """The paper's `zero` predicate (Section 5.1): derivable only at 0."""

    def test_zero_holds_on_zero(self, zero_ctx):
        assert derivable(zero_ctx, "zero", (from_int(0),), 4)

    def test_zero_never_holds_elsewhere(self, zero_ctx):
        # NonZero keeps demanding zero (S n): no finite derivation.
        for depth in (4, 8, 16):
            assert not derivable(zero_ctx, "zero", (from_int(3),), depth)


class TestNegation:
    def test_negated_premise(self, ctx):
        parse_declarations(
            ctx,
            """
            Inductive isz : nat -> Prop := | isz0 : isz 0.
            Inductive notz : nat -> Prop :=
            | nz : forall n, ~ isz n -> notz n.
            """,
        )
        assert derivable(ctx, "notz", (from_int(3),), 5)
        assert not derivable(ctx, "notz", (from_int(0),), 5)
