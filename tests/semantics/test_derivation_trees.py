"""Tests for derivation trees and the proof checker."""

import pytest

from repro.core.errors import ValidationError
from repro.core.values import from_int, nat_list
from repro.semantics.derivation import Derivation, check_derivation


def le_refl(ctx, n):
    return Derivation("le", "le_n", {"n": from_int(n)})


def le_step(ctx, n, m, sub):
    return Derivation(
        "le", "le_S", {"n": from_int(n), "m": from_int(m)}, (sub,)
    )


class TestWellFormed:
    def test_le_proof(self, nat_ctx):
        # le 1 3 = le_S (le_S (le_n))
        tree = le_step(nat_ctx, 1, 2, le_step(nat_ctx, 1, 1, le_refl(nat_ctx, 1)))
        assert check_derivation(nat_ctx, tree, (from_int(1), from_int(3)))

    def test_metrics(self, nat_ctx):
        tree = le_step(nat_ctx, 1, 1, le_refl(nat_ctx, 1))
        assert tree.size() == 2
        assert tree.height() == 2
        assert "le.le_S" in str(tree)

    def test_conclusion_values(self, nat_ctx):
        tree = le_refl(nat_ctx, 4)
        assert tree.conclusion_values(nat_ctx) == (from_int(4), from_int(4))


class TestRejection:
    def test_wrong_conclusion(self, nat_ctx):
        tree = le_refl(nat_ctx, 2)
        with pytest.raises(ValidationError):
            check_derivation(nat_ctx, tree, (from_int(2), from_int(3)))

    def test_missing_binding(self, nat_ctx):
        tree = Derivation("le", "le_n", {})
        with pytest.raises(ValidationError):
            check_derivation(nat_ctx, tree)

    def test_wrong_subderivation_count(self, nat_ctx):
        tree = Derivation(
            "le", "le_S", {"n": from_int(0), "m": from_int(0)}, ()
        )
        with pytest.raises(ValidationError):
            check_derivation(nat_ctx, tree)

    def test_subderivation_wrong_relation(self, nat_ctx):
        bad_sub = Derivation("ev", "ev_0", {})
        tree = Derivation(
            "le", "le_S", {"n": from_int(0), "m": from_int(0)}, (bad_sub,)
        )
        with pytest.raises(ValidationError):
            check_derivation(nat_ctx, tree)

    def test_subderivation_wrong_conclusion(self, nat_ctx):
        # le_S for (0, 2) needs a sub-proof of le 0 1, not le 0 0.
        tree = le_step(nat_ctx, 0, 1, le_refl(nat_ctx, 0))
        # Break it: claim the step concludes le 0 3.
        with pytest.raises(ValidationError):
            check_derivation(nat_ctx, tree, (from_int(0), from_int(3)))

    def test_failing_equality_premise(self, nat_ctx):
        # square_of's rule sq has conclusion (n, n * n) via equality.
        tree = Derivation(
            "square_of",
            "sq",
            {"n": from_int(3), "mult_out": from_int(8)},
        )
        with pytest.raises(ValidationError):
            check_derivation(nat_ctx, tree, (from_int(3), from_int(8)))


class TestNegatedPremises:
    def test_negated_premise_checked_by_refutation(self, ctx):
        from repro.core import parse_declarations

        parse_declarations(ctx, """
            Inductive isz : nat -> Prop := | isz0 : isz 0.
            Inductive notz : nat -> Prop :=
            | nz : forall n, ~ isz n -> notz n.
        """)
        good = Derivation("notz", "nz", {"n": from_int(3)})
        assert check_derivation(ctx, good, (from_int(3),))
        bad = Derivation("notz", "nz", {"n": from_int(0)})
        with pytest.raises(ValidationError):
            check_derivation(ctx, bad, (from_int(0),))


@pytest.fixture
def ctx():
    from repro.stdlib import standard_context

    return standard_context()
