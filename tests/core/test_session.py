"""Session-scoped execution state: isolation, concurrency, fork.

The satellite suites for the derivation-as-a-service PR:

* two sessions on one shared context see disjoint stats / memo tables /
  budget trips, while derived artifacts (instances, plans, schedules)
  stay shared;
* ``Context.fork()`` gives workers fully private state — no cross-talk
  through instances, artifacts, or sessions;
* concurrent ``resolve`` from many threads is safe (the per-session
  ``resolve_stack`` fix) and derives each instance exactly once;
* ``box_nat``'s shared cache grows thread-safely and stays capped.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.session import (
    Session,
    activate_session,
    current_session,
    deactivate_session,
    use_session,
)
from repro.core.values import Value, to_int
from repro.derive import Mode
from repro.derive.instances import CHECKER, ENUM, resolve
from repro.derive.memo import CHECKER_MEMO, enable_memoization
from repro.derive.stats import install_stats, stats_of
from repro.producers.option_bool import SOME_TRUE
from repro.resilience import budget_scope


def nat(n):
    v = Value("O", ())
    for _ in range(n):
        v = Value("S", (v,))
    return v


# -- session plumbing --------------------------------------------------------


class TestSessionBasics:
    def test_default_session_is_ambient(self, nat_ctx):
        s = nat_ctx.session
        assert s.name == "default"
        nat_ctx.caches["k"] = 1
        assert s.state["k"] == 1

    def test_use_session_scopes_caches(self, nat_ctx):
        nat_ctx.caches["who"] = "default"
        with nat_ctx.use_session() as s:
            assert nat_ctx.session is s
            assert "who" not in nat_ctx.caches
            nat_ctx.caches["who"] = s.name
        assert nat_ctx.caches["who"] == "default"

    def test_activate_deactivate_token(self, nat_ctx):
        s = nat_ctx.new_session("manual")
        token = activate_session(nat_ctx, s)
        try:
            assert current_session(nat_ctx) is s
        finally:
            deactivate_session(nat_ctx, token)
        assert current_session(nat_ctx) is nat_ctx._default_session

    def test_session_rejects_foreign_context(self, nat_ctx, zero_ctx):
        s = zero_ctx.new_session("alien")
        with pytest.raises(ValueError):
            activate_session(nat_ctx, s)

    def test_sessions_named_and_counted(self, nat_ctx):
        a = nat_ctx.new_session()
        b = nat_ctx.new_session()
        assert a.name != b.name
        assert isinstance(a, Session)

    def test_use_session_helper_matches_method(self, nat_ctx):
        s = nat_ctx.new_session("x")
        with use_session(nat_ctx, s):
            assert nat_ctx.session is s


# -- satellite 4: isolation --------------------------------------------------


class TestSessionIsolation:
    def test_disjoint_stats(self, nat_ctx):
        """Two sessions tally their own DeriveStats; the work one
        session does never shows up in the other's counters."""
        chk = resolve(nat_ctx, CHECKER, "le", Mode.checker(2)).fn
        s1, s2 = nat_ctx.new_session("s1"), nat_ctx.new_session("s2")
        with use_session(nat_ctx, s1):
            enable_memoization(nat_ctx)
            chk(20, (nat(3), nat(9)))
            calls_1 = stats_of(nat_ctx).checker_calls
        with use_session(nat_ctx, s2):
            enable_memoization(nat_ctx)
            calls_2 = stats_of(nat_ctx).checker_calls
        assert calls_1 > 0
        assert calls_2 == 0
        assert stats_of(nat_ctx) is None  # default session untouched

    def test_disjoint_memo_tables(self, nat_ctx):
        chk = resolve(nat_ctx, CHECKER, "le", Mode.checker(2)).fn
        s1, s2 = nat_ctx.new_session("m1"), nat_ctx.new_session("m2")
        with use_session(nat_ctx, s1):
            enable_memoization(nat_ctx)
            chk(20, (nat(2), nat(5)))
            assert len(nat_ctx.caches[CHECKER_MEMO]) > 0
        with use_session(nat_ctx, s2):
            enable_memoization(nat_ctx)
            assert len(nat_ctx.caches[CHECKER_MEMO]) == 0

    def test_disjoint_budget_trips(self, nat_ctx):
        """A budget installed in one session governs only that
        session: the other session's identical call runs unbudgeted."""
        chk = resolve(nat_ctx, CHECKER, "le", Mode.checker(2)).fn
        args = (nat(8), nat(25))
        s1, s2 = nat_ctx.new_session("b1"), nat_ctx.new_session("b2")
        with use_session(nat_ctx, s1):
            with budget_scope(nat_ctx, max_ops=3) as bud:
                chk(40, args)
            assert bud.exhausted is not None
            assert bud.exhausted.limit == "ops"
        with use_session(nat_ctx, s2):
            assert nat_ctx.caches.get("derive_budget") is None
            assert chk(40, args) is SOME_TRUE

    def test_artifacts_shared_across_sessions(self, nat_ctx):
        """Derived instances and plan/schedule artifacts are per
        *context*: deriving in one session makes the instance visible
        to every other session (no re-derivation)."""
        with use_session(nat_ctx):
            inst = resolve(nat_ctx, CHECKER, "le", Mode.checker(2))
        with use_session(nat_ctx):
            assert resolve(nat_ctx, CHECKER, "le", Mode.checker(2)) is inst
        assert resolve(nat_ctx, CHECKER, "le", Mode.checker(2)) is inst

    def test_threads_have_independent_ambient_sessions(self, nat_ctx):
        """Each thread starts in the default session but an
        activate_session in one thread never leaks into another."""
        seen = {}
        barrier = threading.Barrier(2)

        def worker(name):
            with use_session(nat_ctx, nat_ctx.new_session(name)):
                barrier.wait()
                nat_ctx.caches["owner"] = name
                barrier.wait()
                seen[name] = nat_ctx.caches["owner"]

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen == {"t0": "t0", "t1": "t1"}
        assert "owner" not in nat_ctx.caches


class TestForkIsolation:
    def test_fork_no_crosstalk(self, nat_ctx):
        """Forked contexts re-derive privately: instance, artifact,
        and session state never flow between parent and fork."""
        parent_inst = resolve(nat_ctx, CHECKER, "le", Mode.checker(2))
        nat_ctx.caches["parent_only"] = True
        fork = nat_ctx.fork()
        assert not fork.instances
        assert not fork.artifacts
        assert "parent_only" not in fork.caches
        fork_inst = resolve(fork, CHECKER, "le", Mode.checker(2))
        assert fork_inst is not parent_inst
        fork.caches["fork_only"] = True
        assert "fork_only" not in nat_ctx.caches
        assert fork_inst.fn(20, (nat(1), nat(4))) is SOME_TRUE
        assert parent_inst.fn(20, (nat(1), nat(4))) is SOME_TRUE

    def test_fork_stats_do_not_leak(self, nat_ctx):
        install_stats(nat_ctx)
        fork = nat_ctx.fork()
        chk = resolve(fork, CHECKER, "le", Mode.checker(2)).fn
        chk(20, (nat(2), nat(6)))
        assert stats_of(nat_ctx).checker_calls == 0


# -- satellite 2: concurrent resolve -----------------------------------------


class TestConcurrentResolve:
    def test_parallel_resolve_derives_once(self, list_ctx):
        """Many threads racing to resolve the same cold key all get
        the one instance the derive lock admits."""
        results = []
        errors = []
        barrier = threading.Barrier(8)

        def worker():
            try:
                barrier.wait()
                inst = resolve(list_ctx, CHECKER, "Sorted", Mode.checker(1))
                results.append(inst)
            except Exception as e:  # pragma: no cover - failure detail
                errors.append(e)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 8
        assert all(r is results[0] for r in results)

    def test_parallel_resolve_distinct_keys(self, nat_ctx):
        """Concurrent derivations of *different* instances do not
        corrupt each other's resolve stacks (the shared-stack bug)."""
        keys = [
            (CHECKER, "le", Mode.checker(2)),
            (ENUM, "le", Mode.from_string("oo")),
            (CHECKER, "ev", Mode.checker(1)),
            (ENUM, "ev", Mode.from_string("o")),
        ]
        errors = []
        barrier = threading.Barrier(len(keys))

        def worker(key):
            try:
                barrier.wait()
                resolve(nat_ctx, *key)
            except Exception as e:  # pragma: no cover - failure detail
                errors.append(e)

        threads = [threading.Thread(target=worker, args=(k,)) for k in keys]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        chk = resolve(nat_ctx, CHECKER, "le", Mode.checker(2)).fn
        assert chk(20, (nat(3), nat(7))) is SOME_TRUE

    def test_resolve_stack_is_per_session(self, nat_ctx):
        """The cycle-detection stack lives in session state, so a
        resolve in one session never sees another session's frames."""
        with use_session(nat_ctx):
            resolve(nat_ctx, CHECKER, "le", Mode.checker(2))
            assert nat_ctx.caches.get("resolve_stack") in ([], None)
        assert nat_ctx.caches.get("resolve_stack") in ([], None)

    def test_concurrent_checker_runs_with_memo(self, nat_ctx):
        """Full end-to-end race: per-thread sessions each memoizing
        their own shard, answers all correct."""
        chk = resolve(nat_ctx, CHECKER, "le", Mode.checker(2)).fn
        wrong = []
        barrier = threading.Barrier(4)

        def worker(i):
            with use_session(nat_ctx, nat_ctx.new_session(f"w{i}")):
                enable_memoization(nat_ctx)
                barrier.wait()
                for a in range(12):
                    for b in range(12):
                        got = chk(40, (nat(a), nat(b))) is SOME_TRUE
                        if got != (a <= b):
                            wrong.append((i, a, b, got))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not wrong


# -- satellite 1: box_nat cache ----------------------------------------------


class TestBoxNatCache:
    def test_values_correct_and_interned_below_cap(self):
        from repro.derive.specialize import _NAT_CACHE_MAX, box_nat

        for n in (0, 1, 2, 40, 1000):
            assert to_int(box_nat(n)) == n
        assert box_nat(17) is box_nat(17)
        assert len(__import__("repro.derive.specialize", fromlist=["x"])
                   ._NAT_CACHE) <= _NAT_CACHE_MAX

    def test_cache_is_capped(self):
        from repro.derive import specialize

        big = specialize._NAT_CACHE_MAX + 123
        v = specialize.box_nat(big)
        assert to_int(v) == big
        assert len(specialize._NAT_CACHE) <= specialize._NAT_CACHE_MAX

    def test_concurrent_growth_is_safe(self):
        from repro.derive import specialize

        errors = []
        barrier = threading.Barrier(8)

        def worker(seedling):
            try:
                barrier.wait()
                for n in range(seedling, 2000, 7):
                    if to_int(specialize.box_nat(n)) != n:
                        errors.append(n)
            except Exception as e:  # pragma: no cover - failure detail
                errors.append(e)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        cache = specialize._NAT_CACHE
        assert len(cache) <= specialize._NAT_CACHE_MAX
        # The cache remains a dense prefix: index n holds the nat n.
        for i in range(0, len(cache), 97):
            assert to_int(cache[i]) == i
