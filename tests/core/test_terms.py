"""Unit tests for the open-term language."""

import pytest

from repro.core.errors import EvaluationError
from repro.core.terms import (
    C,
    Ctor,
    F,
    Fun,
    Var,
    contains_fun,
    evaluate,
    free_vars,
    is_constructor_term,
    is_linear,
    subst,
    term_size,
    term_to_value,
    value_to_term,
    var_set,
)
from repro.core.values import V, from_int, to_int
from repro.stdlib import standard_context


class TestStructure:
    def test_free_vars_order_and_repetition(self):
        t = C("pair", Var("x"), C("S", Var("x")))
        assert list(free_vars(t)) == ["x", "x"]
        assert var_set(t) == frozenset({"x"})

    def test_is_linear(self):
        assert is_linear([Var("x"), Var("y")])
        assert not is_linear([Var("x"), C("S", Var("x"))])
        assert is_linear([C("pair", Var("a"), Var("b"))])

    def test_is_constructor_term(self):
        assert is_constructor_term(C("S", Var("n")))
        assert not is_constructor_term(F("plus", Var("n"), Var("m")))
        assert not is_constructor_term(C("S", F("plus", Var("n"), C("O"))))

    def test_contains_fun(self):
        assert contains_fun(C("S", F("plus", C("O"), C("O"))))
        assert not contains_fun(C("S", C("O")))

    def test_term_size(self):
        assert term_size(Var("x")) == 1
        assert term_size(C("S", C("S", C("O")))) == 3

    def test_str_rendering(self):
        assert str(C("S", Var("n"))) == "S n"
        assert str(C("cons", Var("x"), C("nil"))) == "cons x nil"
        assert str(C("S", C("S", Var("n")))) == "S (S n)"


class TestSubstitution:
    def test_subst_replaces_free_vars(self):
        t = C("pair", Var("x"), Var("y"))
        out = subst(t, {"x": C("O")})
        assert out == C("pair", C("O"), Var("y"))

    def test_subst_under_fun(self):
        t = F("plus", Var("n"), Var("n"))
        out = subst(t, {"n": C("O")})
        assert out == F("plus", C("O"), C("O"))


class TestEvaluation:
    def test_value_term_roundtrip(self):
        v = V("S", V("S", V("O")))
        assert term_to_value(value_to_term(v)) == v

    def test_term_to_value_rejects_vars(self):
        with pytest.raises(EvaluationError):
            term_to_value(Var("x"))

    def test_term_to_value_rejects_funs(self):
        with pytest.raises(EvaluationError):
            term_to_value(F("plus", C("O"), C("O")))

    def test_evaluate_function_calls(self):
        ctx = standard_context()
        t = F("plus", Var("n"), F("mult", Var("n"), Var("n")))
        result = evaluate(t, {"n": from_int(3)}, ctx)
        assert to_int(result) == 12

    def test_evaluate_unbound_raises(self):
        ctx = standard_context()
        with pytest.raises(EvaluationError):
            evaluate(Var("ghost"), {}, ctx)

    def test_evaluate_unknown_function_raises(self):
        ctx = standard_context()
        with pytest.raises(EvaluationError):
            evaluate(F("mystery", C("O")), {}, ctx)
