"""Unit tests for runtime values and stdlib encodings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.values import (
    NIL,
    TRUE,
    V,
    Value,
    from_bool,
    from_int,
    from_list,
    from_option,
    from_pair,
    iter_list,
    nat_list,
    render,
    to_bool,
    to_int,
    to_list,
    to_nat_list,
    to_option,
    to_pair,
    value_to_python,
)


class TestValueBasics:
    def test_equality_structural(self):
        assert V("S", V("O")) == V("S", V("O"))
        assert V("S", V("O")) != V("O")

    def test_hashable(self):
        s = {V("O"), V("S", V("O")), V("O")}
        assert len(s) == 2

    def test_size_and_depth(self):
        v = V("S", V("S", V("O")))
        assert v.size() == 3
        assert v.depth() == 3
        pair = V("pair", V("O"), V("S", V("O")))
        assert pair.size() == 4
        assert pair.depth() == 3

    def test_repr_roundtrips_through_str(self):
        assert str(V("O")) == "0"
        assert "Value" in repr(V("O"))


class TestNatEncoding:
    def test_zero(self):
        assert to_int(from_int(0)) == 0

    def test_roundtrip_small(self):
        for n in range(20):
            assert to_int(from_int(n)) == n

    @given(st.integers(min_value=0, max_value=500))
    def test_roundtrip_property(self, n):
        assert to_int(from_int(n)) == n

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            from_int(-1)

    def test_non_nat_rejected(self):
        with pytest.raises(ValueError):
            to_int(V("true"))


class TestListEncoding:
    def test_empty(self):
        assert to_list(NIL) == []
        assert from_list([]) == NIL

    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=12))
    def test_roundtrip_property(self, xs):
        assert to_nat_list(nat_list(xs)) == xs

    def test_iter_list_lazy(self):
        v = nat_list([1, 2, 3])
        assert [to_int(x) for x in iter_list(v)] == [1, 2, 3]

    def test_bad_list_rejected(self):
        with pytest.raises(ValueError):
            to_list(V("S", V("O")))


class TestOtherEncodings:
    def test_bool(self):
        assert to_bool(from_bool(True)) is True
        assert to_bool(from_bool(False)) is False
        with pytest.raises(ValueError):
            to_bool(V("O"))

    def test_option(self):
        assert to_option(from_option(None)) is None
        assert to_option(from_option(V("O"))) == V("O")

    def test_pair(self):
        a, b = to_pair(from_pair(V("O"), TRUE))
        assert a == V("O")
        assert b == TRUE


class TestRendering:
    def test_nat_renders_as_numeral(self):
        assert render(from_int(3)) == "3"

    def test_list_renders_with_brackets(self):
        assert render(nat_list([1, 2])) == "[1; 2]"

    def test_pair_renders_with_parens(self):
        assert render(from_pair(from_int(1), from_int(2))) == "(1, 2)"

    def test_ctor_with_args_parenthesizes(self):
        v = V("Arr", V("N"), V("Arr", V("N"), V("N")))
        assert render(v) == "Arr N (Arr N N)"

    def test_value_to_python(self):
        assert value_to_python(from_int(4)) == 4
        assert value_to_python(nat_list([1, 2])) == [1, 2]
        assert value_to_python(from_bool(True)) is True
        assert value_to_python(from_pair(from_int(1), TRUE)) == (1, True)
