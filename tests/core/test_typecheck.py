"""Tests for rule-variable type inference."""

import pytest

from repro.core import parse_declarations
from repro.core.errors import TypeMismatchError, UnknownNameError
from repro.core.relations import EqPremise, Relation, RelPremise, Rule
from repro.core.terms import C, F, Var
from repro.core.typecheck import infer_relation_types
from repro.core.types import NAT, Ty
from repro.stdlib import standard_context


@pytest.fixture
def ctx():
    return standard_context()


def make_rel(name, arg_types, rules):
    return Relation(name, tuple(arg_types), tuple(rules))


class TestInference:
    def test_infers_from_conclusion_positions(self, ctx):
        rel = make_rel(
            "r1", [NAT, Ty("bool")],
            [Rule("mk", (), (Var("n"), Var("b")))],
        )
        inferred = infer_relation_types(rel, ctx)
        assert inferred.rules[0].var_types == {"n": NAT, "b": Ty("bool")}

    def test_infers_through_constructors(self, ctx):
        rel = make_rel(
            "r2", [Ty("list", (NAT,))],
            [Rule("mk", (), (C("cons", Var("x"), Var("rest")),))],
        )
        inferred = infer_relation_types(rel, ctx)
        assert inferred.rules[0].var_types == {
            "x": NAT,
            "rest": Ty("list", (NAT,)),
        }

    def test_infers_through_function_signatures(self, ctx):
        rel = make_rel(
            "r3", [NAT],
            [Rule("mk", (), (F("plus", Var("a"), Var("b")),))],
        )
        inferred = infer_relation_types(rel, ctx)
        assert inferred.rules[0].var_types == {"a": NAT, "b": NAT}

    def test_annotates_equality_premises(self, ctx):
        rel = make_rel(
            "r4", [NAT],
            [Rule("mk", (EqPremise(Var("n"), C("O")),), (Var("n"),))],
        )
        inferred = infer_relation_types(rel, ctx)
        premise = inferred.rules[0].premises[0]
        assert isinstance(premise, EqPremise) and premise.ty == NAT

    def test_premise_types_from_other_relations(self, ctx):
        parse_declarations(
            ctx,
            "Inductive isnil : list nat -> Prop := | mk : isnil [].",
        )
        rel = make_rel(
            "r5", [Ty("list", (NAT,))],
            [Rule("mk", (RelPremise("isnil", (Var("l"),)),), (Var("l"),))],
        )
        inferred = infer_relation_types(rel, ctx)
        assert inferred.rules[0].var_types["l"] == Ty("list", (NAT,))

    def test_polymorphic_list_function_instantiated(self, ctx):
        # app : list A -> list A -> list A used at list nat.
        rel = make_rel(
            "r6", [Ty("list", (NAT,))],
            [Rule("mk", (), (F("app", Var("xs"), Var("ys")),))],
        )
        inferred = infer_relation_types(rel, ctx)
        assert inferred.rules[0].var_types["xs"] == Ty("list", (NAT,))


class TestErrors:
    def test_type_clash_detected(self, ctx):
        rel = make_rel(
            "bad1", [NAT],
            [Rule("mk", (), (C("true"),))],
        )
        with pytest.raises(TypeMismatchError):
            infer_relation_types(rel, ctx)

    def test_same_var_two_types_clash(self, ctx):
        rel = make_rel(
            "bad2", [NAT, Ty("bool")],
            [Rule("mk", (), (Var("x"), Var("x")))],
        )
        with pytest.raises(TypeMismatchError):
            infer_relation_types(rel, ctx)

    def test_unknown_constructor(self, ctx):
        rel = make_rel("bad3", [NAT], [Rule("mk", (), (C("Ghost"),))])
        with pytest.raises(UnknownNameError):
            infer_relation_types(rel, ctx)

    def test_ambiguous_variable_rejected(self, ctx):
        # x never constrained to a concrete type.
        rel = make_rel(
            "bad4", [NAT],
            [
                Rule(
                    "mk",
                    (EqPremise(Var("x"), Var("y")),),
                    (C("O"),),
                )
            ],
        )
        with pytest.raises(TypeMismatchError):
            infer_relation_types(rel, ctx)
