"""Tests for the Coq-like surface syntax."""

import pytest

from repro.core import parse_declarations
from repro.core.errors import ParseError
from repro.core.parser import parse_term_text
from repro.core.relations import EqPremise, Relation, RelPremise, Span
from repro.core.terms import Ctor, Fun, Var
from repro.core.types import Ty
from repro.stdlib import standard_context


@pytest.fixture
def ctx():
    return standard_context()


class TestDatatypeDeclarations:
    def test_simple_enum(self, ctx):
        (dt,) = parse_declarations(
            ctx, "Inductive color : Type := | Red : color | Blue : color."
        )
        assert dt.name == "color"
        assert [c.name for c in dt.constructors] == ["Red", "Blue"]

    def test_recursive_datatype(self, ctx):
        (dt,) = parse_declarations(
            ctx,
            "Inductive tree : Type := | Leaf : tree "
            "| Node : tree -> nat -> tree -> tree.",
        )
        node = dt.constructor("Node")
        assert node.arg_types == (Ty("tree"), Ty("nat"), Ty("tree"))
        assert dt.is_recursive_constructor("Node")
        assert not dt.is_recursive_constructor("Leaf")

    def test_polymorphic_datatype(self, ctx):
        (dt,) = parse_declarations(
            ctx,
            "Inductive mylist (A : Type) : Type := "
            "| mynil : mylist A | mycons : A -> mylist A -> mylist A.",
        )
        assert dt.params == ("A",)

    def test_constructor_must_build_the_type(self, ctx):
        with pytest.raises(ParseError):
            parse_declarations(
                ctx, "Inductive c1 : Type := | Mk : nat."
            )


class TestRelationDeclarations:
    def test_le(self, ctx):
        (rel,) = parse_declarations(
            ctx,
            """
            Inductive le : nat -> nat -> Prop :=
            | le_n : forall n, le n n
            | le_S : forall n m, le n m -> le n (S m).
            """,
        )
        assert isinstance(rel, Relation)
        assert rel.arity == 2
        le_s = rel.rule("le_S")
        assert len(le_s.premises) == 1
        assert isinstance(le_s.premises[0], RelPremise)
        assert le_s.var_types == {"n": Ty("nat"), "m": Ty("nat")}

    def test_negated_premise(self, ctx):
        decls = parse_declarations(
            ctx,
            """
            Inductive iszero : nat -> Prop := | isz : iszero 0.

            Inductive notzero : nat -> Prop :=
            | nz : forall n, ~ iszero n -> notzero n.
            """,
        )
        premise = decls[1].rules[0].premises[0]
        assert isinstance(premise, RelPremise) and premise.negated

    def test_equality_premise(self, ctx):
        (rel,) = parse_declarations(
            ctx,
            """
            Inductive diag : nat -> nat -> Prop :=
            | dg : forall n m, n = m -> diag n m.
            """,
        )
        premise = rel.rules[0].premises[0]
        assert isinstance(premise, EqPremise)
        assert premise.ty == Ty("nat")

    def test_disequality_premise(self, ctx):
        (rel,) = parse_declarations(
            ctx,
            """
            Inductive offdiag : nat -> nat -> Prop :=
            | od : forall n m, n <> m -> offdiag n m.
            """,
        )
        premise = rel.rules[0].premises[0]
        assert isinstance(premise, EqPremise) and premise.negated

    def test_conclusion_must_match_relation(self, ctx):
        with pytest.raises(ParseError):
            parse_declarations(
                ctx,
                """
                Inductive a1 : nat -> Prop := | mk : forall n, le n n.
                """,
            )

    def test_infix_sugar_in_rules(self, ctx):
        (rel,) = parse_declarations(
            ctx,
            """
            Inductive sums : nat -> nat -> nat -> Prop :=
            | mk : forall a b, sums a b (a + b).
            """,
        )
        conclusion = rel.rules[0].conclusion
        assert conclusion[2] == Fun("plus", (Var("a"), Var("b")))

    def test_mutual_block(self, ctx):
        decls = parse_declarations(
            ctx,
            """
            Inductive even : nat -> Prop :=
            | even_0 : even 0
            | even_S : forall n, odd n -> even (S n)
            with odd : nat -> Prop :=
            | odd_S : forall n, even n -> odd (S n).
            """,
        )
        assert [d.name for d in decls] == ["even", "odd"]
        assert ctx.relations.get("odd").rules[0].premises[0].rel == "even"

    def test_comments_ignored(self, ctx):
        parse_declarations(
            ctx,
            """
            (* a comment (* nested *) here *)
            Inductive c2 : nat -> Prop := | mk : c2 0.
            """,
        )
        assert "c2" in ctx.relations


class TestTermParsing:
    def test_numerals_expand_to_peano(self, ctx):
        t = parse_term_text(ctx, "2")
        assert t == Ctor("S", (Ctor("S", (Ctor("O", ()),)),))

    def test_list_literal(self, ctx):
        t = parse_term_text(ctx, "[0; 1]")
        assert t.name == "cons"

    def test_empty_list(self, ctx):
        assert parse_term_text(ctx, "[]") == Ctor("nil", ())

    def test_pair_literal(self, ctx):
        t = parse_term_text(ctx, "(0, 1)")
        assert t.name == "pair"

    def test_operator_precedence(self, ctx):
        t = parse_term_text(ctx, "1 + 2 * 3")
        assert t.name == "plus"
        assert t.args[1].name == "mult"

    def test_cons_right_associative(self, ctx):
        t = parse_term_text(ctx, "0 :: 1 :: []")
        assert t.name == "cons"
        assert t.args[1].name == "cons"

    def test_append_operator(self, ctx):
        t = parse_term_text(ctx, "[] ++ []")
        assert t == Fun("app", (Ctor("nil", ()), Ctor("nil", ())))

    def test_trailing_garbage_rejected(self, ctx):
        with pytest.raises(ParseError):
            parse_term_text(ctx, "0 )")

    def test_unterminated_comment(self, ctx):
        with pytest.raises(ParseError):
            parse_declarations(ctx, "(* oops")


class TestErrorLocations:
    def test_error_carries_line_and_column(self, ctx):
        with pytest.raises(ParseError) as info:
            parse_declarations(ctx, "Inductive x : Type :=\n| bad bad : x.")
        assert info.value.line == 2

    def test_bad_premise_points_at_its_start(self, ctx):
        # A multi-token premise that isn't a relation application must
        # be reported at its first token, not wherever the parser gave
        # up.
        with pytest.raises(ParseError) as info:
            parse_declarations(
                ctx,
                "Inductive p : nat -> Prop :=\n"
                "| bad : forall n,    S n -> p n.",
            )
        assert "expected a relation application" in str(info.value)
        assert (info.value.line, info.value.column) == (2, 22)

    def test_negated_non_premise_reports_inner_position(self, ctx):
        with pytest.raises(ParseError) as info:
            parse_declarations(
                ctx,
                "Inductive p : nat -> Prop :=\n| bad : forall n, ~ n -> p n.",
            )
        assert info.value.line == 2


class TestDeclarationSpans:
    SRC = (
        "\n"
        "Inductive le : nat -> nat -> Prop :=\n"
        "| le_n : forall n, le n n\n"
        "| le_S : forall n m, le n m -> le n (S m).\n"
    )

    def test_relation_span_is_the_name_token(self, ctx):
        parse_declarations(ctx, self.SRC)
        rel = ctx.relations.get("le")
        assert rel.span == Span(2, 11)

    def test_rule_spans_point_at_rule_names(self, ctx):
        parse_declarations(ctx, self.SRC)
        rel = ctx.relations.get("le")
        assert [r.span for r in rel.rules] == [Span(3, 3), Span(4, 3)]

    def test_spans_survive_type_inference(self, ctx):
        # declare_relation rebuilds rules via replace(); the spans must
        # ride along so diagnostics can point into the source.
        parse_declarations(ctx, self.SRC)
        rel = ctx.relations.get("le")
        assert all(r.span is not None for r in rel.rules)
