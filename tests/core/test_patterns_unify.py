"""Tests for pattern matching and unification."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.patterns import instantiate, match, match_all
from repro.core.terms import C, Ctor, Term, Var, value_to_term
from repro.core.unify import resolve, unify, walk
from repro.core.values import V, from_int


class TestMatch:
    def test_var_binds(self):
        binding = {}
        assert match(Var("x"), from_int(3), binding)
        assert binding == {"x": from_int(3)}

    def test_ctor_match(self):
        binding = {}
        assert match(C("S", Var("n")), from_int(2), binding)
        assert binding["n"] == from_int(1)

    def test_ctor_mismatch(self):
        assert not match(C("O"), from_int(1), {})

    def test_nonlinear_as_equality(self):
        pattern = C("pair", Var("x"), Var("x"))
        assert match(pattern, V("pair", from_int(1), from_int(1)), {})
        assert not match(pattern, V("pair", from_int(1), from_int(2)), {})

    def test_match_all(self):
        binding = match_all((Var("a"), C("S", Var("b"))), (from_int(0), from_int(4)))
        assert binding == {"a": from_int(0), "b": from_int(3)}
        assert match_all((C("O"),), (from_int(1),)) is None

    def test_instantiate_inverse_of_match(self):
        pattern = C("cons", Var("x"), Var("rest"))
        value = V("cons", from_int(1), V("nil"))
        binding = {}
        assert match(pattern, value, binding)
        assert instantiate(pattern, binding) == value


def _value_strategy():
    return st.recursive(
        st.sampled_from([V("O"), V("true"), V("false"), V("nil")]),
        lambda children: st.builds(
            lambda a: V("S", a), children
        ) | st.builds(lambda a, b: V("cons", a, b), children, children),
        max_leaves=8,
    )


class TestUnify:
    def test_var_against_term(self):
        s = unify(Var("x"), value_to_term(from_int(2)), {})
        assert s is not None
        assert resolve(Var("x"), s) == value_to_term(from_int(2))

    def test_occurs_check(self):
        assert unify(Var("x"), C("S", Var("x")), {}) is None

    def test_clash(self):
        assert unify(C("O"), C("true"), {}) is None

    def test_two_vars_unify(self):
        s = unify(Var("x"), Var("y"), {})
        assert s is not None
        s2 = unify(Var("x"), C("O"), s)
        assert resolve(Var("y"), s2) == C("O")

    def test_input_subst_not_mutated(self):
        s0 = {}
        unify(Var("x"), C("O"), s0)
        assert s0 == {}

    @given(_value_strategy())
    def test_ground_self_unification(self, v):
        t = value_to_term(v)
        assert unify(t, t, {}) == {}

    @given(_value_strategy(), _value_strategy())
    def test_ground_unification_is_equality(self, a, b):
        ta, tb = value_to_term(a), value_to_term(b)
        result = unify(ta, tb, {})
        assert (result is not None) == (a == b)

    @given(_value_strategy())
    def test_pattern_extraction(self, v):
        # S-pattern matches exactly the successors.
        s = unify(C("S", Var("p")), value_to_term(v), {})
        assert (s is not None) == (v.ctor == "S")

    def test_walk_chases_chains(self):
        s = {"x": Var("y"), "y": C("O")}
        assert walk(Var("x"), s) == C("O")
