"""Tests for the standard library and the datatype registry."""

import pytest

from repro.core.datatypes import ConstructorSig, DataType
from repro.core.errors import DeclarationError, UnknownNameError
from repro.core.types import BOOL, NAT, Ty, TyVar
from repro.core.values import (
    FALSE,
    TRUE,
    V,
    from_bool,
    from_int,
    from_list,
    nat_list,
    to_bool,
    to_int,
)
from repro.stdlib import standard_context


@pytest.fixture(scope="module")
def ctx():
    return standard_context()


class TestStandardFunctions:
    @pytest.mark.parametrize(
        "name,args,expected",
        [
            ("plus", (3, 4), 7),
            ("mult", (3, 4), 12),
            ("minus", (7, 3), 4),
            ("minus", (3, 7), 0),  # truncated, as in Coq
            ("pred", (5,), 4),
            ("pred", (0,), 0),
            ("succ", (5,), 6),
            ("double", (5,), 10),
            ("max", (3, 9), 9),
            ("min", (3, 9), 3),
        ],
    )
    def test_nat_functions(self, ctx, name, args, expected):
        fn = ctx.functions.require(name)
        result = fn.apply(tuple(from_int(a) for a in args))
        assert to_int(result) == expected

    @pytest.mark.parametrize(
        "name,args,expected",
        [
            ("leb", (3, 4), True),
            ("leb", (4, 3), False),
            ("ltb", (3, 3), False),
            ("eqb", (3, 3), True),
            ("eqb", (3, 4), False),
        ],
    )
    def test_comparisons(self, ctx, name, args, expected):
        fn = ctx.functions.require(name)
        assert to_bool(fn.apply(tuple(from_int(a) for a in args))) == expected

    def test_boolean_functions(self, ctx):
        f = lambda name, *args: ctx.functions.require(name).apply(args)
        assert f("negb", TRUE) == FALSE
        assert f("andb", TRUE, FALSE) == FALSE
        assert f("andb", TRUE, TRUE) == TRUE
        assert f("orb", FALSE, TRUE) == TRUE

    def test_list_functions(self, ctx):
        f = lambda name, *args: ctx.functions.require(name).apply(args)
        xs = nat_list([1, 2])
        ys = nat_list([3])
        assert f("app", xs, ys) == nat_list([1, 2, 3])
        assert to_int(f("length", xs)) == 2
        assert f("rev", xs) == nat_list([2, 1])
        assert f("repeat", from_int(7), from_int(3)) == nat_list([7, 7, 7])
        assert f("tl", xs) == nat_list([2])
        assert f("hd_error", xs) == V("Some", from_int(1))
        assert f("hd_error", nat_list([])) == V("None")

    def test_pair_projections(self, ctx):
        f = lambda name, *args: ctx.functions.require(name).apply(args)
        p = V("pair", from_int(1), TRUE)
        assert f("fst", p) == from_int(1)
        assert f("snd", p) == TRUE


class TestDataTypeRegistry:
    def test_ownership(self, ctx):
        assert ctx.datatypes.owner_of("S").name == "nat"
        assert ctx.datatypes.owner_of("cons").name == "list"
        with pytest.raises(UnknownNameError):
            ctx.datatypes.owner_of("Ghost")

    def test_recursive_constructor_detection(self, ctx):
        nat = ctx.datatypes.get("nat")
        assert nat.is_recursive_constructor("S")
        assert not nat.is_recursive_constructor("O")
        assert [c.name for c in nat.base_constructors] == ["O"]

    def test_polymorphic_arg_types(self, ctx):
        lst = ctx.datatypes.get("list")
        assert lst.constructor_arg_types("cons", (NAT,)) == (
            NAT,
            Ty("list", (NAT,)),
        )

    def test_check_value(self, ctx):
        assert ctx.datatypes.check_value(from_int(3), NAT)
        assert not ctx.datatypes.check_value(from_int(3), BOOL)
        assert ctx.datatypes.check_value(nat_list([1]), Ty("list", (NAT,)))
        assert not ctx.datatypes.check_value(
            from_list([TRUE]), Ty("list", (NAT,))
        )

    def test_duplicate_datatype_rejected(self, ctx):
        child = ctx.fork()
        with pytest.raises(DeclarationError):
            child.declare_datatype(DataType("nat", (), ()))

    def test_duplicate_constructor_rejected(self, ctx):
        child = ctx.fork()
        with pytest.raises(DeclarationError):
            child.declare_datatype(
                DataType("nat2", (), (ConstructorSig("O", ()),))
            )

    def test_fork_isolates(self, ctx):
        child = ctx.fork()
        child.declare_datatype(DataType("color", (), (ConstructorSig("Red", ()),)))
        assert "color" in child.datatypes
        assert "color" not in ctx.datatypes
