"""Tests for surface-syntax function definitions (Fixpoint/Definition)."""

import pytest

from repro.core import parse_declarations
from repro.core.errors import EvaluationError, ParseError
from repro.core.values import from_int, nat_list, to_bool, to_int
from repro.stdlib import standard_context


@pytest.fixture
def ctx():
    return standard_context()


def define(ctx, text):
    return parse_declarations(ctx, text)


class TestDefinitions:
    def test_simple_definition(self, ctx):
        define(ctx, """
            Definition is_zero (n : nat) : bool :=
              match n with | O => true | S m => false end.
        """)
        f = ctx.functions.require("is_zero")
        assert to_bool(f.apply((from_int(0),)))
        assert not to_bool(f.apply((from_int(3),)))

    def test_body_without_match(self, ctx):
        define(ctx, "Definition add3 (n : nat) : nat := n + 3.")
        assert to_int(ctx.functions.require("add3").apply((from_int(4),))) == 7

    def test_multiple_params(self, ctx):
        define(ctx, """
            Definition swap_diff (a : nat) (b : nat) : nat := b - a.
        """)
        f = ctx.functions.require("swap_diff")
        assert to_int(f.apply((from_int(2), from_int(9)))) == 7

    def test_grouped_params(self, ctx):
        define(ctx, "Definition addp (a b : nat) : nat := a + b.")
        f = ctx.functions.require("addp")
        assert f.arity == 2


class TestFixpoints:
    def test_recursion(self, ctx):
        define(ctx, """
            Fixpoint fact (n : nat) : nat :=
              match n with
              | O => 1
              | S m => n * fact m
              end.
        """)
        f = ctx.functions.require("fact")
        assert to_int(f.apply((from_int(5),))) == 120

    def test_list_recursion(self, ctx):
        define(ctx, """
            Fixpoint sum_list (l : list nat) : nat :=
              match l with
              | [] => 0
              | x :: rest => x + sum_list rest
              end.
        """)
        f = ctx.functions.require("sum_list")
        assert to_int(f.apply((nat_list([1, 2, 3, 4]),))) == 10

    def test_nested_match(self, ctx):
        define(ctx, """
            Fixpoint fib (n : nat) : nat :=
              match n with
              | O => O
              | S m => match m with
                       | O => 1
                       | S k => fib m + fib k
                       end
              end.
        """)
        f = ctx.functions.require("fib")
        assert [to_int(f.apply((from_int(n),))) for n in range(8)] == [
            0, 1, 1, 2, 3, 5, 8, 13,
        ]

    def test_match_fallthrough_raises(self, ctx):
        define(ctx, """
            Definition partial (n : nat) : nat :=
              match n with | S m => m end.
        """)
        f = ctx.functions.require("partial")
        with pytest.raises(EvaluationError):
            f.apply((from_int(0),))


class TestIntegrationWithDerivation:
    def test_relation_over_defined_function(self, ctx):
        define(ctx, """
            Fixpoint double_fn (n : nat) : nat :=
              match n with
              | O => O
              | S m => S (S (double_fn m))
              end.

            Inductive doubled : nat -> nat -> Prop :=
            | dbl : forall n, doubled n (double_fn n).
        """)
        from repro.derive import derive_checker, derive_enumerator

        chk = derive_checker(ctx, "doubled")
        assert chk(4, from_int(3), from_int(6)).is_true
        assert chk(4, from_int(3), from_int(7)).is_false
        inverse = derive_enumerator(ctx, "doubled", "oi")
        assert [to_int(t[0]) for t in inverse.values(10, from_int(8))] == [4]


class TestParseErrors:
    def test_match_outside_function_body(self, ctx):
        with pytest.raises(ParseError):
            parse_declarations(ctx, """
                Inductive bad : nat -> Prop :=
                | b : forall n, bad (match n with | O => O end).
            """)

    def test_empty_match_rejected(self, ctx):
        with pytest.raises(ParseError):
            define(ctx, "Definition f (n : nat) : nat := match n with end.")

    def test_params_required(self, ctx):
        with pytest.raises(ParseError):
            define(ctx, "Definition c : nat := 3.")
