"""Shared fixtures: contexts with commonly used relations."""

from __future__ import annotations

import pytest

from repro.core import parse_declarations
from repro.stdlib import standard_context

NAT_RELATIONS = """
Inductive le : nat -> nat -> Prop :=
| le_n : forall n, le n n
| le_S : forall n m, le n m -> le n (S m).

Inductive ev : nat -> Prop :=
| ev_0 : ev 0
| ev_SS : forall n, ev n -> ev (S (S n)).

Inductive square_of : nat -> nat -> Prop :=
| sq : forall n, square_of n (n * n).
"""

LIST_RELATIONS = """
Inductive Sorted : list nat -> Prop :=
| Sorted_nil : Sorted []
| Sorted_sing : forall x, Sorted [x]
| Sorted_cons : forall x y l, le x y -> Sorted (y :: l) -> Sorted (x :: y :: l).

Inductive InNat : nat -> list nat -> Prop :=
| In_here : forall x l, InNat x (x :: l)
| In_there : forall x y l, InNat x l -> InNat x (y :: l).
"""

STLC_DECLS = """
Inductive type : Type :=
| N : type
| Arr : type -> type -> type.

Inductive term : Type :=
| Con : nat -> term
| Add : term -> term -> term
| Vart : nat -> term
| App : term -> term -> term
| Abs : type -> term -> term.

Inductive lookup : list type -> nat -> type -> Prop :=
| lookup_here : forall t G, lookup (t :: G) 0 t
| lookup_there : forall t t2 G n, lookup G n t -> lookup (t2 :: G) (S n) t.

Inductive typing : list type -> term -> type -> Prop :=
| TCon : forall G n, typing G (Con n) N
| TAdd : forall G e1 e2,
    typing G e1 N -> typing G e2 N -> typing G (Add e1 e2) N
| TAbs : forall G e t1 t2,
    typing (t1 :: G) e t2 -> typing G (Abs t1 e) (Arr t1 t2)
| TVar : forall G x t, lookup G x t -> typing G (Vart x) t
| TApp : forall G e1 e2 t1 t2,
    typing G e2 t1 -> typing G e1 (Arr t1 t2) -> typing G (App e1 e2) t2.
"""

ZERO_DECL = """
Inductive zero : nat -> Prop :=
| Zero : zero 0
| NonZero : forall n, zero (S n) -> zero n.
"""


@pytest.fixture
def ctx():
    """A fresh standard context (no extra relations)."""
    return standard_context()


@pytest.fixture
def nat_ctx():
    c = standard_context()
    parse_declarations(c, NAT_RELATIONS)
    return c


@pytest.fixture
def list_ctx():
    c = standard_context()
    parse_declarations(c, NAT_RELATIONS)
    parse_declarations(c, LIST_RELATIONS)
    return c


@pytest.fixture
def stlc_ctx():
    c = standard_context()
    parse_declarations(c, STLC_DECLS)
    return c


@pytest.fixture
def zero_ctx():
    c = standard_context()
    parse_declarations(c, ZERO_DECL)
    return c
