"""Observation sessions: lifecycle, outcome encodings, backend
identity, and the QuickChick integration."""

from __future__ import annotations

import random

import pytest

from repro.core.values import from_int, nat_list
from repro.derive import (
    Mode,
    derive_checker,
    derive_enumerator,
    derive_generator,
    profile,
    trace_of,
)
from repro.derive.instances import CHECKER, resolve_compiled
from repro.derive.stats import STATS_KEY, stats_of
from repro.derive.trace import OBSERVE_KEY, TRACE_KEY
from repro.observe import Observation, observe
from repro.quickchick import classify, collect, for_all, quick_check


class TestLifecycle:
    def test_installs_and_removes_keys(self, nat_ctx):
        assert OBSERVE_KEY not in nat_ctx.caches
        with observe(nat_ctx) as obs:
            assert nat_ctx.caches[OBSERVE_KEY] is obs
            assert nat_ctx.caches[TRACE_KEY] is obs.trace
            assert stats_of(nat_ctx) is not None
        assert OBSERVE_KEY not in nat_ctx.caches
        assert TRACE_KEY not in nat_ctx.caches
        assert STATS_KEY not in nat_ctx.caches

    def test_restores_profile_trace(self, nat_ctx):
        with profile(nat_ctx) as tr:
            with observe(nat_ctx) as obs:
                assert trace_of(nat_ctx) is obs.trace
            assert trace_of(nat_ctx) is tr

    def test_nested_observe_restores_outer(self, nat_ctx):
        with observe(nat_ctx) as outer:
            with observe(nat_ctx) as inner:
                assert nat_ctx.caches[OBSERVE_KEY] is inner
            assert nat_ctx.caches[OBSERVE_KEY] is outer

    def test_all_spans_closed_after_block(self, nat_ctx):
        enum = derive_enumerator(nat_ctx, "le", "io")
        with observe(nat_ctx) as obs:
            next(iter(enum(4, from_int(0))))  # abandoned at top level
        assert not obs.spans.stack
        assert all(s.closed for s in obs.spans)
        assert any(s.outcome == "open" for s in obs.spans)

    def test_observation_does_not_change_answers(self, list_ctx):
        sorted_checker = derive_checker(list_ctx, "Sorted")
        args = [nat_list(xs) for xs in ([], [1, 2, 3], [3, 1])]
        plain = [sorted_checker(10, a) for a in args]
        with observe(list_ctx):
            traced = [sorted_checker(10, a) for a in args]
        assert plain == traced

    def test_span_cap_bounds_long_runs(self, nat_ctx):
        le = derive_checker(nat_ctx, "le")
        with observe(nat_ctx, span_cap=8) as obs:
            for hi in range(20):
                le(30, from_int(1), from_int(hi))
        assert len(obs.spans) == 8
        assert obs.spans.dropped > 0
        # The trace keeps counting past the ring: coverage is complete.
        assert obs.coverage().fired("le") == {"le_n", "le_S"}


class TestOutcomeEncodings:
    def test_checker_true_false_fuel(self, nat_ctx):
        ev = derive_checker(nat_ctx, "ev")
        with observe(nat_ctx) as obs:
            assert ev(10, from_int(4)).is_true
            assert ev(10, from_int(3)).is_false
            assert ev(1, from_int(6)).is_none
        roots = obs.spans.roots()
        assert [s.outcome for s in roots] == ["true", "false", "fuel"]
        h = obs.metrics.histograms["checker.fuel_at_answer"]
        assert h.count == 2  # fuel-outs have no definite answer

    def test_enum_value_counts_and_fuel(self, nat_ctx):
        import re

        enum = derive_enumerator(nat_ctx, "le", "io")
        with observe(nat_ctx) as obs:
            n = sum(1 for _ in enum(3, from_int(0)))
        assert n > 0
        enum_spans = [s for s in obs.spans if s.kind == "enum"]
        assert enum_spans
        # Every drained enum span encodes its value count (and whether
        # it observed fuel exhaustion) in the outcome.
        for s in enum_spans:
            assert re.fullmatch(r"\d+v(\+fuel)?", s.outcome), s.outcome
        assert "enum.slice_depth" in obs.metrics.histograms

    def test_gen_value_and_fuel(self, nat_ctx):
        gen = derive_generator(nat_ctx, "le", "io")
        with observe(nat_ctx) as obs:
            for seed in range(10):
                gen(5, from_int(2), rng=random.Random(seed))
        outcomes = {s.outcome for s in obs.spans if s.kind == "gen"}
        assert "value" in outcomes
        assert obs.metrics.histograms["gen.retries"].count > 0
        # Entry-level successful samples record their value sizes.
        sizes = obs.metrics.histograms["gen.value_size"]
        assert sizes.count > 0

    def test_abandoned_enum_under_checker(self, nat_ctx):
        from repro.core import parse_declarations

        parse_declarations(
            nat_ctx,
            """
Inductive reach : nat -> Prop :=
| r : forall n m, le n m -> reach n.
""",
        )
        chk = derive_checker(nat_ctx, "reach")
        with observe(nat_ctx) as obs:
            assert chk(6, from_int(2)).is_true
        tree = obs.spans.tree(obs.spans.roots()[0])
        assert "checker:reach[i]" in tree
        assert "enum:le[io]" in tree
        enum_span = next(s for s in obs.spans if s.kind == "enum")
        assert enum_span.outcome == "abandoned"


class TestBackendIdentity:
    def _spans_and_coverage(self, ctx, run):
        with observe(ctx) as obs:
            run()
        return obs.spans.identities(), obs.coverage().table

    def test_interp_and_compiled_checker_identical(self, list_ctx):
        interp = derive_checker(list_ctx, "Sorted")
        compiled = resolve_compiled(list_ctx, CHECKER, "Sorted", Mode.checker(1))
        pool = [nat_list(xs) for xs in ([], [1], [1, 2, 3], [2, 1], [1, 3, 2])]
        ids_i, cov_i = self._spans_and_coverage(
            list_ctx, lambda: [interp(8, a) for a in pool]
        )
        ids_c, cov_c = self._spans_and_coverage(
            list_ctx, lambda: [compiled(8, (a,)) for a in pool]
        )
        assert ids_i, "no spans recorded"
        assert ids_i == ids_c
        assert cov_i == cov_c

    def test_mixed_backends_aggregate_one_trace(self, nat_ctx):
        interp = derive_checker(nat_ctx, "le")
        compiled = resolve_compiled(nat_ctx, CHECKER, "le", Mode.checker(2))
        args = (from_int(2), from_int(5))
        with observe(nat_ctx) as obs:
            interp(10, *args)
            compiled(10, args)
        # One trace, one key space: both backends land in the same rows
        # (the PR 3 contract), so every entry counts exactly twice.
        cov = obs.coverage()
        rules = cov.table[("le", "ii", "checker")]
        assert all(att % 2 == 0 for att, _ in rules.values())
        # And the two span subtrees are identical apart from sids.
        roots = obs.spans.roots()
        assert len(roots) == 2
        t1, t2 = (obs.spans.tree(r) for r in roots)
        assert t1 == t2


class TestQuickChickIntegration:
    def _le_property(self, nat_ctx, labeller=None):
        gen = derive_generator(nat_ctx, "le", "io")
        check = derive_checker(nat_ctx, "le")

        def draw(size, rng):
            out = gen(size, from_int(3), rng=rng)
            return out

        def prop(value):
            (m,) = value
            return check(10, from_int(3), m)

        judged = labeller(prop) if labeller else prop
        return for_all(draw, judged, "le 3 m sound")

    def test_collect_labels_distribution(self, nat_ctx):
        prop = self._le_property(
            nat_ctx, lambda p: collect(lambda v: f"m={v[0].size()}", p)
        )
        report = quick_check(prop, num_tests=50, size=5, seed=11)
        assert not report.failed
        assert report.labels
        assert sum(report.labels.values()) == report.tests_run
        assert all(label.startswith("m=") for label in report.labels)
        assert any("%" in line for line in str(report).splitlines()[1:])

    def test_classify_labels_condition(self, nat_ctx):
        prop = self._le_property(
            nat_ctx, lambda p: classify(lambda v: v[0].size() <= 2, "small", p)
        )
        report = quick_check(prop, num_tests=50, size=5, seed=11)
        assert set(report.labels) <= {"small"}

    def test_observe_attaches_observation(self, nat_ctx):
        prop = self._le_property(nat_ctx)
        report = quick_check(
            prop, num_tests=30, size=5, seed=7, observe=nat_ctx
        )
        assert isinstance(report.observation, Observation)
        assert len(report.observation.spans) > 0
        assert report.coverage is not None
        assert report.coverage.fired("le", kind="gen")
        # The session was uninstalled when quick_check returned.
        assert OBSERVE_KEY not in nat_ctx.caches

    def test_observe_does_not_change_verdicts(self, nat_ctx):
        prop = self._le_property(nat_ctx)
        plain = quick_check(prop, num_tests=30, size=5, seed=7)
        observed = quick_check(
            prop, num_tests=30, size=5, seed=7, observe=nat_ctx
        )
        assert plain.tests_run == observed.tests_run
        assert plain.discards == observed.discards
        assert plain.failed == observed.failed

    def test_coverage_none_without_observe(self, nat_ctx):
        report = quick_check(self._le_property(nat_ctx), num_tests=5, seed=3)
        assert report.observation is None
        assert report.coverage is None

    def test_discard_rate(self):
        from repro.quickchick.runner import CheckReport

        assert CheckReport("p").discard_rate == 0.0
        r = CheckReport("p", tests_run=75, discards=25)
        assert r.discard_rate == 0.25
        assert "25% discard rate" in str(r)
