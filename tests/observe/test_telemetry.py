"""The serving telemetry surface: time histograms, sampling policy,
event merging, and the exporters.

These tests pin the contracts the serving layer builds on:
microsecond-bucketed percentiles, deterministic sampling, qid
renumbering across shard merges (field for field, like span sids),
and the two export formats (JSONL round-trip, Prometheus text).
"""

from __future__ import annotations

import pickle

from repro.observe.export import (
    read_jsonl,
    render_prometheus,
    write_telemetry_jsonl,
)
from repro.observe.merge import merge_telemetry
from repro.observe.metrics import Histogram, Metrics, TimeHistogram
from repro.observe.telemetry import QueryEvent, Telemetry


class TestTimeHistogram:
    def test_observes_seconds_buckets_microseconds(self):
        h = TimeHistogram("t")
        h.observe(0.000003)   # 3 us: exact bucket
        h.observe(0.001)      # 1000 us: power-of-two bucket 512
        assert h.count == 2
        assert set(h.buckets) == {3, 512}
        assert h.unit == "seconds"

    def test_total_min_max_stay_exact(self):
        h = TimeHistogram("t")
        h.observe(0.0015)
        h.observe(0.0005)
        assert abs(h.total - 0.002) < 1e-12
        assert h.min == 0.0005 and h.max == 0.0015

    def test_quantiles_are_bucket_edges_clamped(self):
        h = TimeHistogram("t")
        for ms in range(1, 11):
            h.observe(ms / 1000.0)
        # The 5th of 10 values (5ms) lands in the 4096..8191us bucket;
        # the quantile reports the bucket's upper edge.
        assert h.p50 == 0.008192
        # p99 clamps to the exact observed max, not the bucket edge.
        assert h.p99 == 0.010
        assert h.quantile(0.0) >= h.min

    def test_as_dict_marks_unit_and_percentiles(self):
        h = TimeHistogram("t")
        h.observe(0.002)
        d = h.as_dict()
        assert d["unit"] == "seconds"
        assert d["p50"] == d["p99"] == 0.002

    def test_observe_n_bulk(self):
        h = TimeHistogram("t")
        h.observe_n(0.0001, 5)
        assert h.count == 5
        assert abs(h.total - 0.0005) < 1e-12


class TestSamplingPolicy:
    def test_first_and_every_nth_query_sampled(self):
        t = Telemetry(sample_every=4)
        picks = [t.should_trace(qid, "check", "le") for qid in range(1, 10)]
        assert picks == [True, False, False, False, True,
                         False, False, False, True]

    def test_sampling_disabled_with_zero(self):
        t = Telemetry(sample_every=0)
        assert not any(
            t.should_trace(q, "check", "le") for q in range(1, 50)
        )

    def test_slow_query_arms_the_next_of_its_shape(self):
        t = Telemetry(sample_every=0, slow_seconds=0.01)
        t.record_query(qid=1, kind="check", rel="le", status="ok",
                       service_seconds=0.5)
        # The slow query armed tracing for (check, le) — not others.
        assert t.should_trace(2, "check", "le")
        assert not t.should_trace(2, "check", "add")
        # Capturing the armed trace disarms the shape.
        t.record_query(qid=2, kind="check", rel="le", status="ok",
                       service_seconds=0.001, spans=[{"sid": 1}])
        assert not t.should_trace(3, "check", "le")

    def test_fast_queries_never_arm(self):
        t = Telemetry(sample_every=0, slow_seconds=0.01)
        t.record_query(qid=1, kind="check", rel="le", status="ok",
                       service_seconds=0.001)
        assert not t.should_trace(2, "check", "le")


class TestRecording:
    def test_counters_and_histograms_per_shape(self):
        t = Telemetry()
        t.record_query(qid=1, kind="check", rel="le", status="ok",
                       worker=0, service_seconds=0.001)
        t.record_query(qid=2, kind="check", rel="le", status="gave_up",
                       reason="ops", worker=0, service_seconds=0.002)
        t.record_query(qid=3, kind="enum", rel="add", status="ok",
                       worker=1, service_seconds=0.003)
        snap = t.metrics.counter_snapshot()
        assert snap["serve.queries"] == 3
        assert snap["serve.ok"] == 2
        assert snap["serve.gave_up"] == 1
        assert snap["serve.gave_up.reason.ops"] == 1
        assert snap["serve.gave_up.check.le"] == 1
        assert snap["serve.worker.0.queries"] == 2
        assert snap["serve.worker.1.queries"] == 1
        assert t.metrics.histograms["serve.service_seconds.check.le"].count == 2
        assert t.metrics.histograms["serve.service_seconds.enum.add"].count == 1

    def test_record_batch_bulk(self):
        t = Telemetry()
        t.record_batch(
            kind="check", rel="le", worker=2,
            entries=[(1, 0.001), (2, 0.002), (3, 0.001)],
            service_seconds=0.002,  # already amortized: batch wall / n
            statuses=["ok", "ok", "gave_up"],
            reasons=[None, None, "fuel"],
        )
        snap = t.metrics.counter_snapshot()
        assert snap["serve.queries"] == 3
        assert snap["serve.batched"] == 3
        assert snap["serve.gave_up.reason.fuel"] == 1
        assert t.metrics.histograms["serve.batch_size"].max == 3
        assert len(t.events) == 3
        assert all(ev.service_seconds == 0.002 for ev in t.events)
        assert all(ev.batch == 3 for ev in t.events)

    def test_event_ring_drops_oldest_and_counts(self):
        t = Telemetry(event_cap=4)
        for q in range(1, 11):
            t.record_query(qid=q, kind="check", rel="le", status="ok")
        assert [ev.qid for ev in t.events] == [7, 8, 9, 10]
        assert t.dropped_events == 6

    def test_record_test_and_query_table(self):
        t = Telemetry()
        t.record_test("prop_le", "ok", 0.002)
        t.record_test("prop_le", "discard", 0.001)
        t.record_test("prop_le", "gave_up", 0.1, retries=2)
        snap = t.metrics.counter_snapshot()
        assert snap["test.runs"] == 3
        assert snap["test.ok"] == 1
        assert snap["test.discard"] == 1
        assert snap["test.gave_up"] == 1
        assert snap["test.retries"] == 2
        rows = t.query_table()
        (row,) = [r for r in rows if r["rel"] == "prop_le"]
        assert row["count"] == 3 and row["kind"] == "test"

    def test_queue_depth_gauges(self):
        t = Telemetry()
        t.observe_queue_depth(3)
        t.observe_queue_depth(7)
        t.observe_queue_depth(2)
        assert t.metrics.gauges["serve.queue_depth"] == 2
        assert t.metrics.gauges["serve.queue_depth.max"] == 7

    def test_pickle_round_trip(self):
        t = Telemetry(sample_every=16, slow_seconds=0.5)
        t.record_query(qid=1, kind="check", rel="le", status="ok",
                       service_seconds=0.001)
        back = pickle.loads(pickle.dumps(t))
        assert back.sample_every == 16 and back.slow_seconds == 0.5
        assert back.metrics.counter_snapshot()["serve.queries"] == 1
        assert back.events[0].qid == 1
        # The recreated lock is usable: recording still works.
        back.record_query(qid=back.next_qid(), kind="check", rel="le",
                          status="ok")
        assert back.metrics.counter_snapshot()["serve.queries"] == 2


class TestMergeTelemetry:
    def _shard(self, n, rel="le"):
        t = Telemetry(sample_every=0)
        for _ in range(n):
            qid = t.next_qid()
            t.record_query(qid=qid, kind="check", rel=rel, status="ok",
                           service_seconds=0.001)
        return t

    def test_qids_renumber_like_span_sids(self):
        a, b = self._shard(3), self._shard(2, rel="add")
        merged = merge_telemetry([a, b])
        assert [ev.qid for ev in merged.events] == [1, 2, 3, 4, 5]
        assert merged._next_qid == 5

    def test_events_stamped_with_shard_of_origin(self):
        a, b = self._shard(2), self._shard(1)
        merged = merge_telemetry([a, b])
        assert [ev.shard for ev in merged.events] == [0, 0, 1]

    def test_counters_and_histograms_sum(self):
        a, b = self._shard(3), self._shard(2)
        merged = merge_telemetry([a, b])
        snap = merged.metrics.counter_snapshot()
        assert snap["serve.queries"] == 5
        h = merged.metrics.histograms["serve.service_seconds.check.le"]
        assert isinstance(h, TimeHistogram)  # type survives the merge
        assert h.count == 5

    def test_merged_recorder_still_records(self):
        # The merged Telemetry is live: its caches point into the
        # merged registry, so post-merge recording lands there.
        merged = merge_telemetry([self._shard(2), self._shard(1)])
        merged.record_query(qid=merged.next_qid(), kind="check",
                            rel="le", status="ok", service_seconds=0.001)
        assert merged.metrics.counter_snapshot()["serve.queries"] == 4
        assert merged.events[-1].qid == 4

    def test_gauges_merge_by_max(self):
        a, b = self._shard(1), self._shard(1)
        a.observe_queue_depth(3)
        b.observe_queue_depth(9)
        b.observe_queue_depth(1)
        merged = merge_telemetry([a, b])
        assert merged.metrics.gauges["serve.queue_depth.max"] == 9

    def test_dropped_events_sum(self):
        a = Telemetry(event_cap=2, sample_every=0)
        for q in range(1, 6):
            a.record_query(qid=q, kind="check", rel="le", status="ok")
        merged = merge_telemetry([a, self._shard(1)])
        assert merged.dropped_events == 3


class TestExporters:
    def _telemetry(self):
        t = Telemetry(sample_every=2)
        t.record_query(qid=1, kind="check", rel="le", status="ok",
                       worker=0, queue_seconds=0.0001,
                       service_seconds=0.001, spans=[{"sid": 1}])
        t.record_query(qid=2, kind="check", rel="le", status="gave_up",
                       reason="fuel", worker=0, service_seconds=0.002)
        t.record_query(qid=3, kind="gen", rel="add", status="ok",
                       worker=1, service_seconds=0.0005)
        t.observe_queue_depth(4)
        return t

    def test_jsonl_round_trip(self, tmp_path):
        t = self._telemetry()
        path = tmp_path / "telemetry.jsonl"
        write_telemetry_jsonl(t, path)
        dump = read_jsonl(path)
        assert dump.meta["format"] == "repro.telemetry/v1"
        assert dump.meta["queries"] == 3
        assert len(dump.queries) == 3
        qids = [q["qid"] for q in dump.queries]
        assert qids == [1, 2, 3]
        # The sampled query kept its spans; the unsampled did not.
        assert dump.queries[0]["spans"] == [{"sid": 1}]
        assert dump.queries[1]["spans"] is None
        assert dump.gauges["serve.queue_depth"] == 4
        names = {h["name"] for h in dump.histograms}
        assert "serve.service_seconds.check.le" in names
        # Timed histograms survive as TimeHistograms in the renderer's
        # reconstruction (the unit marker travels with the dict).
        (hd,) = [h for h in dump.histograms
                 if h["name"] == "serve.service_seconds.check.le"]
        assert hd["unit"] == "seconds"

    def test_events_round_trip_field_for_field(self, tmp_path):
        t = self._telemetry()
        path = tmp_path / "telemetry.jsonl"
        write_telemetry_jsonl(t, path)
        dump = read_jsonl(path)
        for ev, d in zip(t.events, dump.queries):
            assert QueryEvent.from_dict(d).as_dict() == ev.as_dict()

    def test_prometheus_exposition(self):
        text = render_prometheus(self._telemetry())
        assert "# TYPE repro_serve_queries counter" in text
        assert "repro_serve_queries 3" in text
        # (kind, rel) fold into labels on the service-time family.
        assert ('repro_serve_service_seconds_count'
                '{kind="check",rel="le"} 2') in text
        assert 'repro_serve_queue_depth 4' in text
        # Buckets are cumulative with an +Inf terminator.
        assert 'le="+Inf"' in text
        # One TYPE line per family, not per labeled series.
        assert text.count("# TYPE repro_serve_service_seconds ") == 1

    def test_prometheus_accepts_bare_metrics(self):
        m = Metrics()
        m.inc("stats.checker_calls", 7)
        m.histogram("fuel", Histogram).observe(3)
        text = render_prometheus(m)
        assert "repro_stats_checker_calls 7" in text
        assert "repro_fuel_bucket" in text
