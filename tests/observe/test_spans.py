"""Unit tests for the span primitives (repro.observe.spans)."""

from __future__ import annotations

from repro.observe.spans import ABANDONED, OPEN, Span, SpanRecorder


class TestSpan:
    def test_fresh_span_is_open(self):
        s = Span(1, 0, 0, "checker", "le", "ii", 5, 5)
        assert s.outcome == OPEN
        assert not s.closed
        assert s.duration == 0.0

    def test_identity_strips_timing(self):
        s = Span(7, 3, 2, "gen", "bst", "iio", 4, 8)
        ident = s.identity()
        assert ident == (7, 3, 2, "gen", "bst", "iio", 4, 8, OPEN, 0, 0)
        # The dict view keeps the timestamps identity() strips.
        assert "t0" in s.as_dict() and "t1" in s.as_dict()

    def test_as_dict_round_trips_fields(self):
        s = Span(2, 1, 1, "enum", "le", "io", 3, 6)
        d = s.as_dict()
        for field in ("sid", "parent", "depth", "kind", "rel", "mode",
                      "size", "top", "outcome", "consumed", "attempts"):
            assert field in d


class TestSpanRecorder:
    def test_parentage_from_open_stack(self):
        rec = SpanRecorder()
        a = rec.begin("checker", "even", "i", 5, 5)
        b = rec.begin("checker", "odd", "i", 4, 5)
        c = rec.begin("checker", "even", "i", 3, 5)
        assert (a.parent, b.parent, c.parent) == (0, a.sid, b.sid)
        assert (a.depth, b.depth, c.depth) == (0, 1, 2)
        rec.end(c, "true")
        rec.end(b, "true")
        rec.end(a, "true")
        assert [s.sid for s in rec] == [c.sid, b.sid, a.sid]
        assert rec.roots() == [a]
        assert rec.children(a) == [b]

    def test_consumed_is_subtree_height(self):
        rec = SpanRecorder()
        a = rec.begin("checker", "r", "i", 5, 5)
        b = rec.begin("checker", "r", "i", 4, 5)
        c = rec.begin("checker", "r", "i", 3, 5)
        rec.end(c, "true")
        rec.end(b, "true")
        rec.end(a, "true")
        assert (c.consumed, b.consumed, a.consumed) == (0, 1, 2)

    def test_ancestor_end_abandons_open_descendants(self):
        rec = SpanRecorder()
        a = rec.begin("checker", "reach", "i", 5, 5)
        b = rec.begin("enum", "le", "io", 5, 5)
        c = rec.begin("checker", "le", "ii", 4, 5)
        rec.end(a, "true")  # b, c never ended by their executors
        assert a.outcome == "true"
        assert b.outcome == ABANDONED and b.closed
        assert c.outcome == ABANDONED and c.closed
        assert not rec.stack

    def test_end_is_idempotent_abandoned_verdict_stands(self):
        rec = SpanRecorder()
        a = rec.begin("checker", "r", "i", 5, 5)
        b = rec.begin("enum", "le", "io", 5, 5)
        rec.end(a, "true")
        assert b.outcome == ABANDONED
        rec.end(b, "3v")  # late resume: a no-op
        assert b.outcome == ABANDONED
        assert len(rec) == 2

    def test_close_marks_still_open_spans_open(self):
        rec = SpanRecorder()
        a = rec.begin("gen", "bst", "iio", 6, 6)
        b = rec.begin("checker", "le", "ii", 5, 6)
        rec.close()
        assert a.outcome == OPEN and a.closed
        assert b.outcome == OPEN and b.closed
        assert a.duration >= 0.0

    def test_ring_buffer_cap_and_dropped(self):
        rec = SpanRecorder(cap=4)
        for i in range(10):
            s = rec.begin("checker", "le", "ii", 1, 1)
            rec.end(s, "true")
        assert len(rec) == 4
        assert rec.cap == 4
        assert rec.dropped == 6
        # The survivors are the newest four.
        assert [s.sid for s in rec] == [7, 8, 9, 10]

    def test_unbounded_recorder(self):
        rec = SpanRecorder(cap=None)
        for _ in range(100):
            rec.end(rec.begin("checker", "le", "ii", 1, 1), "true")
        assert len(rec) == 100 and rec.dropped == 0

    def test_roots_after_eviction(self):
        # The deepest span is evicted by the cap; the kept spans whose
        # parents are still recorded are not roots, the rest are.
        rec = SpanRecorder(cap=2)
        a = rec.begin("checker", "r", "i", 3, 3)
        b = rec.begin("checker", "r", "i", 2, 3)
        c = rec.begin("checker", "r", "i", 1, 3)
        rec.end(c, "true")
        rec.end(b, "true")
        rec.end(a, "true")  # evicts c's record
        assert list(rec) == [b, a]
        assert rec.dropped == 1
        assert rec.roots() == [a]

    def test_tree_rendering(self):
        rec = SpanRecorder()
        a = rec.begin("checker", "even", "i", 2, 2)
        b = rec.begin("checker", "odd", "i", 1, 2)
        rec.end(b, "true")
        rec.end(a, "true")
        text = rec.tree(a)
        assert "checker:even[i]" in text
        assert "\n  checker:odd[i]" in text

    def test_identities_match_spans(self):
        rec = SpanRecorder()
        s = rec.begin("enum", "le", "io", 4, 4)
        rec.end(s, "2v")
        assert rec.identities() == [s.identity()]
