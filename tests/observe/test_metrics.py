"""Unit tests for histograms and the metrics registry."""

from __future__ import annotations

from repro.derive.stats import DeriveStats
from repro.observe.metrics import Histogram, Metrics, bucket_floor, bucket_label


class TestBucketing:
    def test_exact_below_sixteen(self):
        for v in range(16):
            assert bucket_floor(v) == v

    def test_power_of_two_floors_above(self):
        assert bucket_floor(16) == 16
        assert bucket_floor(31) == 16
        assert bucket_floor(32) == 32
        assert bucket_floor(63) == 32
        assert bucket_floor(1000) == 512

    def test_negatives_clamp_to_zero(self):
        assert bucket_floor(-5) == 0

    def test_labels(self):
        assert bucket_label(7) == "7"
        assert bucket_label(16) == "16-31"
        assert bucket_label(512) == "512-1023"


class TestHistogram:
    def test_observe_updates_exact_stats(self):
        h = Histogram("fuel")
        for v in (3, 3, 20, 7):
            h.observe(v)
        assert h.count == 4
        assert h.total == 33
        assert (h.min, h.max) == (3, 20)
        assert h.mean == 33 / 4
        assert h.buckets == {3: 2, 7: 1, 16: 1}

    def test_empty_histogram(self):
        h = Histogram("x")
        assert h.mean == 0.0
        assert "no observations" in h.render()

    def test_render_has_bar_per_bucket(self):
        h = Histogram("sizes")
        for v in (1, 1, 1, 2):
            h.observe(v)
        text = h.render()
        assert "sizes: n=4" in text
        assert text.count("|") == 2  # one row per bucket

    def test_as_dict_json_shape(self):
        h = Histogram("d")
        h.observe(40)
        d = h.as_dict()
        assert d["buckets"] == {"32": 1}
        assert d["count"] == 1 and d["min"] == d["max"] == 40


class TestMetrics:
    def test_histograms_created_on_first_use(self):
        m = Metrics()
        h = m.histogram("a")
        assert m.histogram("a") is h
        assert set(m.histograms) == {"a"}

    def test_counters(self):
        m = Metrics()
        m.inc("spans")
        m.inc("spans", 4)
        assert m.counter_snapshot() == {"spans": 5}

    def test_bind_stats_merges_under_prefix(self):
        m = Metrics()
        stats = DeriveStats()
        stats.backtracks += 3
        m.bind_stats(stats)
        snap = m.counter_snapshot()
        assert snap["stats.backtracks"] == 3
        # Live binding: later counting shows in later snapshots.
        stats.backtracks += 1
        assert m.counter_snapshot()["stats.backtracks"] == 4

    def test_bind_stats_carries_transform_counters(self):
        # The functionalization counters ride the same prefix, so an
        # observe report shows how much work the pass removed.
        m = Metrics()
        stats = DeriveStats()
        stats.functionalized_calls += 2
        stats.inlined_frames += 1
        m.bind_stats(stats)
        snap = m.counter_snapshot()
        assert snap["stats.functionalized_calls"] == 2
        assert snap["stats.inlined_frames"] == 1

    def test_as_dict_sections(self):
        m = Metrics()
        m.histogram("h").observe(1)
        m.inc("c")
        m.gauge("g", 3)
        d = m.as_dict()
        assert set(d) == {"histograms", "counters", "gauges"}
        assert "h" in d["histograms"] and d["counters"]["c"] == 1
        assert d["gauges"]["g"] == 3
