"""Exporters (JSONL, Chrome trace) and the ``python -m repro.observe``
report CLI, exercised on dumps from real runs."""

from __future__ import annotations

import json
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.values import from_int
from repro.derive import derive_checker, derive_generator
from repro.observe import observe, read_jsonl, render_dump
from repro.observe.cli import main as cli_main
from repro.observe.export import FORMAT


@pytest.fixture
def run_obs(nat_ctx):
    """A completed observation over a mixed checker/generator run."""
    le = derive_checker(nat_ctx, "le")
    gen = derive_generator(nat_ctx, "le", "io")
    with observe(nat_ctx) as obs:
        le(10, from_int(2), from_int(5))
        le(10, from_int(5), from_int(2))
        for seed in range(5):
            gen(6, from_int(3), rng=random.Random(seed))
    return obs


class TestJsonl:
    def test_round_trip(self, run_obs, tmp_path):
        path = tmp_path / "run.jsonl"
        run_obs.export_jsonl(path)
        dump = read_jsonl(path)
        assert dump.format == FORMAT
        assert dump.meta["spans"] == len(run_obs.spans)
        assert len(dump.spans) == len(run_obs.spans)
        assert [s["sid"] for s in dump.spans] == [
            s.sid for s in run_obs.spans
        ]
        assert len(dump.handlers) == len(run_obs.trace.entries)
        assert {h["name"] for h in dump.histograms} == set(
            run_obs.metrics.histograms
        )
        assert dump.counters == run_obs.metrics.counter_snapshot()

    def test_every_line_is_json_with_type(self, run_obs, tmp_path):
        path = tmp_path / "run.jsonl"
        run_obs.export_jsonl(path)
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["type"] == "meta"
        assert all("type" in json.loads(line) for line in lines)

    def test_unknown_line_types_skipped(self, tmp_path):
        path = tmp_path / "forward.jsonl"
        path.write_text(
            json.dumps({"type": "meta", "format": FORMAT, "spans": 0})
            + "\n"
            + json.dumps({"type": "from_the_future", "x": 1})
            + "\n\n"
        )
        dump = read_jsonl(path)
        assert dump.format == FORMAT and not dump.spans

    def test_render_live_equals_render_dump(self, run_obs, tmp_path):
        path = tmp_path / "run.jsonl"
        run_obs.export_jsonl(path)
        assert run_obs.report(top=5) == render_dump(read_jsonl(path), top=5)

    def test_export_with_ctx_carries_diff_lines(
        self, run_obs, nat_ctx, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        run_obs.export_jsonl(path, ctx=nat_ctx)
        dump = read_jsonl(path)
        assert dump.diffs, "ctx= export must add diff lines"
        groups = {(d["relation"], d["mode"], d["kind"]) for d in dump.diffs}
        assert ("le", "ii", "checker") in groups
        # A healthy corpus has no dead-but-fired contradictions, and
        # the report renders the diff section.
        assert dump.contradictions() == []
        assert "Coverage vs. static linter" in render_dump(dump, top=5)


class TestChromeTrace:
    def test_complete_events_with_nesting_args(self, run_obs, tmp_path):
        path = tmp_path / "run.trace.json"
        run_obs.export_chrome_trace(path)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert len(events) == len(run_obs.spans)
        for ev in events:
            assert ev["ph"] == "X"
            assert ev["ts"] >= 0.0 and ev["dur"] >= 0.0
            assert {"sid", "parent", "outcome"} <= set(ev["args"])
        # Child events are contained in their parents' intervals.
        by_sid = {ev["args"]["sid"]: ev for ev in events}
        for ev in events:
            parent = by_sid.get(ev["args"]["parent"])
            if parent is not None:
                assert parent["ts"] <= ev["ts"] + 1e-6
                assert (
                    ev["ts"] + ev["dur"]
                    <= parent["ts"] + parent["dur"] + 1e-6
                )


class TestCli:
    def test_renders_report_from_dump(self, run_obs, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        run_obs.export_jsonl(path)
        assert cli_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro.observe report" in out
        assert "Top spans by wall-time" in out
        assert "RuleCoverage" in out
        assert "Histograms:" in out

    def test_top_and_relation_flags(self, run_obs, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        run_obs.export_jsonl(path)
        assert cli_main([str(path), "--top", "2", "--relation", "le"]) == 0
        out = capsys.readouterr().out
        assert "more spans" in out
        assert cli_main([str(path), "--top", "0"]) == 0
        assert "more spans" not in capsys.readouterr().out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert cli_main([str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_non_dump_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        assert cli_main([str(bad)]) == 2
        assert "not a JSONL dump" in capsys.readouterr().err

    def test_diff_lines_exit_0_when_clean(self, run_obs, nat_ctx, tmp_path):
        path = tmp_path / "run.jsonl"
        run_obs.export_jsonl(path, ctx=nat_ctx)
        assert cli_main([str(path)]) == 0

    def test_dead_but_fired_contradiction_exits_1(self, tmp_path, capsys):
        # A hand-built dump whose diff line contradicts itself: the
        # rule is statically dead (REL004) yet recorded successes.
        # The CLI must promote that from a rendered note to exit 1.
        path = tmp_path / "bad.jsonl"
        lines = [
            {"type": "meta", "format": FORMAT, "spans": 0},
            {
                "type": "diff",
                "relation": "loop",
                "mode": "i",
                "kind": "checker",
                "rows": [
                    {
                        "rule": "dead_rule",
                        "statically_dead": True,
                        "attempts": 3,
                        "successes": 2,
                    }
                ],
            },
        ]
        path.write_text("".join(json.dumps(l) + "\n" for l in lines))
        assert cli_main([str(path)]) == 1
        captured = capsys.readouterr()
        assert "dead-but-fired contradiction" in captured.out
        assert "'dead_rule'" in captured.err
        assert "stale REL004" in captured.err

    def test_module_entry_point(self, run_obs, tmp_path):
        # The real `python -m repro.observe` invocation (a test for the
        # acceptance criterion: render a report from a dump of a real
        # run through the module CLI).
        path = tmp_path / "run.jsonl"
        run_obs.export_jsonl(path)
        src = Path(__file__).resolve().parents[2] / "src"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.observe", str(path), "--top", "5"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "repro.observe report" in proc.stdout
        assert "RuleCoverage" in proc.stdout
