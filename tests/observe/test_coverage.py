"""Dynamic rule coverage and its diff against the static linter."""

from __future__ import annotations

import pytest

from repro.core import parse_declarations
from repro.core.values import from_int
from repro.derive import derive_checker, derive_generator, profile
from repro.derive.trace import DeriveTrace
from repro.observe import RuleCoverage, coverage_diff, observe
from repro.stdlib import standard_context

# A statically clean relation (both rules REL004-live) plus one with a
# provably dead rule ('dead' needs the base-case-free 'loop').
DEAD_RULE_DECLS = """
Inductive loop : nat -> Prop :=
| loop_S : forall n, loop n -> loop (S n).

Inductive uses_loop : nat -> Prop :=
| ul_0 : uses_loop 0
| dead : forall n, loop n -> uses_loop n.
"""


class TestRuleCoverage:
    def test_from_trace_groups_by_rel_mode_kind(self):
        tr = DeriveTrace()
        tr.record4(("checker", "le", "ii", "le_n"), True, False)
        tr.record4(("checker", "le", "ii", "le_S"), False, False)
        tr.record4(("gen", "le", "io", "le_n"), True, False)
        cov = RuleCoverage.from_trace(tr)
        assert set(cov.table) == {("le", "ii", "checker"), ("le", "io", "gen")}
        assert cov.table[("le", "ii", "checker")] == {
            "le_n": (1, 1),
            "le_S": (1, 0),
        }

    def test_fired_and_attempted_queries(self):
        tr = DeriveTrace()
        tr.record4(("checker", "le", "ii", "le_n"), True, False)
        tr.record4(("checker", "le", "ii", "le_S"), False, True)
        cov = RuleCoverage.from_trace(tr)
        assert cov.fired("le") == {"le_n"}
        assert cov.attempted("le") == {"le_n", "le_S"}
        assert cov.fired("le", kind="gen") == set()
        assert cov.fired("nope") == set()

    def test_report_marks_unfired_and_unattempted(self, nat_ctx):
        ev = derive_checker(nat_ctx, "ev")
        with profile(nat_ctx) as tr:
            assert ev(10, from_int(0)).is_true
        cov = RuleCoverage.from_trace(tr)
        # Dispatch on the head constructor O: ev_SS is never attempted.
        text = cov.report(ctx=nat_ctx)
        assert "ev_0" in text and "fired" in text
        assert "ev_SS" in text and "NEVER ATTEMPTED" in text

    def test_report_top_and_relation_filters(self, nat_ctx):
        le = derive_checker(nat_ctx, "le")
        ev = derive_checker(nat_ctx, "ev")
        with profile(nat_ctx) as tr:
            le(10, from_int(2), from_int(5))
            ev(10, from_int(4))
        cov = RuleCoverage.from_trace(tr)
        assert len(cov.groups()) == 2
        only_le = cov.report(relation="le")
        assert "le [" in only_le and "ev [" not in only_le
        topped = cov.report(top=1)
        assert "1 more groups" in topped
        assert "no rule activity" in cov.report(relation="nope")

    def test_empty_coverage_report(self):
        assert "no rule activity" in RuleCoverage({}).report()


class TestCoverageDiff:
    def test_live_and_fired_is_clean(self, nat_ctx):
        le = derive_checker(nat_ctx, "le")
        with observe(nat_ctx) as obs:
            assert le(10, from_int(2), from_int(5)).is_true
            assert not le(10, from_int(5), from_int(2)).is_true
        diff = coverage_diff(nat_ctx, obs.coverage(), "le")
        assert diff.clean
        assert all(r.verdict == "live and fired" for r in diff.rows)

    def test_statically_live_but_unfired_is_flagged(self, nat_ctx):
        # The acceptance fixture: both ev rules are statically live
        # (REL004 finds nothing), but a workload that only ever checks
        # ev 0 never fires ev_SS.
        ev = derive_checker(nat_ctx, "ev")
        with observe(nat_ctx) as obs:
            assert ev(10, from_int(0)).is_true
        diff = coverage_diff(nat_ctx, obs.coverage(), "ev")
        assert not diff.clean
        flagged = {r.rule for r in diff.live_unfired}
        assert flagged == {"ev_SS"}
        assert not diff.dead_fired
        text = diff.render()
        assert "statically live but NEVER FIRED" in text
        assert "1 statically-live rule(s)" in text

    def test_statically_dead_unfired_is_expected(self):
        ctx = standard_context()
        parse_declarations(ctx, DEAD_RULE_DECLS)
        chk = derive_checker(ctx, "uses_loop", analysis=False)
        with observe(ctx) as obs:
            assert chk(10, from_int(0)).is_true
        diff = coverage_diff(ctx, obs.coverage(), "uses_loop")
        by_rule = {r.rule: r for r in diff.rows}
        assert by_rule["dead"].statically_dead
        assert not by_rule["dead"].fired
        assert by_rule["dead"].verdict == "dead (static), unfired (dynamic)"
        assert by_rule["ul_0"].verdict == "live and fired"

    def test_dead_but_fired_contradiction_surfaces(self):
        # Synthesised: a coverage table claiming the dead rule fired
        # must be called out as a linter/trace contradiction.
        ctx = standard_context()
        parse_declarations(ctx, DEAD_RULE_DECLS)
        cov = RuleCoverage(
            {("uses_loop", "i", "checker"): {"dead": (3, 1), "ul_0": (1, 1)}}
        )
        diff = coverage_diff(ctx, cov, "uses_loop")
        assert {r.rule for r in diff.dead_fired} == {"dead"}
        assert not diff.clean
        assert "linter bug?" in diff.render()

    def test_accepts_raw_trace(self, nat_ctx):
        le = derive_checker(nat_ctx, "le")
        with profile(nat_ctx) as tr:
            le(10, from_int(1), from_int(2))
        diff = coverage_diff(nat_ctx, tr, "le")
        assert diff.relation == "le" and diff.kind == "checker"

    def test_producer_kinds(self, nat_ctx):
        import random

        gen = derive_generator(nat_ctx, "le", "io")
        with observe(nat_ctx) as obs:
            for seed in range(20):
                gen(6, from_int(2), rng=random.Random(seed))
        diff = coverage_diff(nat_ctx, obs.coverage(), "le", "io", kind="gen")
        assert diff.kind == "gen"
        assert {r.rule for r in diff.rows if r.fired} == {"le_n", "le_S"}

    def test_unknown_relation_raises(self, nat_ctx):
        with pytest.raises(Exception):
            coverage_diff(nat_ctx, RuleCoverage({}), "no_such_relation")
