"""Tests for the property-based-testing substrate."""

import random

import pytest

from repro.producers.option_bool import NONE_OB, SOME_FALSE, SOME_TRUE
from repro.producers.outcome import FAIL, OUT_OF_FUEL
from repro.quickchick import (
    Mutant,
    TestCase,
    expect_failure,
    for_all,
    implies,
    mean_tests_to_failure,
    quick_check,
)


def int_gen(size, rng):
    return rng.randint(0, size * 10)


class TestForAll:
    def test_passing_property(self):
        prop = for_all(int_gen, lambda n: n >= 0)
        report = quick_check(prop, num_tests=200, seed=0)
        assert not report.failed
        assert report.tests_run == 200

    def test_failing_property_counterexample(self):
        prop = for_all(int_gen, lambda n: n < 35)
        report = quick_check(prop, num_tests=5000, seed=1)
        assert report.failed
        assert report.counterexample >= 35

    def test_generator_failures_are_discards(self):
        def flaky(size, rng):
            return FAIL if rng.random() < 0.5 else 1

        prop = for_all(flaky, lambda n: True)
        report = quick_check(prop, num_tests=100, seed=2)
        assert report.tests_run == 100
        assert report.discards > 0

    def test_fuel_markers_are_discards(self):
        prop = for_all(lambda s, r: OUT_OF_FUEL, lambda n: True)
        report = quick_check(prop, num_tests=10, seed=3)
        assert report.gave_up
        assert report.tests_run == 0

    def test_option_bool_verdicts(self):
        prop = for_all(int_gen, lambda n: SOME_TRUE if n % 2 else SOME_FALSE)
        report = quick_check(prop, num_tests=100, seed=4)
        assert report.failed  # first even number fails

    def test_none_verdict_discards(self):
        prop = for_all(int_gen, lambda n: NONE_OB)
        report = quick_check(prop, num_tests=10, seed=5)
        assert report.gave_up

    def test_implies_discards(self):
        prop = for_all(
            int_gen, implies(lambda n: n % 2 == 0, lambda n: n % 2 == 0)
        )
        report = quick_check(prop, num_tests=50, seed=6)
        assert not report.failed
        assert report.discards > 0

    def test_bad_verdict_type_raises(self):
        prop = for_all(int_gen, lambda n: "yes")
        with pytest.raises(TypeError):
            quick_check(prop, num_tests=1, seed=0)


class TestReports:
    def test_throughput_positive(self):
        prop = for_all(int_gen, lambda n: True)
        report = quick_check(prop, num_tests=100, seed=0)
        assert report.tests_per_second > 0

    def test_seed_reproducibility(self):
        prop = for_all(int_gen, lambda n: n < 40)
        a = quick_check(prop, num_tests=9999, seed=77)
        b = quick_check(prop, num_tests=9999, seed=77)
        assert a.tests_run == b.tests_run
        assert a.counterexample == b.counterexample

    def test_str_forms(self):
        passing = quick_check(for_all(int_gen, lambda n: True), num_tests=5, seed=0)
        assert "Passed" in str(passing)
        failing = quick_check(for_all(int_gen, lambda n: False), num_tests=5, seed=0)
        assert "Failed" in str(failing)


class TestSeedSource:
    def test_fresh_seeds_ignore_global_random_seed(self):
        """random.seed() in user code must not collapse the fallback
        campaign seeds: two "fresh" runs after identical global seeding
        still draw independent seeds (from the OS entropy pool)."""
        prop = for_all(int_gen, lambda n: True)
        random.seed(0)
        a = quick_check(prop, num_tests=3)
        random.seed(0)
        b = quick_check(prop, num_tests=3)
        assert a.seed is not None and b.seed is not None
        assert a.seed != b.seed

    def test_explicit_seed_still_respected(self):
        prop = for_all(int_gen, lambda n: True)
        random.seed(0)
        report = quick_check(prop, num_tests=3, seed=123)
        assert report.seed == 123

    def test_global_rng_stream_not_consumed(self):
        """Drawing the fallback seed must not advance the process-global
        RNG stream out from under user code."""
        prop = for_all(int_gen, lambda n: True)
        random.seed(42)
        expected = random.random()
        random.seed(42)
        quick_check(prop, num_tests=3)
        assert random.random() == expected


class TestZeroTestReport:
    def _zero_report(self):
        from repro.quickchick.runner import CheckReport

        return CheckReport(
            property_name="p", seed=7, size=5, elapsed_seconds=0.5
        )

    def test_no_passed_rendering(self):
        text = str(self._zero_report())
        assert "Passed" not in text
        assert "No tests run" in text
        assert "%" not in text  # no 0%-discard illusion

    def test_no_division_by_zero(self):
        report = self._zero_report()
        assert report.discard_rate == 0.0
        assert report.tests_per_second == 0.0
        zero_elapsed = self._zero_report()
        zero_elapsed.elapsed_seconds = 0.0
        assert zero_elapsed.tests_per_second == 0.0

    def test_to_dict_carries_finite_metrics(self):
        import json

        d = self._zero_report().to_dict()
        assert d["tests_per_second"] == 0.0
        assert d["discard_rate"] == 0.0
        json.dumps(d)  # JSONL-exportable: no inf/nan, no objects

    def test_deadline_before_first_test_renders_reason(self):
        report = self._zero_report()
        report.stopped_reason = "campaign deadline"
        text = str(report)
        assert "No tests run" in text
        assert "campaign deadline" in text

    def test_normal_run_rendering_unchanged(self):
        report = quick_check(
            for_all(int_gen, lambda n: True), num_tests=5, seed=0
        )
        assert "+++ Passed 5 tests" in str(report)


class TestMutation:
    def test_mean_tests_to_failure(self):
        broken = Mutant("off_by_one", "breaks on multiples of 7", None)

        def make_property(mutant):
            return for_all(int_gen, lambda n: n % 7 != 0)

        cells = mean_tests_to_failure(
            make_property, [broken], "int_gen", runs=5, num_tests=1000
        )
        (cell,) = cells
        assert cell.mean is not None and cell.mean >= 1
        assert cell.escaped == 0
        assert "off_by_one" in str(cell)

    def test_escaping_mutant_reported(self):
        harmless = Mutant("noop", "never caught", None)

        def make_property(mutant):
            return for_all(int_gen, lambda n: True)

        (cell,) = mean_tests_to_failure(
            make_property, [harmless], "int_gen", runs=3, num_tests=50
        )
        assert cell.mean is None
        assert cell.escaped == 3
        assert "never caught" in str(cell) or "noop" in str(cell)


class TestMergedRates:
    """Derived-rate semantics of ``CheckReport.merge``: the merged
    report recomputes ``tests_per_second`` and ``discard_rate`` from
    the *summed* counts and the *max* elapsed (parallel wall-clock),
    never by averaging per-shard rates."""

    def _shard(self, tests, discards, elapsed):
        from repro.quickchick import CheckReport

        r = CheckReport(property_name="p", seed=1, size=5)
        r.tests_run = tests
        r.discards = discards
        r.elapsed_seconds = elapsed
        return r

    def test_throughput_is_sum_over_max_elapsed(self):
        from repro.quickchick import CheckReport

        merged = CheckReport.merge(
            [self._shard(100, 0, 2.0), self._shard(50, 0, 4.0)]
        )
        assert merged.tests_run == 150
        assert merged.elapsed_seconds == 4.0
        assert merged.tests_per_second == 150 / 4.0

    def test_discard_rate_is_pooled_not_averaged(self):
        from repro.quickchick import CheckReport

        # Per-shard rates are 50% and 0%; a naive average says 25%,
        # the pooled rate over all draws is 10/110.
        merged = CheckReport.merge(
            [self._shard(10, 10, 1.0), self._shard(90, 0, 1.0)]
        )
        assert merged.discard_rate == pytest.approx(10 / 110)

    def test_to_dict_exports_the_merged_rates(self):
        from repro.quickchick import CheckReport

        merged = CheckReport.merge(
            [self._shard(30, 6, 3.0), self._shard(30, 0, 1.5)]
        )
        d = merged.to_dict()
        assert d["tests_per_second"] == merged.tests_per_second == 60 / 3.0
        assert d["discard_rate"] == merged.discard_rate == 6 / 66

    def test_merge_of_merged_stays_consistent(self):
        from repro.quickchick import CheckReport

        inner = CheckReport.merge(
            [self._shard(10, 2, 1.0), self._shard(10, 0, 2.0)]
        )
        outer = CheckReport.merge([inner, self._shard(20, 2, 0.5)])
        assert outer.tests_run == 40
        assert outer.discards == 4
        assert outer.elapsed_seconds == 2.0
        assert outer.tests_per_second == 40 / 2.0
        assert outer.discard_rate == pytest.approx(4 / 44)

    def test_zero_elapsed_merge_keeps_rates_finite(self):
        from repro.quickchick import CheckReport

        merged = CheckReport.merge(
            [self._shard(5, 0, 0.0), self._shard(5, 0, 0.0)]
        )
        assert merged.tests_per_second == 0.0
        assert merged.discard_rate == 0.0
