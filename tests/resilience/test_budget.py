"""Unit tests for the Budget hot path and executor degradation."""

import pytest

from repro.core.values import Value
from repro.derive import Mode
from repro.derive.instances import CHECKER, ENUM, GEN, resolve, resolve_compiled
from repro.derive.trace import BUDGET_KEY
from repro.producers.option_bool import NONE_OB
from repro.producers.outcome import OUT_OF_FUEL
from repro.resilience import (
    Budget,
    FaultPlan,
    budget_of,
    budget_scope,
    install_budget,
    remove_budget,
)


def nat(n):
    v = Value("O", ())
    for _ in range(n):
        v = Value("S", (v,))
    return v


class TestBudgetMechanics:
    def test_unlimited_budget_counts_but_never_trips(self):
        bud = Budget()
        for _ in range(10_000):
            assert not bud.charge(1)
        assert bud.ops == 10_000
        assert bud.exhausted is None
        assert not bud.active

    def test_max_ops_trips_at_the_cap(self):
        bud = Budget(max_ops=100)
        tripped_at = None
        for i in range(1, 201):
            if bud.charge(1):
                tripped_at = i
                break
        assert tripped_at == 100
        assert bud.exhausted is not None
        assert bud.exhausted.limit == "ops"
        assert bud.exhausted.ops == 100

    def test_trips_latch(self):
        bud = Budget(max_ops=10)
        while not bud.charge(1):
            pass
        ops_at_trip = bud.ops
        for _ in range(50):
            assert bud.charge(1)
        assert bud.ops == ops_at_trip  # post-trip charges don't count

    def test_depth_cap(self):
        bud = Budget(max_depth=3)
        assert not bud.charge_entry(0)
        assert not bud.charge_entry(3)
        assert bud.charge_entry(4)
        assert bud.exhausted.limit == "depth"

    def test_deadline_trips(self):
        bud = Budget(deadline_seconds=0.0, check_every=1)
        assert bud.charge(1)
        assert bud.exhausted.limit == "deadline"

    def test_deadline_probe_is_periodic(self):
        # A generous check_every means no wall probe before the mark.
        bud = Budget(deadline_seconds=0.0, check_every=1000)
        assert not bud.charge(1)
        for _ in range(998):
            bud.charge(1)
        assert bud.charge(1)  # crosses the watermark -> probes -> trips

    def test_renew_scales_limits(self):
        bud = Budget(max_ops=100, deadline_seconds=1.0, max_depth=7)
        fresh = bud.renew(2.0)
        assert fresh.max_ops == 200
        assert fresh.deadline_seconds == 2.0
        assert fresh.max_depth == 7
        assert fresh.exhausted is None and fresh.ops == 0

    def test_check_every_validation(self):
        with pytest.raises(ValueError):
            Budget(check_every=0)

    def test_exhausted_describe_names_the_limit(self):
        bud = Budget(max_ops=5)
        while not bud.charge(1):
            pass
        bud.record_site("checker", "le", "in in")
        text = str(bud.exhausted)
        assert "ops limit" in text
        assert "checker:le[in in]" in text
        assert bud.exhausted.as_dict()["limit"] == "ops"

    def test_taint_stamp_moves_on_trip_and_fault(self):
        bud = Budget(max_ops=5)
        s0 = bud.taint_stamp()
        while not bud.charge(1):
            pass
        assert bud.taint_stamp() == s0 + 1
        bud2 = Budget(faults=FaultPlan.from_events((3, "fuel")), check_every=1)
        s0 = bud2.taint_stamp()
        for _ in range(5):
            bud2.charge(1)
        assert bud2.taint_stamp() == s0 + 1
        assert bud2.exhausted is None  # one-shot, run continues


class TestInstallation:
    def test_scope_installs_and_restores(self, nat_ctx):
        outer = Budget()
        install_budget(nat_ctx, outer)
        with budget_scope(nat_ctx, max_ops=10) as inner:
            assert budget_of(nat_ctx) is inner
        assert budget_of(nat_ctx) is outer
        remove_budget(nat_ctx)
        assert budget_of(nat_ctx) is None

    def test_scope_rejects_budget_plus_limits(self, nat_ctx):
        with pytest.raises(TypeError):
            with budget_scope(nat_ctx, Budget(), max_ops=3):
                pass

    def test_key_is_the_shared_cache_slot(self, nat_ctx):
        with budget_scope(nat_ctx) as bud:
            assert nat_ctx.caches[BUDGET_KEY] is bud


class TestExecutorDegradation:
    """A tripped budget degrades each backend to its indefinite outcome."""

    def _checkers(self, ctx, rel, arity):
        mode = Mode.checker(arity)
        return (
            resolve(ctx, CHECKER, rel, mode).fn,
            resolve_compiled(ctx, CHECKER, rel, mode),
        )

    def test_checker_degrades_to_none(self, nat_ctx):
        interp, compiled = self._checkers(nat_ctx, "le", 2)
        args = (nat(3), nat(9))
        assert interp(30, args).is_true
        for fn in (interp, compiled):
            with budget_scope(nat_ctx, max_ops=4) as bud:
                assert fn(30, args) is NONE_OB
            assert bud.exhausted is not None
            assert bud.exhausted.site is not None
            assert bud.exhausted.site[0] == "checker"

    def test_checker_op_parity_interp_vs_compiled(self, nat_ctx):
        for rel, args in (("le", (nat(3), nat(9))), ("ev", (nat(8),))):
            arity = len(args)
            interp, compiled = self._checkers(nat_ctx, rel, arity)
            with budget_scope(nat_ctx, check_every=1) as bi:
                a = interp(20, args)
            with budget_scope(nat_ctx, check_every=1) as bc:
                b = compiled(20, args)
            assert a is b
            assert bi.ops == bc.ops, f"charge drift on {rel}"

    def test_enum_truncates_with_marker(self, nat_ctx):
        mode = Mode.from_string("io")
        interp = resolve(nat_ctx, ENUM, "le", mode).fn
        full = [x for x in interp(6, (nat(2),)) if x is not OUT_OF_FUEL]
        with budget_scope(nat_ctx, max_ops=6):
            bounded = list(interp(6, (nat(2),)))
        assert bounded, "a truncated enumeration still signals fuel"
        assert bounded[-1] is OUT_OF_FUEL
        values = [x for x in bounded if x is not OUT_OF_FUEL]
        assert values == full[: len(values)], "truncated-but-valid prefix"

    def test_enum_op_parity_interp_vs_compiled(self, nat_ctx):
        mode = Mode.from_string("oo")
        interp = resolve(nat_ctx, ENUM, "le", mode).fn
        compiled = resolve_compiled(nat_ctx, ENUM, "le", mode)
        with budget_scope(nat_ctx, check_every=1) as bi:
            a = list(interp(4, ()))
        with budget_scope(nat_ctx, check_every=1) as bc:
            b = list(compiled(4, ()))
        assert a == b
        assert bi.ops == bc.ops

    def test_gen_degrades_to_out_of_fuel(self, nat_ctx):
        import random

        mode = Mode.from_string("io")
        interp = resolve(nat_ctx, GEN, "le", mode).fn
        compiled = resolve_compiled(nat_ctx, GEN, "le", mode)
        for fn in (interp, compiled):
            with budget_scope(nat_ctx, max_ops=2) as bud:
                out = fn(8, (nat(1),), random.Random(7))
            assert out is OUT_OF_FUEL
            assert bud.exhausted is not None

    def test_gen_op_parity_interp_vs_compiled(self, nat_ctx):
        import random

        mode = Mode.from_string("io")
        interp = resolve(nat_ctx, GEN, "le", mode).fn
        compiled = resolve_compiled(nat_ctx, GEN, "le", mode)
        for seed in range(10):
            with budget_scope(nat_ctx, check_every=1) as bi:
                a = interp(8, (nat(1),), random.Random(seed))
            with budget_scope(nat_ctx, check_every=1) as bc:
                b = compiled(8, (nat(1),), random.Random(seed))
            assert a == b
            assert bi.ops == bc.ops, f"gen charge drift at seed {seed}"

    def test_depth_cap_bounds_recursion(self, nat_ctx):
        interp, compiled = self._checkers(nat_ctx, "le", 2)
        args = (nat(0), nat(20))
        for fn in (interp, compiled):
            with budget_scope(nat_ctx, max_depth=3) as bud:
                assert fn(50, args) is NONE_OB
            assert bud.exhausted.limit == "depth"

    def test_budget_off_answers_unchanged(self, nat_ctx):
        interp, compiled = self._checkers(nat_ctx, "le", 2)
        args = (nat(2), nat(5))
        baseline = interp(20, args)
        with budget_scope(nat_ctx):  # unlimited: counts, never trips
            governed = interp(20, args)
        assert governed is baseline
        assert compiled(20, args) is baseline
