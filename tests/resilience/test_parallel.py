"""Parallel campaigns: shard planning, merge semantics, backend parity.

The satellite property of the derivation-as-a-service PR: a campaign
sharded across N workers and merged equals the sequential run of the
same seed partition — counts, labels, coverage, discard rate,
``stopped_reason`` precedence — so parallelism is a pure throughput
knob, never a semantics knob.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.core.values import Value
from repro.derive import Mode
from repro.derive.instances import CHECKER, resolve
from repro.quickchick import CheckReport, classify, for_all, implies
from repro.resilience import (
    Budget,
    Shard,
    parallel_quick_check,
    plan_shards,
)

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


def nat(n):
    v = Value("O", ())
    for _ in range(n):
        v = Value("S", (v,))
    return v


def le_property(ctx, fuel=30):
    check = resolve(ctx, CHECKER, "le", Mode.checker(2)).fn

    def gen(size, rng):
        a = rng.randint(0, size)
        return (a, a + rng.randint(0, size))

    def pred(pair):
        return check(fuel, (nat(pair[0]), nat(pair[1])))

    judged = classify(lambda pair: pair[0] == pair[1], "reflexive", pred)
    return for_all(gen, judged, name="le_holds")


def discarding_property(ctx, fuel=30):
    """Same property behind a precondition, so shards accrue
    discards at a seed-determined rate."""
    check = resolve(ctx, CHECKER, "le", Mode.checker(2)).fn

    def gen(size, rng):
        return (rng.randint(0, size), rng.randint(0, size))

    judged = implies(
        lambda pair: pair[0] <= pair[1],
        lambda pair: check(fuel, (nat(pair[0]), nat(pair[1]))),
    )
    return for_all(gen, judged, name="le_filtered")


def failing_property():
    def gen(size, rng):
        return rng.randint(0, size * 4)

    return for_all(gen, lambda n: n < 30, name="small_only")


def _key(r):
    return (
        r.tests_run,
        r.discards,
        r.failed,
        r.labels,
        r.budget_trips,
        r.budget_retries,
        r.stopped_reason,
        r.gave_up,
        r.shard_seeds,
    )


# -- shard planning ----------------------------------------------------------


class TestPlanShards:
    def test_deterministic(self):
        assert plan_shards(100, 4, seed=7) == plan_shards(100, 4, seed=7)
        assert plan_shards(100, 4, seed=7) != plan_shards(100, 4, seed=8)

    def test_even_split_with_remainder(self):
        shards = plan_shards(10, 4, seed=1)
        assert [s.num_tests for s in shards] == [3, 3, 2, 2]
        assert sum(s.num_tests for s in shards) == 10

    def test_zero_test_shards_dropped(self):
        shards = plan_shards(2, 8, seed=1)
        assert len(shards) == 2
        assert all(s.num_tests == 1 for s in shards)

    def test_distinct_seeds(self):
        shards = plan_shards(1000, 8, seed=3)
        assert len({s.seed for s in shards}) == 8

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            plan_shards(10, 0)


# -- merge semantics (pure, no campaign) -------------------------------------


def _report(**kw):
    r = CheckReport(property_name=kw.pop("property_name", "p"))
    for k, v in kw.items():
        setattr(r, k, v)
    return r


class TestMergeSemantics:
    def test_counts_and_labels_sum(self):
        merged = CheckReport.merge(
            [
                _report(tests_run=10, discards=2, labels={"a": 3, "b": 1}),
                _report(tests_run=5, discards=1, labels={"b": 2}),
            ]
        )
        assert merged.tests_run == 15
        assert merged.discards == 3
        assert merged.labels == {"a": 3, "b": 3}
        assert merged.discard_rate == 3 / 18

    def test_budget_counters_sum(self):
        merged = CheckReport.merge(
            [
                _report(budget_trips=2, budget_retries=1),
                _report(budget_trips=1, budget_retries=4),
            ]
        )
        assert merged.budget_trips == 3
        assert merged.budget_retries == 5

    def test_elapsed_is_max_not_sum(self):
        merged = CheckReport.merge(
            [_report(elapsed_seconds=0.5), _report(elapsed_seconds=2.0)]
        )
        assert merged.elapsed_seconds == 2.0

    def test_first_failed_shard_wins(self):
        merged = CheckReport.merge(
            [
                _report(failed=False, seed=1),
                _report(failed=True, counterexample=42, seed=2, size=9),
                _report(failed=True, counterexample=77, seed=3, size=4),
            ]
        )
        assert merged.failed
        assert merged.counterexample == 42
        assert merged.seed == 2
        assert merged.size == 9

    def test_stopped_reason_precedence(self):
        """First shard with a non-None stopped_reason wins, carrying
        its exhausted diagnosis; later reasons are dropped."""
        merged = CheckReport.merge(
            [
                _report(stopped_reason=None),
                _report(stopped_reason="campaign_deadline", exhausted="d1"),
                _report(stopped_reason="discard_limit", exhausted="d2"),
            ]
        )
        assert merged.stopped_reason == "campaign_deadline"
        assert merged.exhausted == "d1"

    def test_gave_up_any_of(self):
        merged = CheckReport.merge([_report(), _report(gave_up=True)])
        assert merged.gave_up

    def test_shard_seeds_recorded_in_order(self):
        merged = CheckReport.merge(
            [_report(seed=11), _report(seed=22), _report(seed=33)]
        )
        assert merged.shard_seeds == [11, 22, 33]

    def test_merge_requires_reports(self):
        with pytest.raises(ValueError):
            CheckReport.merge([])


# -- backend parity: the satellite property ----------------------------------


class TestBackendParity:
    def test_inline_matches_singleshard_sequential(self, nat_ctx):
        """One worker, same seed partition: the sharded machinery
        reduces to plain sequential quick_check."""
        from repro.quickchick import quick_check

        prop = le_property(nat_ctx)
        merged = parallel_quick_check(
            prop, 80, workers=1, seed=5, backend="inline", ctx=nat_ctx
        )
        shard = plan_shards(80, 1, seed=5)[0]
        with nat_ctx.use_session():
            plain = quick_check(
                prop, num_tests=80, seed=shard.seed, ctx=nat_ctx
            )
        assert merged.tests_run == plain.tests_run
        assert merged.discards == plain.discards
        assert merged.labels == plain.labels
        assert merged.failed == plain.failed

    @pytest.mark.skipif(not HAVE_FORK, reason="fork start method missing")
    def test_fork_equals_inline_counts_labels(self, nat_ctx):
        prop = le_property(nat_ctx)
        kw = dict(workers=4, seed=17, ctx=nat_ctx)
        seq = parallel_quick_check(prop, 120, backend="inline", **kw)
        par = parallel_quick_check(prop, 120, backend="fork", **kw)
        assert _key(seq) == _key(par)
        assert seq.tests_run == 120

    def test_thread_equals_inline(self, nat_ctx):
        prop = le_property(nat_ctx)
        kw = dict(workers=3, seed=23, ctx=nat_ctx)
        seq = parallel_quick_check(prop, 90, backend="thread", **kw)
        par = parallel_quick_check(prop, 90, backend="inline", **kw)
        assert _key(seq) == _key(par)

    @pytest.mark.skipif(not HAVE_FORK, reason="fork start method missing")
    def test_discard_rate_matches(self, nat_ctx):
        prop = discarding_property(nat_ctx)
        kw = dict(workers=4, seed=31, size=10, ctx=nat_ctx)
        seq = parallel_quick_check(prop, 100, backend="inline", **kw)
        par = parallel_quick_check(prop, 100, backend="fork", **kw)
        assert seq.discards > 0
        assert _key(seq) == _key(par)
        assert seq.discard_rate == par.discard_rate

    @pytest.mark.skipif(not HAVE_FORK, reason="fork start method missing")
    def test_failure_coordinates_match(self, nat_ctx):
        """Both backends surface the same first-failed-shard
        counterexample and replay coordinates."""
        prop = failing_property()
        seq = parallel_quick_check(
            prop, 60, workers=4, seed=13, size=20, backend="inline",
            ctx=nat_ctx,
        )
        par = parallel_quick_check(
            prop, 60, workers=4, seed=13, size=20, backend="fork",
            ctx=nat_ctx,
        )
        assert seq.failed and par.failed
        assert seq.counterexample == par.counterexample
        assert seq.seed == par.seed
        assert seq.shard_seeds == par.shard_seeds

    @pytest.mark.skipif(not HAVE_FORK, reason="fork start method missing")
    def test_observed_campaign_merges_coverage(self, nat_ctx):
        """Observed shards merge into one dump: summed rule coverage,
        equal between fork and inline."""
        prop = le_property(nat_ctx)
        kw = dict(workers=3, seed=41, ctx=nat_ctx, observe=True)
        seq = parallel_quick_check(prop, 45, backend="inline", **kw)
        par = parallel_quick_check(prop, 45, backend="fork", **kw)
        assert seq.observation is not None
        assert par.observation is not None
        assert seq.coverage.table == par.coverage.table
        assert _key(seq) == _key(par)

    def test_budgeted_campaign_sums_trips(self, nat_ctx):
        """Per-test budgets trip per shard; the merged report sums the
        trips and both backends agree."""
        prop = le_property(nat_ctx, fuel=50)
        kw = dict(
            workers=3,
            seed=53,
            ctx=nat_ctx,
            budget=Budget(max_ops=1),  # every attempt trips
            budget_retries=1,
        )
        seq = parallel_quick_check(prop, 9, backend="inline", **kw)
        par = parallel_quick_check(prop, 9, backend="thread", **kw)
        assert seq.budget_trips > 0
        assert _key(seq) == _key(par)

    def test_replay_from_shard_seeds(self, nat_ctx):
        """shard_seeds is the campaign's reproduction handle: running
        each recorded seed as its own shard reproduces the merge."""
        prop = le_property(nat_ctx)
        first = parallel_quick_check(
            prop, 50, workers=3, backend="inline", ctx=nat_ctx
        )
        assert first.shard_seeds is not None
        from repro.quickchick import quick_check

        shards = plan_shards(50, 3, seed=None)  # sizes only
        reports = []
        sizes = [s.num_tests for s in shards]
        for seed, n in zip(first.shard_seeds, sizes):
            with nat_ctx.use_session():
                reports.append(
                    quick_check(prop, num_tests=n, seed=seed, ctx=nat_ctx)
                )
        replayed = CheckReport.merge(reports, property_name=prop.name)
        assert _key(replayed) == _key(first)

    def test_unknown_backend_rejected(self, nat_ctx):
        with pytest.raises(ValueError):
            parallel_quick_check(
                le_property(nat_ctx), 10, backend="quantum", ctx=nat_ctx
            )

    def test_observe_requires_ctx(self):
        with pytest.raises(TypeError):
            parallel_quick_check(failing_property(), 10, observe=True)


class TestShardDataclass:
    def test_frozen(self):
        s = Shard(0, 1, 2)
        with pytest.raises(Exception):
            s.index = 3


class TestCampaignTelemetry:
    """Shard telemetry and live progress: the observability satellite
    of the serving-telemetry PR."""

    def _tel_key(self, t):
        """The deterministic face of a merged Telemetry: counts,
        renumbered qids, statuses — never timing buckets."""
        return (
            sorted(t.metrics.counter_snapshot().items()),
            [(ev.qid, ev.kind, ev.rel, ev.status) for ev in t.events],
            {k: h.count for k, h in t.metrics.histograms.items()},
            t._next_qid,
            t.dropped_events,
        )

    def test_merged_telemetry_counts_every_test(self, nat_ctx):
        rep = parallel_quick_check(
            le_property(nat_ctx), 30, workers=3, seed=5,
            backend="inline", ctx=nat_ctx, telemetry=True,
        )
        t = rep.telemetry
        assert t is not None
        snap = t.metrics.counter_snapshot()
        assert snap["test.runs"] == 30
        assert snap["test.ok"] == 30
        # Shard-local qids renumbered into one campaign sequence.
        assert sorted(ev.qid for ev in t.events) == list(range(1, 31))
        shards = {ev.shard for ev in t.events}
        assert shards == {0, 1, 2}

    def test_backends_merge_field_for_field(self, nat_ctx):
        kw = dict(workers=3, seed=21, ctx=nat_ctx, telemetry=True)
        keys = {}
        for backend in ("inline", "thread", "fork"):
            if backend == "fork" and not HAVE_FORK:
                continue
            rep = parallel_quick_check(
                le_property(nat_ctx), 24, backend=backend, **kw
            )
            keys[backend] = self._tel_key(rep.telemetry)
        assert len(set(map(str, keys.values()))) == 1, keys.keys()

    def test_telemetry_template_policy_propagates(self, nat_ctx):
        from repro.observe.telemetry import Telemetry

        template = Telemetry(sample_every=7, slow_seconds=9.0)
        rep = parallel_quick_check(
            le_property(nat_ctx), 12, workers=2, seed=3,
            backend="inline", ctx=nat_ctx, telemetry=template,
        )
        merged = rep.telemetry
        assert merged.sample_every == 7
        assert merged.slow_seconds == 9.0
        # The template itself stays clean: shards record into copies.
        assert template.metrics.counter_snapshot() == {}

    def test_no_telemetry_by_default(self, nat_ctx):
        rep = parallel_quick_check(
            le_property(nat_ctx), 10, workers=2, seed=3,
            backend="inline", ctx=nat_ctx,
        )
        assert rep.telemetry is None

    def test_progress_counts_all_tests(self, nat_ctx):
        from repro.resilience import CampaignProgress

        progress = CampaignProgress()
        parallel_quick_check(
            le_property(nat_ctx), 30, workers=3, seed=5,
            backend="inline", ctx=nat_ctx, progress=progress,
        )
        totals = progress.totals()
        assert totals["tests"] == 30
        assert totals["planned"] == 30
        assert totals["failed"] == 0
        rows = progress.snapshot()
        assert [r["shard"] for r in rows] == [0, 1, 2]
        assert all(r["tests"] == r["planned"] for r in rows)

    def test_progress_visible_mid_run(self, nat_ctx):
        """The live-counter contract: a property that reads the shared
        cells mid-campaign sees earlier tests already counted."""
        from repro.quickchick import for_all
        from repro.resilience import CampaignProgress

        progress = CampaignProgress()
        seen = []

        def gen(size, rng):
            return rng.randint(0, size)

        def pred(n):
            seen.append(progress.totals()["tests"])
            return True

        parallel_quick_check(
            for_all(gen, pred, name="watcher"), 10, workers=1, seed=2,
            backend="inline", ctx=nat_ctx, progress=progress,
        )
        # By the last test, earlier completions are already visible.
        assert seen[-1] == 9
        assert progress.totals()["tests"] == 10

    def test_progress_tracks_discards_and_coverage(self, nat_ctx):
        from repro.resilience import CampaignProgress

        progress = CampaignProgress()
        parallel_quick_check(
            discarding_property(nat_ctx), 20, workers=2, seed=9,
            backend="inline", ctx=nat_ctx, observe=True, progress=progress,
        )
        totals = progress.totals()
        assert totals["tests"] == 20
        assert totals["discards"] > 0
        # observe=True installs the rule trace, so coverage is live.
        assert totals["rules_fired"] > 0

    def test_progress_shared_with_fork_shards(self, nat_ctx):
        if not HAVE_FORK:
            pytest.skip("no fork start method on this platform")
        from repro.resilience import CampaignProgress

        progress = CampaignProgress()
        parallel_quick_check(
            le_property(nat_ctx), 20, workers=2, seed=5,
            backend="fork", ctx=nat_ctx, progress=progress,
        )
        # Child-process writes landed in the parent's shared cells.
        assert progress.totals()["tests"] == 20

    def test_progress_render_mentions_every_shard(self, nat_ctx):
        from repro.resilience import CampaignProgress

        progress = CampaignProgress()
        parallel_quick_check(
            le_property(nat_ctx), 12, workers=3, seed=4,
            backend="inline", ctx=nat_ctx, progress=progress,
        )
        text = progress.render()
        assert "campaign progress" in text
        assert text.count("done") == 3
        assert "total" in text
