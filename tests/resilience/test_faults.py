"""FaultPlan semantics and memo soundness under injected faults."""

import pytest

from repro.core.values import Value
from repro.derive import (
    Mode,
    clear_memo,
    derive_stats,
    disable_memoization,
    enable_memoization,
)
from repro.derive.instances import CHECKER, resolve
from repro.derive.memo import CHECKER_MEMO
from repro.producers.option_bool import NONE_OB
from repro.resilience import FAULT_KINDS, Budget, FaultPlan, budget_scope


def nat(n):
    v = Value("O", ())
    for _ in range(n):
        v = Value("S", (v,))
    return v


class TestFaultPlan:
    def test_events_are_sorted(self):
        plan = FaultPlan([(30, "evict"), (5, "fuel"), (12, "trip")])
        assert [op for op, _ in plan] == [5, 12, 30]

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultPlan([(3, "meteor")])

    def test_rejects_non_positive_index(self):
        with pytest.raises(ValueError):
            FaultPlan([(0, "fuel")])

    def test_seeded_is_deterministic(self):
        a = FaultPlan.seeded(17)
        b = FaultPlan.seeded(17)
        c = FaultPlan.seeded(18)
        assert list(a) == list(b)
        assert list(a) != list(c)
        assert all(kind in FAULT_KINDS for _, kind in a)

    def test_round_trip_dict(self):
        plan = FaultPlan.from_events((4, "fuel"), (9, "trip"))
        d = plan.as_dict()
        assert FaultPlan(d["events"], seed=d["seed"]).as_dict() == d


class TestMemoSoundness:
    """No interrupted computation may poison the memo table."""

    @pytest.fixture
    def memo_ctx(self, nat_ctx):
        enable_memoization(nat_ctx)
        yield nat_ctx
        disable_memoization(nat_ctx)

    def test_tripped_run_leaves_no_entry(self, memo_ctx):
        check = resolve(memo_ctx, CHECKER, "le", Mode.checker(2)).fn
        args = (nat(3), nat(9))
        clear_memo(memo_ctx)
        with budget_scope(memo_ctx, max_ops=4) as bud:
            assert check(30, args) is NONE_OB
        assert bud.exhausted is not None
        table = memo_ctx.caches.get(CHECKER_MEMO, {})
        assert ("le", args) not in table, "tainted answer was cached"
        assert derive_stats(memo_ctx).tainted_memo_skips > 0
        # An un-budgeted rerun is unaffected by the interrupted one.
        assert check(30, args).is_true

    def test_fuel_fault_taints_without_tripping(self, memo_ctx):
        check = resolve(memo_ctx, CHECKER, "le", Mode.checker(2)).fn
        args = (nat(2), nat(7))
        clear_memo(memo_ctx)
        plan = FaultPlan.from_events((3, "fuel"))
        with budget_scope(
            memo_ctx, faults=plan, check_every=1
        ) as bud:
            check(30, args)
        assert bud.exhausted is None  # one-shot fault, run completed
        assert bud.injected == 1
        assert ("le", args) not in memo_ctx.caches.get(CHECKER_MEMO, {})
        assert check(30, args).is_true

    def test_evict_fault_is_transparent(self, memo_ctx):
        check = resolve(memo_ctx, CHECKER, "le", Mode.checker(2)).fn
        cases = [(nat(a), nat(b)) for a in range(4) for b in range(4)]
        baseline = [check(20, args) for args in cases]
        clear_memo(memo_ctx)  # cold cache, so the faulted run computes
        plan = FaultPlan.from_events((10, "evict"), (40, "evict"))
        with budget_scope(memo_ctx, faults=plan, check_every=1) as bud:
            faulted = [check(20, args) for args in cases]
        assert bud.evictions >= 1
        assert faulted == baseline, "losing the cache changed an answer"

    def test_cache_cap_evicts_oldest(self, memo_ctx):
        check = resolve(memo_ctx, CHECKER, "le", Mode.checker(2)).fn
        clear_memo(memo_ctx)
        with budget_scope(memo_ctx, max_cache_entries=3) as bud:
            for b in range(8):
                check(20, (nat(0), nat(b)))
        table = memo_ctx.caches[CHECKER_MEMO]
        assert len(table) <= 3
        assert bud.evictions > 0
        assert derive_stats(memo_ctx).cache_evictions > 0
        # The newest entries survive (insertion-ordered eviction).
        assert ("le", (nat(0), nat(7))) in table


class TestFaultedVerdicts:
    """Injected faults only move answers toward indefinite, never flip
    a definite verdict."""

    def test_forced_fuel_is_sound(self, nat_ctx):
        check = resolve(nat_ctx, CHECKER, "le", Mode.checker(2)).fn
        cases = [
            ((nat(2), nat(5)), check(20, (nat(2), nat(5)))),
            ((nat(6), nat(1)), check(20, (nat(6), nat(1)))),
        ]
        for seed in range(5):
            plan = FaultPlan.seeded(seed, kinds=("fuel",), horizon=64)
            for args, expected in cases:
                with budget_scope(nat_ctx, faults=plan, check_every=1):
                    got = check(20, args)
                if got is not NONE_OB:
                    assert got is expected, (
                        f"fault flipped a definite verdict: seed={seed} "
                        f"args={args}"
                    )

    def test_trip_fault_degrades_to_none(self, nat_ctx):
        check = resolve(nat_ctx, CHECKER, "le", Mode.checker(2)).fn
        plan = FaultPlan.from_events((2, "trip"))
        with budget_scope(nat_ctx, faults=plan, check_every=1) as bud:
            assert check(30, (nat(3), nat(9))) is NONE_OB
        assert bud.exhausted is not None
        assert bud.exhausted.limit == "fault"
