"""Interruption-soundness differential suite (the ``fault-smoke`` CI job).

Every run here is resource-governed by a fresh :class:`Budget` with a
deterministic seeded :class:`FaultPlan` — injected forced fuel-outs,
latched trips, and cache evictions at fixed charge indices.  Because
both backends charge the identical op sequence (see
``repro.derive.exec_core``'s charge protocol), a schedule keyed on
charge indices replays identically on the interpreter and the compiled
twin, which lets the suite assert, over the SF chapter corpus and the
case studies:

* **agreement under faults** — interp and compiled produce the same
  outcome under the same schedule;
* **soundness of degradation** — a faulted run that still reaches a
  *definite* verdict agrees with the unfaulted baseline (faults only
  ever move answers toward indefinite);
* **stream validity** — a faulted enumeration emits only values the
  unfaulted enumeration emits, and generators emit only values the
  relation's checker accepts.

Wall-clock deadlines are deliberately absent: every limit is op-based,
so the whole suite is deterministic run-to-run.
"""

from __future__ import annotations

import random

import pytest

from repro.core.errors import ReproError
from repro.derive import Mode
from repro.derive.instances import (
    CHECKER,
    ENUM,
    GEN,
    resolve,
    resolve_compiled,
)
from repro.producers.option_bool import NONE_OB
from repro.producers.outcome import FAIL, OUT_OF_FUEL
from repro.resilience import FaultPlan, budget_scope
from repro.sf.registry import CHAPTER_MODULES

from tests.derive.test_backend_diff import chapter, seeded_inputs

FAULT_SEEDS = (101, 202, 303)
MAX_OPS = 50_000
MAX_CASES = 4
FUELS = (0, 2)


def fault_plans():
    return [FaultPlan.seeded(s, n_events=6, horizon=2048) for s in FAULT_SEEDS]


def _diff_checker_under_faults(ctx, rel, fuels=FUELS):
    """Both-backend checker diff under every seeded fault schedule.

    Returns the number of (args, fuel, plan) triples exercised, so the
    caller can assert the relation actually contributed coverage.
    """
    relation = ctx.relations.get(rel)
    mode = Mode.checker(relation.arity)
    interp = resolve(ctx, CHECKER, rel, mode).fn
    compiled = resolve_compiled(ctx, CHECKER, rel, mode)
    cases = seeded_inputs(ctx, relation.arg_types)[:MAX_CASES]
    assert cases, f"no seeded inputs for {rel}"
    exercised = 0
    for args in cases:
        for fuel in fuels:
            with budget_scope(ctx, max_ops=MAX_OPS) as b0:
                base = interp(fuel, args)
            base_definite = b0.exhausted is None and base is not NONE_OB
            for plan in fault_plans():
                with budget_scope(
                    ctx, max_ops=MAX_OPS, faults=plan, check_every=1
                ):
                    fi = interp(fuel, args)
                with budget_scope(
                    ctx, max_ops=MAX_OPS, faults=plan, check_every=1
                ):
                    fc = compiled(fuel, args)
                assert fi is fc, (
                    f"backends diverge under faults: {rel} fuel={fuel} "
                    f"args={args} plan={list(plan)}"
                )
                if fi is not NONE_OB and base_definite:
                    assert fi is base, (
                        f"fault flipped a definite verdict: {rel} "
                        f"fuel={fuel} args={args} plan={list(plan)}"
                    )
                exercised += 1
    return exercised


class TestSFCorpusUnderFaults:
    @pytest.mark.parametrize("module", CHAPTER_MODULES)
    def test_chapter_checkers_survive_faults(self, module):
        ch = chapter(module)
        covered = 0
        for entry in ch.entries:
            if entry.higher_order:
                continue
            relation = ch.ctx.relations.get(entry.name)
            if not relation.is_monomorphic():
                continue
            try:
                if _diff_checker_under_faults(ch.ctx, entry.name):
                    covered += 1
            except ReproError:
                continue  # out of the deriver's scope
        assert covered, f"no relation in {module} was diffable under faults"


class TestCaseStudiesUnderFaults:
    def test_bst(self):
        from repro.casestudies import bst

        ctx = bst.make_context()
        assert _diff_checker_under_faults(ctx, "bst")

    def test_stlc(self):
        from repro.casestudies import stlc

        ctx = stlc.make_context()
        assert _diff_checker_under_faults(ctx, "typing")
        assert _diff_checker_under_faults(ctx, "lookup", fuels=(0, 3))

    def test_ifc(self):
        from repro.casestudies import ifc

        ctx = ifc.make_context()
        assert _diff_checker_under_faults(ctx, "indist_atom", fuels=(0, 3))
        assert _diff_checker_under_faults(ctx, "indist_list")


class TestProducersUnderFaults:
    def test_enum_streams_agree_and_stay_valid(self, nat_ctx):
        mode = Mode.from_string("oo")
        interp = resolve(nat_ctx, ENUM, "le", mode).fn
        compiled = resolve_compiled(nat_ctx, ENUM, "le", mode)
        full = [x for x in interp(4, ()) if x is not OUT_OF_FUEL]
        for plan in fault_plans():
            with budget_scope(nat_ctx, faults=plan, check_every=1):
                a = list(interp(4, ()))
            with budget_scope(nat_ctx, faults=plan, check_every=1):
                b = list(compiled(4, ()))
            assert a == b, f"enum streams diverge under plan={list(plan)}"
            values = [x for x in a if x is not OUT_OF_FUEL and x is not FAIL]
            for v in values:
                assert v in full, (
                    f"faulted enum invented a value: {v} plan={list(plan)}"
                )

    def test_gens_agree_and_generate_valid_values(self, nat_ctx):
        mode = Mode.from_string("io")
        interp = resolve(nat_ctx, GEN, "le", mode).fn
        compiled = resolve_compiled(nat_ctx, GEN, "le", mode)
        check = resolve(nat_ctx, CHECKER, "le", Mode.checker(2)).fn
        lo = seeded_inputs(nat_ctx, [nat_ctx.relations.get("le").arg_types[0]])
        for plan in fault_plans():
            for (arg,) in lo[:3]:
                for seed in range(6):
                    with budget_scope(nat_ctx, faults=plan, check_every=1):
                        a = interp(8, (arg,), random.Random(seed))
                    with budget_scope(nat_ctx, faults=plan, check_every=1):
                        b = compiled(8, (arg,), random.Random(seed))
                    assert a == b, (
                        f"gen diverges: seed={seed} plan={list(plan)}"
                    )
                    if isinstance(a, tuple):  # outputs, not a marker
                        assert check(30, (arg,) + a).is_true, (
                            f"faulted gen produced an invalid value: {a}"
                        )
