"""Campaign resilience: budgeted quick_check, retries, circuit breaker."""

import time

import pytest

from repro.core.values import Value
from repro.derive import Mode
from repro.derive.instances import CHECKER, resolve
from repro.quickchick import classify, for_all, quick_check
from repro.resilience import Budget, CircuitBreaker
from repro.resilience.campaign import run_campaign


def nat(n):
    v = Value("O", ())
    for _ in range(n):
        v = Value("S", (v,))
    return v


def le_checker(ctx):
    return resolve(ctx, CHECKER, "le", Mode.checker(2)).fn


def le_property(ctx, fuel=30):
    check = le_checker(ctx)

    def gen(size, rng):
        a = rng.randint(0, size)
        return (a, a + rng.randint(0, size))

    def pred(pair):
        return check(fuel, (nat(pair[0]), nat(pair[1])))

    judged = classify(lambda pair: pair[0] == pair[1], "reflexive", pred)
    return for_all(gen, judged, name="le_holds")


class TestReplayGuarantee:
    def test_never_tripping_budget_replays_identically(self, nat_ctx):
        """The satellite property: seed replay is budget-transparent."""
        prop = le_property(nat_ctx)
        plain = quick_check(prop, num_tests=60, seed=424242)
        governed = quick_check(
            prop,
            num_tests=60,
            seed=424242,
            budget=Budget(),  # unlimited: charges, never trips
            ctx=nat_ctx,
        )
        assert plain.failed == governed.failed
        assert plain.tests_run == governed.tests_run
        assert plain.discards == governed.discards
        assert plain.labels == governed.labels
        assert governed.budget_trips == 0
        assert governed.stopped_reason is None

    def test_generous_deadline_replays_identically(self, nat_ctx):
        prop = le_property(nat_ctx)
        plain = quick_check(prop, num_tests=40, seed=7)
        governed = quick_check(
            prop, num_tests=40, seed=7, deadline_seconds=60.0, ctx=nat_ctx
        )
        assert (plain.tests_run, plain.discards, plain.labels) == (
            governed.tests_run,
            governed.discards,
            governed.labels,
        )


class TestPerTestBudgets:
    def test_tripped_tests_retry_then_skip(self, nat_ctx):
        prop = le_property(nat_ctx, fuel=50)
        report = quick_check(
            prop,
            num_tests=5,
            seed=11,
            budget=Budget(max_ops=1),  # every attempt trips immediately
            ctx=nat_ctx,
            budget_retries=1,
        )
        assert report.tests_run == 0
        assert report.gave_up  # skipped tests count as discards
        assert report.budget_trips > 0
        assert report.budget_retries > 0
        assert report.exhausted is not None
        assert report.exhausted.limit == "ops"

    def test_backoff_lets_retries_succeed(self, nat_ctx):
        # ~15 ops per test: the first attempt (cap 8) trips, the
        # retried attempt (cap 8 * 4) completes — every test passes on
        # its second try.
        prop = le_property(nat_ctx, fuel=30)
        report = quick_check(
            prop,
            num_tests=10,
            seed=3,
            budget=Budget(max_ops=8),
            ctx=nat_ctx,
            budget_retries=2,
            budget_backoff=4.0,
        )
        assert report.tests_run + report.discards >= 10
        assert report.budget_trips > 0
        assert report.budget_retries > 0
        assert not report.gave_up

    def test_budget_requires_a_context(self, nat_ctx):
        prop = le_property(nat_ctx)
        with pytest.raises(TypeError, match="context"):
            quick_check(prop, num_tests=2, budget=Budget(max_ops=10))

    def test_observe_supplies_the_context(self, nat_ctx):
        prop = le_property(nat_ctx)
        report = quick_check(
            prop,
            num_tests=10,
            seed=5,
            observe=nat_ctx,
            deadline_seconds=60.0,
        )
        assert report.tests_run == 10
        assert report.observation is not None


class TestCampaignDeadline:
    def test_campaign_deadline_stops_with_partial_report(self, nat_ctx):
        check = le_checker(nat_ctx)

        def slow_pred(pair):
            time.sleep(0.01)
            a, b = pair
            return check(30, (nat(a), nat(b)))

        prop = for_all(
            lambda size, rng: (0, rng.randint(0, size)), slow_pred, "slow"
        )
        report = quick_check(
            prop,
            num_tests=10_000,
            seed=1,
            campaign_deadline_seconds=0.05,
            ctx=nat_ctx,
        )
        assert report.stopped_reason is not None
        assert "campaign deadline" in report.stopped_reason
        assert report.tests_run < 10_000
        assert "Stopped early" in str(report)


class TestCircuitBreaker:
    def test_opens_on_blowup(self):
        breaker = CircuitBreaker(window=4, factor=10.0, min_samples=8)
        for _ in range(20):
            assert breaker.record(100) is None
        reason = None
        for _ in range(4):
            reason = breaker.record(100_000)
        assert reason is not None
        assert "circuit breaker" in reason

    def test_quiet_campaign_never_opens(self):
        breaker = CircuitBreaker()
        for cost in range(100, 200):  # mild drift, no blowup
            assert breaker.record(cost) is None

    def test_needs_min_samples(self):
        breaker = CircuitBreaker(window=2, factor=2.0, min_samples=50)
        for _ in range(10):
            assert breaker.record(1) is None
        assert breaker.record(10_000_000) is None  # still warming up

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(window=0)

    def test_campaign_aborts_on_step_rate_blowup(self, nat_ctx):
        check = le_checker(nat_ctx)
        counter = {"n": 0}

        def gen(size, rng):
            counter["n"] += 1
            rng.random()  # keep the stream moving
            return 2 if counter["n"] <= 30 else 300

        def pred(n):
            return not check(n + 5, (nat(0), nat(n))).is_false

        prop = for_all(gen, pred, "blowup")
        report = run_campaign(
            prop,
            num_tests=200,
            seed=9,
            budget=Budget(),  # unlimited; supplies the op costs
            ctx=nat_ctx,
            breaker=CircuitBreaker(window=4, factor=10.0, min_samples=8),
        )
        assert report.stopped_reason is not None
        assert "circuit breaker" in report.stopped_reason
        assert report.tests_run < 200


class TestGaveUpReport:
    def test_gave_up_str_has_reproduction_coordinates(self):
        """Satellite fix: the gave-up branch prints seed and size."""
        prop = for_all(lambda size, rng: rng.random(), lambda x: None, "d")
        report = quick_check(prop, num_tests=5, seed=99, size=7)
        assert report.gave_up
        text = str(report)
        assert "seed=99" in text
        assert "size=7" in text
