"""``python -m repro.resilience``: rendering and exit codes."""

import json

import pytest

from repro.quickchick import CheckReport
from repro.resilience import Budget, write_report_jsonl
from repro.resilience.cli import (
    EXIT_CLEAN,
    EXIT_EXHAUSTED,
    EXIT_GAVE_UP,
    EXIT_UNREADABLE,
    main,
    render_report_dict,
)


def _exhausted():
    bud = Budget(max_ops=5)
    while not bud.charge(1):
        pass
    bud.record_site("checker", "le", "in in")
    return bud.exhausted


def _passed(name="p"):
    return CheckReport(name, tests_run=100, seed=1, size=5, labels={"hit": 40})


def _failed():
    return CheckReport(
        "f", tests_run=7, failed=True, counterexample=(3, 1), seed=2, size=5
    )


def _tripped():
    return CheckReport(
        "t",
        tests_run=3,
        discards=20,
        gave_up=True,
        seed=4,
        size=5,
        budget_trips=12,
        budget_retries=6,
        exhausted=_exhausted(),
    )


def _export(tmp_path, reports, name="campaign.jsonl"):
    path = tmp_path / name
    write_report_jsonl(reports, str(path))
    return str(path)


class TestExitCodes:
    def test_clean_pass(self, tmp_path, capsys):
        assert main([_export(tmp_path, [_passed(), _passed("q")])]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "+++ Passed 100 tests" in out
        assert "40.0% hit" in out

    def test_failed_campaign(self, tmp_path, capsys):
        assert main([_export(tmp_path, [_passed(), _failed()])]) == EXIT_GAVE_UP
        out = capsys.readouterr().out
        assert "*** Failed after 7 tests" in out
        assert "counterexample: (3, 1)" in out

    def test_stopped_campaign(self, tmp_path, capsys):
        stopped = _passed("s")
        stopped.stopped_reason = "campaign deadline (0.05s) reached"
        assert main([_export(tmp_path, [stopped])]) == EXIT_GAVE_UP
        assert "*** Stopped early: campaign deadline" in capsys.readouterr().out

    def test_exhausted_beats_failed(self, tmp_path, capsys):
        code = main([_export(tmp_path, [_failed(), _tripped()])])
        assert code == EXIT_EXHAUSTED
        out = capsys.readouterr().out
        assert "*** Exhausted: ops limit tripped" in out
        assert "at checker:le[in in]" in out
        assert "12 budget-tripped tests (6 retries)" in out

    def test_missing_file(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.jsonl")]) == EXIT_UNREADABLE
        assert "cannot read" in capsys.readouterr().err

    def test_not_a_report_export(self, tmp_path, capsys):
        path = tmp_path / "spans.jsonl"
        path.write_text('{"kind": "span", "rel": "le"}\n')
        assert main([str(path)]) == EXIT_UNREADABLE
        assert "no check_report records" in capsys.readouterr().err

    def test_malformed_json(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        assert main([str(path)]) == EXIT_UNREADABLE


class TestRoundTrip:
    def test_to_dict_survives_jsonl(self, tmp_path):
        path = _export(tmp_path, [_tripped()])
        with open(path, encoding="utf-8") as fh:
            rec = json.loads(fh.readline())
        assert rec["kind"] == "check_report"
        assert rec["budget_trips"] == 12
        assert rec["exhausted"]["kind"] == "exhausted"
        assert rec["exhausted"]["limit"] == "ops"
        text = render_report_dict(rec)
        assert "ops limit" in text

    def test_gave_up_render_names_seed_and_size(self):
        text = render_report_dict(_tripped().to_dict())
        assert "seed=4" in text
        assert "size=5" in text


def test_module_entry_point(tmp_path):
    import subprocess
    import sys

    path = tmp_path / "c.jsonl"
    write_report_jsonl([_tripped()], str(path))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.resilience", str(path)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        cwd="/root/repo",
    )
    assert proc.returncode == EXIT_EXHAUSTED
    assert "Exhausted" in proc.stdout
