"""Tests over the Software Foundations corpus (Table 1's population)."""

import pytest

from repro.core.values import (
    V,
    from_bool,
    from_int,
    from_list,
    from_pair,
    nat_list,
)
from repro.derive import derive_checker
from repro.sf.registry import (
    CHAPTER_MODULES,
    census_relation,
    load_chapter,
    table1,
)

# Chapters are expensive to load once each; cache per test session.
_CHAPTERS = {}


def chapter(module):
    if module not in _CHAPTERS:
        _CHAPTERS[module] = load_chapter(module)
    return _CHAPTERS[module]


class TestCorpusLoads:
    @pytest.mark.parametrize("module", CHAPTER_MODULES)
    def test_chapter_loads(self, module):
        ch = chapter(module)
        assert ch.entries
        assert all(e.volume in ("LF", "PLF") for e in ch.entries)

    def test_every_in_scope_relation_derives(self):
        failures = []
        for module in CHAPTER_MODULES:
            ch = chapter(module)
            for entry in ch.entries:
                if entry.higher_order:
                    continue
                ok, _baseline, note = census_relation(ch.ctx, entry.name)
                if not ok:
                    failures.append((module, entry.name, note))
        assert not failures, failures


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        rows, _ = table1()
        return rows

    def test_full_covers_all_first_order(self, rows):
        for volume in ("LF", "PLF"):
            row = rows[volume]
            assert row.derived == row.relations - row.out_of_scope

    def test_baseline_much_smaller(self, rows):
        for volume in ("LF", "PLF"):
            row = rows[volume]
            assert row.baseline < row.derived / 2

    def test_plf_larger_than_lf(self, rows):
        assert rows["PLF"].relations > rows["LF"].relations


class TestSpotBehaviors:
    """Semantic spot checks of representative corpus relations."""

    def test_exp_match(self):
        ch = chapter("repro.sf.lf_indprop")
        match = derive_checker(ch.ctx, "exp_match")
        star01 = V(
            "RStar",
            V("RUnion", V("RChar", from_int(0)), V("RChar", from_int(1))),
        )
        assert match(10, nat_list([0, 1, 1]), star01).is_true
        # Refuting Star membership needs an exhaustive split search the
        # bounded enumerators cannot close: the semi-decision answers
        # None, never a wrong Some true (Section 5.1's caveat).
        assert not match(10, nat_list([2]), star01).is_true
        assert match(10, nat_list([]), star01).is_true

    def test_pal(self):
        ch = chapter("repro.sf.lf_indprop")
        pal = derive_checker(ch.ctx, "pal")
        # The existential tail is found by enumeration: keep the fuel
        # just above the element values or the search space explodes.
        assert pal(5, nat_list([1, 2, 1])).is_true
        assert pal(5, nat_list([1, 2, 2, 1])).is_true
        assert not pal(5, nat_list([1, 2])).is_true

    def test_nostutter(self):
        ch = chapter("repro.sf.lf_indprop")
        ns = derive_checker(ch.ctx, "nostutter")
        assert ns(10, nat_list([1, 2, 1])).is_true
        assert ns(10, nat_list([1, 1])).is_false

    def test_subseq(self):
        ch = chapter("repro.sf.lf_indprop")
        sub = derive_checker(ch.ctx, "subseq")
        assert sub(12, nat_list([1, 3]), nat_list([1, 2, 3])).is_true
        assert sub(12, nat_list([3, 1]), nat_list([1, 2, 3])).is_false

    def test_merge(self):
        ch = chapter("repro.sf.lf_indprop")
        merge = derive_checker(ch.ctx, "merge")
        assert merge(
            12, nat_list([1, 3]), nat_list([2]), nat_list([1, 2, 3])
        ).is_true
        assert merge(
            12, nat_list([1, 3]), nat_list([2]), nat_list([3, 2, 1])
        ).is_false

    def test_imp_aevalR(self):
        ch = chapter("repro.sf.lf_imp")
        aeval = derive_checker(ch.ctx, "aevalR")
        st = from_list([from_pair(from_int(0), from_int(5))])
        expr = V("APlus", V("AId", from_int(0)), V("ANum", from_int(2)))
        assert aeval(10, st, expr, from_int(7)).is_true
        assert aeval(10, st, expr, from_int(8)).is_false

    def test_imp_ceval_assignment(self):
        ch = chapter("repro.sf.lf_imp")
        ceval = derive_checker(ch.ctx, "cevalR")
        prog = V("CAss", from_int(0), V("ANum", from_int(3)))
        initial = from_list([])
        final = from_list([from_pair(from_int(0), from_int(3))])
        assert ceval(10, prog, initial, final).is_true

    def test_imp_while_diverges_to_none(self):
        ch = chapter("repro.sf.lf_imp")
        ceval = derive_checker(ch.ctx, "cevalR")
        loop = V("CWhile", V("BTrue"), V("CSkip"))
        empty = from_list([])
        assert ceval(12, loop, empty, empty).is_none

    def test_smallstep_arith(self):
        ch = chapter("repro.sf.plf_smallstep")
        step = derive_checker(ch.ctx, "step")
        t = V("Ptm", V("Ctm", from_int(1)), V("Ctm", from_int(2)))
        assert step(8, t, V("Ctm", from_int(3))).is_true
        assert step(8, t, V("Ctm", from_int(4))).is_false

    def test_smallstep_eval_big(self):
        ch = chapter("repro.sf.plf_smallstep")
        ev = derive_checker(ch.ctx, "eval_big")
        t = V("Ptm", V("Ctm", from_int(1)), V("Ptm", V("Ctm", from_int(2)), V("Ctm", from_int(3))))
        assert ev(10, t, from_int(6)).is_true

    def test_typed_arith_has_type(self):
        ch = chapter("repro.sf.plf_types")
        ht = derive_checker(ch.ctx, "ta_has_type")
        t = V("tite", V("ttru"), V("tzro"), V("tscc", V("tzro")))
        assert ht(8, t, V("TNat")).is_true
        assert ht(8, t, V("TBool")).is_false

    def test_stlc_substi_agrees_with_function(self):
        ch = chapter("repro.sf.plf_stlc")
        substi = derive_checker(ch.ctx, "substi")
        # [x := tru] (\y:Bool. x)  =  \y:Bool. tru   (x=0, y=1)
        s = V("stru")
        body = V("sabs", from_int(1), V("STBool"), V("svar", from_int(0)))
        out = V("sabs", from_int(1), V("STBool"), V("stru"))
        assert substi(10, s, from_int(0), body, out).is_true
        assert substi(10, s, from_int(0), body, body).is_false

    def test_sub_subtyping(self):
        ch = chapter("repro.sf.plf_sub")
        sub = derive_checker(ch.ctx, "subtype")
        top = V("UTop")
        bool_ = V("UBool")
        arrow = lambda a, b: V("UArrow", a, b)
        # S_Trans existentially quantifies the middle type, so the
        # checker's witness enumeration is doubly exponential in fuel
        # (each Trans level squares the candidate set): fuel 2 is both
        # sufficient for these goals and the largest tractable budget.
        assert sub(2, bool_, top).is_true
        assert sub(2, arrow(top, bool_), arrow(bool_, top)).is_true  # contravariance
        # Not a subtype; the semi-decision must never say yes.
        assert not sub(2, top, bool_).is_true

    def test_records_lookup(self):
        ch = chapter("repro.sf.plf_records")
        look = derive_checker(ch.ctx, "rty_lookup")
        rcd = V("RTCons", from_int(0), V("RBase", from_int(7)),
                V("RTCons", from_int(1), V("RTNil"), V("RTNil")))
        assert look(8, from_int(1), rcd, V("RTNil")).is_true
        assert look(8, from_int(2), rcd, V("RTNil")).is_false

    def test_references_store(self):
        ch = chapter("repro.sf.plf_references")
        slook = derive_checker(ch.ctx, "store_lookup")
        store = from_list([V("funit"), V("fconst", from_int(3))])
        assert slook(6, from_int(1), store, V("fconst", from_int(3))).is_true
        assert slook(6, from_int(2), store, V("funit")).is_false
