"""Each diagnostic code, triggered by its fixture and asserted by code
and message substring."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import Severity, analyze, analyze_context
from repro.core import parse_declarations
from repro.stdlib import standard_context

FIXTURES = Path(__file__).parent / "fixtures"


def load_fixture(name: str):
    ctx = standard_context()
    parse_declarations(ctx, (FIXTURES / name).read_text())
    return ctx


class TestRel001:
    def test_negated_existential_warns(self):
        ctx = load_fixture("rel001_blocked.v")
        report = analyze(ctx, "blocked")
        found = report.by_code("REL001")
        assert found, report.render()
        [diag] = [d for d in found if d.severity is Severity.WARNING]
        assert "'m'" in diag.message
        assert "generate-and-test" in diag.message
        assert "le m n" in diag.message
        assert diag.rule == "blk"

    def test_unconstrained_output_is_info(self):
        ctx = standard_context()
        parse_declarations(
            ctx,
            """
            Inductive anypair : nat -> nat -> Prop :=
            | ap : forall n m, anypair n m.
            """,
        )
        # At mode 'io' nothing constrains the output m: producers will
        # sample it arbitrarily, which is worth an info but no more.
        report = analyze(ctx, "anypair", "io")
        infos = [d for d in report.by_code("REL001") if d.severity is Severity.INFO]
        assert any(
            "output variable 'm' is unconstrained" in d.message for d in infos
        ), report.render()
        assert report.ok

    def test_clean_relation_is_clean(self):
        ctx = load_fixture("rel001_blocked.v")
        assert len(analyze(ctx, "le")) == 0


class TestRel002:
    def test_self_negation_is_error(self):
        ctx = load_fixture("rel002_negcycle.v")
        report = analyze(ctx, "unstrat")
        found = report.by_code("REL002")
        assert found, report.render()
        assert found[0].severity is Severity.ERROR
        assert "not stratified" in found[0].message
        assert found[0].rule == "us_S"
        assert not report.ok

    def test_mutual_negation_detected(self):
        ctx = standard_context()
        parse_declarations(
            ctx,
            """
            Inductive p : nat -> Prop :=
            | p_0 : p 0
            | p_S : forall n, ~ (q n) -> p (S n)
            with q : nat -> Prop :=
            | q_S : forall n, p n -> q (S n).
            """,
        )
        report = analyze(ctx, "p")
        assert report.by_code("REL002"), report.render()

    def test_negation_across_strata_is_fine(self):
        ctx = load_fixture("rel001_blocked.v")
        # 'blocked' negates 'le' but is not in le's component.
        assert not analyze(ctx, "blocked").by_code("REL002")


class TestRel003:
    def test_subsumed_rule_warns_at_checker_mode(self):
        ctx = load_fixture("rel003_overlap.v")
        report = analyze(ctx, "anynat")
        found = report.by_code("REL003")
        assert found, report.render()
        assert found[0].severity is Severity.WARNING
        assert found[0].rule == "zero"
        assert "unreachable" in found[0].message
        assert "'any'" in found[0].message

    def test_producer_mode_reports_redundancy(self):
        ctx = load_fixture("rel003_overlap.v")
        report = analyze(ctx, "anynat", "o")
        found = report.by_code("REL003")
        assert found and "redundant" in found[0].message

    def test_nonlinear_base_rule_does_not_subsume(self):
        # After preprocessing, `le n n` carries an equality premise, so
        # it must NOT be reported as subsuming `le n (S m)`.
        ctx = load_fixture("rel001_blocked.v")
        assert not analyze(ctx, "le").by_code("REL003")


class TestRel004:
    def test_no_base_case_is_error(self):
        ctx = load_fixture("rel004_nobase.v")
        report = analyze(ctx, "loop")
        found = report.by_code("REL004")
        assert found, report.render()
        assert found[0].severity is Severity.ERROR
        assert "no rule can ever succeed" in found[0].message
        assert "exhausts its fuel" in found[0].message

    def test_dead_rule_is_warning(self):
        ctx = load_fixture("rel004_nobase.v")
        report = analyze(ctx, "uses_loop")
        found = report.by_code("REL004")
        assert found, report.render()
        [diag] = found
        assert diag.severity is Severity.WARNING
        assert diag.rule == "dead"
        assert "'loop' never succeeds" in diag.message
        assert report.ok  # uses_loop itself still derives fine

    def test_zero_rule_relation_is_info(self):
        from repro.core.relations import Relation
        from repro.core.types import Ty

        ctx = standard_context()
        ctx.declare_relation(Relation("void", (Ty("nat"),), ()))
        report = analyze(ctx, "void")
        found = report.by_code("REL004")
        assert found and found[0].severity is Severity.INFO
        assert "decidably empty" in found[0].message
        assert report.ok


class TestRel005:
    def test_mutual_recursion_reports_cycle(self):
        ctx = load_fixture("rel005_mutual.v")
        report = analyze(ctx, "even")
        found = report.by_code("REL005")
        assert found, report.render()
        assert found[0].severity is Severity.ERROR
        assert "cyclic instance dependency" in found[0].message
        assert "derive_mutual" in (found[0].note or "")

    def test_registered_instances_break_the_cycle(self):
        from repro.derive.mutual import derive_mutual_checkers

        ctx = load_fixture("rel005_mutual.v")
        derive_mutual_checkers(ctx, ["even", "odd"])
        assert not analyze(ctx, "even").by_code("REL005")

    def test_acyclic_closure_is_clean(self):
        ctx = load_fixture("rel001_blocked.v")
        assert not analyze(ctx, "blocked").by_code("REL005")


class TestRel006:
    def test_funcall_conclusion_at_inverse_mode(self):
        ctx = load_fixture("rel006_degrade.v")
        report = analyze(ctx, "square_of", "oi")
        found = report.by_code("REL006")
        assert found, report.render()
        assert found[0].severity is Severity.WARNING
        assert "function call in the conclusion" in found[0].message
        assert "generate-and-test" in found[0].message

    def test_nonlinear_conclusion_at_full_output_mode(self):
        ctx = load_fixture("rel006_degrade.v")
        report = analyze(ctx, "diag", "oo")
        found = report.by_code("REL006")
        assert found, report.render()
        assert any("non-linear conclusion pattern" in d.message for d in found)

    def test_checker_mode_is_clean(self):
        ctx = load_fixture("rel006_degrade.v")
        assert len(analyze(ctx, "square_of")) == 0
        assert len(analyze(ctx, "diag")) == 0


class TestRel007:
    def test_derived_functional_mode_is_info(self):
        ctx = load_fixture("rel007_functional.v")
        report = analyze(ctx, "quad")
        found = report.by_code("REL007")
        assert found, report.render()
        [diag] = found
        assert diag.severity is Severity.INFO
        assert diag.relation == "twice"
        assert diag.mode == "io"
        assert "functional" in diag.message
        assert "rule 'qd'" in (diag.note or "")
        assert report.ok

    def test_analyzed_producer_mode_reports_itself(self):
        ctx = load_fixture("rel007_functional.v")
        report = analyze(ctx, "twice", "io")
        found = report.by_code("REL007")
        assert found, report.render()
        assert any("producer mode io" in d.message for d in found)


class TestRel008:
    def test_fires_only_with_functionalization_off(self):
        from repro.derive import disable_functionalization

        ctx = load_fixture("rel008_enumcheck.v")
        assert not analyze(ctx, "sum4").by_code("REL008")
        disable_functionalization(ctx)
        report = analyze(ctx, "sum4")
        found = report.by_code("REL008")
        assert found, report.render()
        [diag] = found
        assert diag.severity is Severity.WARNING
        assert diag.rule == "s4"
        assert "enumerate-then-check" in diag.message
        assert "disable_functionalization" in (diag.note or "")


class TestRel009:
    def test_overlap_defeats_producer_determinism(self):
        ctx = load_fixture("rel009_overlap.v")
        report = analyze(ctx, "le2", "io")
        found = report.by_code("REL009")
        assert found, report.render()
        assert found[0].severity is Severity.WARNING
        assert "overlapping conclusions" in found[0].message
        assert found[0].rule == "le2_refl"

    def test_checker_mode_is_clean(self):
        ctx = load_fixture("rel009_overlap.v")
        assert not analyze(ctx, "le2").by_code("REL009")


class TestAnalyzeContext:
    def test_merges_all_relations(self):
        ctx = load_fixture("rel004_nobase.v")
        report = analyze_context(ctx)
        rels = {d.relation for d in report}
        assert {"loop", "uses_loop"} <= rels

    def test_extra_modes(self):
        ctx = load_fixture("rel006_degrade.v")
        report = analyze_context(ctx, modes={"square_of": ["oi"]})
        assert report.by_code("REL006")

    def test_polymorphic_relations_skipped(self):
        ctx = standard_context()
        parse_declarations(
            ctx,
            """
            Inductive All (A : Type) : list A -> Prop :=
            | All_nil : All [].
            """,
        )
        # Must not crash trying to schedule the polymorphic relation.
        analyze_context(ctx)


class TestModeValidation:
    def test_wrong_arity_mode_rejected(self):
        from repro.core.errors import ArityError

        ctx = load_fixture("rel001_blocked.v")
        with pytest.raises(ArityError, match="le"):
            analyze(ctx, "le", "iii")

    def test_unknown_relation_rejected(self):
        from repro.core.errors import UnknownNameError

        ctx = standard_context()
        with pytest.raises(UnknownNameError):
            analyze(ctx, "nope")
