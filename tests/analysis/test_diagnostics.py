"""Diagnostic objects, severity ordering, rendering, and spans."""

from __future__ import annotations

import json

import pytest

from repro.analysis import CODES, Diagnostic, Report, Severity, analyze
from repro.core import parse_declarations
from repro.core.relations import Span
from repro.stdlib import standard_context


def diag(**kw):
    defaults = dict(
        code="REL001",
        severity=Severity.WARNING,
        message="something",
        relation="p",
    )
    defaults.update(kw)
    return Diagnostic(**defaults)


class TestDiagnostic:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            diag(code="REL999")

    def test_all_codes_documented(self):
        assert sorted(CODES) == [f"REL00{i}" for i in range(1, 10)]

    def test_render_basic(self):
        text = diag(severity=Severity.ERROR, message="broken").render()
        assert text.startswith("error[REL001]: p: broken")

    def test_render_with_span_rule_mode_and_source(self):
        d = diag(rule="mk", mode="io", span=Span(4, 7), note="hint")
        text = d.render(source="foo.v")
        assert "warning[REL001]: p at mode io: something" in text
        assert "--> foo.v:4:7 (rule mk)" in text
        assert "= note: hint" in text

    def test_as_dict_has_line_and_column(self):
        d = diag(span=Span(2, 5))
        payload = d.as_dict()
        assert payload["line"] == 2 and payload["column"] == 5
        assert payload["severity"] == "warning"

    def test_severity_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO


class TestReport:
    def test_sorted_worst_first(self):
        r = Report.of(
            [
                diag(severity=Severity.INFO),
                diag(severity=Severity.ERROR),
                diag(severity=Severity.WARNING),
            ]
        )
        assert [d.severity for d in r] == [
            Severity.ERROR,
            Severity.WARNING,
            Severity.INFO,
        ]

    def test_partitions_and_ok(self):
        r = Report.of([diag(severity=Severity.WARNING)])
        assert r.ok and r.warnings and not r.errors
        r2 = Report.of([diag(severity=Severity.ERROR)])
        assert not r2.ok

    def test_merge_dedupes(self):
        a = Report.of([diag()])
        b = Report.of([diag(), diag(message="other")])
        assert len(a.merge(b)) == 2

    def test_to_json_roundtrips(self):
        r = Report.of([diag(span=Span(1, 2))])
        data = json.loads(r.to_json())
        assert data[0]["code"] == "REL001"

    def test_render_counts(self):
        r = Report.of([diag(), diag(message="other")])
        assert "2 warnings" in r.render()
        assert Report.of(()).render() == "no findings"


class TestSpansEndToEnd:
    def test_parser_spans_reach_diagnostics(self):
        ctx = standard_context()
        parse_declarations(
            ctx,
            "Inductive loop : nat -> Prop :=\n"
            "| loop_S : forall n, loop n -> loop (S n).\n",
        )
        [d] = analyze(ctx, "loop").by_code("REL004")
        # The relation's declaration starts at line 1.
        assert d.span is not None and d.span.line == 1
        assert f"{d.span}" in d.render(source="inline.v")

    def test_spans_do_not_affect_equality(self):
        from repro.core.relations import Relation, Rule
        from repro.core.types import Ty

        a = Relation("p", (Ty("nat"),), (), span=Span(1, 1))
        b = Relation("p", (Ty("nat"),), (), span=Span(9, 9))
        assert a == b
        ra = Rule("r", (), (), span=Span(1, 1))
        rb = Rule("r", (), (), span=None)
        assert ra == rb
