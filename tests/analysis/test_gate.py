"""The derive-time gate: AnalysisError with structured diagnostics,
the opt-outs, and the zero-overhead-when-disabled guarantee."""

from __future__ import annotations

import pytest

from repro.analysis import (
    analysis_enabled,
    cached_report,
    disable_analysis,
    enable_analysis,
)
from repro.core import parse_declarations
from repro.core.errors import AnalysisError, DerivationError
from repro.core.relations import Relation, RelPremise, Rule
from repro.core.terms import Var
from repro.core.types import Ty
from repro.derive import derive_checker, derive_enumerator, derive_generator
from repro.derive.instances import register_checker
from repro.derive.stats import install_stats
from repro.producers.option_bool import SOME_TRUE
from repro.stdlib import standard_context

LE = """
Inductive le : nat -> nat -> Prop :=
| le_n : forall n, le n n
| le_S : forall n m, le n m -> le n (S m).
"""


def gated_ctx():
    """A context whose relation 'gated' is underivable: it was declared
    *without* type inference, so the variables its negated premise must
    brute-force have no types."""
    ctx = standard_context()
    parse_declarations(ctx, LE)
    rule = Rule(
        "blk",
        (RelPremise("le", (Var("x"), Var("y")), negated=True),),
        (Var("n"),),
    )
    ctx.relations.declare(Relation("gated", (Ty("nat"),), (rule,)))
    return ctx


class TestGateRaises:
    def test_checker_gate_names_variable_and_premise(self):
        ctx = gated_ctx()
        with pytest.raises(AnalysisError) as exc_info:
            derive_checker(ctx, "gated")
        message = str(exc_info.value)
        # Previously this surfaced as a generic scheduling failure; now
        # the error names the blocking variable and premise up front.
        assert "'x'" in message
        assert "~ (le x y)" in message
        assert "REL001" in message

    def test_diagnostics_attached(self):
        ctx = gated_ctx()
        with pytest.raises(AnalysisError) as exc_info:
            derive_checker(ctx, "gated")
        diags = exc_info.value.diagnostics
        assert diags and all(d.code == "REL001" for d in diags[:1])
        assert any(d.relation == "gated" for d in diags)

    def test_producer_gates(self):
        ctx = gated_ctx()
        with pytest.raises(AnalysisError):
            derive_enumerator(ctx, "gated", "o")
        with pytest.raises(AnalysisError):
            derive_generator(ctx, "gated", "o")

    def test_analysis_error_is_a_derivation_error(self):
        ctx = gated_ctx()
        with pytest.raises(DerivationError):
            derive_checker(ctx, "gated")

    def test_stratification_error_gates(self):
        ctx = standard_context()
        parse_declarations(
            ctx,
            """
            Inductive unstrat : nat -> Prop :=
            | us_0 : unstrat 0
            | us_S : forall n, ~ (unstrat n) -> unstrat (S n).
            """,
        )
        with pytest.raises(AnalysisError, match="REL00"):
            derive_checker(ctx, "unstrat")


class TestOptOuts:
    def test_per_call_opt_out_restores_old_error(self):
        ctx = gated_ctx()
        with pytest.raises(DerivationError) as exc_info:
            derive_checker(ctx, "gated", analysis=False)
        assert not isinstance(exc_info.value, AnalysisError)
        assert "no type for variable" in str(exc_info.value)

    def test_context_wide_disable(self):
        ctx = gated_ctx()
        assert analysis_enabled(ctx)
        disable_analysis(ctx)
        assert not analysis_enabled(ctx)
        with pytest.raises(DerivationError) as exc_info:
            derive_checker(ctx, "gated")
        assert not isinstance(exc_info.value, AnalysisError)
        enable_analysis(ctx)
        with pytest.raises(AnalysisError):
            derive_checker(ctx, "gated")

    def test_registered_instance_skips_the_gate(self):
        ctx = gated_ctx()
        register_checker(ctx, "gated", lambda fuel, args: SOME_TRUE)
        # Nothing will be derived, so nothing is analyzed or rejected.
        chk = derive_checker(ctx, "gated")
        from repro.core.values import from_int

        assert chk(1, from_int(0)).is_true


class TestOverheadDiscipline:
    def test_reports_cached_per_mode(self):
        ctx = standard_context()
        parse_declarations(ctx, LE)
        stats = install_stats(ctx)
        derive_checker(ctx, "le")
        derive_checker(ctx, "le")
        assert stats.analysis_runs == 1  # second call reuses the report
        from repro.derive.modes import Mode

        assert cached_report(ctx, "le", Mode.checker(2), "checker") is not None

    def test_disabled_means_no_analysis_work(self):
        ctx = standard_context()
        parse_declarations(ctx, LE)
        stats = install_stats(ctx)
        disable_analysis(ctx)
        derive_checker(ctx, "le")
        assert stats.analysis_runs == 0
        assert "analysis_reports" not in ctx.artifacts

    def test_gate_reuses_schedule_cache(self):
        # The schedules the analyzer builds are the ones derivation
        # consumes — analysis must not force a second scheduling pass.
        ctx = standard_context()
        parse_declarations(ctx, LE)
        derive_checker(ctx, "le")
        schedules = ctx.artifacts.get("schedules")
        assert schedules
        # One checker-mode schedule for le, not one per consumer.
        keys = [k for k in schedules if k[0] == "le" and str(k[1]) == "ii"]
        assert len(keys) == 1
