"""Corpus gate: every sf chapter and case study must lint clean.

This is the test behind CI's ``lint-corpus`` job — the linter runs over
everything the repo can parse, and anything above INFO that is not in
the checked-in allowlist fails the build.
"""

from __future__ import annotations

import importlib
from pathlib import Path

import pytest

from repro.analysis import Severity, analyze_context
from repro.analysis.cli import CASE_STUDY_MODULES, is_allowed, load_allowlist
from repro.sf.registry import CHAPTER_MODULES, load_chapter

ALLOWLIST = load_allowlist(
    str(Path(__file__).parent / "fixtures" / "corpus_allowlist.txt")
)


def _unexpected(report):
    return [
        d
        for d in report
        if d.severity is not Severity.INFO and not is_allowed(d, ALLOWLIST)
    ]


@pytest.mark.parametrize("module", CHAPTER_MODULES)
def test_sf_chapter_lints_clean(module):
    chapter = load_chapter(module)
    report = analyze_context(chapter.ctx)
    bad = _unexpected(report)
    assert not bad, "\n\n".join(d.render(module) for d in bad)


@pytest.mark.parametrize("module", CASE_STUDY_MODULES)
def test_case_study_lints_clean(module):
    ctx = importlib.import_module(module).make_context()
    report = analyze_context(ctx)
    bad = _unexpected(report)
    assert not bad, "\n\n".join(d.render(module) for d in bad)
