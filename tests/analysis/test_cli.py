"""The ``python -m repro.analysis`` front end: exit codes, output
shapes, allowlists."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestExitCodes:
    def test_no_input_is_usage_error(self, capsys):
        code, _, err = run(capsys)
        assert code == 2 and "give files to lint" in err

    def test_clean_file_exits_zero(self, capsys):
        code, out, _ = run(capsys, str(FIXTURES / "rel006_degrade.v"))
        assert code == 0
        assert "0 finding(s)" in out

    def test_findings_exit_one(self, capsys):
        code, out, _ = run(capsys, str(FIXTURES / "rel003_overlap.v"))
        assert code == 1
        assert "REL003" in out and "anynat" in out

    def test_parse_failure_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.v"
        bad.write_text("Inductive oops :=")
        code, _, err = run(capsys, str(bad))
        assert code == 2 and "error:" in err

    def test_missing_file_exits_two(self, capsys):
        code, _, err = run(capsys, "no_such_file.v")
        assert code == 2


class TestModes:
    def test_mode_flag_triggers_producer_lint(self, capsys):
        code, out, _ = run(
            capsys,
            str(FIXTURES / "rel006_degrade.v"),
            "--mode",
            "square_of:oi",
        )
        assert code == 1
        assert "REL006" in out

    def test_bad_mode_flag(self, capsys):
        code, _, err = run(
            capsys, str(FIXTURES / "rel006_degrade.v"), "--mode", "nocolon"
        )
        assert code == 2 and "--mode" in err


class TestAllowlist:
    def test_allowlisted_finding_does_not_fail(self, tmp_path, capsys):
        allow = tmp_path / "allow.txt"
        allow.write_text("# comment\nREL003:anynat\n")
        code, out, _ = run(
            capsys, str(FIXTURES / "rel003_overlap.v"), "--allow", str(allow)
        )
        assert code == 0
        assert "allowlisted" in out

    def test_code_wide_allow(self, tmp_path, capsys):
        allow = tmp_path / "allow.txt"
        allow.write_text("REL003\n")
        code, _, _ = run(
            capsys, str(FIXTURES / "rel003_overlap.v"), "--allow", str(allow)
        )
        assert code == 0

    def test_unrelated_allow_still_fails(self, tmp_path, capsys):
        allow = tmp_path / "allow.txt"
        allow.write_text("REL003:otherrel\n")
        code, _, _ = run(
            capsys, str(FIXTURES / "rel003_overlap.v"), "--allow", str(allow)
        )
        assert code == 1


class TestJson:
    def test_json_payload(self, capsys):
        code, out, _ = run(
            capsys, str(FIXTURES / "rel004_nobase.v"), "--json"
        )
        assert code == 1
        payload = json.loads(out)
        [(label, diags)] = payload.items()
        assert label.endswith("rel004_nobase.v")
        codes = {d["code"] for d in diags}
        assert "REL004" in codes
        assert all({"severity", "relation", "message"} <= set(d) for d in diags)
