(* REL006: at producer modes these degrade to generate-and-test —
   square_of at mode oi must enumerate n and filter through n*n = m;
   diag at mode oo must enumerate both sides of the synthetic
   equality. Clean at checker mode. *)
Inductive square_of : nat -> nat -> Prop :=
| sq : forall n, square_of n (n * n).

Inductive diag : nat -> nat -> Prop :=
| dg : forall x, diag x x.
