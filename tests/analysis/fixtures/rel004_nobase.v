(* REL004: 'loop' has no base case, so its checker exhausts fuel on
   every query; the rule 'dead' of 'uses_loop' can therefore never
   succeed either. *)
Inductive loop : nat -> Prop :=
| loop_S : forall n, loop n -> loop (S n).

Inductive uses_loop : nat -> Prop :=
| ul_0 : uses_loop 0
| dead : forall n, loop n -> uses_loop n.
