(* REL005: mutually recursive relations need derive_mutual; plain
   instance resolution would chase a cyclic dependency. *)
Inductive even : nat -> Prop :=
| even_0 : even 0
| even_S : forall n, odd n -> even (S n)
with odd : nat -> Prop :=
| odd_S : forall n, even n -> odd (S n).
