(* REL003: the premise-free rule 'any' accepts every nat, so 'zero'
   can never be the deciding rule (the checker stops at the first
   success). *)
Inductive anynat : nat -> Prop :=
| any : forall n, anynat n
| zero : anynat 0.
