(* REL008: the premise 'mul2 n m' binds m through a produce loop even
   though mul2 at mode io is functional (at most one m per n).  With
   the functionalization pass ON (the default) the loop is rewritten
   to direct evaluation and no warning applies; with the pass OFF
   (REPRO_NO_FUNCTIONALIZE / disable_functionalization) the premise
   runs by enumerate-then-check and the linter warns. *)
Inductive mul2 : nat -> nat -> Prop :=
| m2_O : mul2 0 0
| m2_S : forall n m, mul2 n m -> mul2 (S n) (S (S m)).

Inductive sum4 : nat -> nat -> Prop :=
| s4 : forall n m r, mul2 n m -> mul2 m r -> sum4 n r.
