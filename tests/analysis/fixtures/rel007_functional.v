(* REL007: 'twice' at the derived producer mode io is functional —
   conclusion heads 0 / S n are disjoint on the input position and the
   recursive premise draws from the same functional mode.  Linting the
   'quad' checker reports the derived mode as an info; linting
   'twice' at io directly reports the analyzed mode itself. *)
Inductive twice : nat -> nat -> Prop :=
| tw_O : twice 0 0
| tw_S : forall n m, twice n m -> twice (S n) (S (S m)).

Inductive quad : nat -> nat -> Prop :=
| qd : forall n m r, twice n m -> twice m r -> quad n r.
