(* REL001: the existential m only appears in a negated premise, so the
   checker must enumerate it unconstrained (generate-and-test). *)
Inductive le : nat -> nat -> Prop :=
| le_n : forall n, le n n
| le_S : forall n m, le n m -> le n (S m).

Inductive blocked : nat -> Prop :=
| blk : forall n m, ~ (le m n) -> blocked n.
