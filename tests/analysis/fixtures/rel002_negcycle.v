(* REL002: a negated premise on the relation being defined — the
   checker fixpoint would be non-monotone. *)
Inductive unstrat : nat -> Prop :=
| us_0 : unstrat 0
| us_S : forall n, ~ (unstrat n) -> unstrat (S n).
