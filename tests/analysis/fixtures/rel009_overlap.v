(* REL009: at producer mode io the conclusions 'le2 n n' and
   'le2 n (S m)' definitely overlap on the input position (any n
   matches both), so the mode yields multiple answers per input —
   the claimed determinism of the individually-deterministic rules is
   defeated.  Clean at checker mode. *)
Inductive le2 : nat -> nat -> Prop :=
| le2_refl : forall n, le2 n n
| le2_step : forall n m, le2 n m -> le2 n (S m).
