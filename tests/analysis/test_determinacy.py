"""The determinacy & functionality analysis: verdict lattice, the
acceptance verdicts on the case studies, and the golden REL007..REL009
sweep over the full corpus (verdicts must stay stable as the analysis
evolves — update the golden set deliberately, with a reason)."""

from __future__ import annotations

import importlib

from repro.analysis import analyze_context
from repro.analysis.determinacy import (
    Verdict,
    analyze_determinacy,
    relation_verdict,
)
from repro.casestudies import bst, stlc


class TestVerdictLattice:
    def test_order(self):
        assert Verdict.DET < Verdict.FUNCTIONAL < Verdict.SEMIDET < Verdict.MULTI

    def test_join_is_max(self):
        assert max(Verdict.DET, Verdict.MULTI) is Verdict.MULTI
        assert max(Verdict.FUNCTIONAL, Verdict.SEMIDET) is Verdict.SEMIDET

    def test_at_most_one(self):
        assert Verdict.DET.at_most_one
        assert Verdict.FUNCTIONAL.at_most_one
        assert not Verdict.SEMIDET.at_most_one
        assert not Verdict.MULTI.at_most_one

    def test_str(self):
        assert str(Verdict.FUNCTIONAL) == "functional"


class TestAcceptanceVerdicts:
    """The verdicts the PR promises (see ISSUE acceptance criteria)."""

    def test_stlc_typing_iio_is_functional(self):
        ctx = stlc.make_context()
        assert relation_verdict(ctx, "typing", "iio") is Verdict.FUNCTIONAL

    def test_stlc_typing_checker_is_functional(self):
        ctx = stlc.make_context()
        res = analyze_determinacy(ctx, "typing")
        assert res.verdict is Verdict.FUNCTIONAL
        # Exactly one functionalization opportunity: TApp's premise
        # 'typing' at the derived mode iio.
        sites = [(s.rule, s.rel, s.mode_str) for s in res.functional_sites]
        assert sites == [("TApp", "typing", "iio")]

    def test_bst_lt_checker_is_det(self):
        ctx = bst.make_context()
        assert relation_verdict(ctx, "lt", "ii") is Verdict.DET

    def test_bst_checker_is_det(self):
        ctx = bst.make_context()
        assert relation_verdict(ctx, "bst", "iii") is Verdict.DET

    def test_bst_lt_multi_answer_mode_is_multi(self):
        # 'insert'-style enumeration: lt at io yields every greater
        # nat, and the overlap between lt_base and lt_step is definite.
        ctx = bst.make_context()
        res = analyze_determinacy(ctx, "lt", "io")
        assert res.verdict is Verdict.MULTI
        assert res.definite_overlaps == [("lt_base", "lt_step")]

    def test_verdicts_are_cached(self):
        ctx = stlc.make_context()
        first = relation_verdict(ctx, "typing", "iio")
        assert relation_verdict(ctx, "typing", "iio") is first


#: (code, relation, mode) triples the full corpus sweep must produce —
#: with the functionalization pass at its default (on), so REL008 must
#: never appear and the corpus stays warning-free.
GOLDEN_CORPUS_FINDINGS = {
    ("REL007", "btree_size", "io"),
    ("REL007", "eval_big", "io"),
    ("REL007", "revrel", "io"),
    ("REL007", "typing", "iio"),
}


def test_corpus_determinacy_findings_are_stable():
    from repro.analysis.cli import CASE_STUDY_MODULES
    from repro.sf.registry import CHAPTER_MODULES, load_chapter

    rows = set()
    for module in CHAPTER_MODULES:
        chapter = load_chapter(module)
        for d in analyze_context(chapter.ctx):
            if d.code in ("REL007", "REL008", "REL009"):
                rows.add((d.code, d.relation, d.mode))
    for module in CASE_STUDY_MODULES:
        ctx = importlib.import_module(module).make_context()
        for d in analyze_context(ctx):
            if d.code in ("REL007", "REL008", "REL009"):
                rows.add((d.code, d.relation, d.mode))
    assert rows == GOLDEN_CORPUS_FINDINGS
