"""Serving-layer chaos suite: seeded worker faults vs. the liveness
invariant.

The invariant, from the HA serving PR: **under any fault schedule,
every submitted future resolves** (to ok / gave_up / shed / error —
never a hang), and **every ``ok`` answer is field-for-field equal to
the fault-free run's answer** for the same query.  Crashes may cost
individual queries (they resolve as structured errors), stalls may
push deadlined queries into expiry (they resolve as sheds) — but a
definite answer that does come back must be the *right* one, and
nobody waits forever.

Fault schedules are :class:`~repro.resilience.faults.WorkerFaultPlan`
instances — seeded, so every run of this suite replays the same
attacks (the serving analogue of the interruption-soundness
differential suite in ``tests/resilience/test_fault_injection.py``).
"""

from __future__ import annotations

import pytest

from repro.core.values import Value
from repro.resilience import WorkerFaultPlan
from repro.serve import CheckQuery, Engine, EnumQuery, GenQuery

#: Generous per-future watchdog: a liveness failure shows up as a
#: TimeoutError here, not as a hung test session.
WATCHDOG = 60.0

SUP = {"backoff_base": 0.005, "check_interval": 0.005}


def nat(n):
    v = Value("O", ())
    for _ in range(n):
        v = Value("S", (v,))
    return v


def workload():
    """A deterministic mixed workload: batched checks, enums (complete
    and fuel-marked), seeded gens.  ~24 queries, matching the default
    seeded-plan horizon so planned faults actually land."""
    qs = []
    for a in range(5):
        for b in range(4):
            qs.append(CheckQuery("le", (nat(a), nat(b)), fuel=32))
    qs.append(EnumQuery("le", "oi", (nat(3),), fuel=6))
    qs.append(EnumQuery("ev", "o", (), fuel=8, max_values=5))
    qs.append(GenQuery("le", "oi", (nat(8),), fuel=16, seed=3))
    qs.append(GenQuery("le", "oi", (nat(8),), fuel=16, seed=7))
    return qs


@pytest.fixture
def baseline(nat_ctx):
    """The fault-free answers, one per workload index."""
    with Engine(nat_ctx, workers=2) as eng:
        eng.prepare(workload())
        return eng.run_batch(workload())


def run_faulted(ctx, plan, queries, **engine_kw):
    """Submit *queries* under *plan*; watchdog-resolve every future."""
    kw = dict(workers=2, faults=plan, supervise=SUP)
    kw.update(engine_kw)
    with Engine(ctx, **kw) as eng:
        futures = [eng.submit(q) for q in queries]
        results = [f.result(timeout=WATCHDOG) for f in futures]
    assert all(f.done() for f in futures)
    return results, eng


def assert_ok_answers_match(faulted, baseline):
    """Every definite faulted answer equals the fault-free answer,
    field for field (value, completeness, and the recorded gen seed)."""
    for i, (got, want) in enumerate(zip(faulted, baseline)):
        if got.status != "ok":
            continue
        assert want.status == "ok", (
            f"query {i}: faulted run answered ok where the fault-free "
            f"run said {want.status!r}"
        )
        assert got.value == want.value, f"query {i}: value diverged"
        assert got.complete == want.complete, f"query {i}: complete diverged"
        assert got.seed == want.seed, f"query {i}: seed diverged"


class TestSeededSchedules:
    @pytest.mark.parametrize("seed", range(8))
    def test_liveness_and_differential(self, nat_ctx, baseline, seed):
        plan = WorkerFaultPlan.seeded(
            seed, workers=2, n_events=4, horizon=24, stall_seconds=0.01
        )
        results, eng = run_faulted(nat_ctx, plan, workload())
        # Liveness: every future resolved (the watchdog already
        # enforced it) to a structured status.
        assert len(results) == len(workload())
        assert all(
            r.status in ("ok", "gave_up", "shed", "error") for r in results
        )
        # Only crashes and poisons may surface as errors, and each
        # planned event costs at most one query.
        crashes = sum(1 for _, _, k in plan if k == "crash")
        poisons = sum(1 for _, _, k in plan if k == "poison")
        errors = [r for r in results if r.status == "error"]
        assert len(errors) <= crashes + poisons
        for r in errors:
            assert "worker crashed" in r.error or "injected poison" in r.error
        # Correctness: definite answers are the fault-free answers.
        assert_ok_answers_match(results, baseline)

    def test_every_seed_replays_identically(self):
        a = WorkerFaultPlan.seeded(5, workers=2, n_events=4)
        b = WorkerFaultPlan.seeded(5, workers=2, n_events=4)
        assert a.events == b.events


class TestPoison:
    def test_poison_isolated_to_one_query(self, nat_ctx, baseline):
        # Worker 0's second claim raises mid-execution: that query
        # errors, its chunk neighbors still get real answers.
        plan = WorkerFaultPlan.from_events((0, 2, "poison"))
        results, eng = run_faulted(
            nat_ctx, plan, workload(), workers=1
        )
        errors = [r for r in results if r.status == "error"]
        assert len(errors) == 1
        assert "injected poison" in errors[0].error
        assert sum(1 for r in results if r.ok) == len(workload()) - 1
        assert_ok_answers_match(results, baseline)
        # The worker survived a poison query: no crash, no restart.
        stats = eng.stats()
        assert stats["crashes"] == 0 and stats["restarts"] == 0


class TestCrash:
    def test_crash_recovery_differential(self, nat_ctx, baseline):
        plan = WorkerFaultPlan.from_events((0, 1, "crash"), (1, 1, "crash"))
        results, eng = run_faulted(nat_ctx, plan, workload())
        errors = [r for r in results if r.status == "error"]
        assert len(errors) <= 2  # each crash costs at most one query
        for r in errors:
            assert "worker crashed" in r.error
        assert sum(1 for r in results if r.ok) >= len(workload()) - 2
        assert_ok_answers_match(results, baseline)
        stats = eng.stats()
        assert stats["crashes"] >= 1
        assert stats["restarts"] >= 1

    def test_crash_storm_on_one_worker(self, nat_ctx, baseline):
        # Repeated crashes on the same worker: backoff restarts keep
        # the engine live and the answers right.
        plan = WorkerFaultPlan.from_events(
            (0, 1, "crash"), (0, 3, "crash"), (0, 5, "crash")
        )
        results, eng = run_faulted(nat_ctx, plan, workload(), workers=1)
        errors = [r for r in results if r.status == "error"]
        assert len(errors) <= 3
        assert_ok_answers_match(results, baseline)
        assert eng.stats()["restarts"] >= 1


class TestStall:
    def test_stall_expires_deadlined_queries_only(self, nat_ctx, baseline):
        # A stalled worker pushes deadlined queries past expiry: they
        # shed (never error, never hang); undeadlined neighbors answer.
        plan = WorkerFaultPlan.from_events(
            (0, 1, "stall"), stall_seconds=0.25
        )
        queries = workload()
        deadlined = [
            CheckQuery(q.rel, q.args, fuel=q.fuel, deadline_seconds=0.1)
            if isinstance(q, CheckQuery) and i % 2 == 0
            else q
            for i, q in enumerate(queries)
        ]
        results, eng = run_faulted(nat_ctx, plan, deadlined, workers=1)
        assert all(
            r.status in ("ok", "gave_up", "shed") for r in results
        )
        shed = [r for r in results if r.status == "shed"]
        assert shed, "the stall expired nothing"
        for r in shed:
            assert r.give_up.reason == "expired"
        assert_ok_answers_match(results, baseline)

    def test_stalls_alone_change_no_answers(self, nat_ctx, baseline):
        plan = WorkerFaultPlan.from_events(
            (0, 1, "stall"), (0, 4, "stall"), (1, 2, "stall"),
            stall_seconds=0.02,
        )
        results, _ = run_faulted(nat_ctx, plan, workload())
        # No deadlines, no crashes: every answer matches fault-free.
        assert [r.status for r in results] == [
            r.status for r in baseline
        ]
        assert_ok_answers_match(results, baseline)
