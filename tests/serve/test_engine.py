"""The serving engine: sessioned workers, batching, budgets, CLI.

Covers the Layer-3 surface of the derivation-as-a-service PR: query
execution across all three kinds, batched check dispatch, per-query
and engine-default budgets surfacing as structured give-ups, worker
isolation (per-worker memo shards), the async entry points, and the
``python -m repro.serve`` front end.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.values import Value, to_int
from repro.serve import (
    CheckQuery,
    Engine,
    EnumQuery,
    GenQuery,
    GiveUp,
    QueryResult,
)
from repro.serve.cli import main as serve_main


def nat(n):
    v = Value("O", ())
    for _ in range(n):
        v = Value("S", (v,))
    return v


def unnat(v):
    return to_int(v)


@pytest.fixture
def engine(nat_ctx):
    with Engine(nat_ctx, workers=2) as eng:
        yield eng


class TestCheckQueries:
    def test_definite_answers(self, engine):
        yes = engine.run(CheckQuery("le", (nat(3), nat(8))))
        no = engine.run(CheckQuery("le", (nat(8), nat(3))))
        assert yes.ok and yes.value is True
        assert no.ok and no.value is False

    def test_fuel_give_up_is_structured(self, engine):
        res = engine.run(CheckQuery("le", (nat(0), nat(10)), fuel=1))
        assert res.status == "gave_up"
        assert res.give_up is not None
        assert res.give_up.reason == "fuel"
        assert res.ok is False

    def test_unknown_relation_is_error(self, engine):
        res = engine.run(CheckQuery("nope", (nat(1),)))
        assert res.status == "error"
        assert "nope" in res.error
        # The engine keeps serving after an error.
        assert engine.run(CheckQuery("le", (nat(1), nat(2)))).ok

    def test_batched_dispatch_matches_singles(self, nat_ctx):
        queries = [
            CheckQuery("le", (nat(a), nat(b)), fuel=32)
            for a in range(6)
            for b in range(6)
        ]
        with Engine(nat_ctx, workers=1, batch=True) as batched:
            batched.prepare(queries)
            got_batched = batched.run_batch(queries)
            stats = batched.stats()
        with Engine(nat_ctx, workers=1, batch=False) as single:
            got_single = single.run_batch(queries)
        assert [r.value for r in got_batched] == [
            r.value for r in got_single
        ]
        assert [r.value for r in got_single] == [
            a <= b for a in range(6) for b in range(6)
        ]
        assert sum(w["batched"] for w in stats["per_worker"]) > 0


class TestEnumQueries:
    def test_complete_enumeration(self, engine):
        res = engine.run(EnumQuery("le", "oi", (nat(3),), fuel=6))
        assert res.ok and res.complete is True
        assert sorted(unnat(t[0]) for t in res.value) == [0, 1, 2, 3]

    def test_max_values_truncates(self, engine):
        res = engine.run(
            EnumQuery("le", "oi", (nat(9),), fuel=12, max_values=4)
        )
        assert res.ok
        assert len(res.value) == 4
        assert res.complete is False

    def test_fuel_starved_enum_gives_up(self, engine):
        res = engine.run(EnumQuery("ev", "o", (), fuel=2, max_values=100))
        # At tiny fuel the stream is fuel-marked: either some values
        # with complete=False, or a structured give-up with none.
        if res.status == "gave_up":
            assert res.give_up.reason == "fuel"
        else:
            assert res.complete is False


class TestGenQueries:
    def test_seeded_generation_is_replayable(self, engine):
        q = GenQuery("le", "oi", (nat(12),), fuel=16, seed=5)
        a = engine.run(q)
        b = engine.run(q)
        assert a.ok and b.ok
        assert a.value == b.value
        assert unnat(a.value[0]) <= 12

    def test_unseeded_generation_succeeds(self, engine):
        res = engine.run(GenQuery("le", "oi", (nat(6),), fuel=16))
        assert res.ok
        assert unnat(res.value[0]) <= 6


class TestBudgets:
    def test_query_budget_trips_structured(self, engine):
        res = engine.run(
            CheckQuery("le", (nat(20), nat(30)), fuel=64, max_ops=5)
        )
        assert res.status == "gave_up"
        assert res.give_up.reason == "ops"
        assert res.give_up.exhausted is not None
        assert res.give_up.exhausted.limit == "ops"

    def test_engine_default_budget_applies(self, nat_ctx):
        with Engine(nat_ctx, workers=1, max_ops=5) as eng:
            res = eng.run(CheckQuery("le", (nat(20), nat(30)), fuel=64))
        assert res.status == "gave_up"
        assert res.give_up.reason == "ops"

    def test_query_budget_overrides_engine_default(self, nat_ctx):
        with Engine(nat_ctx, workers=1, max_ops=5) as eng:
            res = eng.run(
                CheckQuery("le", (nat(3), nat(8)), fuel=64, max_ops=100_000)
            )
        assert res.ok and res.value is True

    def test_budgeted_enum_keeps_partial_values(self, engine):
        res = engine.run(
            EnumQuery("le", "oi", (nat(30),), fuel=40, max_ops=40)
        )
        assert res.status == "gave_up"
        assert res.give_up.reason == "ops"
        assert res.complete is False
        assert res.value  # partial answers survive the trip

    def test_budget_does_not_leak_between_queries(self, engine):
        tripped = engine.run(
            CheckQuery("le", (nat(20), nat(30)), fuel=64, max_ops=5)
        )
        assert tripped.status == "gave_up"
        clean = engine.run(CheckQuery("le", (nat(20), nat(30)), fuel=64))
        assert clean.ok and clean.value is True


class TestEngineMechanics:
    def test_multi_worker_serves_all(self, nat_ctx):
        queries = [
            CheckQuery("le", (nat(i % 10), nat(i % 7)), fuel=32)
            for i in range(60)
        ]
        with Engine(nat_ctx, workers=4) as eng:
            eng.prepare(queries)
            results = eng.run_batch(queries)
            stats = eng.stats()
        assert len(results) == 60
        assert all(r.ok for r in results)
        assert [r.value for r in results] == [
            i % 10 <= i % 7 for i in range(60)
        ]
        assert sum(w["queries"] for w in stats["per_worker"]) == 60

    def test_memoized_workers(self, nat_ctx):
        queries = [
            CheckQuery("le", (nat(4), nat(9)), fuel=32) for _ in range(10)
        ]
        with Engine(nat_ctx, workers=2, memoize=True) as eng:
            results = eng.run_batch(queries)
        assert all(r.ok and r.value is True for r in results)

    def test_submit_returns_future(self, engine):
        fut = engine.submit(CheckQuery("le", (nat(1), nat(2))))
        assert fut.result(timeout=30).ok

    def test_closed_engine_rejects(self, nat_ctx):
        eng = Engine(nat_ctx)
        eng.start()
        eng.close()
        with pytest.raises(RuntimeError):
            eng.submit(CheckQuery("le", (nat(1), nat(2))))

    def test_worker_count_validated(self, nat_ctx):
        with pytest.raises(ValueError):
            Engine(nat_ctx, workers=0)

    def test_async_entry_points(self, nat_ctx):
        async def drive():
            with Engine(nat_ctx, workers=2) as eng:
                one = await eng.arun(CheckQuery("le", (nat(2), nat(5))))
                many = await eng.arun_batch(
                    [
                        CheckQuery("le", (nat(i), nat(5)), fuel=32)
                        for i in range(8)
                    ]
                )
                return one, many

        one, many = asyncio.run(drive())
        assert one.ok and one.value is True
        assert [r.value for r in many] == [i <= 5 for i in range(8)]

    def test_result_to_dict_roundtrips_json(self, engine):
        res = engine.run(CheckQuery("le", (nat(1), nat(3))))
        blob = json.dumps(res.to_dict())
        back = json.loads(blob)
        assert back["kind"] == "check"
        assert back["status"] == "ok"
        assert back["value"] is True

    def test_give_up_as_dict(self):
        g = GiveUp("fuel")
        assert g.as_dict() == {"reason": "fuel", "exhausted": None}

    def test_query_result_ok_property(self):
        q = CheckQuery("le", ())
        assert QueryResult(q, "ok").ok
        assert not QueryResult(q, "gave_up").ok
        assert not QueryResult(q, "error").ok


class TestCli:
    def test_demo_exits_zero(self, capsys):
        assert serve_main(["--demo"]) == 0
        out = capsys.readouterr().out
        lines = [json.loads(l) for l in out.strip().splitlines()]
        assert lines[-1]["kind"] == "engine_stats"
        assert all(l["status"] == "ok" for l in lines[:-1])

    def test_demo_telemetry_export(self, tmp_path, capsys):
        outdir = tmp_path / "tel"
        assert serve_main(
            ["--demo", "--stats", "--export", str(outdir), "--sample-every", "1"]
        ) == 0
        captured = capsys.readouterr()
        # --stats renders the latency table to stderr.
        assert "repro.serve telemetry" in captured.err
        assert "check:le" in captured.err
        # The stats line on stdout carries the telemetry snapshot.
        lines = [json.loads(l) for l in captured.out.strip().splitlines()]
        assert lines[-1]["telemetry"]["counters"]["serve.queries"] == 6
        # --export wrote all three artifacts; the JSONL re-reads.
        from repro.observe.export import read_jsonl

        dump = read_jsonl(outdir / "telemetry.jsonl")
        assert len(dump.queries) == 6
        assert (outdir / "metrics.prom").read_text().startswith("# TYPE")
        assert "repro.serve telemetry" in (outdir / "stats.txt").read_text()

    def test_query_file_served(self, tmp_path, capsys):
        decls = tmp_path / "corpus.v"
        decls.write_text(
            "Inductive le : nat -> nat -> Prop :=\n"
            "| le_n : forall n, le n n\n"
            "| le_S : forall n m, le n m -> le n (S m).\n"
        )
        qfile = tmp_path / "queries.jsonl"
        qfile.write_text(
            '{"kind": "check", "rel": "le", "args": ["2", "5"]}\n'
            '{"kind": "enum", "rel": "le", "mode": "oi", "ins": ["2"]}\n'
            '{"kind": "gen", "rel": "le", "mode": "oi", "ins": ["4"],'
            ' "seed": 3}\n'
        )
        code = serve_main([str(qfile), "--decls", str(decls)])
        assert code == 0
        lines = [
            json.loads(l)
            for l in capsys.readouterr().out.strip().splitlines()
        ]
        assert [l["kind"] for l in lines[:-1]] == ["check", "enum", "gen"]
        assert lines[0]["value"] is True
        assert lines[1]["complete"] is True

    def test_gave_up_query_exits_one(self, tmp_path, capsys):
        decls = tmp_path / "corpus.v"
        decls.write_text(
            "Inductive le : nat -> nat -> Prop :=\n"
            "| le_n : forall n, le n n\n"
            "| le_S : forall n m, le n m -> le n (S m).\n"
        )
        qfile = tmp_path / "queries.jsonl"
        qfile.write_text(
            '{"kind": "check", "rel": "le", "args": ["0", "9"], "fuel": 1}\n'
        )
        assert serve_main([str(qfile), "--decls", str(decls)]) == 1
        line = json.loads(capsys.readouterr().out.strip().splitlines()[0])
        assert line["status"] == "gave_up"
        assert line["give_up"]["reason"] == "fuel"

    def test_missing_args_exits_two(self, capsys):
        assert serve_main([]) == 2

    def test_bad_query_kind_exits_two(self, tmp_path, capsys):
        qfile = tmp_path / "queries.jsonl"
        qfile.write_text('{"kind": "solve", "rel": "le"}\n')
        assert serve_main([str(qfile)]) == 2

    def test_out_file(self, tmp_path):
        out = tmp_path / "results.jsonl"
        assert serve_main(["--demo", "--out", str(out)]) == 0
        lines = [
            json.loads(l) for l in out.read_text().strip().splitlines()
        ]
        assert lines and lines[-1]["kind"] == "engine_stats"


REACH_DECL = """
Inductive reach : nat -> Prop :=
| r : forall n m, le n m -> reach n.
"""


class TestTelemetry:
    def test_engine_records_every_query(self, nat_ctx):
        from repro.observe.telemetry import Telemetry

        tel = Telemetry()
        with Engine(nat_ctx, workers=2, telemetry=tel) as eng:
            queries = [CheckQuery("le", (nat(a), nat(a + 1))) for a in range(6)]
            results = eng.run_batch(queries)
        snap = tel.metrics.counter_snapshot()
        assert snap["serve.queries"] == 6
        assert snap["serve.ok"] == 6
        assert all(r.ok for r in results)
        hist = tel.metrics.histograms["serve.service_seconds.check.le"]
        assert hist.count == 6

    def test_telemetry_true_builds_a_recorder(self, nat_ctx):
        with Engine(nat_ctx, telemetry=True) as eng:
            eng.run(CheckQuery("le", (nat(1), nat(2))))
            assert eng.telemetry is not None
            assert (
                eng.telemetry.metrics.counter_snapshot()["serve.queries"] == 1
            )

    def test_qids_monotonic_in_submit_order(self, nat_ctx):
        from repro.observe.telemetry import Telemetry

        with Engine(nat_ctx, workers=3, telemetry=Telemetry()) as eng:
            queries = [CheckQuery("le", (nat(a), nat(a))) for a in range(8)]
            results = eng.run_batch(queries)
        assert [r.qid for r in results] == list(range(1, 9))
        assert all(r.queue_seconds >= 0.0 for r in results)

    def test_stats_keeps_legacy_shape_and_adds_telemetry(self, nat_ctx):
        from repro.observe.telemetry import Telemetry

        with Engine(nat_ctx, workers=2, telemetry=Telemetry()) as eng:
            eng.run_batch(
                [CheckQuery("le", (nat(a), nat(a + 2))) for a in range(5)]
            )
            stats = eng.stats()
        assert stats["workers"] == 2
        assert len(stats["per_worker"]) == 2
        for row in stats["per_worker"]:
            assert set(row) == {"queries", "batched", "gave_up", "errors"}
        assert sum(w["queries"] for w in stats["per_worker"]) == 5
        tsnap = stats["telemetry"]
        assert tsnap["counters"]["serve.queries"] == 5
        assert tsnap["events"] == 5

    def test_stats_without_telemetry_has_no_telemetry_key(self, engine):
        engine.run(CheckQuery("le", (nat(1), nat(2))))
        assert "telemetry" not in engine.stats()

    def test_give_up_rates_by_shape(self, nat_ctx):
        from repro.observe.telemetry import Telemetry

        tel = Telemetry()
        with Engine(nat_ctx, telemetry=tel) as eng:
            eng.run(CheckQuery("le", (nat(0), nat(10)), fuel=1))
            eng.run(CheckQuery("le", (nat(0), nat(1)), fuel=16))
        snap = tel.metrics.counter_snapshot()
        assert snap["serve.gave_up"] == 1
        assert snap["serve.gave_up.reason.fuel"] == 1
        assert snap["serve.gave_up.check.le"] == 1
        (row,) = tel.query_table()
        assert row["count"] == 2 and row["give_up_rate"] == 0.5

    def test_sampled_trace_keeps_abandoned_enum_spans(self, nat_ctx):
        # The reach checker proves its goal through the first witness
        # of an le enumeration and abandons the rest mid-stream: the
        # consumer-abandoned span must survive into the query event.
        from repro.core import parse_declarations
        from repro.observe.telemetry import Telemetry

        parse_declarations(nat_ctx, REACH_DECL)
        tel = Telemetry(sample_every=1)
        with Engine(nat_ctx, telemetry=tel) as eng:
            res = eng.run(CheckQuery("reach", (nat(2),), fuel=16))
        assert res.ok and res.value is True
        (event,) = tel.events
        assert event.spans, "sampled query lost its span tree"
        outcomes = {(s["kind"], s["outcome"]) for s in event.spans}
        assert ("enum", "abandoned") in outcomes
        assert ("checker", "true") in outcomes

    def test_unsampled_queries_carry_no_spans(self, nat_ctx):
        from repro.observe.telemetry import Telemetry

        tel = Telemetry(sample_every=128)
        with Engine(nat_ctx, workers=1, telemetry=tel) as eng:
            eng.run_batch(
                [CheckQuery("le", (nat(a), nat(a))) for a in range(4)]
            )
        by_qid = {ev.qid: ev.spans for ev in tel.events}
        assert by_qid[1] is not None         # qid 1 sampled
        assert all(by_qid[q] is None for q in (2, 3, 4))
        assert tel.metrics.counter_snapshot()["serve.traced"] == 1

    def test_batched_dispatch_records_batch_telemetry(self, nat_ctx):
        from repro.observe.telemetry import Telemetry

        tel = Telemetry(sample_every=0)
        queries = [
            CheckQuery("le", (nat(a % 4), nat(3)), fuel=32) for a in range(12)
        ]
        with Engine(
            nat_ctx, workers=1, batch=True, batch_max=64, telemetry=tel
        ) as eng:
            eng.prepare(queries)
            results = eng.run_batch(queries)
        assert all(r.status in ("ok",) for r in results)
        snap = tel.metrics.counter_snapshot()
        assert snap["serve.queries"] == 12
        assert snap["serve.batched"] > 0
        assert tel.metrics.histograms["serve.batch_size"].max > 1
        # qids survive batching and stay unique.
        assert sorted(r.qid for r in results) == list(range(1, 13))

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_worker_crash_strands_no_futures(self, nat_ctx, monkeypatch):
        from repro.observe.telemetry import Telemetry

        with Engine(nat_ctx, workers=1, telemetry=Telemetry()) as eng:
            eng.run(CheckQuery("le", (nat(1), nat(2))))  # worker is live

            def boom(index, chunk):
                raise RuntimeError("induced crash")

            monkeypatch.setattr(eng, "_serve_chunk", boom)
            fut = eng.submit(CheckQuery("le", (nat(2), nat(3))))
            res = fut.result(timeout=5)
        assert res.status == "error"
        assert "worker crashed" in res.error
        assert res.qid == 2
