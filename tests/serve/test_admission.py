"""High-availability serving: admission control, deadlines, overload
degradation, shape breakers, worker supervision, and close semantics.

The contract under test: the engine **never strands a future** and
**never turns a refusal into an error** — queries the engine will not
run resolve as structured ``status="shed"`` results, crashed workers
restart, and ``close()`` resolves everything outstanding.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import pytest

from repro.core.values import Value
from repro.resilience import WorkerFaultPlan
from repro.serve import (
    AdmissionQueue,
    CheckQuery,
    Engine,
    EnumQuery,
    OverloadController,
    ShapeBreaker,
    Ticket,
)


def nat(n):
    v = Value("O", ())
    for _ in range(n):
        v = Value("S", (v,))
    return v


def _ticket(qid=1, deadline=None):
    return Ticket(CheckQuery("le", (nat(1), nat(2))), Future(), qid,
                  time.monotonic(), deadline)


def _stall_plan(seconds, worker=0, nth=1):
    """A plan whose only event parks *worker* at its *nth* claim —
    the deterministic way to hold queries in the queue."""
    return WorkerFaultPlan.from_events(
        (worker, nth, "stall"), stall_seconds=seconds
    )


class TestTicket:
    def test_no_deadline_never_expires(self):
        t = _ticket()
        assert not t.expired()
        assert t.remaining() is None

    def test_deadline_expiry_and_remaining(self):
        now = time.monotonic()
        t = _ticket(deadline=now + 60.0)
        assert not t.expired(now)
        assert 59.0 < t.remaining(now) <= 60.0
        assert t.expired(now + 61.0)
        assert t.remaining(now + 61.0) < 0


class TestAdmissionQueue:
    def test_reject_policy_sheds_incoming(self):
        shed = []
        q = AdmissionQueue(maxsize=2, policy="reject",
                           on_shed=lambda t, r: shed.append((t.qid, r)))
        assert q.put(_ticket(1)) and q.put(_ticket(2))
        assert not q.put(_ticket(3))
        assert shed == [(3, "admission")]
        assert q.qsize() == 2

    def test_shed_oldest_policy_evicts_head(self):
        shed = []
        q = AdmissionQueue(maxsize=2, policy="shed_oldest",
                           on_shed=lambda t, r: shed.append((t.qid, r)))
        q.put(_ticket(1))
        q.put(_ticket(2))
        assert q.put(_ticket(3))  # evicts qid 1, admits qid 3
        assert shed == [(1, "admission")]
        assert [q.get_nowait().qid, q.get_nowait().qid] == [2, 3]

    def test_block_policy_waits_for_room(self):
        q = AdmissionQueue(maxsize=1, policy="block")
        q.put(_ticket(1))
        admitted = []
        blocker = threading.Thread(
            target=lambda: admitted.append(q.put(_ticket(2)))
        )
        blocker.start()
        time.sleep(0.05)
        assert not admitted  # still blocked on the full queue
        assert q.get_nowait().qid == 1
        blocker.join(timeout=5)
        assert admitted == [True]

    def test_expired_tickets_shed_on_dequeue(self):
        shed = []
        q = AdmissionQueue(on_shed=lambda t, r: shed.append((t.qid, r)))
        q.put(_ticket(1, deadline=time.monotonic() - 1.0))  # already dead
        q.put(_ticket(2))
        live = q.get_nowait()
        assert live.qid == 2
        assert shed == [(1, "expired")]

    def test_drain_sheds_tickets_keeps_sentinels(self):
        shed = []
        token = object()
        q = AdmissionQueue(on_shed=lambda t, r: shed.append((t.qid, r)))
        q.put(_ticket(1))
        q.put_control(token)
        q.put(_ticket(2))
        assert q.drain() == 2
        assert sorted(shed) == [(1, "shutdown"), (2, "shutdown")]
        assert q.get_nowait() is token

    def test_closing_queue_sheds_new_puts(self):
        shed = []
        q = AdmissionQueue(on_shed=lambda t, r: shed.append((t.qid, r)))
        q.start_closing()
        assert not q.put(_ticket(9))
        assert shed == [(9, "shutdown")]


class TestOverloadController:
    def test_fill_climbs_the_ladder(self):
        ctl = OverloadController(queue_max=10)
        assert ctl.note_depth(0) == ctl.NORMAL
        assert ctl.note_depth(3) == ctl.TIGHTEN   # >= low_fill
        assert ctl.note_depth(8) == ctl.SHED      # >= high_fill
        assert ctl.should_shed(9)

    def test_hysteresis_descends_only_below_low_water(self):
        ctl = OverloadController(queue_max=10)
        ctl.note_depth(8)
        # Back between the watermarks: still SHED, not TIGHTEN.
        assert ctl.note_depth(5) == ctl.SHED
        assert ctl.note_depth(1) == ctl.NORMAL

    def test_tighten_scales_default_budgets(self):
        ctl = OverloadController(queue_max=10, tighten_scale=0.25)
        assert ctl.budget_scale() == 1.0
        ctl.note_depth(4)
        assert ctl.budget_scale() == 0.25

    def test_latency_blowup_holds_tighten(self):
        ctl = OverloadController(
            latency_window=4, latency_factor=4.0, min_samples=8, hold=16
        )
        for _ in range(8):
            ctl.observe(0, 0.001)
        level = ctl.observe(0, 1.0)  # 1000x the baseline: breaker opens
        assert ctl.latency_opens == 1
        assert level == ctl.TIGHTEN
        assert ctl.budget_scale() < 1.0


class TestShapeBreaker:
    SHAPE = ("check", "le")

    def test_opens_after_threshold_consecutive_exhaustions(self):
        brk = ShapeBreaker(threshold=3, cooldown=100)
        for _ in range(2):
            brk.record(self.SHAPE, True)
            assert not brk.check(self.SHAPE)
        brk.record(self.SHAPE, True)
        assert brk.check(self.SHAPE)
        assert brk.open_shapes() == [self.SHAPE]

    def test_success_resets_the_count(self):
        brk = ShapeBreaker(threshold=2, cooldown=100)
        brk.record(self.SHAPE, True)
        brk.record(self.SHAPE, False)  # recovery
        brk.record(self.SHAPE, True)
        assert not brk.check(self.SHAPE)

    def test_probe_admitted_after_cooldown_and_closes_on_success(self):
        brk = ShapeBreaker(threshold=1, cooldown=2)
        brk.record(self.SHAPE, True)
        assert brk.check(self.SHAPE) and brk.check(self.SHAPE)
        assert not brk.check(self.SHAPE)  # the probe
        brk.record(self.SHAPE, False)     # probe succeeded: closed
        assert not brk.check(self.SHAPE)


class TestEngineAdmission:
    def test_reject_policy_resolves_shed_not_error(self, nat_ctx):
        plan = _stall_plan(0.4)
        with Engine(
            nat_ctx, workers=1, queue_max=2, admission="reject",
            overload=False, faults=plan,
        ) as eng:
            first = eng.submit(CheckQuery("le", (nat(1), nat(2))))
            time.sleep(0.05)  # the worker claims it and parks
            futures = [
                eng.submit(CheckQuery("le", (nat(1), nat(i + 2))))
                for i in range(4)
            ]
            results = [f.result(timeout=30) for f in futures]
            assert first.result(timeout=30).ok
        # With the worker parked, 2 queued and the overflow shed.
        # Nothing errored, nothing was stranded.
        shed = [r for r in results if r.status == "shed"]
        served = [r for r in results if r.ok]
        assert len(shed) == 2 and len(served) == 2
        for r in shed:
            assert r.give_up.reason == "admission"
            assert r.error is None

    def test_shed_oldest_evicts_longest_waiter(self, nat_ctx):
        plan = _stall_plan(0.4)
        with Engine(
            nat_ctx, workers=1, queue_max=2, admission="shed_oldest",
            overload=False, faults=plan,
        ) as eng:
            first = eng.submit(CheckQuery("le", (nat(1), nat(2))))
            time.sleep(0.05)  # the worker claims it and parks
            futures = [
                eng.submit(CheckQuery("le", (nat(1), nat(i + 2))))
                for i in range(4)
            ]
            results = [f.result(timeout=30) for f in futures]
            assert first.result(timeout=30).ok
        shed = [i for i, r in enumerate(results) if r.status == "shed"]
        # The two oldest queued queries were evicted for the two newest.
        assert shed == [0, 1]
        assert results[2].ok and results[3].ok

    def test_block_policy_backpressures_and_serves_all(self, nat_ctx):
        with Engine(
            nat_ctx, workers=2, queue_max=2, admission="block",
            overload=False,
        ) as eng:
            results = eng.run_batch(
                [CheckQuery("le", (nat(i % 5), nat(4))) for i in range(20)]
            )
        assert all(r.ok for r in results)
        assert eng.stats()["shed"] == {}

    def test_overload_ladder_sheds_at_submit(self, nat_ctx):
        plan = _stall_plan(0.4)
        with Engine(
            nat_ctx, workers=1, queue_max=4, faults=plan,
        ) as eng:  # bounded queue: overload controller auto-enabled
            first = eng.submit(CheckQuery("le", (nat(1), nat(2))))
            time.sleep(0.05)  # the worker claims it and parks
            futures = [
                eng.submit(CheckQuery("le", (nat(1), nat(i + 2))))
                for i in range(5)
            ]
            results = [f.result(timeout=30) for f in futures]
            assert first.result(timeout=30).ok
        statuses = [r.status for r in results]
        # Fill crosses high water at depth 3/4: submits 4 and 5 shed.
        assert statuses == ["ok", "ok", "ok", "shed", "shed"]
        for r in results[3:]:
            assert r.give_up.reason == "overload"
        assert eng.stats()["shed"] == {"overload": 2}

    def test_shape_breaker_fast_fails_budget_burners(self, nat_ctx):
        brk = ShapeBreaker(threshold=2, cooldown=100)
        with Engine(
            nat_ctx, workers=1, max_ops=5, breaker=brk, batch=False
        ) as eng:
            burner = CheckQuery("le", (nat(20), nat(30)), fuel=64)
            assert eng.run(burner).give_up.reason == "ops"
            assert eng.run(burner).give_up.reason == "ops"
            third = eng.run(burner)
        assert third.status == "shed"
        assert third.give_up.reason == "breaker"
        assert eng.stats()["breaker"]["open"] == ["check:le"]

    def test_deadlined_query_expires_in_queue(self, nat_ctx):
        plan = _stall_plan(0.3)
        with Engine(nat_ctx, workers=1, faults=plan) as eng:
            eng.submit(CheckQuery("le", (nat(1), nat(2))))  # parks the worker
            time.sleep(0.05)
            doomed = eng.submit(
                CheckQuery("le", (nat(1), nat(3)), deadline_seconds=0.05)
            )
            res = doomed.result(timeout=30)
        assert res.status == "shed"
        assert res.give_up.reason == "expired"
        assert res.queue_seconds >= 0.05

    def test_executing_query_gets_only_remaining_time(self, nat_ctx):
        eng = Engine(nat_ctx)
        q = CheckQuery("le", (nat(1), nat(2)), deadline_seconds=5.0)
        limits = eng._limits(q, remaining=1.0)
        assert limits["deadline_seconds"] == 1.0  # not the original 5
        assert eng._limits(q)["deadline_seconds"] == 5.0

    def test_shed_counts_in_telemetry_and_prometheus(self, nat_ctx):
        from repro.observe.export import render_prometheus

        plan = _stall_plan(0.3)
        with Engine(nat_ctx, workers=1, faults=plan, telemetry=True) as eng:
            eng.submit(CheckQuery("le", (nat(1), nat(2))))
            time.sleep(0.05)
            eng.submit(
                CheckQuery("le", (nat(2), nat(3)), deadline_seconds=0.05)
            ).result(timeout=30)
            tel = eng.telemetry
            snap = tel.metrics.counter_snapshot()
            assert snap["serve.shed"] == 1
            assert snap["serve.shed.reason.expired"] == 1
            assert snap["serve.shed.check.le"] == 1
            text = render_prometheus(tel)
            assert 'repro_serve_shed{kind="check",rel="le"} 1' in text
            assert "repro_serve_shed_reason_expired 1" in text
            ev = [e for e in tel.events if e.status == "shed"]
            assert len(ev) == 1 and ev[0].reason == "expired"


class TestSupervision:
    SUP = {"backoff_base": 0.005, "check_interval": 0.005}

    def test_crashed_worker_restarts_and_serves_again(self, nat_ctx):
        plan = WorkerFaultPlan.from_events((0, 2, "crash"))
        with Engine(
            nat_ctx, workers=1, faults=plan, supervise=self.SUP
        ) as eng:
            assert eng.run(CheckQuery("le", (nat(1), nat(2)))).ok
            crashed = eng.run(CheckQuery("le", (nat(2), nat(3))))
            assert crashed.status == "error"
            assert "worker crashed" in crashed.error
            after = eng.run(CheckQuery("le", (nat(3), nat(4))))
            assert after.ok and after.value is True
        stats = eng.stats()
        assert stats["crashes"] == 1
        assert stats["restarts"] == 1

    def test_queries_behind_a_crash_still_answer(self, nat_ctx):
        # The crash takes the worker down mid-chunk: the in-flight
        # query errors, its chunk neighbors are requeued and answered
        # by the restarted worker.
        plan = WorkerFaultPlan.from_events((0, 1, "crash"))
        with Engine(
            nat_ctx, workers=1, faults=plan, supervise=self.SUP
        ) as eng:
            futures = [
                eng.submit(CheckQuery("le", (nat(i), nat(3)), fuel=32))
                for i in range(6)
            ]
            results = [f.result(timeout=30) for f in futures]
        errors = [r for r in results if r.status == "error"]
        assert len(errors) == 1
        assert all(
            r.ok and r.value == (i <= 3)
            for i, r in enumerate(results)
            if r.status == "ok"
        )
        assert len([r for r in results if r.ok]) == 5

    def test_max_restarts_retires_and_pool_death_raises(self, nat_ctx):
        plan = WorkerFaultPlan.from_events(
            (0, 1, "crash"), (0, 2, "crash"), (0, 3, "crash")
        )
        sup = dict(self.SUP, max_restarts=2)
        with Engine(
            nat_ctx, workers=1, faults=plan, supervise=sup, batch=False
        ) as eng:
            for _ in range(3):
                res = eng.run(CheckQuery("le", (nat(1), nat(2))))
                assert res.status == "error"
            for _ in range(200):  # the third crash retires the slot
                if eng._supervisor.retired:
                    break
                time.sleep(0.01)
            assert eng._supervisor.retired == {0}
            with pytest.raises(RuntimeError, match="pool is dead"):
                eng.submit(CheckQuery("le", (nat(1), nat(2))))

    def test_unsupervised_crash_kills_pool(self, nat_ctx):
        plan = WorkerFaultPlan.from_events((0, 1, "crash"))
        eng = Engine(nat_ctx, workers=1, faults=plan, supervise=False)
        try:
            res = eng.run(CheckQuery("le", (nat(1), nat(2))))
            assert res.status == "error"
            for _ in range(200):
                if not eng._worker_alive(0):
                    break
                time.sleep(0.01)
            with pytest.raises(RuntimeError, match="pool is dead"):
                eng.submit(CheckQuery("le", (nat(2), nat(3))))
        finally:
            eng.close()

    def test_supervisor_snapshot_in_stats(self, nat_ctx):
        with Engine(nat_ctx, workers=1) as eng:
            eng.run(CheckQuery("le", (nat(1), nat(2))))
            snap = eng.stats()["supervisor"]
        assert snap["crashes"] == 0 and snap["retired"] == []


class TestCloseSemantics:
    def test_close_drains_pending_by_default(self, nat_ctx):
        plan = _stall_plan(0.2)
        eng = Engine(nat_ctx, workers=1, faults=plan).start()
        futures = [
            eng.submit(CheckQuery("le", (nat(i % 4), nat(3)), fuel=32))
            for i in range(8)
        ]
        eng.close()  # default: serve everything already admitted
        results = [f.result(timeout=1) for f in futures]
        assert all(r.ok for r in results)

    def test_close_zero_drain_sheds_pending(self, nat_ctx):
        plan = _stall_plan(0.3)
        eng = Engine(nat_ctx, workers=1, faults=plan).start()
        futures = [
            eng.submit(CheckQuery("le", (nat(1), nat(i + 1))))
            for i in range(6)
        ]
        time.sleep(0.05)  # worker claims a chunk, then parks
        eng.close(drain_timeout=0)
        results = [f.result(timeout=5) for f in futures]
        assert all(r.status in ("ok", "shed") for r in results)
        shed = [r for r in results if r.status == "shed"]
        assert shed, "nothing was shed by a zero drain window"
        assert all(r.give_up.reason == "shutdown" for r in shed)

    def test_double_close_is_idempotent(self, nat_ctx):
        eng = Engine(nat_ctx).start()
        eng.run(CheckQuery("le", (nat(1), nat(2))))
        eng.close()
        eng.close()  # no error, no hang
        assert eng._closed

    def test_submit_after_close_raises(self, nat_ctx):
        eng = Engine(nat_ctx).start()
        eng.close()
        with pytest.raises(RuntimeError, match="closed"):
            eng.submit(CheckQuery("le", (nat(1), nat(2))))

    def test_submit_racing_close_never_strands(self, nat_ctx):
        # Hammer submits from a sibling thread while the engine closes:
        # every future that submit() returned must resolve.
        eng = Engine(nat_ctx, workers=2).start()
        futures, rejected = [], []
        stop = threading.Event()

        def pump():
            while not stop.is_set():
                try:
                    futures.append(
                        eng.submit(CheckQuery("le", (nat(1), nat(2))))
                    )
                except RuntimeError:
                    rejected.append(1)
                    return

        pumper = threading.Thread(target=pump)
        pumper.start()
        time.sleep(0.05)
        eng.close()
        # Once close() has returned the pump's next submit must raise,
        # so the thread exits on its own; stop is only a safety net
        # (setting it before the join would race the pump into exiting
        # without ever attempting that post-close submit).
        pumper.join(timeout=10)
        stop.set()
        assert not pumper.is_alive(), "pump thread never exited"
        assert rejected, "submit never started raising after close"
        for f in futures:
            res = f.result(timeout=5)
            assert res.status in ("ok", "shed")

    def test_worker_death_without_supervision_close_resolves_queue(
        self, nat_ctx
    ):
        plan = WorkerFaultPlan.from_events((0, 1, "crash"))
        eng = Engine(
            nat_ctx, workers=1, faults=plan, supervise=False, batch=False
        )
        futures = [
            eng.submit(CheckQuery("le", (nat(1), nat(i + 1))))
            for i in range(4)
        ]
        # First query dies with the worker; close must shed the rest
        # rather than wait forever for a worker that isn't coming back.
        assert futures[0].result(timeout=10).status == "error"
        eng.close()
        for f in futures[1:]:
            res = f.result(timeout=5)
            assert res.status == "shed"
            assert res.give_up.reason == "shutdown"

    def test_run_batch_resolves_under_rejection(self, nat_ctx):
        plan = _stall_plan(0.2)
        with Engine(
            nat_ctx, workers=1, queue_max=1, admission="reject",
            overload=False, faults=plan,
        ) as eng:
            results = eng.run_batch(
                [CheckQuery("le", (nat(1), nat(i + 1))) for i in range(8)]
            )
        assert len(results) == 8
        assert all(r.status in ("ok", "shed") for r in results)


class TestSeedRecording:
    def test_gen_results_record_their_seed(self, nat_ctx):
        from repro.serve import GenQuery

        with Engine(nat_ctx, workers=1) as eng:
            drawn = eng.run(GenQuery("le", "oi", (nat(9),), fuel=16))
            assert drawn.ok and drawn.seed is not None
            replay = eng.run(
                GenQuery("le", "oi", (nat(9),), fuel=16, seed=drawn.seed)
            )
        assert replay.seed == drawn.seed
        assert replay.value == drawn.value
        assert drawn.to_dict()["seed"] == drawn.seed

    def test_erroring_enum_keeps_partial_values(self, nat_ctx):
        # An enumerator that raises mid-stream must surface the values
        # found so far, not discard them.
        from repro.derive.api import derive_enumerator

        enum = derive_enumerator(nat_ctx, "le", "oi")
        real = enum.enum_st

        def explode(fuel, ins):
            it = real(fuel, ins)
            yield next(it)
            yield next(it)
            raise ValueError("stream corrupted")

        with Engine(nat_ctx, workers=1) as eng:
            import unittest.mock as mock

            with mock.patch.object(enum, "enum_st", explode):
                res = eng.run(EnumQuery("le", "oi", (nat(5),), fuel=10))
        assert res.status == "error"
        assert "stream corrupted" in res.error
        assert len(res.value) == 2
        assert res.complete is False
