"""Tests for the translation-validation layer (Section 5)."""

import pytest

from repro.core import parse_declarations
from repro.core.values import from_int
from repro.derive import Mode, register_checker
from repro.derive.instances import Instance
from repro.producers.option_bool import NONE_OB, SOME_FALSE, SOME_TRUE
from repro.validation import (
    ValidationConfig,
    certify_checker,
    certify_enumerator,
    certify_generator,
)

FAST = ValidationConfig(
    domain_depth=3, max_tuples=120, ref_depth=10, max_fuel=16, gen_samples=80
)


class TestCheckerCertificates:
    @pytest.mark.parametrize("rel", ["le", "ev", "square_of"])
    def test_nat_relations_certify(self, nat_ctx, rel):
        cert = certify_checker(nat_ctx, rel, FAST)
        assert cert.ok, cert.summary()

    def test_sorted_certifies_with_dependency(self, list_ctx):
        cert = certify_checker(list_ctx, "Sorted", FAST)
        assert cert.ok, cert.summary()
        assert ("checker", "le", "ii") in cert.dependencies

    def test_structural_census_covers_constructs(self, stlc_ctx):
        cfg = ValidationConfig(
            domain_depth=2, max_tuples=60, ref_depth=8, max_fuel=8, gen_samples=40
        )
        cert = certify_checker(stlc_ctx, "typing", cfg)
        assert cert.ok, cert.summary()
        assert cert.step_cases.get("enumeration", 0) >= 1  # TApp
        assert cert.step_cases.get("recursive-call", 0) >= 1
        assert cert.step_cases["top-level-match"] == 5

    def test_zero_relation_still_certifies(self, zero_ctx):
        """`zero` answers None on nonzero inputs forever — that is
        consistent with soundness/completeness/monotonicity."""
        cert = certify_checker(zero_ctx, "zero", FAST)
        assert cert.ok, cert.summary()


class TestCertificatesCatchBugs:
    """Translation validation must *refute* wrong artifacts."""

    def _install(self, ctx, rel, fn):
        register_checker(ctx, rel, fn, source="handwritten")
        from repro.derive.instances import CHECKER, lookup

        return lookup(ctx, CHECKER, rel, Mode.checker(ctx.relations.get(rel).arity))

    def test_unsound_checker_refuted(self, nat_ctx):
        instance = self._install(nat_ctx, "le", lambda fuel, args: SOME_TRUE)
        cert = certify_checker(nat_ctx, "le", FAST, instance=instance)
        assert not cert.ok
        assert any(o.name == "soundness" and o.status == "refuted"
                   for o in cert.obligations)

    def test_incomplete_checker_refuted(self, nat_ctx):
        instance = self._install(nat_ctx, "le", lambda fuel, args: SOME_FALSE)
        cert = certify_checker(nat_ctx, "le", FAST, instance=instance)
        names = {o.name for o in cert.refuted}
        assert "completeness" in names

    def test_nonmonotone_checker_refuted(self, nat_ctx):
        from repro.core.values import to_int

        def flipflop(fuel, args):
            a, b = (to_int(x) for x in args)
            if a > b:
                return SOME_FALSE
            return SOME_TRUE if fuel % 2 == 0 else SOME_FALSE

        instance = self._install(nat_ctx, "le", flipflop)
        cert = certify_checker(nat_ctx, "le", FAST, instance=instance)
        assert any(o.name == "monotonicity" and o.status == "refuted"
                   for o in cert.obligations)


class TestProducerCertificates:
    def test_le_enumerators_both_modes(self, nat_ctx):
        for mode in ("io", "oi", "oo"):
            cert = certify_enumerator(nat_ctx, "le", mode, FAST)
            assert cert.ok, cert.summary()

    def test_sorted_enumerator(self, list_ctx):
        cfg = ValidationConfig(
            domain_depth=2, max_tuples=40, ref_depth=8, max_fuel=5,
            max_outcomes=4000,
        )
        cert = certify_enumerator(list_ctx, "Sorted", "o", cfg)
        assert cert.ok, cert.summary()

    def test_square_root_enumerator(self, nat_ctx):
        cert = certify_enumerator(nat_ctx, "square_of", "oi", FAST)
        assert cert.ok, cert.summary()

    def test_le_generator(self, nat_ctx):
        cert = certify_generator(nat_ctx, "le", "oi", FAST)
        assert cert.ok, cert.summary()

    def test_unsound_enumerator_refuted(self, nat_ctx):
        from repro.derive.instances import ENUM, register_producer, lookup

        def bad_enum(fuel, ins):
            yield (from_int(99),)  # 99 <= anything: wrong

        register_producer(
            nat_ctx, ENUM, "le", Mode.from_string("oi"), bad_enum
        )
        instance = lookup(nat_ctx, ENUM, "le", Mode.from_string("oi"))
        cert = certify_enumerator(nat_ctx, "le", "oi", FAST, instance=instance)
        assert any(o.name == "soundness" and o.status == "refuted"
                   for o in cert.obligations)

    def test_incomplete_enumerator_refuted(self, nat_ctx):
        from repro.derive.instances import ENUM, register_producer, lookup

        def empty_enum(fuel, ins):
            return iter(())  # no fuel marker: claims exhaustiveness

        register_producer(
            nat_ctx, ENUM, "le", Mode.from_string("oi"), empty_enum
        )
        instance = lookup(nat_ctx, ENUM, "le", Mode.from_string("oi"))
        cert = certify_enumerator(nat_ctx, "le", "oi", FAST, instance=instance)
        refuted = {o.name for o in cert.refuted}
        assert "completeness" in refuted or "fuel-marker-honesty" in refuted
