"""Tests for proof by computational reflection (Section 6.3)."""

import pytest

from repro.core.values import from_int, from_list
from repro.validation import prove_by_reflection, prove_explicit, reflect_holds


def repeat_list(x, n):
    return from_list([from_int(x)] * n)


class TestExplicitProofs:
    def test_builds_and_checks(self, list_ctx):
        report = prove_explicit(list_ctx, "Sorted", (repeat_list(1, 30),), depth=40)
        assert report.proved
        assert report.proof_size > 30  # one node per element plus le proofs

    def test_fails_on_false_goal(self, list_ctx):
        from repro.core.values import nat_list

        report = prove_explicit(list_ctx, "Sorted", (nat_list([2, 1]),), depth=10)
        assert not report.proved
        assert report.proof_size == 0


class TestReflectiveProofs:
    def test_proves_sorted_repeat(self, list_ctx):
        report = prove_by_reflection(
            list_ctx, "Sorted", (repeat_list(1, 50),), fuel=60
        )
        assert report.proved
        assert report.proof_size == 1

    def test_reflect_holds(self, list_ctx):
        assert reflect_holds(list_ctx, "Sorted", (repeat_list(1, 20),), fuel=30)
        from repro.core.values import nat_list

        assert not reflect_holds(list_ctx, "Sorted", (nat_list([3, 1]),), fuel=30)

    def test_reflection_beats_explicit_on_large_goals(self, list_ctx):
        """The paper's headline contrast, at reduced scale."""
        n = 120
        args = (repeat_list(1, n),)
        explicit = prove_explicit(list_ctx, "Sorted", args, depth=n + 10)
        reflective = prove_by_reflection(list_ctx, "Sorted", args, fuel=n + 10)
        assert explicit.proved and reflective.proved
        assert reflective.proof_size < explicit.proof_size / 50
        total_explicit = explicit.build_seconds + explicit.check_seconds
        total_reflective = reflective.build_seconds + reflective.check_seconds
        assert total_reflective < total_explicit
