"""Legacy setup shim.

The package is fully described by pyproject.toml; this file exists so
offline environments without the `wheel` package (where PEP-660
editable installs fail) can still run `python setup.py develop`.
"""

from setuptools import setup

setup()
