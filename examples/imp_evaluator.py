#!/usr/bin/env python3
"""Executing a big-step semantics: the IMP evaluator (LF's `Imp`).

IMP's evaluation relation `cevalR` cannot be a Coq function — `while`
loops may diverge.  The derived semi-decision procedure is the honest
computational reading: `Some true` when the program provably reaches
the final state within the fuel, `None` when it needs more fuel (or
diverges).  The derived *enumerator* at mode `iio` is an interpreter:
it produces the final states a program can reach.

Run:  python examples/imp_evaluator.py
"""

from repro.core.values import V, from_int, from_list, from_pair, render, to_list, to_pair, to_int
from repro.derive import derive_checker, derive_enumerator
from repro.producers.outcome import is_value
from repro.sf.registry import load_chapter

chapter = load_chapter("repro.sf.lf_imp")
ctx = chapter.ctx

# Program:  X := 3; Y := 0; while (1 <= X) { Y := Y + X; X := X - 1 }
# i.e. Y = 3 + 2 + 1 = 6.
X, Y = 0, 1
aid = lambda v: V("AId", from_int(v))
num = lambda n: V("ANum", from_int(n))
prog = V(
    "CSeq",
    V("CAss", from_int(X), num(3)),
    V(
        "CSeq",
        V("CAss", from_int(Y), num(0)),
        V(
            "CWhile",
            V("BLe", num(1), aid(X)),
            V(
                "CSeq",
                V("CAss", from_int(Y), V("APlus", aid(Y), aid(X))),
                V("CAss", from_int(X), V("AMinus", aid(X), num(1))),
            ),
        ),
    ),
)

empty_state = from_list([])


def lookup_final(state, var):
    for cell in to_list(state):
        k, v = to_pair(cell)
        if to_int(k) == var:
            return to_int(v)
    return 0


# Run the program by *enumerating* final states of cevalR.
evaluate = derive_enumerator(ctx, "cevalR", "iio")
print("running the sum-down-from-3 program through the derived evaluator…")
finals = []
for item in evaluate(40, prog, empty_state):
    if is_value(item):
        finals.append(item[0])
        break  # evaluation is deterministic: first solution is the answer
assert finals, "needs more fuel"
final_state = finals[0]
print("final state:", render(final_state))
print("Y =", lookup_final(final_state, Y))
assert lookup_final(final_state, Y) == 6

# Check a claimed final state with the derived checker.
check = derive_checker(ctx, "cevalR")
print("\nchecking (prog, [], final) with the derived checker:",
      check(40, prog, empty_state, final_state))

# A diverging program: while true skip.  The checker can never say
# `Some false` for reachable questions it cannot decide — it answers
# `None` at every fuel (Section 5.1's non-termination discussion).
loop = V("CWhile", V("BTrue"), V("CSkip"))
for fuel in (5, 20, 60):
    print(f"while true skip, fuel {fuel:3d}:",
          check(fuel, loop, empty_state, empty_state))
