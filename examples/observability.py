#!/usr/bin/env python3
"""Observability for derived computations (`repro.observe`).

Deriving a checker or generator from an inductive relation gives you
trustworthy computational content — but trusting a *testing campaign*
also needs visibility: which rules the generator actually exercises,
where fuel and wall-time go, how skewed the produced values are.  This
walkthrough profiles the BST case study:

1. run a derived generator + checker under `observe(ctx)` and render
   the full report — span call tree, rule coverage, histograms;
2. label a QuickChick-style property with `collect` and read the
   label distribution and discard rate off the report;
3. diff dynamic rule coverage against the static linter (REL004): a
   skewed workload leaves `bst_node` statically-live-but-unfired;
4. export the run as JSON lines + Chrome trace format and re-render
   the report from the dump file (`python -m repro.observe run.jsonl`).

Run:  python examples/observability.py [--export DIR]

With `--export DIR` the dump, Chrome trace, and rendered report are
written into DIR (CI uploads these as a workflow artifact).
"""

import argparse
import random
import sys
from pathlib import Path

from repro.casestudies import bst
from repro.derive.instances import CHECKER, GEN, resolve_compiled
from repro.derive.modes import Mode
from repro.observe import coverage_diff, observe
from repro.quickchick import collect, for_all, quick_check

parser = argparse.ArgumentParser(description=__doc__)
parser.add_argument("--export", metavar="DIR", default=None,
                    help="write run.jsonl / run.trace.json / report.txt here")
args = parser.parse_args()

ctx = bst.make_context()
gen_bst = resolve_compiled(ctx, GEN, "bst", Mode.from_string("iio"))
check_bst = resolve_compiled(ctx, CHECKER, "bst", Mode.checker(3))
workload = bst.BstWorkload(ctx, lo=0, hi=16)

# ---------------------------------------------------------------- 1 --
# Profile a generator+checker campaign: every fixpoint-level call of a
# derived computation becomes one span in a call tree; handler attempts
# feed rule coverage; distributions land in histograms.
gen, prop = workload.property_fn(gen_bst, check_bst, bst.insert)
labelled = collect(lambda case: f"depth {case[1].size().bit_length()}", prop)
with observe(ctx) as obs:
    report = quick_check(for_all(gen, labelled, "insert preserves bst"),
                         num_tests=300, seed=2022)
assert not report.failed

print("=" * 64)
print("1. the observation report (spans / coverage / histograms)")
print("=" * 64)
print(obs.report(top=5))
print()

# ---------------------------------------------------------------- 2 --
# The property run itself: label distribution + discard rate.
print("=" * 64)
print("2. the QuickChick report with collect-labels")
print("=" * 64)
print(report)
assert report.labels, "collect() labels should have been tallied"
print()

# ---------------------------------------------------------------- 3 --
# Dynamic coverage vs the static linter.  The campaign above exercises
# both bst rules; a skewed workload — only ever checking Leaf — leaves
# bst_node statically live (REL004 finds nothing wrong with it) but
# dynamically never fired.  That gap is invisible to the linter and to
# pass/fail counts; the diff is what surfaces it.
print("=" * 64)
print("3. coverage diff vs the static linter (REL004)")
print("=" * 64)
full = coverage_diff(ctx, obs.coverage(), "bst", "iii", kind="checker")
print(full.render())
assert full.clean, "the full campaign fires every bst rule"
print()

lo_v, hi_v = workload.bounds()
with observe(ctx) as skewed_obs:
    for _ in range(10):
        check_bst(24, (lo_v, hi_v, bst.LEAF))
skewed = coverage_diff(ctx, skewed_obs.coverage(), "bst", "iii",
                       kind="checker")
print(skewed.render())
assert {r.rule for r in skewed.live_unfired} == {"bst_node"}
print()

# ---------------------------------------------------------------- 4 --
# Export + re-render: the JSONL dump is lossless for reporting; the
# Chrome trace opens in Perfetto / chrome://tracing as a flame chart.
out_dir = Path(args.export) if args.export else None
if out_dir is not None:
    out_dir.mkdir(parents=True, exist_ok=True)
    dump_path = out_dir / "run.jsonl"
    # ctx= adds the coverage-vs-linter diff lines, so the report CLI
    # can cross-check REL004 verdicts from the dump alone (exit 1 on a
    # dead-but-fired contradiction).
    obs.export_jsonl(dump_path, ctx=ctx)
    obs.export_chrome_trace(out_dir / "run.trace.json")
    (out_dir / "report.txt").write_text(obs.report(top=25) + "\n")
    print(f"exported dump + trace + report to {out_dir}/")
    print(f"render again with: python -m repro.observe {dump_path}")
else:
    import tempfile

    with tempfile.TemporaryDirectory() as td:
        dump_path = Path(td) / "run.jsonl"
        obs.export_jsonl(dump_path)
        from repro.observe import read_jsonl, render_dump

        rendered = render_dump(read_jsonl(dump_path), top=3)
        assert rendered.splitlines()[0] == "repro.observe report"
        print("round-trip through run.jsonl renders identically:",
              rendered == obs.report(top=3))

print("\nobservability layer: spans, coverage, exports all working.")
