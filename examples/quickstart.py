#!/usr/bin/env python3
"""Quickstart: derive computations from an inductive relation.

Declares the classic `le` ordering relation in the Coq-like surface
syntax, derives a checker, an enumerator, and a random generator from
it, runs them, and validates the checker against the reference
semantics — the full pipeline of the paper in ~60 lines.

Run:  python examples/quickstart.py
"""

from repro import (
    derive_checker,
    derive_enumerator,
    derive_generator,
    certify_checker,
    from_int,
    parse_declarations,
    standard_context,
    to_int,
)

ctx = standard_context()

# 1. Declare an inductive relation (Coq syntax, types inferred).
parse_declarations(ctx, """
    Inductive le : nat -> nat -> Prop :=
    | le_n : forall n, le n n
    | le_S : forall n m, le n m -> le n (S m).
""")

# 2. Derive a semi-decision procedure:  Derive DecOpt for (le n m).
le = derive_checker(ctx, "le")
print("le 3 7  @fuel 10:", le(10, from_int(3), from_int(7)))    # Some true
print("le 7 3  @fuel 10:", le(10, from_int(7), from_int(3)))    # Some false
print("le 0 99 @fuel  3:", le(3, from_int(0), from_int(99)))    # None (needs fuel)

# 3. Derive an enumerator for { n | le n 5 }:
#    Derive EnumSizedSuchThat for (fun n => le n 5).
smaller = derive_enumerator(ctx, "le", "oi")
values = sorted(to_int(n) for (n,) in smaller.values(10, from_int(5)))
print("all n <= 5:", values)
print("enumeration provably exhaustive:",
      smaller.exhaustive_at(10, from_int(5)))

# 4. Derive a random generator for { m | le 2 m }:
#    Derive GenSizedSuchThat for (fun m => le 2 m).
bigger = derive_generator(ctx, "le", "io")
samples = [to_int(m) for (m,) in bigger.samples(8, from_int(2), count=10, seed=7)]
print("random m >= 2:", samples)

# 5. Translation validation (Section 5): check soundness, completeness,
#    monotonicity, and negation-soundness against the reference
#    proof-search semantics.
certificate = certify_checker(ctx, "le")
print()
print(certificate.summary())
assert certificate.ok
