#!/usr/bin/env python3
"""The paper's running example: STLC typing (Sections 2–4).

One inductive `typing` relation yields, through three instantiations
of the same derivation:

* a type *checker*  (is `e : t` in `Γ`?) — including the TApp case,
  whose existential `t1` the checker solves by enumeration;
* a type *inference* enumerator (all `t` with `Γ ⊢ e : t`);
* a *well-typed term generator* (random `e` with `Γ ⊢ e : t`) — the
  workhorse of property-based testing for languages.

Run:  python examples/stlc_typing.py
"""

from repro import (
    derive_checker,
    derive_enumerator,
    derive_generator,
    parse_declarations,
    standard_context,
    from_int,
    from_list,
)
from repro.core.values import V, render
from repro.derive import Mode, build_schedule

ctx = standard_context()
parse_declarations(ctx, """
    Inductive type : Type :=
    | N : type
    | Arr : type -> type -> type.

    Inductive term : Type :=
    | Con : nat -> term
    | Add : term -> term -> term
    | Vart : nat -> term
    | App : term -> term -> term
    | Abs : type -> term -> term.

    Inductive lookup : list type -> nat -> type -> Prop :=
    | lookup_here : forall t G, lookup (t :: G) 0 t
    | lookup_there : forall t t2 G n, lookup G n t -> lookup (t2 :: G) (S n) t.

    Inductive typing : list type -> term -> type -> Prop :=
    | TCon : forall G n, typing G (Con n) N
    | TAdd : forall G e1 e2,
        typing G e1 N -> typing G e2 N -> typing G (Add e1 e2) N
    | TAbs : forall G e t1 t2,
        typing (t1 :: G) e t2 -> typing G (Abs t1 e) (Arr t1 t2)
    | TVar : forall G x t, lookup G x t -> typing G (Vart x) t
    | TApp : forall G e1 e2 t1 t2,
        typing G e2 t1 -> typing G e1 (Arr t1 t2) -> typing G (App e1 e2) t2.
""")

# Peek at what the algorithm derived (the analogue of Figure 1).
print("=== derived checker schedule (compare the paper's Figure 1) ===")
print(build_schedule(ctx, "typing", Mode.checker(3)).describe())
print()

N = V("N")
arr = lambda a, b: V("Arr", a, b)
con = lambda n: V("Con", from_int(n))
var = lambda n: V("Vart", from_int(n))
app = lambda f, x: V("App", f, x)
abs_ = lambda t, e: V("Abs", t, e)
add = lambda a, b: V("Add", a, b)
empty = from_list([])

# --- checking (DecOpt) ---
check = derive_checker(ctx, "typing")
examples = [
    (app(abs_(N, add(var(0), con(1))), con(2)), N),            # (λx:N. x+1) 2
    (abs_(N, var(0)), arr(N, N)),                              # λx:N. x
    (app(con(1), con(2)), N),                                  # 1 2  (ill-typed)
    (app(abs_(arr(N, N), var(0)), abs_(N, var(0))), arr(N, N)),
]
print("=== checking ===")
for e, t in examples:
    print(f"  ⊢ {render(e):45s} : {render(t):10s} -> {check(10, empty, e, t)}")

# --- inference (EnumSizedSuchThat over the type) ---
infer = derive_enumerator(ctx, "typing", "iio")
print("\n=== inference (enumerate all types) ===")
for e, _ in examples[:2]:
    types = [render(t) for (t,) in infer.values(8, empty, e)]
    print(f"  {render(e):45s} : {types}")

# --- generation (GenSizedSuchThat over the term) ---
generate = derive_generator(ctx, "typing", "ioi")
print("\n=== generation (random well-typed terms of type N -> N) ===")
goal = arr(N, N)
for (e,) in generate.samples(6, empty, goal, count=5, seed=42):
    verdict = check(40, empty, e, goal)
    print(f"  {render(e)[:70]:70s}  typechecks: {verdict}")
    assert verdict.is_true
