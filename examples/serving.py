#!/usr/bin/env python3
"""Sessions, parallel campaigns, and the query engine (`repro.serve`).

Everything derived so far assumed one caller.  This walkthrough shows
the serving layer that lifts that:

1. bind two `Session`s on one shared context and watch their runtime
   state (stats, memo tables, budgets) stay disjoint while derived
   instances stay shared;
2. run a `quick_check` campaign sharded across a process pool with
   `parallel_quick_check`, and verify the merged `CheckReport` equals
   the sequential run of the same seed partition — parallelism as a
   pure throughput knob;
3. serve a mixed check/enumerate/generate workload through an
   `Engine`: sessioned worker threads, batched `check_batch` dispatch,
   and per-query budgets that come back as *structured give-ups*
   (reason + `Exhausted` diagnosis), never errors;
4. (with `--telemetry`) the same engine run under a `Telemetry`
   recorder: per-(kind, relation) latency percentiles, queue wait,
   sampled span traces, and — with `--export DIR` — the whole thing
   written out as `telemetry.jsonl` + `metrics.prom` + `stats.txt`;
5. the high-availability layer: a bounded admission queue turning
   overload into *structured sheds* (`status="shed"`, never an error,
   never a hang), absolute deadlines that expire in queue, and a
   supervisor restarting a crashed worker mid-workload — driven by a
   seeded `WorkerFaultPlan`, the chaos-testing hook.

Run:  python examples/serving.py [--workers N] [--tests N]
                                 [--telemetry] [--export DIR]
"""

import argparse
import os

from repro.core import parse_declarations
from repro.core.session import use_session
from repro.core.values import Value, from_int, to_int
from repro.derive.instances import CHECKER, resolve
from repro.derive.memo import enable_memoization
from repro.derive.modes import Mode
from repro.derive.stats import stats_of
from repro.quickchick import classify, for_all
from repro.resilience import parallel_quick_check
from repro.serve import CheckQuery, Engine, EnumQuery, GenQuery
from repro.stdlib import standard_context

parser = argparse.ArgumentParser(description=__doc__)
parser.add_argument("--workers", type=int,
                    default=min(os.cpu_count() or 1, 4))
parser.add_argument("--tests", type=int, default=400,
                    help="campaign size for the parallel quick_check")
parser.add_argument("--telemetry", action="store_true",
                    help="run the engine under a Telemetry recorder")
parser.add_argument("--export", metavar="DIR", default=None,
                    help="write telemetry.jsonl/metrics.prom/stats.txt "
                    "into DIR (implies --telemetry)")
args = parser.parse_args()
if args.export:
    args.telemetry = True

ctx = standard_context()
parse_declarations(ctx, """
Inductive le : nat -> nat -> Prop :=
| le_n : forall n, le n n
| le_S : forall n m, le n m -> le n (S m).

Inductive add : nat -> nat -> nat -> Prop :=
| add_O : forall m, add O m m
| add_S : forall n m p, add n m p -> add (S n) m (S p).
""")
check_le = resolve(ctx, CHECKER, "le", Mode.checker(2)).fn


def nat(n):
    v = Value("O", ())
    for _ in range(n):
        v = Value("S", (v,))
    return v


# -- 1. sessions: disjoint runtime state, shared artifacts -------------------

print("== sessions ==")
with use_session(ctx, ctx.new_session("alice")):
    enable_memoization(ctx)
    for a in range(8):
        check_le(30, (nat(a), nat(a + 1)))
    alice_calls = stats_of(ctx).checker_calls
with use_session(ctx, ctx.new_session("bob")):
    enable_memoization(ctx)
    bob_calls = stats_of(ctx).checker_calls
print(f"alice ran {alice_calls} checker calls; bob, on the same context,")
print(f"sees {bob_calls} — sessions own stats/memo/budget, the context")
print("owns the derived instances both reuse.\n")


# -- 2. parallel campaign, deterministic merge -------------------------------

print("== parallel campaign ==")


def gen(size, rng):
    a = rng.randint(0, size)
    return (a, a + rng.randint(0, size))


prop = for_all(
    gen,
    classify(lambda p: p[0] == p[1], "reflexive",
             lambda p: check_le(30, (nat(p[0]), nat(p[1])))),
    name="le_holds",
)

seq = parallel_quick_check(prop, args.tests, workers=args.workers,
                           seed=7, backend="inline", ctx=ctx)
par = parallel_quick_check(prop, args.tests, workers=args.workers,
                           seed=7, backend="fork", ctx=ctx)
print(f"{args.tests} tests over {args.workers} workers:")
print(f"  fork:   {par.tests_run} run, labels {par.labels}, "
      f"{par.tests_per_second:.0f} tests/s")
print(f"  inline: {seq.tests_run} run, labels {seq.labels}")
assert (par.tests_run, par.discards, par.labels, par.shard_seeds) == \
       (seq.tests_run, seq.discards, seq.labels, seq.shard_seeds)
print(f"merged report == sequential reference; replay via shard_seeds="
      f"{par.shard_seeds}\n")


# -- 3. the query engine -----------------------------------------------------

print("== query engine ==")
queries = (
    [CheckQuery("le", (nat(a), nat(b)), fuel=32)
     for a in range(5) for b in range(5)]
    + [EnumQuery("add", "ooi", (nat(6),), fuel=10),
       GenQuery("le", "oi", (nat(9),), fuel=16, seed=3),
       # a deliberately starved query: structured give-up, not an error
       CheckQuery("le", (nat(20), nat(28)), fuel=64, max_ops=10)]
)
telemetry = None
if args.telemetry:
    from repro.observe.telemetry import Telemetry

    # sample_every=1 traces every query: fine for a demo, far too
    # eager for production (the default is every 128th per shape).
    telemetry = Telemetry(sample_every=1)

with Engine(ctx, workers=args.workers, memoize=True,
            telemetry=telemetry) as eng:
    eng.prepare(queries)
    results = eng.run_batch(queries)
    stats = eng.stats()

ok = [r for r in results if r.ok]
gave_up = [r for r in results if r.status == "gave_up"]
print(f"{len(results)} queries: {len(ok)} ok, {len(gave_up)} gave up, "
      f"{sum(w['batched'] for w in stats['per_worker'])} served batched")
pairs = results[25]
print(f"enum add[ooi] 6 -> "
      f"{[(to_int(a), to_int(b)) for a, b in pairs.value]} "
      f"(complete={pairs.complete})")
g = results[26]
print(f"gen le[oi] 9  -> {to_int(g.value[0])} (seeded, replayable)")
starved = results[-1]
print(f"budgeted check -> status={starved.status}, "
      f"reason={starved.give_up.reason}, "
      f"ops={starved.give_up.exhausted.ops}")
assert starved.status == "gave_up" and starved.give_up.reason == "ops"
assert all(r.status != "error" for r in results)


# -- 4. serving telemetry ----------------------------------------------------

if telemetry is not None:
    print("\n== serving telemetry ==")
    print(telemetry.render())
    if args.export:
        from pathlib import Path

        from repro.observe import write_prometheus, write_telemetry_jsonl

        outdir = Path(args.export)
        outdir.mkdir(parents=True, exist_ok=True)
        write_telemetry_jsonl(telemetry, outdir / "telemetry.jsonl")
        write_prometheus(telemetry, outdir / "metrics.prom")
        (outdir / "stats.txt").write_text(telemetry.render() + "\n")
        print(f"\nexported telemetry.jsonl + metrics.prom + stats.txt "
              f"to {outdir}/")
        print(f"re-render: python -m repro.observe {outdir}/telemetry.jsonl")

# -- 5. high availability: admission, deadlines, supervision -----------------

print("\n== high availability ==")
from repro.resilience import WorkerFaultPlan  # noqa: E402

# A stalled single worker + a one-slot queue: the burst cannot fit, so
# the `reject` policy sheds at submit — a structured answer, not an
# error, and nobody blocks.  (overload=False isolates the admission
# policy; by default a bounded queue also gets the overload ladder,
# which would shed these as 'overload' even earlier.)
stall = WorkerFaultPlan.from_events((0, 1, "stall"), stall_seconds=0.2)
with Engine(ctx, workers=1, queue_max=1, admission="reject",
            overload=False, faults=stall) as eng:
    futures = [eng.submit(CheckQuery("le", (nat(a), nat(a + 1)), fuel=32))
               for a in range(12)]
    burst = [f.result(timeout=30) for f in futures]
served = sum(1 for r in burst if r.ok)
sheds = [r for r in burst if r.status == "shed"]
print(f"12-query burst into a stalled 1-slot queue: {served} served, "
      f"{len(sheds)} shed ({sheds[0].give_up.reason!r})")
assert served + len(sheds) == len(burst) and sheds
assert all(r.give_up.reason == "admission" for r in sheds)

# Deadlines are absolute from submit: a query stuck behind the stall
# expires *in queue* — shed as 'expired', its budget never even runs.
with Engine(ctx, workers=1, faults=stall) as eng:
    futures = [eng.submit(CheckQuery("le", (nat(a), nat(a + 1)), fuel=32,
                                     deadline_seconds=0.05))
               for a in range(6)]
    dead = [f.result(timeout=30) for f in futures]
expired = [r for r in dead if r.status == "shed"]
print(f"deadline 50ms behind a 200ms stall: {len(expired)} expired in "
      f"queue, {sum(1 for r in dead if r.ok)} served in time")
assert expired and all(r.give_up.reason == "expired" for r in expired)

# Crash the worker on its first claim: the supervisor restarts it
# (capped exponential backoff), the crashed query resolves as a
# structured error, and every other future still gets its answer.
crash = WorkerFaultPlan.from_events((0, 1, "crash"))
with Engine(ctx, workers=1, faults=crash,
            supervise={"backoff_base": 0.01}) as eng:
    futures = [eng.submit(CheckQuery("le", (nat(a), nat(a + 1)), fuel=32))
               for a in range(8)]
    after_crash = [f.result(timeout=30) for f in futures]
    ha = eng.stats()
errors = [r for r in after_crash if r.status == "error"]
print(f"crash on first claim: {ha['crashes']} crash, {ha['restarts']} "
      f"restart; {sum(1 for r in after_crash if r.ok)}/8 answered, "
      f"{len(errors)} structured error ('worker crashed')")
assert ha["restarts"] >= 1 and len(errors) <= 1
assert all("worker crashed" in r.error for r in errors)

print("\nSame corpus from the command line: python -m repro.serve --demo")
print("HA flags: python -m repro.serve queries.jsonl --queue-max 256 "
      "--admission reject --drain-timeout 5")
