#!/usr/bin/env python3
"""Proof by computational reflection (Section 6.3).

Prove `Sorted (repeat 1 2000)` two ways:

* the *explicit* route builds a derivation tree by applying
  constructors (the `repeat eapply` proof) and re-checks it node by
  node — thousands of proof nodes;
* the *reflective* route derives a checker (`Derive DecOpt`), checks
  its soundness certificate once, and then just *computes*.

Run:  python examples/proof_by_reflection.py
"""

from repro import parse_declarations, standard_context, from_int, from_list
from repro.derive import derive_checker
from repro.validation import (
    ValidationConfig,
    certify_checker,
    prove_by_reflection,
    prove_explicit,
)

ctx = standard_context()
parse_declarations(ctx, """
    Inductive le : nat -> nat -> Prop :=
    | le_n : forall n, le n n
    | le_S : forall n m, le n m -> le n (S m).

    Inductive Sorted : list nat -> Prop :=
    | Sorted_nil : Sorted []
    | Sorted_sing : forall x, Sorted [x]
    | Sorted_cons : forall x y l,
        le x y -> Sorted (y :: l) -> Sorted (x :: y :: l).
""")

# 1.  Derive DecOpt for (Sorted l).
derive_checker(ctx, "Sorted")

# 2.  Instance Sort_sound : DecOptSoundPos (Sorted l).
#     Proof. derive_sound. Qed.   — here: the validation certificate.
certificate = certify_checker(
    ctx, "Sorted",
    ValidationConfig(domain_depth=3, max_tuples=100, ref_depth=10, max_fuel=16),
)
assert certificate.ok, certificate.summary()
print("soundness certificate: OK")
print()

# 3.  Lemma sorted_2000 : Sorted (repeat 1 2000).
n = 2000
goal = (from_list([from_int(1)] * n),)

# The explicit proof term is quadratic to build here (the paper's Coq
# baseline takes 27.5 s at n = 2000); build it at n = 300 and watch the
# scaling, then prove the full goal reflectively.
small = 300
explicit = prove_explicit(
    ctx, "Sorted", (from_list([from_int(1)] * small),), depth=small + 8
)
print(f"(explicit at n={small}) {explicit}")

reflective = prove_by_reflection(ctx, "Sorted", goal, fuel=n + 8)
print(f"(reflective at n={n}) {reflective}")

speedup = (explicit.build_seconds + explicit.check_seconds) / max(
    reflective.build_seconds + reflective.check_seconds, 1e-9
)
print(f"\nproof size: {explicit.proof_size} nodes (n={small}) -> 1 checker run (n={n})")
print(f"time:       {speedup:,.0f}x faster by reflection, at 6.7x the goal size")
assert reflective.proved and explicit.proved
