#!/usr/bin/env python3
"""Regular-expression matching from the `exp_match` relation
(LF's IndProp chapter).

`exp_match s re` is the textbook inductive definition of regex
matching.  The derivation turns it into:

* a matcher (checker) — note how `MApp`'s `s1 ++ s2` conclusion is
  normalized into an equality premise and the split is found by
  enumeration;
* a generator of strings matching a given regex (mode `oi`) — i.e.
  derived *grammar-based fuzzing*.

Run:  python examples/regex_matching.py
"""

from repro.core.values import V, nat_list, render, to_nat_list
from repro.derive import derive_checker, derive_enumerator, derive_generator
from repro.sf.registry import load_chapter

chapter = load_chapter("repro.sf.lf_indprop")
ctx = chapter.ctx

# The regex (0|1)* 2 over nat "characters".
zero_or_one = V("RUnion", V("RChar", nat_list([0]).args[0]), V("RChar", nat_list([1]).args[0]))
# (Build characters via from_int for clarity:)
from repro.core.values import from_int

char = lambda c: V("RChar", from_int(c))
union = lambda a, b: V("RUnion", a, b)
star = lambda r: V("RStar", r)
rapp = lambda a, b: V("RApp", a, b)

regex = rapp(star(union(char(0), char(1))), char(2))
print("regex: (0|1)* 2")

match = derive_checker(ctx, "exp_match")
for s in ([2], [0, 1, 0, 2], [0, 1], [2, 2], []):
    print(f"  match {s!r:18}:", match(14, nat_list(s), regex))

# Enumerate matching strings.
strings = derive_enumerator(ctx, "exp_match", "oi")
print("\nshortest strings in the language:")
shown = 0
for (s,) in strings.values(5, regex):
    print("  ", to_nat_list(s))
    shown += 1
    if shown >= 8:
        break

# Randomly generate matching strings (derived fuzzing).
fuzz = derive_generator(ctx, "exp_match", "oi")
print("\nrandom members of the language:")
for (s,) in fuzz.samples(8, regex, count=6, seed=3):
    xs = to_nat_list(s)
    print("  ", xs)
    # Re-checking enumerates splits of s1 ++ s2, so matching cost grows
    # quickly with fuel; a fuel a little above len(s) suffices.
    verdict = match(len(xs) + 4, s, regex)
    assert verdict.is_true, (xs, verdict)
print("\nevery generated string re-checks: OK")
