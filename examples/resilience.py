#!/usr/bin/env python3
"""Resource-governed execution (`repro.resilience`).

A derived checker or generator is a *search*, and searches blow up:
one adversarial input can take minutes while the other 999 take
microseconds.  This walkthrough shows the governance layer that makes
derived computations safe to embed:

1. run a derived checker under a `Budget` — op caps, wall-clock
   deadlines, recursion-depth caps — and watch it degrade to its
   *indefinite* outcome (`None`) instead of wedging, with a structured
   `Exhausted` diagnosis of what tripped and where;
2. run a deadline-bounded `quick_check` campaign: per-test budgets
   with retry-and-backoff, a whole-campaign deadline, and a report
   that says exactly why it stopped;
3. inject deterministic faults (forced fuel-outs, trips, cache
   evictions) from a seeded `FaultPlan` and check interruption
   soundness: a faulted run that still answers definitely agrees with
   the unfaulted baseline, on both backends;
4. export the campaign report as JSON lines for
   `python -m repro.resilience campaign.jsonl` (exit code 0 = clean,
   1 = failed/gave up/stopped, 2 = budget exhausted).

Run:  python examples/resilience.py [--export FILE]
"""

import argparse

from repro.core import parse_declarations
from repro.derive.instances import CHECKER, resolve, resolve_compiled
from repro.derive.modes import Mode
from repro.producers.option_bool import NONE_OB
from repro.quickchick import for_all, quick_check
from repro.resilience import Budget, FaultPlan, budget_scope, write_report_jsonl
from repro.core.values import from_int
from repro.stdlib import standard_context

parser = argparse.ArgumentParser(description=__doc__)
parser.add_argument("--export", metavar="FILE", default=None,
                    help="write the campaign report as JSONL here")
args = parser.parse_args()

ctx = standard_context()
parse_declarations(ctx, """
Inductive le : nat -> nat -> Prop :=
| le_n : forall n, le n n
| le_S : forall n m, le n m -> le n (S m).
""")
check_le = resolve(ctx, CHECKER, "le", Mode.checker(2)).fn

# ---------------------------------------------------------------- 1 --
# A budget turns "this call might wedge" into "this call answers None
# after at most N ops / S seconds", with a diagnosis.
print("=" * 64)
print("1. budgets: bounded execution with a structured diagnosis")
print("=" * 64)
args_big = (from_int(3), from_int(40))
print(f"unbudgeted: le 3 40 -> {check_le(60, args_big)}")
with budget_scope(ctx, max_ops=25) as bud:
    verdict = check_le(60, args_big)
print(f"max_ops=25: le 3 40 -> {verdict} (indefinite, not wrong)")
assert verdict is NONE_OB
print(f"diagnosis:  {bud.exhausted}")

# ---------------------------------------------------------------- 2 --
# The same governance, lifted to a whole QuickChick campaign: a tiny
# per-test budget trips on large inputs, each trip is retried with a
# doubled budget, and the report carries the accounting.
print()
print("=" * 64)
print("2. a deadline-bounded quick_check campaign")
print("=" * 64)


def gen(size, rng):
    a = rng.randint(0, size)
    return (a, a + rng.randint(0, size))


prop = for_all(gen, lambda p: check_le(30, (from_int(p[0]), from_int(p[1]))),
               name="le is checkable")
report = quick_check(prop, num_tests=200, seed=2026, size=8,
                     budget=Budget(max_ops=40), ctx=ctx,
                     budget_retries=2, budget_backoff=4.0,
                     campaign_deadline_seconds=30.0)
print(report)
print(f"(budget trips: {report.budget_trips}, "
      f"retries spent: {report.budget_retries})")
assert not report.failed

# ---------------------------------------------------------------- 3 --
# Fault injection: a seeded FaultPlan interrupts both backends at the
# same deterministic charge indices, so we can *test* that an
# interruption never flips a definite verdict.
print()
print("=" * 64)
print("3. seeded fault injection: interruption soundness")
print("=" * 64)
compiled_le = resolve_compiled(ctx, CHECKER, "le", Mode.checker(2))
cases = [(from_int(a), from_int(b)) for a, b in [(2, 5), (5, 2), (4, 4)]]
for seed in (7, 8):
    plan = FaultPlan.seeded(seed, n_events=4, horizon=64)
    print(f"plan seed={seed}: {plan.describe()}")
    for case in cases:
        baseline = check_le(20, case)
        outcomes = []
        for fn in (check_le, compiled_le):
            with budget_scope(ctx, faults=plan, check_every=1):
                outcomes.append(fn(20, case))
        assert outcomes[0] is outcomes[1], "backends diverged under faults"
        if outcomes[0] is not NONE_OB:
            assert outcomes[0] is baseline, "fault flipped a verdict"
        print(f"  le {case[0]} {case[1]}: baseline={baseline} "
              f"faulted={outcomes[0]}")

# ---------------------------------------------------------------- 4 --
if args.export:
    write_report_jsonl([report], args.export)
    print()
    print(f"wrote {args.export}; render it with:")
    print(f"  python -m repro.resilience {args.export}")
