#!/usr/bin/env python3
"""Property-based testing with derived generators and checkers
(the Section 6.2 workflow, on the BST case study).

The `bst lo hi t` invariant is written once, as an inductive relation.
From it we derive a random generator of valid search trees and a
checker of the invariant — no handwritten testing code — and use both
to test an `insert` function.  A buggy insertion is then caught
automatically.

Run:  python examples/bst_testing.py
"""

from repro.casestudies import bst
from repro.derive.instances import CHECKER, GEN, resolve_compiled
from repro.derive.modes import Mode
from repro.quickchick import for_all, quick_check

ctx = bst.make_context()
print("the invariant, as declared:")
print(ctx.relations.get("bst"))
print()

# Derive generator + checker from the relation (compiled backend).
gen_bst = resolve_compiled(ctx, GEN, "bst", Mode.from_string("iio"))
check_bst = resolve_compiled(ctx, CHECKER, "bst", Mode.checker(3))

workload = bst.BstWorkload(ctx, lo=0, hi=16)

# 1. The correct insertion passes.
gen, prop = workload.property_fn(gen_bst, check_bst, bst.insert)
report = quick_check(for_all(gen, prop, "insert preserves bst"),
                     num_tests=500, seed=2022)
print("correct insert:", report)
assert not report.failed

# 2. Each buggy insertion is caught, with a counterexample.
for mutant in bst.MUTANTS:
    gen, prop = workload.property_fn(gen_bst, check_bst, mutant.impl)
    report = quick_check(for_all(gen, prop, mutant.name),
                         num_tests=20000, seed=5)
    print(f"mutant {mutant.name} ({mutant.description}):")
    print(f"  {report}")
    assert report.failed, "mutant escaped!"

print("\nall mutants caught by fully derived testing code.")
