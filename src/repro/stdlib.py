"""Standard library of datatypes and functions.

Mirrors the slice of Coq's standard library that Software Foundations
relations depend on: Peano naturals, booleans, unit, pairs, options,
polymorphic lists, and the usual arithmetic / list functions.

:func:`standard_context` builds a fresh :class:`Context` with all of it
declared; most examples, the SF corpus, and the case studies start from
one.
"""

from __future__ import annotations

from .core.context import Context
from .core.datatypes import ConstructorSig, DataType
from .core.errors import EvaluationError
from .core.types import BOOL, NAT, Ty, TyVar
from .core.values import (
    FALSE,
    NIL,
    TRUE,
    Value,
    from_bool,
    from_int,
    from_list,
    to_int,
    to_list,
)

A = TyVar("A")
B = TyVar("B")


def _nat() -> DataType:
    return DataType(
        "nat",
        (),
        (
            ConstructorSig("O", ()),
            ConstructorSig("S", (NAT,)),
        ),
    )


def _bool() -> DataType:
    return DataType(
        "bool",
        (),
        (ConstructorSig("true", ()), ConstructorSig("false", ())),
    )


def _unit() -> DataType:
    return DataType("unit", (), (ConstructorSig("tt", ()),))


def _option() -> DataType:
    return DataType(
        "option",
        ("A",),
        (ConstructorSig("Some", (A,)), ConstructorSig("None", ())),
    )


def _list() -> DataType:
    return DataType(
        "list",
        ("A",),
        (
            ConstructorSig("nil", ()),
            ConstructorSig("cons", (A, Ty("list", (A,)))),
        ),
    )


def _prod() -> DataType:
    return DataType(
        "prod",
        ("A", "B"),
        (ConstructorSig("pair", (A, B)),),
    )


# ---------------------------------------------------------------------------
# Function interpretations (over Peano naturals and cons-lists).
# ---------------------------------------------------------------------------

def _plus(a: Value, b: Value) -> Value:
    return from_int(to_int(a) + to_int(b))


def _mult(a: Value, b: Value) -> Value:
    return from_int(to_int(a) * to_int(b))


def _minus(a: Value, b: Value) -> Value:
    # Truncated subtraction, as in Coq.
    return from_int(max(0, to_int(a) - to_int(b)))


def _pred(a: Value) -> Value:
    if a.ctor == "S":
        return a.args[0]
    return a  # pred 0 = 0


def _succ(a: Value) -> Value:
    return Value("S", (a,))


def _double(a: Value) -> Value:
    return from_int(2 * to_int(a))


def _leb(a: Value, b: Value) -> Value:
    return from_bool(to_int(a) <= to_int(b))


def _ltb(a: Value, b: Value) -> Value:
    return from_bool(to_int(a) < to_int(b))


def _eqb(a: Value, b: Value) -> Value:
    return from_bool(a == b)


def _max(a: Value, b: Value) -> Value:
    return from_int(max(to_int(a), to_int(b)))


def _min(a: Value, b: Value) -> Value:
    return from_int(min(to_int(a), to_int(b)))


def _negb(a: Value) -> Value:
    return FALSE if a.ctor == "true" else TRUE


def _andb(a: Value, b: Value) -> Value:
    return b if a.ctor == "true" else FALSE


def _orb(a: Value, b: Value) -> Value:
    return TRUE if a.ctor == "true" else b


def _app(xs: Value, ys: Value) -> Value:
    items = to_list(xs)
    acc = ys
    for item in reversed(items):
        acc = Value("cons", (item, acc))
    return acc


def _length(xs: Value) -> Value:
    return from_int(len(to_list(xs)))


def _rev(xs: Value) -> Value:
    return from_list(list(reversed(to_list(xs))))


def _repeat(x: Value, n: Value) -> Value:
    return from_list([x] * to_int(n))


def _hd_error(xs: Value) -> Value:
    if xs.ctor == "cons":
        return Value("Some", (xs.args[0],))
    return Value("None")


def _tl(xs: Value) -> Value:
    if xs.ctor == "cons":
        return xs.args[1]
    return NIL


def _fst(p: Value) -> Value:
    if p.ctor != "pair":
        raise EvaluationError(f"fst applied to non-pair {p}")
    return p.args[0]


def _snd(p: Value) -> Value:
    if p.ctor != "pair":
        raise EvaluationError(f"snd applied to non-pair {p}")
    return p.args[1]


LIST_A = Ty("list", (A,))


def standard_context() -> Context:
    """A fresh context with the standard datatypes and functions."""
    ctx = Context()
    for dt in (_nat(), _bool(), _unit(), _option(), _list(), _prod()):
        ctx.declare_datatype(dt)

    f = ctx.declare_function
    f("plus", (NAT, NAT), NAT, _plus)
    f("mult", (NAT, NAT), NAT, _mult)
    f("minus", (NAT, NAT), NAT, _minus)
    f("pred", (NAT,), NAT, _pred)
    f("succ", (NAT,), NAT, _succ)
    f("double", (NAT,), NAT, _double)
    f("max", (NAT, NAT), NAT, _max)
    f("min", (NAT, NAT), NAT, _min)
    f("leb", (NAT, NAT), BOOL, _leb)
    f("ltb", (NAT, NAT), BOOL, _ltb)
    f("eqb", (NAT, NAT), BOOL, _eqb)
    f("negb", (BOOL,), BOOL, _negb)
    f("andb", (BOOL, BOOL), BOOL, _andb)
    f("orb", (BOOL, BOOL), BOOL, _orb)
    f("app", (LIST_A, LIST_A), LIST_A, _app)
    f("length", (LIST_A,), NAT, _length)
    f("rev", (LIST_A,), LIST_A, _rev)
    f("repeat", (A, NAT), LIST_A, _repeat)
    f("hd_error", (LIST_A,), Ty("option", (A,)), _hd_error)
    f("tl", (LIST_A,), LIST_A, _tl)
    f("fst", (Ty("prod", (A, B)),), A, _fst)
    f("snd", (Ty("prod", (A, B)),), B, _snd)
    return ctx
