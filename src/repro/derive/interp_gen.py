"""Generator backend: the ``G (option A)`` instantiation of a derived
program.

Public surface only — :class:`DerivedGenerator` lowers its schedule to
a :class:`~repro.derive.plan.Plan` once and delegates to the shared
executor (:func:`repro.derive.exec_core.run_gen`).  Compared to the
enumerator instantiation:

* ``enumerating``  →  QuickChick-style ``backtrack`` over handlers
  (weighted random choice, discarding failed options);
* the recursive calls draw randomly instead of enumerating;
* existential instantiation uses the unconstrained random generator.

A run returns one output tuple, or :data:`FAIL` (no derivation found
down the sampled path and every alternative definitively failed), or
:data:`OUT_OF_FUEL` (some alternative ran out of fuel — retrying with
a larger size may succeed).
"""

from __future__ import annotations

import random
from typing import Any

from ..core.context import Context
from ..core.values import Value
from ..producers.outcome import is_value
from .exec_core import run_gen
from .plan import Plan, lower_schedule
from .schedule import Schedule


class DerivedGenerator:
    """A derived constrained generator for ``(rel, mode)``.

    Calling convention: ``gen(fuel, *in_args, rng=...)`` returns one
    output tuple, or ``FAIL`` / ``OUT_OF_FUEL``.
    """

    def __init__(
        self, ctx: Context, schedule: Schedule, retries_per_handler: int = 2
    ) -> None:
        if schedule.mode.is_checker:
            raise ValueError("DerivedGenerator needs a producer-mode schedule")
        self.ctx = ctx
        self.schedule = schedule
        self.retries = retries_per_handler
        self._plan = lower_schedule(ctx, schedule)

    @property
    def plan(self) -> Plan:
        """The lowered program this generator executes."""
        return self._plan

    def __call__(
        self, fuel: int, *ins: Value, rng: random.Random | None = None
    ) -> Any:
        return run_gen(
            self.ctx, self._plan, fuel, fuel, tuple(ins),
            rng or random.Random(), self.retries,
        )

    def gen_st(
        self, fuel: int, ins: tuple[Value, ...], rng: random.Random
    ) -> Any:
        """Internal calling convention (used by instance resolution)."""
        return run_gen(self.ctx, self._plan, fuel, fuel, ins, rng, self.retries)

    def rec(
        self,
        size: int,
        top_size: int,
        ins: tuple[Value, ...],
        rng: random.Random,
    ) -> Any:
        """One level of the derived fixpoint."""
        return run_gen(
            self.ctx, self._plan, size, top_size, ins, rng, self.retries
        )

    def samples(
        self,
        fuel: int,
        *ins: Value,
        count: int = 100,
        seed: int | None = None,
    ) -> list[tuple[Value, ...]]:
        """Draw until *count* proper outputs were produced (markers
        dropped); gives up after ``20 * count`` attempts."""
        rng = random.Random(seed)
        ins = tuple(ins)
        out: list[tuple[Value, ...]] = []
        attempts = 0
        while len(out) < count and attempts < 20 * count:
            attempts += 1
            x = run_gen(
                self.ctx, self._plan, fuel, fuel, ins, rng, self.retries
            )
            if is_value(x):
                out.append(x)
        return out


class HandwrittenGenerator:
    """Public wrapper around a registered handwritten generator.

    ``derive_generator`` hands this back when resolution finds a
    user-supplied ``GenSizedSuchThat`` instance: all calls delegate to
    the live ``instance.fn`` while presenting the
    :class:`DerivedGenerator` public surface.
    """

    def __init__(self, ctx: Context, instance) -> None:
        self.ctx = ctx
        self.instance = instance
        self.rel = instance.rel
        self.mode = instance.mode
        # Registry key (interp backend): re-read per call so that
        # register(..., replace=True) takes effect on live wrappers.
        self._key = (instance.kind, instance.rel, str(instance.mode))

    def _fn(self):
        live = self.ctx.instances.get(self._key)
        return (live or self.instance).fn

    def __call__(
        self, fuel: int, *ins: Value, rng: random.Random | None = None
    ) -> Any:
        return self._fn()(fuel, tuple(ins), rng or random.Random())

    def gen_st(
        self, fuel: int, ins: tuple[Value, ...], rng: random.Random
    ) -> Any:
        return self._fn()(fuel, tuple(ins), rng)

    def samples(
        self,
        fuel: int,
        *ins: Value,
        count: int = 100,
        seed: int | None = None,
    ) -> list[tuple[Value, ...]]:
        rng = random.Random(seed)
        fn = self._fn()
        out: list[tuple[Value, ...]] = []
        attempts = 0
        while len(out) < count and attempts < 20 * count:
            attempts += 1
            x = fn(fuel, tuple(ins), rng)
            if is_value(x):
                out.append(x)
        return out

    def __repr__(self) -> str:
        return f"HandwrittenGenerator({self.rel!r}, {self.mode})"


def make_generator(ctx: Context, schedule: Schedule):
    """Build the internal-convention callable for the registry."""
    gen = DerivedGenerator(ctx, schedule)
    return gen.gen_st
