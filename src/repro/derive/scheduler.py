"""The generalized derivation algorithm (Section 4).

``build_schedule`` compiles an inductive relation and a mode into a
:class:`~repro.derive.schedule.Schedule`.  It subsumes Algorithm 1
(checker mode, no existentials) and extends it with the paper's full
constraint-processing machinery:

* a per-rule variable-knowledge map (Algorithm 2) seeded from the
  conclusion patterns at the input positions;
* per-premise *compatibility* analysis deciding, for each constraint,
  among: a recursive call, an external checker call, an external or
  recursive producer call (binding the unknowns), or unconstrained
  instantiation followed by a check;
* handling of partially instantiated arguments by producing a fresh
  value and matching it against the pattern (the TApp treatment of
  Figure 2);
* deferral of equality premises until one side becomes computable, so
  the equalities inserted by preprocessing work in every mode.

The emitted schedule is kind-agnostic and is the *source of truth*:
``repro.validation`` certificates and the ``repro.analysis`` linter
walk it directly.  For execution it is lowered once more —
:func:`repro.derive.plan.lower_schedule` turns it into the slot-based
Plan IR that the three interpreters (via
:mod:`repro.derive.exec_core`) and the code generator all consume:

    relation + mode --build_schedule--> Schedule --lower_schedule-->
    Plan --{interp checker/enum/gen, codegen}--> computation
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.context import Context
from ..core.errors import (
    DerivationError,
    OutOfScopeError,
    UnsatisfiableModeError,
)
from ..core.names import NameSupply
from ..core.relations import EqPremise, Premise, Relation, RelPremise, Rule
from ..core.terms import Ctor, Fun, Term, Var, free_vars
from ..core.types import Ty, TypeExpr, TyVar, is_ground
from .modes import Mode
from .preprocess import preprocess_relation
from .readiness import RuleDataflow
from .schedule import (
    Handler,
    SAssign,
    SCheckCall,
    SEqCheck,
    SInstantiate,
    SMatch,
    SProduce,
    SRecCheck,
    Schedule,
    Step,
)


@dataclass(frozen=True)
class DerivePolicy:
    """Tunable scheduler decisions (defaults follow the paper).

    ``prefer_producer``: when a premise has unknowns, call a
    constrained producer for it (Section 4's stated preference).  When
    False, instantiate the unknowns with *unconstrained* producers and
    then check the premise — the naive strategy the paper's Section
    3.1 dismisses as "too inefficient", kept for the ablation bench.

    ``reorder_premises``: the paper processes premises in declaration
    order and flags the resulting performance sensitivity as future
    work (Section 8).  When True (our extension, the default), the
    scheduler searches premise permutations for one that minimizes
    *produce-and-filter* work — e.g. for ``Sorted``'s
    ``le x y -> Sorted (y :: l) -> Sorted (x :: y :: l)`` at mode
    ``o``, producing the tail first turns a factorial filter cascade
    into a linear scan.  Order never affects meaning, only cost.
    """

    prefer_producer: bool = True
    reorder_premises: bool = True


DEFAULT_POLICY = DerivePolicy()
PAPER_POLICY = DerivePolicy(reorder_premises=False)


def check_in_scope(ctx: Context, rel: Relation) -> None:
    """Reject relations outside the algorithm's target class."""
    if rel.params or not rel.is_monomorphic():
        raise OutOfScopeError(
            f"{rel.name!r} is polymorphic; instantiate it to ground types "
            "before deriving (Relation.instantiate)"
        )
    for t in rel.arg_types:
        if isinstance(t, TyVar) or t.name not in ctx.datatypes:
            raise OutOfScopeError(
                f"{rel.name!r}: argument type {t} is not a first-order "
                "datatype"
            )
    for other in rel.mentioned_relations():
        if other != rel.name and other not in ctx.relations:
            raise OutOfScopeError(
                f"{rel.name!r} mentions undeclared relation {other!r}"
            )


class _HandlerBuilder(RuleDataflow):
    """Step emission on top of the shared readiness dataflow
    (:class:`~repro.derive.readiness.RuleDataflow`, also consumed by
    ``repro.analysis`` — keep the dataflow itself there)."""

    def __init__(
        self,
        ctx: Context,
        rel: Relation,
        rule: Rule,
        mode: Mode,
        policy: DerivePolicy,
        group: frozenset[str] = frozenset(),
    ) -> None:
        super().__init__(rel, rule, mode)
        self.ctx = ctx
        self.policy = policy
        # Mutual-recursion extension: relations sharing the fixpoint.
        self.group = group | {rel.name}
        self.supply = NameSupply(rule.variables())
        self.steps: list[Step] = []
        self.var_types: dict[str, TypeExpr] = dict(rule.var_types)

    # -- helpers -----------------------------------------------------------------

    def _type_of_var(self, name: str) -> TypeExpr:
        ty = self.var_types.get(name)
        if ty is None:
            raise DerivationError(
                f"{self.rel.name}.{self.rule.name}: no type for variable "
                f"{name!r} (type inference incomplete?)"
            )
        return ty

    def _instantiate(self, name: str, reason: "tuple | None" = None) -> None:
        """Emit an unconstrained-producer binding for *name*.

        ``reason`` is ``(kind, premise)`` describing *why* the variable
        had to be brute-forced — ignored here, but recorded by the
        static analyzer's probe subclass (``repro.analysis``), which is
        why every call site supplies it.
        """
        self.steps.append(SInstantiate(name, self._type_of_var(name)))
        self.vars.mark_known(name)

    def _bind_by_match(self, scrutinee: Term, pattern: Term) -> None:
        """Emit the step binding *pattern*'s unknowns from the known
        value of *scrutinee*."""
        unknowns = self.vars.unknown_in(pattern)
        if isinstance(pattern, Var) and unknowns:
            # Bare unknown variable: plain assignment.
            self.steps.append(SAssign(pattern.name, scrutinee))
            self.vars.mark_known(pattern.name)
            return
        self.steps.append(SMatch(scrutinee, pattern, frozenset(unknowns)))
        for name in unknowns:
            self.vars.mark_known(name)

    # -- premise processing --------------------------------------------------------

    def process_eq(self, premise: EqPremise) -> None:
        lhs_known = self.vars.term_known(premise.lhs)
        rhs_known = self.vars.term_known(premise.rhs)
        if lhs_known and rhs_known:
            self.steps.append(SEqCheck(premise.lhs, premise.rhs, premise.negated))
            return
        assert not premise.negated
        if lhs_known:
            known, pattern = premise.lhs, premise.rhs
        else:
            known, pattern = premise.rhs, premise.lhs
        for blocked in self.funcall_blocked_vars(pattern):
            self._instantiate(blocked, ("funcall", premise))
        if self.vars.term_known(pattern):
            self.steps.append(SEqCheck(known, pattern, negated=False))
            return
        self._bind_by_match(known, pattern)

    def process_rel(self, premise: RelPremise) -> None:
        target_arity = self._target_arity(premise.rel)
        if len(premise.args) != target_arity:
            raise DerivationError(
                f"{self.rel.name}.{self.rule.name}: premise {premise} has "
                f"wrong arity"
            )

        if premise.negated:
            # Negated premises must be fully instantiated; unknowns are
            # filled by unconstrained producers (then completeness for
            # the negation needs decidability — Section 5.2.2).
            for arg in premise.args:
                for name in self.vars.unknown_in(arg):
                    self._instantiate(name, ("negated", premise))
            self.steps.append(SCheckCall(premise.rel, premise.args, negated=True))
            return

        if premise.rel == self.rel.name and not self.mode.is_checker:
            # A self-premise in a producer derivation recurses at the
            # mode being derived, *even when fully instantiated*: the
            # produced values are filtered against the known arguments
            # (Figure 2's TAdd checks ``t1 = N`` on the recursive
            # enumeration).  Calling the relation's checker instead
            # would make the producer and the checker mutually
            # dependent — the cyclic-instance case Coq's typeclasses
            # (and our registry) reject.
            if self.policy.prefer_producer:
                self._emit_produce(premise, self.mode, recursive=True)
                return

        if all(self.vars.term_known(arg) for arg in premise.args):
            self._emit_check(premise)
            return

        if not self.policy.prefer_producer:
            # Ablation strategy: arbitrary instantiation + check.
            for arg in premise.args:
                for name in self.vars.unknown_in(arg):
                    self._instantiate(name, ("unconstrained", premise))
            self._emit_check(premise)
            return

        # Producer call.  First instantiate variables that sit under
        # function calls (compatibility returns ⊥ for those).
        for arg in premise.args:
            for blocked in self.funcall_blocked_vars(arg):
                self._instantiate(blocked, ("funcall", premise))

        out_positions = self.premise_out_positions(premise)
        if not out_positions:
            # Instantiation made everything known after all.
            self._emit_check(premise)
            return
        needed_mode = Mode(target_arity, frozenset(out_positions))
        self._emit_produce(premise, needed_mode, recursive=False)

    def _emit_produce(
        self, premise: RelPremise, mode: Mode, recursive: bool
    ) -> None:
        """Produce the arguments of *premise* at *mode*'s output
        positions, instantiating input-position unknowns first and
        matching produced values against the argument terms."""
        for i in mode.ins:
            for name in self.vars.unknown_in(premise.args[i]):
                self._instantiate(
                    name,
                    ("recursive-input" if recursive else "producer-input", premise),
                )
        in_args = tuple(premise.args[i] for i in mode.ins)
        binds: list[str] = []
        post_matches: list[tuple[str, Term]] = []
        for i in mode.out_list:
            arg = premise.args[i]
            if isinstance(arg, Var) and not self.vars.is_known(arg.name):
                # Bind the output directly to the rule variable.
                binds.append(arg.name)
                continue
            fresh = self.supply.fresh(f"{premise.rel}_out{i}")
            binds.append(fresh)
            post_matches.append((fresh, arg))
        self.steps.append(
            SProduce(premise.rel, mode, in_args, tuple(binds), recursive)
        )
        for name in binds:
            self.vars.mark_known(name)
        for fresh, arg in post_matches:
            self._bind_by_match(Var(fresh), arg)

    def _target_arity(self, rel_name: str) -> int:
        if rel_name == self.rel.name:
            return self.rel.arity
        return self.ctx.relations.get(rel_name).arity

    def _emit_check(self, premise: RelPremise) -> None:
        if premise.rel in self.group and self.mode.is_checker:
            # Within a group, the target relation is always explicit so
            # nested dispatch lands on the right sibling's handlers.
            target = premise.rel if len(self.group) > 1 else None
            self.steps.append(SRecCheck(premise.args, target))
        else:
            self.steps.append(SCheckCall(premise.rel, premise.args, False))

    # -- premise ordering (the §8 future-work extension) -------------------------------

    def _order_premises(self) -> list[Premise]:
        """Pick a processing order minimizing produce-and-filter work.

        Cost model per premise, given the set of already-known
        variables (simulated along the candidate order):

        * equality / negated / fully-known premises: free;
        * self-premises in a producer mode pay 1 per known variable
          occurring in an output-position argument (each becomes a
          filter over the recursive enumeration) and 3 per unknown
          needing unconstrained instantiation;
        * external premises adapt their mode to what is known, so they
          only pay for funcall-blocked instantiations.

        All orders are semantically equivalent (Section 8: "switching
        premises around could instantiate variables in a different
        order, resulting in potentially different performance").
        """
        premises = list(self.rule.premises)
        if not self.policy.reorder_premises or len(premises) <= 1:
            return premises
        if len(premises) > 7 or self.mode.is_checker:
            # Checkers never produce-and-filter on self premises
            # (existentials route through external producers), and huge
            # rules are not worth a permutation search.
            return premises

        import itertools

        initial = self.vars.known_set()

        def funcall_blocked(arg: Term, known: set[str]) -> int:
            count = 0

            def walk(node: Term, under: bool) -> None:
                nonlocal count
                if isinstance(node, Var):
                    if under and node.name not in known:
                        count += 1
                    return
                inside = under or isinstance(node, Fun)
                for a in node.args:
                    walk(a, inside)

            walk(arg, False)
            return count

        def premise_cost(premise: Premise, known: set[str]) -> int:
            if isinstance(premise, EqPremise) or premise.negated:
                return 0
            unknown_args = [
                i
                for i, a in enumerate(premise.args)
                if any(n not in known for n in free_vars(a))
            ]
            # A fully-known external premise is a checker call: free.
            # A fully-known *self* premise still recurses at the mode
            # being derived and filters the results (process_rel), so
            # it falls through to the recursion accounting below.
            if not unknown_args and premise.rel != self.rel.name:
                return 0
            cost = sum(
                3 * funcall_blocked(a, known) for a in premise.args
            )
            if premise.rel == self.rel.name:
                # Own-mode recursion: output-position args with known
                # material filter the whole recursive enumeration.
                for i in self.mode.out_list:
                    arg = premise.args[i]
                    cost += sum(1 for n in free_vars(arg) if n in known)
                for i in self.mode.ins:
                    arg = premise.args[i]
                    cost += 3 * len(
                        {n for n in free_vars(arg) if n not in known}
                    )
            return cost

        def simulate(order: tuple[Premise, ...]) -> int:
            known = set(initial)
            total = 0
            for premise in order:
                total += premise_cost(premise, known)
                if isinstance(premise, EqPremise):
                    terms = (premise.lhs, premise.rhs)
                else:
                    terms = premise.args
                for t in terms:
                    known.update(free_vars(t))
            return total

        baseline = simulate(tuple(premises))
        if baseline == 0:
            return premises
        best = tuple(premises)
        best_cost = baseline
        for order in itertools.permutations(premises):
            cost = simulate(order)
            if cost < best_cost:
                best = order
                best_cost = cost
        return list(best)

    # -- top level -------------------------------------------------------------------

    def build(self) -> Handler:
        pending: list[Premise] = []
        for premise in self._order_premises():
            if isinstance(premise, EqPremise) and not self.premise_ready(premise):
                pending.append(premise)
                continue
            if isinstance(premise, EqPremise):
                self.process_eq(premise)
            else:
                self.process_rel(premise)
            pending = self._drain(pending)
        # Whatever is still pending: force it by instantiating one side.
        while pending:
            premise = pending.pop(0)
            if not self.premise_ready(premise):
                for t in (premise.lhs, premise.rhs):
                    for name in self.vars.unknown_in(t):
                        self._instantiate(name, ("forced-eq", premise))
            self.process_eq(premise)  # type: ignore[arg-type]
            pending = self._drain(pending)

        out_terms = tuple(
            self.rule.conclusion[i] for i in self.mode.out_list
        )
        for t in out_terms:
            for name in self.vars.unknown_in(t):
                # An output variable no premise constrains: arbitrary.
                self._instantiate(name, ("output", None))

        in_patterns = tuple(
            self.rule.conclusion[i] for i in self.mode.ins
        )
        recursive = any(
            self.rule.is_recursive_in(member) for member in self.group
        )
        return Handler(
            rule=self.rule.name,
            in_patterns=in_patterns,
            steps=tuple(self.steps),
            out_terms=out_terms,
            recursive=recursive,
        )

    def _drain(self, pending: list[Premise]) -> list[Premise]:
        """Retry deferred equality premises after new bindings."""
        progress = True
        while progress:
            progress = False
            for premise in list(pending):
                if self.premise_ready(premise):
                    pending.remove(premise)
                    self.process_eq(premise)  # type: ignore[arg-type]
                    progress = True
        return pending


def build_schedule(
    ctx: Context,
    rel_name: str,
    mode: Mode,
    policy: DerivePolicy = DEFAULT_POLICY,
    group: frozenset[str] = frozenset(),
) -> Schedule:
    """Derive the schedule for ``(rel_name, mode)``.

    Results are cached on the context (keyed by relation, mode, policy
    and group), since instance resolution re-requests schedules
    freely.  ``group`` lists mutually inductive siblings sharing the
    fixpoint (see ``repro.derive.mutual``).
    """
    cache = ctx.artifacts.setdefault("schedules", {})
    key = (rel_name, mode, policy, group)
    if key in cache:
        return cache[key]
    rel = ctx.relations.get(rel_name)
    if mode.arity != rel.arity:
        raise DerivationError(
            f"mode {mode} has arity {mode.arity}, relation {rel_name!r} "
            f"has arity {rel.arity}"
        )
    check_in_scope(ctx, rel)
    normalized = preprocess_relation(rel, ctx)
    handlers = tuple(
        _HandlerBuilder(ctx, normalized, rule, mode, policy, group).build()
        for rule in normalized.rules
    )
    out_types = tuple(rel.arg_types[i] for i in mode.out_list)
    schedule = Schedule(rel_name, mode, handlers, out_types)
    cache[key] = schedule
    return schedule


def required_instances(schedule: Schedule) -> list[tuple[str, str, Mode | None]]:
    """External instances a schedule calls at runtime, as
    ``(kind, rel, mode)`` triples with kind in {'checker', 'producer'}.

    Used for eager dependency-closure checks (cyclic dependencies are
    rejected, mirroring the paper's §8 typeclass limitation) and by
    the validation layer to certify dependencies first.
    """
    needs: list[tuple[str, str, Mode | None]] = []
    for handler in schedule.handlers:
        for step in handler.steps:
            if isinstance(step, SCheckCall):
                entry = ("checker", step.rel, None)
                if entry not in needs:
                    needs.append(entry)
            elif isinstance(step, SProduce) and not step.recursive:
                entry = ("producer", step.rel, step.mode)
                if entry not in needs:
                    needs.append(entry)
    return needs
