"""Typeclass-style instance registry.

QuickChick resolves checkers (``DecOpt``) and constrained producers
(``EnumSizedSuchThat`` / ``GenSizedSuchThat``) through Coq's typeclass
mechanism; derived code calls the class methods (``check``, ``enumST``,
``genST``) and instance resolution supplies either a handwritten or a
derived implementation.  This module reproduces that: a per-context
table keyed by ``(kind, relation, mode)``, with lazy auto-derivation on
lookup misses.

Internal calling conventions (fuel is always explicit):

* checker:   ``fn(fuel, args: tuple[Value, ...]) -> OptionBool``
* enum:      ``fn(fuel, ins: tuple[Value, ...]) -> iterator`` over
  output tuples and ``OUT_OF_FUEL`` markers
* gen:       ``fn(fuel, ins: tuple[Value, ...], rng) -> tuple | FAIL |
  OUT_OF_FUEL``

Cyclic instance dependencies are rejected at resolution time —
mirroring the paper's Section 8 limitation ("Coq's typeclasses cannot
be mutually recursive, neither can our derived checkers/producers").
Mutual relations are supported through the separate group-derivation
extension (``repro.derive.mutual``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..core.context import Context
from ..core.errors import DerivationError, InstanceNotFoundError
from .memo import invalidate_memo, wrap_instance
from .modes import Mode

CHECKER = "checker"
ENUM = "enum"
GEN = "gen"


@dataclass
class Instance:
    """A registered computation plus its provenance."""

    kind: str
    rel: str
    mode: Mode
    fn: Callable[..., Any]
    source: str  # 'handwritten' | 'derived' | 'derived-core' | 'compiled'
    schedule: Any = None  # Schedule for derived instances


def _key(kind: str, rel: str, mode: Mode, backend: str = "interp") -> tuple:
    if backend == "interp":
        return (kind, rel, str(mode))
    return (kind, rel, str(mode), backend)


def register(ctx: Context, instance: Instance, replace: bool = False) -> Instance:
    key = _key(instance.kind, instance.rel, instance.mode)
    with ctx._derive_lock:
        if key in ctx.instances and not replace:
            raise DerivationError(f"instance already registered for {key}")
        if replace:
            # Purge *every* backend's entry for this (kind, rel, mode) —
            # a previously compiled instance would otherwise keep serving
            # the replaced implementation — and drop memoized answers,
            # which may depend on the old instance through premise calls.
            stale = [k for k in ctx.instances if k[:3] == key]
            for k in stale:
                del ctx.instances[k]
            invalidate_memo(ctx, instance.rel)
        ctx.instances[key] = instance
        return wrap_instance(ctx, instance)


def register_checker(
    ctx: Context,
    rel: str,
    fn: Callable[..., Any],
    source: str = "handwritten",
    replace: bool = False,
) -> Instance:
    arity = ctx.relations.get(rel).arity
    return register(
        ctx, Instance(CHECKER, rel, Mode.checker(arity), fn, source), replace
    )


def register_producer(
    ctx: Context,
    kind: str,
    rel: str,
    mode: Mode,
    fn: Callable[..., Any],
    source: str = "handwritten",
    replace: bool = False,
) -> Instance:
    if kind not in (ENUM, GEN):
        raise DerivationError(f"bad producer kind {kind!r}")
    return register(ctx, Instance(kind, rel, mode, fn, source), replace)


def lookup(ctx: Context, kind: str, rel: str, mode: Mode) -> Instance | None:
    return ctx.instances.get(_key(kind, rel, mode))


def resolve(
    ctx: Context,
    kind: str,
    rel: str,
    mode: Mode,
    auto_derive: bool = True,
    backend: str = "interp",
) -> Instance:
    """Look up an instance; derive (and register) it on a miss.

    Resolution is *eager in its dependencies*: after deriving an
    artifact, every instance its schedule calls is resolved too, with a
    stack to detect cyclic dependencies.  ``backend`` selects the
    schedule interpreter (``interp``) or the Python code generator
    (``compiled``); the two backends are registered independently.

    Concurrency: the cycle-detection stack lives in the current
    *session*'s state (``ctx.caches``), so two sessions resolving on
    one shared context never corrupt each other's cycle detection.
    First-use derivation itself is serialized by ``ctx._derive_lock``
    (re-entrant, so the recursive dependency resolutions nest); the
    already-registered fast path above the lock stays lock-free.
    """
    stats = ctx.caches.get("derive_stats")
    if stats is not None:
        stats.external_resolutions += 1
    bud = ctx.caches.get("derive_budget")
    if bud is not None:
        # Diagnostic only — resolution is never *charged*: the two
        # backends resolve dependencies in different orders, and a
        # charge here would desynchronize their op streams.
        bud.note_resolution()
    stack: list[tuple] = ctx.caches.setdefault("resolve_stack", [])
    key = _key(kind, rel, mode, backend)
    if key in stack:
        # The artifact may already be registered (registration happens
        # before its dependencies are resolved), but a self-reference
        # through the dependency chain is still a cycle: at runtime the
        # instances would call each other with a constant top_size and
        # never terminate.
        chain = " -> ".join(str(k) for k in stack + [key])
        raise DerivationError(
            f"cyclic instance dependency ({chain}); mutually recursive "
            "relations need repro.derive.mutual.derive_mutual"
        )
    found = ctx.instances.get(key)
    if found is not None:
        return wrap_instance(ctx, found)
    if not auto_derive:
        raise InstanceNotFoundError(key)

    with ctx._derive_lock:
        # Double-checked: another thread may have derived this instance
        # while we waited on the lock.
        found = ctx.instances.get(key)
        if found is not None:
            return wrap_instance(ctx, found)
        stack.append(key)
        try:
            instance = _derive_instance(ctx, kind, rel, mode, backend)
            ctx.instances[key] = instance
            if backend == "interp":
                _resolve_dependencies(ctx, instance)
            # The compiled backend resolves its dependencies during code
            # generation (it needs the callables), under the same stack.
        finally:
            stack.pop()
    return wrap_instance(ctx, instance)


def _derive_instance(
    ctx: Context, kind: str, rel: str, mode: Mode, backend: str = "interp"
) -> Instance:
    from .scheduler import build_schedule

    schedule = build_schedule(ctx, rel, mode)
    if backend == "compiled":
        from . import codegen

        if kind == CHECKER:
            fn = codegen.compile_checker(ctx, schedule)
        elif kind == ENUM:
            fn = codegen.compile_enumerator(ctx, schedule)
        elif kind == GEN:
            fn = codegen.compile_generator(ctx, schedule)
        else:  # pragma: no cover - guarded by register_producer
            raise DerivationError(f"bad instance kind {kind!r}")
        return Instance(kind, rel, mode, fn, "compiled", schedule)
    if kind == CHECKER:
        from .interp_checker import make_checker

        fn = make_checker(ctx, schedule)
    elif kind == ENUM:
        from .interp_enum import make_enumerator

        fn = make_enumerator(ctx, schedule)
    elif kind == GEN:
        from .interp_gen import make_generator

        fn = make_generator(ctx, schedule)
    else:  # pragma: no cover - guarded by register_producer
        raise DerivationError(f"bad instance kind {kind!r}")
    return Instance(kind, rel, mode, fn, "derived", schedule)


def resolve_compiled(ctx: Context, kind: str, rel: str, mode: Mode):
    """The callable for ``(kind, rel, mode)`` under the compiled
    backend — except that a registered *handwritten* instance always
    wins (user-supplied code is already native Python)."""
    existing = lookup(ctx, kind, rel, mode)
    if existing is not None and existing.source == "handwritten":
        return wrap_instance(ctx, existing).fn
    return resolve(ctx, kind, rel, mode, backend="compiled").fn


def resolve_compiled_checker(ctx: Context, rel: str):
    arity = ctx.relations.get(rel).arity
    return resolve_compiled(ctx, CHECKER, rel, Mode.checker(arity))


def _resolve_dependencies(ctx: Context, instance: Instance) -> None:
    if instance.schedule is None:
        return
    from .scheduler import required_instances

    # A checker's producer calls use enumerators (deterministic,
    # complete); enum/gen schedules use their own kind.
    producer_kind = instance.kind if instance.kind != CHECKER else ENUM
    for need_kind, need_rel, need_mode in required_instances(instance.schedule):
        if need_kind == "checker":
            arity = ctx.relations.get(need_rel).arity
            resolve(ctx, CHECKER, need_rel, Mode.checker(arity))
        else:
            assert need_mode is not None
            resolve(ctx, producer_kind, need_rel, need_mode)


def resolve_checker(ctx: Context, rel: str, auto_derive: bool = True) -> Instance:
    arity = ctx.relations.get(rel).arity
    return resolve(ctx, CHECKER, rel, Mode.checker(arity), auto_derive)
