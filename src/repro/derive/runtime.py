"""Runtime support for executing lowered plans.

The historical dict-environment helpers (``eval_term`` /
``match_inputs`` / ``match_known``) lived here when the interpreters
walked the Schedule IR step by step.  Lowering
(:mod:`repro.derive.plan`) now resolves variables to integer slots and
flattens pattern matches into ops, so the only per-call work left is
evaluating expression trees against a flat slot list — this module.

Expressions are the tagged tuples of :mod:`repro.derive.plan`:
``(X_SLOT, i)`` reads a slot, ``(X_CONST, v)`` is an interned ground
value, ``(X_CTOR, name, args)`` builds a :class:`Value`, and
``(X_FUN, impl, args, name)`` calls a declared function's raw ``impl``
(arity was checked at declaration time; lowering resolved the
implementation, so evaluation never touches the context).
"""

from __future__ import annotations

from ..core.values import Value
from .plan import X_CONST, X_CTOR, X_SLOT


def eval_expr(e: tuple, env: list) -> Value:
    """Evaluate a lowered expression against the slot environment."""
    tag = e[0]
    if tag == X_SLOT:
        return env[e[1]]
    if tag == X_CONST:
        return e[1]
    if tag == X_CTOR:
        return Value(e[1], tuple(eval_expr(a, env) for a in e[2]))
    return e[1](*[eval_expr(a, env) for a in e[2]])


def eval_exprs(es: tuple, env: list) -> tuple:
    """Evaluate a tuple of lowered expressions (argument lists)."""
    return tuple(eval_expr(e, env) for e in es)
