"""Checker backend: the ``option bool`` instantiation of a derived
program (the paper's Figure 1).

This module is the *public surface* only — :class:`DerivedChecker`
lowers its schedule to a :class:`~repro.derive.plan.Plan` once and
delegates every call to the shared executor
(:func:`repro.derive.exec_core.run_checker`); the step semantics live
there, shared with the enumerator/generator backends and mirrored by
the compiled backend, so the four cannot drift.

Semantics (unchanged from the paper): the top level is a fixpoint over
``size`` with a separate ``top_size`` threaded to external calls; at
``size = 0`` only base-constructor handlers run, plus a ``None``
option when recursive handlers were skipped; handlers combine with
backtracking, premise chains with ``.&&``, existential premises with
``bindEC`` over a (derived) enumerator.
"""

from __future__ import annotations

from ..core.context import Context
from ..core.values import Value
from ..producers.option_bool import OptionBool
from .exec_core import run_checker
from .memo import checker_memo_call, decide_fuel_doubling
from .plan import Plan, lower_schedule
from .schedule import Schedule


class DerivedChecker:
    """A derived semi-decision procedure for ``P e1 .. en``.

    Calling convention: ``checker(fuel, *args) -> OptionBool`` — the
    paper's ``fun size in1 .. => rec size size in1 ..`` wrapper.
    """

    def __init__(
        self,
        ctx: Context,
        schedule: Schedule,
        group: "dict[str, Schedule] | None" = None,
    ) -> None:
        if not schedule.mode.is_checker:
            raise ValueError("DerivedChecker needs a checker-mode schedule")
        self.ctx = ctx
        self.schedule = schedule
        # Mutual-recursion extension: all schedules sharing this
        # fixpoint, keyed by relation name (always includes our own).
        self.group: dict[str, Schedule] = {schedule.rel: schedule}
        if group:
            self.group.update(group)
        self._plans: dict[str, Plan] = {
            rel: lower_schedule(ctx, sched) for rel, sched in self.group.items()
        }
        self._plan = self._plans[schedule.rel]

    @property
    def plan(self) -> Plan:
        """The lowered program this checker executes."""
        return self._plan

    def __call__(self, fuel: int, *args: Value) -> OptionBool:
        return self.check(fuel, tuple(args))

    def check(self, fuel: int, args: tuple[Value, ...]) -> OptionBool:
        """Internal calling convention (used by instance resolution).

        Top-level calls (``size == top_size``) route through the
        per-context memo table when memoization is enabled; the memo
        layer knows not to wrap this method again at the instance
        registry.
        """
        if self.ctx.caches.get("memo_enabled"):
            return checker_memo_call(
                self.ctx,
                self.schedule.rel,
                args,
                fuel,
                lambda: run_checker(
                    self.ctx, self._plans, self._plan, fuel, fuel, args
                ),
            )
        return run_checker(self.ctx, self._plans, self._plan, fuel, fuel, args)

    def check_batch(self, fuel: int, argses) -> list:
        """Check a vector of argument tuples at one fuel.

        Interface parity with the compiled backend's ``__batch__``
        entry point; each element is a full top-level :meth:`check`
        call, so memoization and instrumentation see the same events
        as a caller-side loop.
        """
        return [self.check(fuel, args) for args in argses]

    def decide(
        self, args: tuple[Value, ...], max_fuel: int = 64, start_fuel: int = 2
    ) -> OptionBool:
        """Run with doubling fuel until a definite answer (or give up
        with ``None`` at *max_fuel*).

        With memoization enabled the loop is incremental: a cached
        definite answer (at any fuel) returns immediately, and probes
        at or below the recorded ``None`` frontier short-circuit.
        """
        return decide_fuel_doubling(
            self.ctx, self.schedule.rel, self.check, args, max_fuel, start_fuel
        )

    def rec(
        self,
        size: int,
        top_size: int,
        args: tuple[Value, ...],
        rel: str | None = None,
    ) -> OptionBool:
        """One level of the derived fixpoint (*rel* selects a group
        sibling in mutual-recursion groups)."""
        plan = self._plans[rel] if rel is not None else self._plan
        return run_checker(self.ctx, self._plans, plan, size, top_size, args)


class HandwrittenChecker:
    """Public wrapper around a registered handwritten checker instance.

    ``derive_checker`` hands this back when the registry resolves to a
    user-supplied ``DecOpt`` instance: calls delegate to the *live*
    ``instance.fn`` (so replacements via ``register(...,
    replace=True)`` and memo wrapping both take effect), while the
    object still offers the :class:`DerivedChecker` public surface
    (``__call__``, ``check``, ``decide``).
    """

    def __init__(self, ctx: Context, instance) -> None:
        self.ctx = ctx
        self.instance = instance
        self.rel = instance.rel
        # Registry key (interp backend): re-read per call so that
        # register(..., replace=True) takes effect on live wrappers.
        self._key = (instance.kind, instance.rel, str(instance.mode))

    def _fn(self):
        live = self.ctx.instances.get(self._key)
        return (live or self.instance).fn

    def __call__(self, fuel: int, *args: Value) -> OptionBool:
        return self._fn()(fuel, tuple(args))

    def check(self, fuel: int, args: tuple[Value, ...]) -> OptionBool:
        return self._fn()(fuel, tuple(args))

    def decide(
        self, args: tuple[Value, ...], max_fuel: int = 64, start_fuel: int = 2
    ) -> OptionBool:
        return decide_fuel_doubling(
            self.ctx, self.rel, self.check, args, max_fuel, start_fuel
        )

    def __repr__(self) -> str:
        return f"HandwrittenChecker({self.rel!r})"


def make_checker(ctx: Context, schedule: Schedule):
    """Build the internal-convention callable for the registry."""
    checker = DerivedChecker(ctx, schedule)
    return checker.check
