"""User-facing derivation entry points (the QuickChick commands).

Mirrors the paper's vernacular::

    Derive DecOpt for (Sorted l).                    -- checker
    Derive EnumSizedSuchThat for (fun t => typing G e t).
    Derive GenSizedSuchThat for (fun e => typing G e t).

Here::

    checker = derive_checker(ctx, 'Sorted')
    enum    = derive_enumerator(ctx, 'typing', 'iio')
    gen     = derive_generator(ctx, 'typing', 'ioi')

Modes are given as strings over {'i', 'o'} (or iterables of output
positions).  Derived artifacts are registered in the context's
instance table so other derivations can call them, and the whole
dependency closure is derived eagerly (cycles are rejected).
"""

from __future__ import annotations

from typing import Iterable

from ..core.context import Context
from ..core.errors import DerivationError
from .instances import CHECKER, ENUM, GEN, resolve
from .interp_checker import DerivedChecker, HandwrittenChecker
from .interp_enum import DerivedEnumerator, HandwrittenEnumerator
from .interp_gen import DerivedGenerator, HandwrittenGenerator
from .modes import Mode


def _as_mode(ctx: Context, rel: str, mode: "str | Mode | Iterable[int]") -> Mode:
    # Arity cross-check happens here, at declaration time, with an
    # ArityError naming the relation — not later inside scheduling.
    return Mode.for_relation(ctx.relations.get(rel), mode)


def _gate(ctx: Context, rel: str, mode: Mode, kind: str, analysis: bool) -> None:
    # The static-analysis gate (repro.analysis.gate).  The disabled
    # check lives here so opting out costs one dict lookup — the
    # analyzer module is not even imported.
    if not analysis or ctx.artifacts.get("analysis_disabled"):
        return
    from ..analysis.gate import check_before_derive

    check_before_derive(ctx, rel, mode, kind)


def derive_checker(ctx: Context, rel: str, *, analysis: bool = True) -> DerivedChecker:
    """Derive (or fetch) the semi-decision procedure for *rel*.

    ``Derive DecOpt for (P x1 .. xn)``.  Runs the static linter first
    (pass ``analysis=False`` or call
    :func:`repro.analysis.disable_analysis` to skip it); error
    diagnostics raise :class:`~repro.core.errors.AnalysisError` naming
    the blocking premise/variable instead of a generic scheduling
    failure.
    """
    arity = ctx.relations.get(rel).arity
    _gate(ctx, rel, Mode.checker(arity), CHECKER, analysis)
    instance = resolve(ctx, CHECKER, rel, Mode.checker(arity))
    owner = getattr(instance.fn, "__self__", None)
    if isinstance(owner, DerivedChecker):
        return owner
    # Handwritten instance: wrap it in the public interface.  The
    # wrapper *delegates to the registered fn* — re-deriving a checker
    # here would silently discard the handwritten implementation.
    return HandwrittenChecker(ctx, instance)


def derive_enumerator(
    ctx: Context,
    rel: str,
    mode: "str | Mode | Iterable[int]",
    *,
    analysis: bool = True,
) -> DerivedEnumerator:
    """Derive (or fetch) the constrained enumerator for ``(rel, mode)``.

    ``Derive EnumSizedSuchThat for (fun out.. => P ..)``.
    """
    built = _as_mode(ctx, rel, mode)
    if built.is_checker:
        raise DerivationError("an enumerator mode needs at least one output")
    _gate(ctx, rel, built, ENUM, analysis)
    instance = resolve(ctx, ENUM, rel, built)
    owner = getattr(instance.fn, "__self__", None)
    if isinstance(owner, DerivedEnumerator):
        return owner
    return HandwrittenEnumerator(ctx, instance)


def derive_generator(
    ctx: Context,
    rel: str,
    mode: "str | Mode | Iterable[int]",
    *,
    analysis: bool = True,
) -> DerivedGenerator:
    """Derive (or fetch) the constrained random generator for
    ``(rel, mode)``.

    ``Derive GenSizedSuchThat for (fun out.. => P ..)``.
    """
    built = _as_mode(ctx, rel, mode)
    if built.is_checker:
        raise DerivationError("a generator mode needs at least one output")
    _gate(ctx, rel, built, GEN, analysis)
    instance = resolve(ctx, GEN, rel, built)
    owner = getattr(instance.fn, "__self__", None)
    if isinstance(owner, DerivedGenerator):
        return owner
    return HandwrittenGenerator(ctx, instance)


_KINDS = {
    "DecOpt": ("checker", None),
    "EnumSizedSuchThat": ("enum", True),
    "GenSizedSuchThat": ("gen", True),
}


def derive(
    ctx: Context,
    kind: str,
    rel: str,
    mode: "str | None" = None,
    *,
    analysis: bool = True,
):
    """Vernacular-flavored entry point:

        derive(ctx, 'DecOpt', 'Sorted')
        derive(ctx, 'EnumSizedSuchThat', 'typing', 'iio')

    ``analysis=False`` skips the static linter gate, exactly as on the
    kind-specific entry points it forwards to.
    """
    if kind not in _KINDS:
        raise DerivationError(
            f"unknown derivation kind {kind!r}; expected one of {sorted(_KINDS)}"
        )
    if kind == "DecOpt":
        return derive_checker(ctx, rel, analysis=analysis)
    if mode is None:
        raise DerivationError(f"{kind} needs a mode string (e.g. 'iio')")
    if kind == "EnumSizedSuchThat":
        return derive_enumerator(ctx, rel, mode, analysis=analysis)
    return derive_generator(ctx, rel, mode, analysis=analysis)
