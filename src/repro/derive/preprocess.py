"""Preprocessing: normalize rule conclusions to linear patterns.

Section 3.1 of the paper handles two features by rewriting them into
equality premises before derivation:

* **Non-linear patterns** — a variable occurring twice in a conclusion
  (``typing Γ (Abs t1 e) (Arr t1 t2)``) is renamed at its later
  occurrences and an equality premise is added::

      TAbs : forall e t1 t2 t1', t1 = t1' ->
             typing (t1 :: Γ) e t2 -> typing Γ (Abs t1 e) (Arr t1' t2)

* **Function calls in conclusions** — a call (``square_of n (n * n)``)
  is replaced by a fresh variable constrained by equality::

      sq : forall n m, n * n = m -> square_of n m

After preprocessing, every conclusion is a *linear constructor
pattern*, so it can be compiled directly to a pattern match
(Algorithm 1).  The inserted equalities appear before the original
premises, in conclusion-argument order — mirroring the handlers shown
in the paper's Figure 1.  Variable types (including those of the fresh
variables) are (re)inferred afterwards.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.context import Context
from ..core.names import NameSupply
from ..core.relations import EqPremise, Premise, Relation, Rule
from ..core.terms import Ctor, Fun, Term, Var


def _extract_funcalls(
    t: Term, supply: NameSupply, eqs: list[EqPremise]
) -> Term:
    """Replace each *maximal* function-call subterm of *t* with a fresh
    variable, recording ``call = fresh`` equality premises."""
    if isinstance(t, Var):
        return t
    if isinstance(t, Fun):
        fresh = supply.fresh(f"{t.name}_out")
        eqs.append(EqPremise(t, Var(fresh)))
        return Var(fresh)
    return Ctor(t.name, tuple(_extract_funcalls(a, supply, eqs) for a in t.args))


def _linearize(
    t: Term, supply: NameSupply, seen: set[str], eqs: list[EqPremise]
) -> Term:
    """Rename repeated variable occurrences, recording
    ``orig = fresh`` equality premises.  The *first* occurrence keeps
    the original name."""
    if isinstance(t, Var):
        if t.name in seen:
            fresh = supply.fresh(t.name + "_nl")
            eqs.append(EqPremise(Var(t.name), Var(fresh)))
            return Var(fresh)
        seen.add(t.name)
        return t
    if isinstance(t, Fun):
        raise AssertionError("function calls must be extracted before linearizing")
    return Ctor(
        t.name, tuple(_linearize(a, supply, seen, eqs) for a in t.args)
    )


def preprocess_rule(rule: Rule) -> Rule:
    """Normalize one rule's conclusion; returns the rule unchanged if
    it is already a linear constructor pattern."""
    supply = NameSupply(rule.variables())
    fun_eqs: list[EqPremise] = []
    extracted = tuple(
        _extract_funcalls(t, supply, fun_eqs) for t in rule.conclusion
    )
    lin_eqs: list[EqPremise] = []
    seen: set[str] = set()
    linear = tuple(_linearize(t, supply, seen, lin_eqs) for t in extracted)
    if not fun_eqs and not lin_eqs:
        return rule
    new_premises: tuple[Premise, ...] = (
        tuple(lin_eqs) + tuple(fun_eqs) + rule.premises
    )
    # Fresh variables lack entries in var_types; inference fills them
    # in when the whole relation is re-checked.
    return replace(rule, premises=new_premises, conclusion=linear)


def preprocess_relation(rel: Relation, ctx: Context) -> Relation:
    """Normalize every rule of *rel* and re-infer variable types.

    The result has the same name and meaning as *rel* (each rewrite
    replaces a pattern constraint with an explicit equality premise);
    it is *not* registered in the context — the derivation pipeline
    and the reference proof search consume it directly.
    """
    new_rules = tuple(preprocess_rule(r) for r in rel.rules)
    if new_rules == rel.rules:
        return rel
    candidate = replace(rel, rules=new_rules)
    from ..core.typecheck import infer_relation_types

    return infer_relation_types(candidate, ctx)
