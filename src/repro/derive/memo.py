"""Monotonicity-aware memoization for derived checkers and enumerators.

Why this cache is sound (Section 5 of the paper): derived checkers are
*fuel-monotone*:

* a definite answer (``Some true`` / ``Some false``) computed at fuel
  ``f`` is the answer at every fuel ``f' >= f``;
* a ``None`` (out of fuel) at fuel ``f`` implies ``None`` at every
  fuel ``f' <= f``.

So per ground query ``(rel, args)`` the memo table records

* the cheapest definite answer seen and the fuel it was computed at —
  served to any query at fuel **at or above** that bound (by upward
  persistence of definite answers this is *extensionally identical* to
  re-running the checker); and
* the highest fuel at which ``None`` was observed — any query at fuel
  **at or below** that bound short-circuits to ``None`` (by downward
  persistence of ``None``).

With both bounds, :meth:`DerivedChecker.decide`'s fuel-doubling loop
becomes incremental: repeated ``decide`` calls collapse to a table
lookup (a definite answer is fuel-independent *semantic* information,
which is exactly what ``decide`` asks for), and interleaved plain
``check(fuel, ...)`` calls reuse each other's ``None`` frontier.

Keys carry **no** size/top_size split: only top-level calls (where
``size == top_size == fuel``) go through the table.  Inner ``rec``
invocations depend on ``top_size`` independently of ``size``, so
memoizing them on ``size`` alone would be unsound — they stay direct.

Enumerator calls are deterministic given ``(rel, mode, ins, fuel)``,
so their *slices* are memoized as shared :class:`LazyList`s: the
stream is computed at most once and only as far as any consumer has
demanded.  Random generators are never memoized (their whole point is
fresh randomness); they are only counted.

The layer is wired in at :func:`repro.derive.instances.resolve`, which
wraps ``Instance.fn`` in place — so the schedule interpreters, the
compiled backend's external calls, and user code that goes through the
registry all share one table per context.  ``register(...,
replace=True)`` invalidates the tables wholesale (cached results may
depend on the replaced instance transitively).

Resource budgets (:mod:`repro.resilience`) interact in three ways: a
checker result computed while the budget's taint stamp moved (a trip
or injected fault) is returned but **never cached** — both fuel bounds
above assume the answer reflects fuel alone; enumerator slices bypass
the cache entirely under an active budget (a truncated slice must not
be served as complete, and lazy sharing would desynchronize fault
replay); and the budget's ``max_cache_entries`` cap is enforced here
at insertion, oldest entry first.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from ..core.context import Context
from ..core.values import Value
from ..producers.lazylist import LazyList
from ..producers.option_bool import NONE_OB, OptionBool
from .specialize import canonicalize_args
from .stats import DeriveStats, install_stats, remove_stats, stats_of
from .trace import BUDGET_KEY

MEMO_FLAG = "memo_enabled"
CHECKER_MEMO = "memo_checker"
ENUM_MEMO = "memo_enum"

# Checker memo entries are 3-slot lists:
#   [definite_answer | None, definite_fuel, highest_none_fuel]
_DEF, _DEF_FUEL, _NONE_FUEL = 0, 1, 2


# ---------------------------------------------------------------------------
# Enable / disable / inspect.
# ---------------------------------------------------------------------------

def memoization_enabled(ctx: Context) -> bool:
    return bool(ctx.caches.get(MEMO_FLAG))


def enable_memoization(ctx: Context) -> DeriveStats:
    """Turn on memoization + call statistics for *ctx*.

    All currently registered instances are wrapped; instances resolved
    later are wrapped on the way out of the registry.  Returns the
    (fresh or existing) :class:`DeriveStats` object.
    """
    ctx.caches[MEMO_FLAG] = True
    ctx.caches.setdefault(CHECKER_MEMO, {})
    ctx.caches.setdefault(ENUM_MEMO, {})
    stats = install_stats(ctx)
    for instance in ctx.instances.values():
        wrap_instance(ctx, instance)
    return stats


def disable_memoization(ctx: Context) -> None:
    """Turn memoization off and drop the tables and stats object.

    Wrapped instance functions are restored to their raw callables, so
    the disabled mode has zero per-call overhead.
    """
    ctx.caches[MEMO_FLAG] = False
    ctx.caches.pop(CHECKER_MEMO, None)
    ctx.caches.pop(ENUM_MEMO, None)
    remove_stats(ctx)
    for instance in ctx.instances.values():
        raw = getattr(instance.fn, "__memo_raw__", None)
        if raw is not None:
            instance.fn = raw


def derive_stats(ctx: Context) -> "DeriveStats | None":
    """The context's :class:`DeriveStats`, or ``None`` when disabled."""
    return stats_of(ctx)


def clear_memo(ctx: Context) -> None:
    """Drop all cached answers (keeps memoization enabled)."""
    if CHECKER_MEMO in ctx.caches:
        ctx.caches[CHECKER_MEMO].clear()
    if ENUM_MEMO in ctx.caches:
        ctx.caches[ENUM_MEMO].clear()


def invalidate_memo(ctx: Context, rel: "str | None" = None) -> None:
    """Invalidate cached answers after an instance swap.

    Cached answers for *other* relations may depend on the swapped
    instance through premise calls, so the tables are cleared
    wholesale; *rel* is accepted for future fine-grained policies.
    """
    had_entries = bool(
        ctx.caches.get(CHECKER_MEMO) or ctx.caches.get(ENUM_MEMO)
    )
    clear_memo(ctx)
    stats = stats_of(ctx)
    if stats is not None and had_entries:
        stats.invalidations += 1


# ---------------------------------------------------------------------------
# The checker memo policy.
# ---------------------------------------------------------------------------

def checker_memo_call(
    ctx: Context,
    rel: str,
    args: tuple[Value, ...],
    fuel: int,
    compute: Callable[[], OptionBool],
) -> OptionBool:
    """Run a top-level ground checker call through the memo table.

    Falls through to *compute* (uncounted) when memoization is off.
    """
    caches = ctx.caches
    if not caches.get(MEMO_FLAG):
        return compute()
    stats = caches.get("derive_stats")
    if stats is not None:
        stats.checker_calls += 1
    table = caches.setdefault(CHECKER_MEMO, {})
    # Keys are always the canonical boxed form: a specialized caller
    # holding native ints / nested-pair lists and a boxed caller with
    # the equal Peano / cons terms must share one cache line, never
    # warm two (satellite of ISSUE 6).
    key = (rel, canonicalize_args(args))
    entry = table.get(key)
    if entry is not None:
        definite = entry[_DEF]
        if definite is not None and fuel >= entry[_DEF_FUEL]:
            if stats is not None:
                stats.checker_cache_hits += 1
            return definite
        if fuel <= entry[_NONE_FUEL]:
            if stats is not None:
                stats.checker_cache_hits += 1
            return NONE_OB
    if stats is not None:
        stats.checker_cache_misses += 1
    bud = caches.get(BUDGET_KEY)
    taint0 = bud.taint_stamp() if bud is not None else 0
    result = compute()
    if bud is not None and bud.taint_stamp() != taint0:
        # The computation was interrupted (budget trip or injected
        # fault): its answer reflects the budget, not the fuel, so
        # neither fuel bound may enter the table — a tainted ``None``
        # cached into the none-frontier would mask genuine definite
        # answers at lower fuels on later, un-budgeted calls.
        if stats is not None:
            stats.tainted_memo_skips += 1
        return result
    if entry is None:
        entry = table[key] = [None, 0, -1]
        if (
            bud is not None
            and bud.max_cache_entries is not None
            and len(table) > bud.max_cache_entries
        ):
            _evict_oldest(table, key, bud, stats)
    if result.is_none:
        if stats is not None:
            stats.fuel_exhaustions += 1
        if fuel > entry[_NONE_FUEL]:
            entry[_NONE_FUEL] = fuel
    elif entry[_DEF] is None or fuel < entry[_DEF_FUEL]:
        entry[_DEF] = result
        entry[_DEF_FUEL] = fuel
    return result


def _evict_oldest(table: dict, keep: Any, bud: Any, stats: Any) -> None:
    """Enforce the budget's cache-size cap at insertion: drop
    oldest-inserted entries (dicts preserve insertion order) until the
    cap holds, never evicting the entry just added."""
    for old in list(table):
        if len(table) <= bud.max_cache_entries:
            break
        if old == keep:
            continue
        del table[old]
        bud.evictions += 1
        if stats is not None:
            stats.cache_evictions += 1


def definite_answer(
    ctx: Context, rel: str, args: tuple[Value, ...]
) -> "OptionBool | None":
    """A cached definite answer for ``rel args`` at *any* fuel, if one
    is known.  Fuel-independent: the right query for ``decide``."""
    table = ctx.caches.get(CHECKER_MEMO)
    if not table:
        return None
    entry = table.get((rel, canonicalize_args(args)))
    return entry[_DEF] if entry is not None else None


def decide_fuel_doubling(
    ctx: Context,
    rel: str,
    check: Callable[[int, tuple[Value, ...]], OptionBool],
    args: tuple[Value, ...],
    max_fuel: int,
    start_fuel: int,
) -> OptionBool:
    """The shared ``decide`` loop: doubling fuel until a definite
    answer, short-circuited by the fuel-independent memo lookup."""
    args = tuple(args)
    if ctx.caches.get(MEMO_FLAG):
        cached = definite_answer(ctx, rel, args)
        if cached is not None:
            stats = ctx.caches.get("derive_stats")
            if stats is not None:
                stats.checker_calls += 1
                stats.checker_cache_hits += 1
            return cached
    fuel = start_fuel
    while True:
        result = check(fuel, args)
        if not result.is_none or fuel >= max_fuel:
            return result
        fuel = min(2 * fuel, max_fuel)


# ---------------------------------------------------------------------------
# Instance wrapping (the resolve() integration point).
# ---------------------------------------------------------------------------

def wrap_instance(ctx: Context, instance: Any) -> Any:
    """Wrap ``instance.fn`` in place with the memo layer (idempotent).

    * checkers: ground-call memo table — except interpreter-derived
      checkers, whose :meth:`DerivedChecker.check` already routes
      through the table itself (wrapping again would double-count);
    * enumerators: shared lazy slice per ``(rel, mode, ins, fuel)``;
    * generators: call counting only (never cached).

    No-op when memoization is disabled for *ctx*.
    """
    if not memoization_enabled(ctx):
        return instance
    fn = instance.fn
    if getattr(fn, "__memo_wrapped__", False):
        return instance
    if instance.kind == "checker":
        from .interp_checker import DerivedChecker

        if isinstance(getattr(fn, "__self__", None), DerivedChecker):
            return instance  # self-memoizing
        instance.fn = _wrap_checker_fn(ctx, instance.rel, fn)
    elif instance.kind == "enum":
        instance.fn = _wrap_enum_fn(ctx, instance.rel, str(instance.mode), fn)
    else:
        instance.fn = _wrap_gen_fn(ctx, fn)
    return instance


def _mark(wrapper: Callable[..., Any], raw: Callable[..., Any]) -> Callable[..., Any]:
    wrapper.__memo_wrapped__ = True
    wrapper.__memo_raw__ = raw
    owner = getattr(raw, "__self__", None)
    if owner is not None:
        # Preserve owner discovery (repro.derive.api unwraps through
        # __self__ to hand back the rich public object).
        wrapper.__self__ = owner
    source = getattr(raw, "__derived_source__", None)
    if source is not None:
        wrapper.__derived_source__ = source
    # Compiled-backend metadata rides along so introspection (source
    # dumps, repr reports, batch entry discovery) sees through the
    # wrapper.  The raw fixpoints (__spec_rec__/__spec_fast__) are
    # deliberately NOT copied: compiled siblings that bind them would
    # bypass this memo layer, defeating the table they should share.
    for attr in (
        "__spec_source__",
        "__spec_fast_source__",
        "__spec_reprs__",
        "__batch__",
    ):
        meta = getattr(raw, attr, None)
        if meta is not None:
            setattr(wrapper, attr, meta)
    return wrapper


def _wrap_checker_fn(ctx: Context, rel: str, raw: Callable[..., Any]):
    def memo_check(fuel: int, args: tuple[Value, ...]) -> OptionBool:
        return checker_memo_call(
            ctx, rel, args, fuel, lambda: raw(fuel, args)
        )

    return _mark(memo_check, raw)


def _wrap_enum_fn(ctx: Context, rel: str, mode: str, raw: Callable[..., Any]):
    def memo_enum(fuel: int, ins: tuple[Value, ...]) -> Iterator[Any]:
        caches = ctx.caches
        if not caches.get(MEMO_FLAG):
            return raw(fuel, ins)
        bud = caches.get(BUDGET_KEY)
        if bud is not None and bud.active:
            # Under a live budget the slice cache is bypassed both
            # ways: a slice truncated by a trip must not be served
            # later as the full enumeration, and lazy sharing would
            # shift charge indices between runs (the first consumer
            # pays, later ones don't), desynchronizing fault replay.
            return raw(fuel, ins)
        stats = caches.get("derive_stats")
        if stats is not None:
            stats.enum_calls += 1
        table = caches.setdefault(ENUM_MEMO, {})
        key = (rel, mode, canonicalize_args(ins), fuel)
        slice_ = table.get(key)
        if slice_ is None:
            if stats is not None:
                stats.enum_cache_misses += 1
            slice_ = table[key] = LazyList.from_iterable(raw(fuel, ins))
        elif stats is not None:
            stats.enum_cache_hits += 1
        return iter(slice_)

    return _mark(memo_enum, raw)


def _wrap_gen_fn(ctx: Context, raw: Callable[..., Any]):
    def counted_gen(fuel: int, ins: tuple[Value, ...], rng: Any) -> Any:
        stats = ctx.caches.get("derive_stats")
        if stats is not None:
            stats.gen_calls += 1
        return raw(fuel, ins, rng)

    return _mark(counted_gen, raw)
