"""Mutually inductive relations: group derivation (the §8 extension).

The paper's implementation cannot handle mutual induction: derived
computations resolve each other through Coq typeclasses, which cannot
be mutually recursive, so e.g.::

    Inductive even : nat -> Prop :=
    | even_0 : even 0
    | even_S : forall n, odd n -> even (S n)
    with odd : nat -> Prop :=
    | odd_S : forall n, even n -> odd (S n).

is rejected (and our registry rejects it too, with a cycle error).
The *algorithm* has no such limitation: derive the whole strongly
connected component as one fixpoint whose ``size`` is shared, with
in-group premises compiled to group-recursive calls instead of
external instance calls.  That is what :func:`derive_mutual_checkers`
does; the resulting checkers are registered as ordinary instances, so
downstream derivations (including other relations' producers) can use
them.

Each group member's schedule lowers to its own Plan; the shared
fixpoint is realized by :class:`DerivedChecker`'s *group* map
(relation name -> schedule), which the executor uses to route
group-recursive ``reccheck`` ops to the sibling's plan at the
decremented size.  Mutual groups stay on the interpreter backend:
compiled resolution rejects the instance cycle before codegen runs.
"""

from __future__ import annotations

from ..core.context import Context
from ..core.errors import DerivationError
from .instances import CHECKER, Instance, register
from .interp_checker import DerivedChecker
from .modes import Mode
from .scheduler import DEFAULT_POLICY, DerivePolicy, build_schedule


def mutual_components(ctx: Context, rel_names: list[str]) -> list[list[str]]:
    """Strongly connected components of the premise-reference graph,
    restricted to *rel_names*, in a topological order (dependencies
    first)."""
    import networkx as nx

    graph = nx.DiGraph()
    graph.add_nodes_from(rel_names)
    for name in rel_names:
        for target in ctx.relations.get(name).mentioned_relations():
            if target in rel_names and target != name:
                graph.add_edge(name, target)
    components = list(nx.strongly_connected_components(graph))
    condensed = nx.condensation(graph, components)
    order = list(nx.topological_sort(condensed))
    # Dependencies first: reverse the edge direction convention.
    return [sorted(condensed.nodes[i]["members"]) for i in reversed(order)]


def derive_mutual_checkers(
    ctx: Context,
    rel_names: list[str],
    policy: DerivePolicy = DEFAULT_POLICY,
    replace: bool = False,
) -> dict[str, DerivedChecker]:
    """Derive checkers for a set of mutually inductive relations.

    All relations in *rel_names* must belong to one recursion group
    (use :func:`mutual_components` to split a larger set first).  Every
    member's checker shares the decreasing ``size``; in-group premises
    become group-recursive calls, so no cyclic instance resolution
    occurs.  Each checker is registered in the instance table.
    """
    if not rel_names:
        raise DerivationError("derive_mutual_checkers needs at least one relation")
    group = frozenset(rel_names)
    schedules = {}
    for name in rel_names:
        arity = ctx.relations.get(name).arity
        schedules[name] = build_schedule(
            ctx, name, Mode.checker(arity), policy, group=group
        )
    checkers: dict[str, DerivedChecker] = {}
    for name in rel_names:
        checker = DerivedChecker(ctx, schedules[name], group=schedules)
        checkers[name] = checker
        arity = ctx.relations.get(name).arity
        register(
            ctx,
            Instance(
                CHECKER,
                name,
                Mode.checker(arity),
                checker.check,
                "derived-mutual",
                schedules[name],
            ),
            replace=replace,
        )
    # Resolve out-of-group dependencies the ordinary way.
    from .instances import _resolve_dependencies
    from .scheduler import required_instances

    for name in rel_names:
        instance = ctx.instances[(CHECKER, name, "i" * ctx.relations.get(name).arity)]
        needs = [
            (kind, rel, mode)
            for kind, rel, mode in required_instances(schedules[name])
            if rel not in group
        ]
        pruned = Instance(
            instance.kind, instance.rel, instance.mode, instance.fn,
            instance.source, _PrunedSchedule(schedules[name], group),
        )
        _resolve_dependencies(ctx, pruned)
    return checkers


class _PrunedSchedule:
    """A schedule view that hides in-group external references (they
    are satisfied by the shared fixpoint, not by instances)."""

    def __init__(self, schedule, group: frozenset[str]) -> None:
        self._schedule = schedule
        self._group = group
        self.handlers = tuple(
            _PrunedHandler(h, group) for h in schedule.handlers
        )
        self.mode = schedule.mode
        self.rel = schedule.rel
        self.out_types = schedule.out_types


class _PrunedHandler:
    def __init__(self, handler, group: frozenset[str]) -> None:
        from .schedule import SCheckCall, SProduce

        self.rule = handler.rule
        self.in_patterns = handler.in_patterns
        self.out_terms = handler.out_terms
        self.recursive = handler.recursive
        self.steps = tuple(
            s
            for s in handler.steps
            if not (
                isinstance(s, (SCheckCall, SProduce))
                and getattr(s, "rel", None) in group
            )
        )
