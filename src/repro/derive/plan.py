"""Plan IR: the lowered, executable form of a :class:`Schedule`.

A :class:`Schedule` is the paper-shaped program — one
:class:`~repro.derive.schedule.Handler` per rule, steps mirroring the
constructs of Figures 1 and 2 — and stays the source of truth that
``repro.validation`` certificates and ``repro.analysis`` walk.  But it
is a poor *execution* format: every interpreter step re-dispatched on
the step's class, environments were per-handler ``dict``\\ s copied at
each enumeration item, and every call tried every handler.

Lowering turns each schedule, once, into a :class:`Plan`:

* **Slot environments.**  Every rule variable (and every intermediate
  scrutinee) is resolved at lowering time to an integer index into a
  flat environment list.  Slots are single-assignment along any
  execution path (the scheduler's known-variable discipline guarantees
  def-before-use), so backtracking over enumeration items can reuse one
  environment in place — no dict, no copies.

* **Straightline ops.**  Steps and nested patterns flatten into tuples
  with integer opcodes (`OP_EVAL`, `OP_TESTCTOR`, ...), so the
  executor's hot loop is integer compares over tuples instead of
  ``isinstance`` chains over dataclasses.  External calls carry their
  registry key, precomputed, so the common case is one dict lookup.

* **Handler dispatch index.**  Handlers whose conclusion pattern at
  some input position has a constructor head can only match values
  built with that constructor.  The plan picks the most discriminating
  input position and builds ``ctor -> (candidate handlers...)`` tables
  (plus a default for values whose head constructor appears in no
  pattern), preserving the original handler order.  A call then
  attempts only the candidates; the filtered handlers are exactly
  those whose input match would have failed, so checker/enumerator
  semantics are unchanged and the enumeration order is preserved.

All four backends consume this IR: the three interpreters execute it
through :mod:`repro.derive.exec_core`, and :mod:`repro.derive.codegen`
emits Python source from it — one lowering, no drift.
"""

from __future__ import annotations

import os
from typing import Any, Iterable

from ..core.context import Context
from ..core.errors import EvaluationError
from ..core.terms import Ctor, Fun, Term, Var, term_to_value
from ..core.values import Value
from .modes import Mode
from .schedule import (
    SAssign,
    SCheckCall,
    SEqCheck,
    SInstantiate,
    SMatch,
    SProduce,
    SRecCheck,
    Schedule,
)

PLANS_KEY = "plans"

# -- expressions -------------------------------------------------------------
#
# Tagged tuples; the tag is the first element.
#   (X_SLOT, slot)                  read a slot
#   (X_CONST, value)                ground constructor term, interned Value
#   (X_CTOR, name, (exprs...))      build Value(name, args)
#   (X_FUN, impl, (exprs...), name) call a declared function's impl

X_SLOT = 0
X_CONST = 1
X_CTOR = 2
X_FUN = 3

# -- ops ---------------------------------------------------------------------
#
#   (OP_EVAL, dst, expr)                       env[dst] = eval(expr)
#   (OP_TESTCTOR, src, ctor, (dsts...))        fail unless env[src].ctor is
#                                              ctor; project args into dsts
#   (OP_TESTCONST, src, value)                 fail unless env[src] == value
#   (OP_TESTEQ, ea, eb, negated)               fail when (ea == eb) == negated
#   (OP_CHECK, key, (exprs...), negated, rel)  external checker call; key is
#                                              the interp registry key
#   (OP_RECCHECK, (exprs...), rel|None)        recursive checker call (group
#                                              sibling when rel is not None)
#   (OP_PRODUCE, enum_key, gen_key, (ins...), (dsts...), recursive, rel, mode)
#                                              producer call binding outputs
#   (OP_INSTANTIATE, dst, ty)                  unconstrained producer for ty

OP_EVAL = 0
OP_TESTCTOR = 1
OP_TESTCONST = 2
OP_TESTEQ = 3
OP_CHECK = 4
OP_RECCHECK = 5
OP_PRODUCE = 6
OP_INSTANTIATE = 7
# Functionalized producer call: same operand shape as OP_PRODUCE, but
# the premise relation is proven functional at the called mode
# (repro.analysis.determinacy), so the drivers commit to the first
# definite answer instead of looping enumerate-then-check — a failure
# of the continuation is a definite failure of the handler, because no
# other answer exists.
OP_EVALREL = 8

_OP_NAMES = (
    "eval",
    "testctor",
    "testconst",
    "testeq",
    "check",
    "reccheck",
    "produce",
    "instantiate",
    "evalrel",
)


class PlanHandler:
    """One lowered handler: straightline ops over a slot environment."""

    __slots__ = (
        "rule",
        "index",
        "recursive",
        "ops",
        "out_exprs",
        "n_ins",
        "n_slots",
        "tail",
        "cost",
        "key3",
        "key_checker",
        "key_enum",
        "key_gen",
        "head_ctors",
    )

    def __init__(
        self,
        rule: str,
        index: int,
        recursive: bool,
        ops: tuple,
        out_exprs: tuple,
        n_ins: int,
        n_slots: int,
        key3: tuple,
        head_ctors: tuple,
    ) -> None:
        self.rule = rule
        self.index = index
        self.recursive = recursive
        self.ops = ops
        self.out_exprs = out_exprs
        self.n_ins = n_ins
        self.n_slots = n_slots
        # Padding appended to the input values to size the environment.
        self.tail = (None,) * (n_slots - n_ins)
        # Budget charge per attempt of this handler (one entry plus one
        # unit per op) — a static proxy for straightline work, shared by
        # the interpreters and the compiled twins so fault schedules
        # keyed on charge indices replay identically on both.
        self.cost = 1 + len(ops)
        # (rel, mode_str, rule): the profiling key, shared by backends.
        self.key3 = key3
        # Backend pre-merged profiling keys: the trace hot path does a
        # single dict lookup per attempt with no tuple allocation (a
        # checker-mode plan only ever uses key_checker; a producer-mode
        # plan serves both the enum and the gen driver).
        self.key_checker = ("checker",) + key3
        self.key_enum = ("enum",) + key3
        self.key_gen = ("gen",) + key3
        # Per input position: the constructor name required of the
        # value there, or None when any value can match (variable or
        # function-free head).  Drives the dispatch index.
        self.head_ctors = head_ctors

    def describe(self) -> str:
        lines = [
            f"plan-handler {self.rule}"
            f"{' (recursive)' if self.recursive else ''} "
            f"[slots={self.n_slots}, ins={self.n_ins}]:"
        ]
        for op in self.ops:
            lines.append(f"  {_OP_NAMES[op[0]]} {_op_operands(op)}")
        lines.append(
            "  ret (" + ", ".join(_expr_str(e) for e in self.out_exprs) + ")"
            if self.out_exprs
            else "  ret true"
        )
        return "\n".join(lines)


class Plan:
    """The lowered program for ``(relation, mode)``, all backends."""

    __slots__ = (
        "rel",
        "mode",
        "mode_str",
        "n_ins",
        "handlers",
        "base",
        "has_recursive",
        "out_types",
        "schedule",
        "algorithm",
        "dispatch_pos",
        "full_table",
        "full_default",
        "base_table",
        "base_default",
    )

    def __init__(self, schedule: Schedule, handlers: tuple) -> None:
        self.rel = schedule.rel
        self.mode = schedule.mode
        self.mode_str = str(schedule.mode)
        self.n_ins = len(schedule.mode.ins)
        self.handlers = handlers
        self.base = tuple(h for h in handlers if not h.recursive)
        self.has_recursive = any(h.recursive for h in handlers)
        self.out_types = schedule.out_types
        self.schedule = schedule
        self.algorithm = getattr(schedule, "algorithm", "full")
        self._build_dispatch()

    # -- dispatch index ------------------------------------------------------

    def _build_dispatch(self) -> None:
        """Pick the most discriminating input position and build the
        ``ctor -> candidates`` tables (full set and base-only set)."""
        best_pos, best_count = -1, 0
        for p in range(self.n_ins):
            count = sum(
                1 for h in self.handlers if h.head_ctors[p] is not None
            )
            if count > best_count:
                best_pos, best_count = p, count
        self.dispatch_pos = best_pos
        if best_pos < 0:
            # No constructor head anywhere: every call tries all
            # handlers (the tables stay empty and unused).
            self.full_table = {}
            self.full_default = self.handlers
            self.base_table = {}
            self.base_default = self.base
            return
        self.full_table, self.full_default = _dispatch_table(
            self.handlers, best_pos
        )
        self.base_table, self.base_default = _dispatch_table(
            self.base, best_pos
        )

    def candidates(self, args: tuple) -> tuple:
        """Handlers that can match *args* (all-handlers set)."""
        p = self.dispatch_pos
        if p < 0:
            return self.full_default
        return self.full_table.get(args[p].ctor, self.full_default)

    def base_candidates(self, args: tuple) -> tuple:
        """Handlers that can match *args*, base (non-recursive) only."""
        p = self.dispatch_pos
        if p < 0:
            return self.base_default
        return self.base_table.get(args[p].ctor, self.base_default)

    def describe(self) -> str:
        kind = "checker" if self.mode.is_checker else "producer"
        lines = [
            f"plan for {self.rel} [{self.mode_str}] ({kind}, "
            f"algorithm={self.algorithm}, dispatch_pos={self.dispatch_pos}):"
        ]
        if self.dispatch_pos >= 0:
            for ctor, hs in sorted(self.full_table.items()):
                lines.append(
                    f"  dispatch {ctor} -> ({', '.join(h.rule for h in hs)})"
                )
            lines.append(
                "  dispatch * -> ("
                + ", ".join(h.rule for h in self.full_default)
                + ")"
            )
        for h in self.handlers:
            lines.append(_indent(h.describe()))
        return "\n".join(lines)


def _dispatch_table(handlers: tuple, pos: int):
    """``ctor -> candidate tuple`` preserving handler order.  A handler
    with a variable head at *pos* belongs to every bucket (it can match
    anything); the default bucket holds exactly those."""
    ctors = []
    for h in handlers:
        head = h.head_ctors[pos]
        if head is not None and head not in ctors:
            ctors.append(head)
    table = {
        ctor: tuple(
            h
            for h in handlers
            if h.head_ctors[pos] is None or h.head_ctors[pos] == ctor
        )
        for ctor in ctors
    }
    default = tuple(h for h in handlers if h.head_ctors[pos] is None)
    return table, default


# ---------------------------------------------------------------------------
# Lowering.
# ---------------------------------------------------------------------------


class _Lowerer:
    """Per-handler lowering state: the variable -> slot map and the op
    accumulator."""

    def __init__(self, ctx: Context, schedule: Schedule) -> None:
        self.ctx = ctx
        self.schedule = schedule
        self.slots: dict[str, int] = {}
        self.n_slots = len(schedule.mode.ins)
        self.ops: list[tuple] = []
        self._consts: dict[Value, tuple] = {}

    def fresh(self) -> int:
        slot = self.n_slots
        self.n_slots += 1
        return slot

    def bind(self, var: str) -> int:
        # Re-binding shadows: the name maps to a fresh slot and later
        # reads see the new value.  This matches the historical
        # dict-environment semantics (assignment overwrote), which the
        # scheduler relies on for duplicated producer binds (a
        # non-linear premise like ``P x x`` at mode ``oo`` binds ``x``
        # once per output position, last occurrence winning).
        slot = self.slots[var] = self.fresh()
        return slot

    # -- expressions ---------------------------------------------------------

    def const(self, value: Value) -> tuple:
        interned = self._consts.get(value)
        if interned is None:
            # Hash-cons the ground value process-wide (deferred import:
            # specialize imports plan for the opcode constants), so the
            # same constant in any plan is one object and ``is``
            # fast-paths in ``Value.__eq__`` fire across backends.
            from .specialize import intern_value

            interned = self._consts[value] = (X_CONST, intern_value(value))
        return interned

    def expr(self, t: Term) -> tuple:
        if isinstance(t, Var):
            try:
                return (X_SLOT, self.slots[t.name])
            except KeyError:
                raise EvaluationError(
                    f"schedule bug: variable {t.name!r} unbound at runtime"
                ) from None
        if _is_ground_ctor(t):
            return self.const(term_to_value(t))
        args = tuple(self.expr(a) for a in t.args)
        if isinstance(t, Ctor):
            return (X_CTOR, t.name, args)
        return (X_FUN, self.ctx.functions.require(t.name).impl, args, t.name)

    # -- pattern matching ----------------------------------------------------

    def match(self, src: int, pattern: Term, binds: frozenset) -> None:
        """Lower a match of slot *src* against *pattern*; variables in
        *binds* not yet bound become slot aliases / projections, all
        other pattern parts become equality tests."""
        if isinstance(pattern, Var):
            name = pattern.name
            if name in binds and name not in self.slots:
                self.slots[name] = src  # alias, no op needed
                return
            if name not in self.slots:
                raise EvaluationError(
                    f"schedule bug: pattern variable {name!r} neither "
                    "bound nor binding"
                )
            self.ops.append(
                (OP_TESTEQ, (X_SLOT, self.slots[name]), (X_SLOT, src), False)
            )
            return
        if isinstance(pattern, Fun):
            # All variables under a function call are known by
            # construction (the scheduler instantiates blocked
            # variables), so the call is evaluated and compared.
            self.ops.append(
                (OP_TESTEQ, self.expr(pattern), (X_SLOT, src), False)
            )
            return
        if _is_ground_ctor(pattern):
            self.ops.append(
                (OP_TESTCONST, src, term_to_value(pattern))
            )
            return
        dsts = []
        subs = []
        for sub in pattern.args:
            if (
                isinstance(sub, Var)
                and sub.name in binds
                and sub.name not in self.slots
            ):
                dsts.append(self.bind(sub.name))
            else:
                dst = self.fresh()
                dsts.append(dst)
                subs.append((dst, sub))
        self.ops.append((OP_TESTCTOR, src, pattern.name, tuple(dsts)))
        for dst, sub in subs:
            self.match(dst, sub, binds)

    def scrutinee_slot(self, t: Term) -> int:
        """The slot holding *t*'s value (reusing the variable's slot
        when the scrutinee is a bare variable)."""
        if isinstance(t, Var) and t.name in self.slots:
            return self.slots[t.name]
        dst = self.fresh()
        self.ops.append((OP_EVAL, dst, self.expr(t)))
        return dst

    # -- steps ---------------------------------------------------------------

    def step(self, step: Any) -> None:
        ctx = self.ctx
        if isinstance(step, SAssign):
            if isinstance(step.term, Var):
                # let x := y — alias, both slots are read-only after.
                self.slots[step.var] = self.slots[step.term.name]
                return
            expr = self.expr(step.term)
            self.ops.append((OP_EVAL, self.bind(step.var), expr))
            return
        if isinstance(step, SEqCheck):
            self.ops.append(
                (OP_TESTEQ, self.expr(step.lhs), self.expr(step.rhs),
                 step.negated)
            )
            return
        if isinstance(step, SMatch):
            src = self.scrutinee_slot(step.scrutinee)
            self.match(src, step.pattern, step.binds)
            return
        if isinstance(step, SRecCheck):
            self.ops.append(
                (OP_RECCHECK, tuple(self.expr(a) for a in step.args),
                 step.rel)
            )
            return
        if isinstance(step, SCheckCall):
            arity = ctx.relations.get(step.rel).arity
            key = ("checker", step.rel, "i" * arity)
            self.ops.append(
                (OP_CHECK, key, tuple(self.expr(a) for a in step.args),
                 step.negated, step.rel)
            )
            return
        if isinstance(step, SProduce):
            ins = tuple(self.expr(a) for a in step.in_args)
            dsts = tuple(self.bind(b) for b in step.binds)
            mode_str = str(step.mode)
            enum_key = ("enum", step.rel, mode_str)
            gen_key = ("gen", step.rel, mode_str)
            self.ops.append(
                (OP_PRODUCE, enum_key, gen_key, ins, dsts,
                 step.recursive, step.rel, step.mode)
            )
            return
        if isinstance(step, SInstantiate):
            self.ops.append((OP_INSTANTIATE, self.bind(step.var), step.ty))
            return
        raise AssertionError(f"unknown step {step!r}")


def _lower_handler(
    ctx: Context, schedule: Schedule, handler: Any, index: int
) -> PlanHandler:
    lo = _Lowerer(ctx, schedule)
    head_ctors = []
    # Input patterns are linear constructor patterns (preprocessing
    # guarantees it): every variable is a binding occurrence.
    for j, pattern in enumerate(handler.in_patterns):
        if isinstance(pattern, Fun):
            raise EvaluationError(
                f"schedule bug: function call {pattern} in an input pattern"
            )
        head_ctors.append(pattern.name if isinstance(pattern, Ctor) else None)
        lo.match(j, pattern, frozenset(_pattern_vars(pattern)))
    for step in handler.steps:
        lo.step(step)
    out_exprs = tuple(lo.expr(t) for t in handler.out_terms)
    return PlanHandler(
        rule=handler.rule,
        index=index,
        recursive=handler.recursive,
        ops=tuple(lo.ops),
        out_exprs=out_exprs,
        n_ins=len(schedule.mode.ins),
        n_slots=lo.n_slots,
        key3=(schedule.rel, str(schedule.mode), handler.rule),
        head_ctors=tuple(head_ctors),
    )


def lower_schedule(ctx: Context, schedule: Schedule) -> Plan:
    """Lower *schedule* to a :class:`Plan` (cached per context).

    The cache is keyed by object identity: schedules are built once per
    ``(rel, mode, policy, group)`` by the scheduler's own cache, and the
    plan keeps its schedule alive, so identity is stable.
    """
    cache = ctx.artifacts.setdefault(PLANS_KEY, {})
    plan = cache.get(id(schedule))
    if plan is not None:
        return plan
    handlers = tuple(
        _lower_handler(ctx, schedule, h, i)
        for i, h in enumerate(schedule.handlers)
    )
    if functionalization_enabled(ctx):
        for h in handlers:
            _functionalize_handler(ctx, h)
    plan = Plan(schedule, handlers)
    stats = ctx.caches.get("derive_stats")
    if stats is not None:
        stats.plan_lowerings += 1
    cache[id(schedule)] = plan
    return plan


# ---------------------------------------------------------------------------
# Functionalization (determinacy-driven premise rewrite).
# ---------------------------------------------------------------------------

#: ``ctx.artifacts`` flag gating the functionalization pass (default on).
FUNC_FLAG = "derive_functionalize"


def functionalization_enabled(ctx: Context) -> bool:
    """Is determinacy-driven functionalization (and the codegen
    cross-relation inlining it licenses) on for *ctx*?  Off globally
    under ``REPRO_NO_FUNCTIONALIZE=1``; per context via
    :func:`disable_functionalization`.  The flag is read at plan
    lowering / compile time — flip it before deriving instances."""
    if os.environ.get("REPRO_NO_FUNCTIONALIZE"):
        return False
    return bool(ctx.artifacts.get(FUNC_FLAG, True))


def enable_functionalization(ctx: Context) -> None:
    ctx.artifacts[FUNC_FLAG] = True


def disable_functionalization(ctx: Context) -> None:
    ctx.artifacts[FUNC_FLAG] = False


def _functionalize_handler(ctx: Context, handler: PlanHandler) -> None:
    """Rewrite eligible enumerate-then-check ops of a freshly lowered
    handler into :data:`OP_EVALREL` (in place, before the handler is
    published inside a :class:`Plan`).

    Eligible: a non-recursive :data:`OP_PRODUCE` whose ``(rel, mode)``
    is proven functional-or-better by :mod:`repro.analysis.determinacy`
    — at most one output tuple exists, so committing to the first
    definite answer is complete, and a later test failing is a definite
    handler failure rather than a backtrack point.  Recursive produces
    keep the loop: they run at the mode being derived and their charge
    pattern anchors the fault-injection replay discipline.

    The op tuple keeps OP_PRODUCE's operand shape (only the tag
    changes), so handler cost — ``1 + len(ops)``, the per-attempt
    budget charge — is identical with the pass on or off; only the
    per-item loop charges differ, exactly as the transform removes the
    extra draws.
    """
    if not any(op[0] == OP_PRODUCE and not op[5] for op in handler.ops):
        return
    from ..analysis.determinacy import relation_verdict

    ops = list(handler.ops)
    changed = False
    for i, op in enumerate(ops):
        if op[0] != OP_PRODUCE or op[5]:
            continue
        if relation_verdict(ctx, op[6], op[7]).at_most_one:
            ops[i] = (OP_EVALREL,) + op[1:]
            changed = True
    if changed:
        handler.ops = tuple(ops)


# ---------------------------------------------------------------------------
# Helpers.
# ---------------------------------------------------------------------------


def _is_ground_ctor(t: Term) -> bool:
    if isinstance(t, Ctor):
        return all(_is_ground_ctor(a) for a in t.args)
    return False


def _pattern_vars(pattern: Term) -> Iterable[str]:
    if isinstance(pattern, Var):
        yield pattern.name
        return
    for sub in pattern.args:
        yield from _pattern_vars(sub)


def _expr_str(e: tuple) -> str:
    tag = e[0]
    if tag == X_SLOT:
        return f"s{e[1]}"
    if tag == X_CONST:
        return str(e[1])
    if tag == X_CTOR:
        return f"{e[1]}({', '.join(_expr_str(a) for a in e[2])})"
    return f"{e[3]}({', '.join(_expr_str(a) for a in e[2])})"


def _op_operands(op: tuple) -> str:
    tag = op[0]
    if tag == OP_EVAL:
        return f"s{op[1]} := {_expr_str(op[2])}"
    if tag == OP_TESTCTOR:
        dsts = ", ".join(f"s{d}" for d in op[3])
        return f"s{op[1]} is {op[2]}({dsts})"
    if tag == OP_TESTCONST:
        return f"s{op[1]} == {op[2]}"
    if tag == OP_TESTEQ:
        rel = "!=" if op[3] else "=="
        return f"{_expr_str(op[1])} {rel} {_expr_str(op[2])}"
    if tag == OP_CHECK:
        neg = "~" if op[3] else ""
        return f"{neg}{op[4]}({', '.join(_expr_str(e) for e in op[2])})"
    if tag == OP_RECCHECK:
        target = f"{op[2]}:" if op[2] else ""
        return f"{target}{', '.join(_expr_str(e) for e in op[1])}"
    if tag in (OP_PRODUCE, OP_EVALREL):
        how = "fun" if tag == OP_EVALREL else ("rec" if op[5] else "ext")
        dsts = ", ".join(f"s{d}" for d in op[4])
        ins = ", ".join(_expr_str(e) for e in op[3])
        return f"{dsts} <- {how} {op[6]}[{op[7]}]({ins})"
    dst, ty = op[1], op[2]
    return f"s{dst} <- arbitrary {ty}"


def _indent(text: str) -> str:
    return "\n".join("  " + line for line in text.splitlines())
