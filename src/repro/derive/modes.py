"""Modes: which relation arguments are inputs and which are produced.

A *mode* for a relation of arity ``n`` designates a subset of argument
positions as outputs (the paper's ``out_set``, Section 4 / Algorithm 2).
The checker mode has no outputs; producer modes have at least one.
Unlike the paper's implementation (which restricted producers to a
single output), multiple outputs are supported — the §8 extension.

The scheduler tracks a per-rule *variable knowledge map*: each rule
variable is either KNOWN (fully instantiated: a top-level input, bound
by a pattern match, or the result of a producer call) or UNKNOWN (still
to be produced).  Partial instantiation ("the value matches ``Arr t1
t2`` for known ``t1``") is represented structurally, by match steps
over patterns mixing known and unknown variables, rather than as a
variable state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Union

from ..core.errors import ArityError, DeclarationError
from ..core.terms import Term, free_vars

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.relations import Relation


@dataclass(frozen=True)
class Mode:
    """A derivation mode: relation arity plus the set of output
    positions (0-based)."""

    arity: int
    outs: frozenset[int]

    def __post_init__(self) -> None:
        bad = [i for i in self.outs if not 0 <= i < self.arity]
        if bad:
            raise DeclarationError(f"output positions {bad} out of range")

    @staticmethod
    def checker(arity: int) -> "Mode":
        return Mode(arity, frozenset())

    @staticmethod
    def producer(arity: int, outs: Iterable[int]) -> "Mode":
        mode = Mode(arity, frozenset(outs))
        if not mode.outs:
            raise DeclarationError("a producer mode needs at least one output")
        return mode

    @staticmethod
    def from_string(spec: str) -> "Mode":
        """Parse ``"iio"``-style mode strings (i = input, o = output)."""
        if not spec:
            raise DeclarationError(
                "empty mode spec: a mode needs one 'i'/'o' per argument"
            )
        outs = set()
        for i, c in enumerate(spec):
            if c == "o":
                outs.add(i)
            elif c != "i":
                raise DeclarationError(f"bad mode character {c!r} in {spec!r}")
        return Mode(len(spec), frozenset(outs))

    @staticmethod
    def for_relation(
        rel: "Relation", spec: "Union[str, Mode, Iterable[int]]"
    ) -> "Mode":
        """Build a mode for *rel*, cross-checking the arity.

        A spec of the wrong length (``"iio"`` against a 2-ary relation)
        fails here — at declaration time, with an :class:`ArityError`
        naming the relation — instead of surfacing later inside
        scheduling.
        """
        if isinstance(spec, Mode):
            built = spec
        elif isinstance(spec, str):
            built = Mode.from_string(spec)
        else:
            built = Mode(rel.arity, frozenset(spec))
        if built.arity != rel.arity:
            raise ArityError(f"mode {built} for {rel.name}", rel.arity, built.arity)
        return built

    @property
    def is_checker(self) -> bool:
        return not self.outs

    @property
    def ins(self) -> tuple[int, ...]:
        return tuple(i for i in range(self.arity) if i not in self.outs)

    @property
    def out_list(self) -> tuple[int, ...]:
        return tuple(sorted(self.outs))

    def __str__(self) -> str:
        return "".join("o" if i in self.outs else "i" for i in range(self.arity))

    def describe(self) -> str:
        return f"mode {self} ({'checker' if self.is_checker else 'producer'})"


class VarsMap:
    """The paper's ``vars`` map, simplified to KNOWN/UNKNOWN.

    Initialized per rule by :func:`init_env` (Algorithm 2) and updated
    as the scheduler walks the premises.
    """

    def __init__(self) -> None:
        self._known: set[str] = set()
        self._all: set[str] = set()

    def add(self, name: str, known: bool) -> None:
        self._all.add(name)
        if known:
            self._known.add(name)

    def mark_known(self, name: str) -> None:
        self._all.add(name)
        self._known.add(name)

    def is_known(self, name: str) -> bool:
        return name in self._known

    def known_set(self) -> frozenset[str]:
        return frozenset(self._known)

    def unknown_in(self, t: Term) -> list[str]:
        """Unknown variables of *t*, left-to-right, deduplicated."""
        seen: list[str] = []
        for name in free_vars(t):
            if name not in self._known and name not in seen:
                seen.append(name)
        return seen

    def term_known(self, t: Term) -> bool:
        return not self.unknown_in(t)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._all))


def init_env(conclusion: tuple[Term, ...], mode: Mode) -> VarsMap:
    """Algorithm 2 (INIT_ENV): mark variables of input-position
    conclusion patterns as known, output-position ones as unknown."""
    vars_map = VarsMap()
    for i, term in enumerate(conclusion):
        known = i not in mode.outs
        for name in free_vars(term):
            if known:
                vars_map.mark_known(name)
            else:
                vars_map.add(name, known=False)
    return vars_map
