"""Enumerator backend: interpret a schedule as a constrained enumerator.

This is the ``E (option A)`` instantiation (the paper's Figure 2): the
same fixpoint structure as the checker, but handlers *yield* output
tuples instead of answering ``Some true``, and the combinators swap:

* ``backtracking``  →  ``enumerating`` (concatenation of handler
  results, with an ``OUT_OF_FUEL`` element at size 0 when recursive
  handlers were skipped);
* ``.&&``           →  ``bindCE`` (a failed check kills the branch, an
  out-of-fuel check yields a fuel marker);
* recursive checker calls → recursive *enumerator* calls at
  ``size - 1``.

The enumeration yields tuples of output-position values (one entry per
``o`` in the mode), interleaved with ``OUT_OF_FUEL`` markers.  The
**no-fuel-marker invariant** matters for correctness: an enumeration
that finishes without a marker is genuinely exhaustive, which is what
lets a checker's ``bindEC`` answer a definitive ``Some false``.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..core.context import Context
from ..core.values import Value
from ..producers.combinators import _enum_values, slice_exhaustive
from ..producers.option_bool import OptionBool, negate
from ..producers.outcome import OUT_OF_FUEL
from .runtime import eval_args, eval_term, match_inputs, match_known
from .schedule import (
    Handler,
    SAssign,
    SCheckCall,
    SEqCheck,
    SInstantiate,
    SMatch,
    SProduce,
    SRecCheck,
    Schedule,
)


class DerivedEnumerator:
    """A derived constrained enumerator for ``(rel, mode)``.

    Calling convention: ``enum(fuel, *in_args)`` yields output tuples
    (and ``OUT_OF_FUEL`` markers).
    """

    def __init__(self, ctx: Context, schedule: Schedule) -> None:
        if schedule.mode.is_checker:
            raise ValueError("DerivedEnumerator needs a producer-mode schedule")
        self.ctx = ctx
        self.schedule = schedule

    def __call__(self, fuel: int, *ins: Value) -> Iterator[Any]:
        return self.rec(fuel, fuel, tuple(ins))

    def enum_st(self, fuel: int, ins: tuple[Value, ...]) -> Iterator[Any]:
        """Internal calling convention (used by instance resolution)."""
        return self.rec(fuel, fuel, ins)

    def values(self, fuel: int, *ins: Value) -> list[tuple[Value, ...]]:
        """All output tuples at *fuel* (markers dropped)."""
        return [x for x in self.rec(fuel, fuel, tuple(ins)) if x is not OUT_OF_FUEL]

    def exhaustive_at(self, fuel: int, *ins: Value) -> bool:
        """True when the enumeration at *fuel* carries no fuel marker —
        i.e. it provably contains *every* solution."""
        return all(x is not OUT_OF_FUEL for x in self.rec(fuel, fuel, tuple(ins)))

    # -- the derived fixpoint ------------------------------------------------------

    def rec(
        self, size: int, top_size: int, ins: tuple[Value, ...]
    ) -> Iterator[Any]:
        # Collapse fuel markers: values stream through unchanged, and a
        # single trailing OUT_OF_FUEL summarizes any number of inner
        # markers (they carry no information beyond their existence).
        saw_fuel = False
        for item in self._rec_raw(size, top_size, ins):
            if item is OUT_OF_FUEL:
                saw_fuel = True
            else:
                yield item
        if saw_fuel:
            yield OUT_OF_FUEL

    def _rec_raw(
        self, size: int, top_size: int, ins: tuple[Value, ...]
    ) -> Iterator[Any]:
        if size == 0:
            for handler in self.schedule.base_handlers:
                yield from self._run_handler(handler, None, top_size, ins)
            if self.schedule.has_recursive_handlers:
                yield OUT_OF_FUEL
            return
        for handler in self.schedule.handlers:
            yield from self._run_handler(handler, size - 1, top_size, ins)

    def _run_handler(
        self,
        handler: Handler,
        rec_size: int | None,
        top_size: int,
        ins: tuple[Value, ...],
    ) -> Iterator[Any]:
        stats = self.ctx.caches.get("derive_stats")
        if stats is not None:
            stats.handler_attempts += 1
        env = match_inputs(handler.in_patterns, ins, self.ctx)
        if env is None:
            if stats is not None:
                stats.backtracks += 1
            return
        yield from self._run_steps(handler, 0, env, rec_size, top_size)

    def _run_steps(
        self,
        handler: Handler,
        i: int,
        env: dict[str, Value],
        rec_size: int | None,
        top_size: int,
    ) -> Iterator[Any]:
        ctx = self.ctx
        steps = handler.steps
        while i < len(steps):
            step = steps[i]
            if isinstance(step, SAssign):
                env[step.var] = eval_term(step.term, env, ctx)
                i += 1
                continue
            if isinstance(step, SEqCheck):
                equal = eval_term(step.lhs, env, ctx) == eval_term(
                    step.rhs, env, ctx
                )
                if equal == step.negated:
                    return  # failE: branch dies
                i += 1
                continue
            if isinstance(step, SMatch):
                value = eval_term(step.scrutinee, env, ctx)
                if not match_known(step.pattern, value, env, step.binds, ctx):
                    return
                i += 1
                continue
            if isinstance(step, (SCheckCall, SRecCheck)):
                result = self._check_step(step, env, top_size)
                if result.is_false:
                    return
                if result.is_none:
                    yield OUT_OF_FUEL  # fuelE
                    return
                i += 1
                continue
            if isinstance(step, SProduce):
                items = self._producer_items(step, env, rec_size, top_size)
                for item in items:
                    if item is OUT_OF_FUEL:
                        yield OUT_OF_FUEL
                        continue
                    child = dict(env)
                    for name, value in zip(step.binds, item):
                        child[name] = value
                    yield from self._run_steps(
                        handler, i + 1, child, rec_size, top_size
                    )
                return
            if isinstance(step, SInstantiate):
                for value in _enum_values(ctx, step.ty, top_size):
                    child = dict(env)
                    child[step.var] = value
                    yield from self._run_steps(
                        handler, i + 1, child, rec_size, top_size
                    )
                if not slice_exhaustive(ctx, step.ty, top_size):
                    yield OUT_OF_FUEL
                return
            raise AssertionError(f"unknown step {step!r}")
        yield eval_args(handler.out_terms, env, ctx)

    # -- step helpers -------------------------------------------------------------------

    def _check_step(self, step, env: dict[str, Value], top_size: int) -> OptionBool:
        from .instances import resolve_checker

        if isinstance(step, SRecCheck):
            raise AssertionError(
                "producer schedules never contain recursive checker calls"
            )
        instance = resolve_checker(self.ctx, step.rel)
        result = instance.fn(top_size, eval_args(step.args, env, self.ctx))
        return negate(result) if step.negated else result

    def _producer_items(
        self,
        step: SProduce,
        env: dict[str, Value],
        rec_size: int | None,
        top_size: int,
    ) -> Iterator[Any]:
        ins = eval_args(step.in_args, env, self.ctx)
        if step.recursive:
            assert rec_size is not None, "recursive handler ran at size 0"
            return self.rec(rec_size, top_size, ins)
        from .instances import ENUM, resolve

        instance = resolve(self.ctx, ENUM, step.rel, step.mode)
        return instance.fn(top_size, ins)


class HandwrittenEnumerator:
    """Public wrapper around a registered handwritten enumerator.

    ``derive_enumerator`` hands this back when resolution finds a
    user-supplied ``EnumSizedSuchThat`` instance: all calls delegate to
    the live ``instance.fn`` while presenting the
    :class:`DerivedEnumerator` public surface.
    """

    def __init__(self, ctx: Context, instance) -> None:
        self.ctx = ctx
        self.instance = instance
        self.rel = instance.rel
        self.mode = instance.mode
        # Registry key (interp backend): re-read per call so that
        # register(..., replace=True) takes effect on live wrappers.
        self._key = (instance.kind, instance.rel, str(instance.mode))

    def _fn(self):
        live = self.ctx.instances.get(self._key)
        return (live or self.instance).fn

    def __call__(self, fuel: int, *ins: Value) -> Iterator[Any]:
        return self._fn()(fuel, tuple(ins))

    def enum_st(self, fuel: int, ins: tuple[Value, ...]) -> Iterator[Any]:
        return self._fn()(fuel, tuple(ins))

    def values(self, fuel: int, *ins: Value) -> list[tuple[Value, ...]]:
        return [x for x in self._fn()(fuel, tuple(ins)) if x is not OUT_OF_FUEL]

    def exhaustive_at(self, fuel: int, *ins: Value) -> bool:
        return all(x is not OUT_OF_FUEL for x in self._fn()(fuel, tuple(ins)))

    def __repr__(self) -> str:
        return f"HandwrittenEnumerator({self.rel!r}, {self.mode})"


def make_enumerator(ctx: Context, schedule: Schedule):
    """Build the internal-convention callable for the registry."""
    enum = DerivedEnumerator(ctx, schedule)
    return enum.enum_st
