"""Enumerator backend: the ``E (option A)`` instantiation of a derived
program (the paper's Figure 2).

Public surface only — :class:`DerivedEnumerator` lowers its schedule
to a :class:`~repro.derive.plan.Plan` once and delegates to the shared
executor (:func:`repro.derive.exec_core.run_enum`).  Compared to the
checker instantiation the combinators swap:

* ``backtracking``  →  ``enumerating`` (concatenation of handler
  results, with an ``OUT_OF_FUEL`` element at size 0 when recursive
  handlers were skipped);
* ``.&&``           →  ``bindCE`` (a failed check kills the branch, an
  out-of-fuel check yields a fuel marker);
* recursive checker calls → recursive *enumerator* calls at
  ``size - 1``.

The enumeration yields tuples of output-position values (one entry per
``o`` in the mode), interleaved with ``OUT_OF_FUEL`` markers.  The
**no-fuel-marker invariant** matters for correctness: an enumeration
that finishes without a marker is genuinely exhaustive, which is what
lets a checker's ``bindEC`` answer a definitive ``Some false``.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..core.context import Context
from ..core.values import Value
from ..producers.outcome import OUT_OF_FUEL
from .exec_core import run_enum
from .plan import Plan, lower_schedule
from .schedule import Schedule


class DerivedEnumerator:
    """A derived constrained enumerator for ``(rel, mode)``.

    Calling convention: ``enum(fuel, *in_args)`` yields output tuples
    (and ``OUT_OF_FUEL`` markers).
    """

    def __init__(self, ctx: Context, schedule: Schedule) -> None:
        if schedule.mode.is_checker:
            raise ValueError("DerivedEnumerator needs a producer-mode schedule")
        self.ctx = ctx
        self.schedule = schedule
        self._plan = lower_schedule(ctx, schedule)

    @property
    def plan(self) -> Plan:
        """The lowered program this enumerator executes."""
        return self._plan

    def __call__(self, fuel: int, *ins: Value) -> Iterator[Any]:
        return run_enum(self.ctx, self._plan, fuel, fuel, tuple(ins))

    def enum_st(self, fuel: int, ins: tuple[Value, ...]) -> Iterator[Any]:
        """Internal calling convention (used by instance resolution)."""
        return run_enum(self.ctx, self._plan, fuel, fuel, ins)

    def rec(
        self, size: int, top_size: int, ins: tuple[Value, ...]
    ) -> Iterator[Any]:
        """One level of the derived fixpoint."""
        return run_enum(self.ctx, self._plan, size, top_size, ins)

    def values(self, fuel: int, *ins: Value) -> list[tuple[Value, ...]]:
        """All output tuples at *fuel* (markers dropped)."""
        return [
            x
            for x in run_enum(self.ctx, self._plan, fuel, fuel, tuple(ins))
            if x is not OUT_OF_FUEL
        ]

    def exhaustive_at(self, fuel: int, *ins: Value) -> bool:
        """True when the enumeration at *fuel* carries no fuel marker —
        i.e. it provably contains *every* solution."""
        return all(
            x is not OUT_OF_FUEL
            for x in run_enum(self.ctx, self._plan, fuel, fuel, tuple(ins))
        )


class HandwrittenEnumerator:
    """Public wrapper around a registered handwritten enumerator.

    ``derive_enumerator`` hands this back when resolution finds a
    user-supplied ``EnumSizedSuchThat`` instance: all calls delegate to
    the live ``instance.fn`` while presenting the
    :class:`DerivedEnumerator` public surface.
    """

    def __init__(self, ctx: Context, instance) -> None:
        self.ctx = ctx
        self.instance = instance
        self.rel = instance.rel
        self.mode = instance.mode
        # Registry key (interp backend): re-read per call so that
        # register(..., replace=True) takes effect on live wrappers.
        self._key = (instance.kind, instance.rel, str(instance.mode))

    def _fn(self):
        live = self.ctx.instances.get(self._key)
        return (live or self.instance).fn

    def __call__(self, fuel: int, *ins: Value) -> Iterator[Any]:
        return self._fn()(fuel, tuple(ins))

    def enum_st(self, fuel: int, ins: tuple[Value, ...]) -> Iterator[Any]:
        return self._fn()(fuel, tuple(ins))

    def values(self, fuel: int, *ins: Value) -> list[tuple[Value, ...]]:
        return [x for x in self._fn()(fuel, tuple(ins)) if x is not OUT_OF_FUEL]

    def exhaustive_at(self, fuel: int, *ins: Value) -> bool:
        return all(x is not OUT_OF_FUEL for x in self._fn()(fuel, tuple(ins)))

    def __repr__(self) -> str:
        return f"HandwrittenEnumerator({self.rel!r}, {self.mode})"


def make_enumerator(ctx: Context, schedule: Schedule):
    """Build the internal-convention callable for the registry."""
    enum = DerivedEnumerator(ctx, schedule)
    return enum.enum_st
