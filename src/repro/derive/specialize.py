"""Term-representation specialization for the compiled checker backend.

EXPERIMENTS.md records the reproduction's biggest fidelity gap: derived
checkers lost double-digit percentages against handwritten baselines
where the paper (Section 6.2, Figure 3) measured under 2%.  The cause
is representation, not algorithm: the handwritten baselines run on
machine integers while the compiled Plans executed boxed Peano /
constructor :class:`~repro.core.values.Value` terms — exactly the gap
Coq extraction closes for QuickChick by mapping ``nat`` and ``list``
onto native OCaml data.

This module is the analysis half of that extraction step (the emission
half lives in :mod:`repro.derive.codegen`): it decides, per lowered
:class:`~repro.derive.plan.Plan`, which runtime representation each
slot can use, and provides the boundary coercions that box/unbox values
exactly at the specialized/boxed frontier.

Representations (*reprs*) form a tiny descriptor language:

* ``'nat'`` — Peano naturals as non-negative Python ``int``;
  ``TESTCTOR S`` becomes ``> 0`` plus a decrement, ``S e`` becomes
  ``e + 1``, equality is integer equality;
* ``('list', elem)`` — cons-lists as nested pairs ``()`` / ``(hd,
  tl)`` with elements in their own repr (O(1) head/tail, no hash on
  construction; head-pattern tests compile to truthiness);
* ``'box'`` — everything else stays a :class:`Value`.

Soundness contract (argued in DESIGN.md §4.7, enforced by the
differential suite):

* coercions round-trip exactly on well-typed values —
  ``box(unbox(v)) == v`` and ``unbox(box(x)) == x``;
* unboxing is *partial*: on an ill-typed value it raises
  :class:`SpecCoercionError`, and the compiled entry point falls back
  to the boxed twin (which is always compiled alongside), so verdicts
  never depend on specialization;
* all boxing directions are total, so no coercion inside the
  specialized fixpoint can fail except the statically type-directed
  eager unboxes, which unwind to the same entry fallback.

The pass is on by default; ``disable_specialization(ctx)`` or the
``REPRO_NO_SPECIALIZE`` environment variable turn it off (existing
compiled instances are unaffected — the flag is read at compile time).
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable

from ..core.context import Context
from ..core.types import Ty, TypeExpr
from ..core.values import NIL, Value, ZERO
from .plan import OP_RECCHECK, Plan

SPEC_FLAG = "derive_specialize"

# Repr descriptors.  BOX/NAT are plain strings so descriptors are
# hashable, printable, and cheap to compare; lists nest as tuples.
BOX = "box"
NAT = "nat"


class SpecCoercionError(ValueError):
    """An ill-typed value reached a specialized representation boundary.

    Raised by the partial (unboxing) coercions only; the compiled entry
    points catch it and re-run the boxed twin, so callers never see it.
    """


# ---------------------------------------------------------------------------
# Enable / disable.
# ---------------------------------------------------------------------------

def specialization_enabled(ctx: Context) -> bool:
    if os.environ.get("REPRO_NO_SPECIALIZE"):
        return False
    return bool(ctx.artifacts.get(SPEC_FLAG, True))


def enable_specialization(ctx: Context) -> None:
    """(Re-)enable the pass for instances compiled *after* this call."""
    ctx.artifacts[SPEC_FLAG] = True


def disable_specialization(ctx: Context) -> None:
    """Compile subsequent instances boxed-only (already-compiled
    instances keep whatever representation they were built with)."""
    ctx.artifacts[SPEC_FLAG] = False


# ---------------------------------------------------------------------------
# Repr inference.
# ---------------------------------------------------------------------------

def repr_of(ty: "TypeExpr | None") -> Any:
    """The specialized repr for a ground type (``BOX`` when unknown or
    unspecializable)."""
    if not isinstance(ty, Ty):
        return BOX
    if ty.name == "nat":
        return NAT
    if ty.name == "list":
        return ("list", repr_of(ty.args[0]))
    return BOX


def repr_name(r: Any) -> str:
    if isinstance(r, tuple):
        return f"list({repr_name(r[1])})"
    return r


def worthwhile(r: Any) -> bool:
    """Whether repr *r* pays for its entry coercion.

    ``nat`` does (every Peano op collapses to an int op), and so does
    any list whose elements eventually do.  A ``('list', 'box')``
    does not: nested pairs cost the same per-op as a cons spine, so
    unboxing at entry would just add one full extra traversal per
    call — measurably a net loss on shallow-recursion relations (IFC's
    ``indist_list``).  Such reprs are demoted to ``BOX`` and the plan
    still gets the instrumentation-free fast twin."""
    if r == NAT:
        return True
    if isinstance(r, tuple):
        return worthwhile(r[1])
    return False


class SpecInfo:
    """The per-plan specialization decision: entry reprs + arg types."""

    __slots__ = ("entry_reprs", "entry_types")

    def __init__(self, entry_reprs: tuple, entry_types: tuple) -> None:
        self.entry_reprs = entry_reprs
        self.entry_types = entry_types


def _component_opportunity(ctx: Context, types: tuple) -> bool:
    """Whether any argument datatype has a constructor component that
    specializes (e.g. BST's ``Node : tree -> nat -> tree``) — those
    components are eagerly unboxed at ``TESTCTOR`` projections."""
    for ty in types:
        if not isinstance(ty, Ty) or ty.name not in ctx.datatypes:
            continue
        dt = ctx.datatypes.get(ty.name)
        if len(dt.params) != len(ty.args):
            continue
        for sig in dt.constructors:
            comps = dt.constructor_arg_types(sig.name, ty.args)
            if any(worthwhile(repr_of(t)) for t in comps):
                return True
    return False


def _eligible(ctx: Context, plan: Plan) -> bool:
    if not specialization_enabled(ctx):
        return False
    if not plan.mode.is_checker:
        return False
    # OP_RECCHECK is (OP_RECCHECK, exprs, rel|None): a non-None rel
    # that differs from the plan's own names a mutual-group sibling.
    for h in plan.handlers:
        for op in h.ops:
            if op[0] == OP_RECCHECK and op[2] not in (None, plan.rel):
                return False
    return True


def spec_info(ctx: Context, plan: Plan) -> "SpecInfo | None":
    """Decide whether (and how) to specialize *plan*.

    Returns ``None`` when the pass is disabled, the plan is not a
    checker, it belongs to a mutual-recursion group (the compiled
    backend's single ``rec`` cannot dispatch group siblings), or no
    slot would change representation (specializing then would only
    duplicate code).
    """
    if not _eligible(ctx, plan):
        return None
    relation = ctx.relations.get(plan.rel)
    entry_types = tuple(relation.arg_types[i] for i in plan.mode.ins)
    entry_reprs = tuple(
        r if worthwhile(r) else BOX
        for r in (repr_of(t) for t in entry_types)
    )
    if all(r == BOX for r in entry_reprs) and not _component_opportunity(
        ctx, entry_types
    ):
        return None
    return SpecInfo(entry_reprs, entry_types)


def boxed_info(ctx: Context, plan: Plan) -> "SpecInfo | None":
    """An all-``BOX`` :class:`SpecInfo` for an eligible checker plan
    that :func:`spec_info` declined (nothing to unbox).  The emitter
    uses it to build the instrumentation-free fast twin — same boxed
    representation, but with straight-line handlers inlined into the
    dispatch — without enabling any representation change."""
    if not _eligible(ctx, plan):
        return None
    relation = ctx.relations.get(plan.rel)
    entry_types = tuple(relation.arg_types[i] for i in plan.mode.ins)
    return SpecInfo(tuple(BOX for _ in entry_types), entry_types)


# ---------------------------------------------------------------------------
# Interning (hash-consing) of ground constants.
# ---------------------------------------------------------------------------

_INTERN: dict[Value, Value] = {}


def intern_value(v: Value) -> Value:
    """The canonical instance of ground value *v* (hash-consed,
    process-wide).  Repeated constants across plans — and the nullary
    constructors in particular — collapse to one object, so ``is``
    fast-paths in ``Value.__eq__`` fire and boxing allocates nothing
    for shared spines."""
    w = _INTERN.get(v)
    if w is None:
        w = _INTERN[v] = Value(v.ctor, tuple(intern_value(a) for a in v.args))
    return w


# ---------------------------------------------------------------------------
# Boundary coercions.
# ---------------------------------------------------------------------------

# Grow-on-demand cache of small boxed naturals: box_nat(n) is O(1)
# amortized for cached sizes and returns shared (hash-consed) spines,
# so boxing at the spec/boxed frontier allocates only for fresh maxima.
#
# Concurrency + growth contract: the cache is append-only and capped.
# Reads are lock-free (a list index under the GIL); growth takes
# _NAT_CACHE_LOCK and re-checks the length, so two threads extending
# from the same tail can never append out-of-order spines.  Requests
# beyond the cap build their tail locally off the cached prefix and
# cache nothing — a serving workload with one huge outlier can no
# longer pin an unbounded spine list for the life of the process.
_NAT_CACHE_MAX = 4096
_NAT_CACHE: list[Value] = [intern_value(ZERO)]
_NAT_CACHE_LOCK = threading.Lock()
_NIL = intern_value(NIL)


def box_nat(n: int) -> Value:
    cache = _NAT_CACHE
    if n < len(cache):
        return cache[n]
    if n < _NAT_CACHE_MAX:
        with _NAT_CACHE_LOCK:
            # Re-check under the lock: another thread may have grown
            # the cache past n while we waited.
            v = cache[-1]
            for _ in range(len(cache), n + 1):
                v = Value("S", (v,))
                cache.append(v)
            return cache[n]
    # Beyond the cap: snapshot the cached prefix length once (the list
    # only grows, so the indexed read is safe) and build the rest
    # privately.
    top = len(cache) - 1
    v = cache[top]
    for _ in range(top, n):
        v = Value("S", (v,))
    return v


def unbox_nat(v: Value) -> int:
    """Peano natural -> int (raises :class:`SpecCoercionError` on
    anything else)."""
    n = 0
    try:
        while v.ctor == "S":
            n += 1
            v = v.args[0]
        if v.ctor != "O":
            raise SpecCoercionError(f"not a natural: {v!r}")
    except AttributeError:
        raise SpecCoercionError(f"not a value: {v!r}") from None
    return n


def identity(x: Any) -> Any:
    return x


def boxer(r: Any) -> Callable[[Any], Value]:
    """The total coercion from repr *r* back to boxed values."""
    if r == BOX:
        return identity
    if r == NAT:
        return box_nat
    box_elem = boxer(r[1])

    def box_list(p: tuple) -> Value:
        # Nested pairs -> cons spine, iteratively (lists can be long).
        items = []
        while p:
            items.append(box_elem(p[0]))
            p = p[1]
        acc = _NIL
        for item in reversed(items):
            acc = Value("cons", (item, acc))
        return acc

    return box_list


def unboxer(r: Any) -> Callable[[Value], Any]:
    """The partial coercion from boxed values into repr *r*."""
    if r == BOX:
        return identity
    if r == NAT:
        return unbox_nat
    unbox_elem = unboxer(r[1])

    def unbox_list(v: Value) -> tuple:
        items = []
        try:
            while v.ctor == "cons":
                items.append(unbox_elem(v.args[0]))
                v = v.args[1]
            if v.ctor != "nil":
                raise SpecCoercionError(f"not a list: {v!r}")
        except AttributeError:
            raise SpecCoercionError(f"not a value: {v!r}") from None
        acc: tuple = ()
        for item in reversed(items):
            acc = (item, acc)
        return acc

    return unbox_list


def entry_unboxers(entry_reprs: tuple) -> "tuple | None":
    """Per-argument unboxers for a specialized entry point, or ``None``
    when every argument stays boxed (no entry coercion needed)."""
    if all(r == BOX for r in entry_reprs):
        return None
    return tuple(unboxer(r) for r in entry_reprs)


def value_in_repr(v: Value, r: Any) -> Any:
    """Convert ground value *v* into repr *r* at compile time.

    Raises :class:`SpecCoercionError` when the value does not inhabit
    the repr (the caller then emits the boxed form instead).
    """
    return unboxer(r)(v)


# ---------------------------------------------------------------------------
# Canonical memo keys.
# ---------------------------------------------------------------------------

def canonicalize_args(args: tuple) -> tuple:
    """Map an argument tuple to its canonical boxed form.

    Memo tables (:mod:`repro.derive.memo`) key on ``(rel, args)``; a
    specialized caller holding native ints / nested-pair lists must hit
    the same entry as a boxed caller with the equal Peano / cons terms,
    or the two backends would each warm a private (and potentially
    stale-on-invalidation) cache line for one ground query.  All-boxed
    tuples (the common case) return identically ``args``.
    """
    for a in args:
        if type(a) is not Value:
            return tuple(_canon(a) for a in args)
    return args


def _canon(a: Any) -> Any:
    if type(a) is Value:
        return a
    if isinstance(a, bool):  # bool is an int subtype; not a repr we emit
        return a
    if isinstance(a, int):
        if a < 0:
            return a
        return box_nat(a)
    if isinstance(a, tuple):
        if a == ():
            return _NIL
        if len(a) == 2:
            return Value("cons", (_canon(a[0]), _canon(a[1])))
        return tuple(_canon(x) for x in a)
    return a
