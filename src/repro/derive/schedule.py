"""Schedule IR: the compilation target of the derivation algorithm.

A :class:`Schedule` is the mode-specific "program" derived from an
inductive relation — exactly the structure the paper's algorithm emits
as Gallina code, but reified so that three different backends can run
it (Section 4: "three different instantiations of the same algorithm"):

* the checker interpreter (``interp_checker``) reads it as an
  ``option bool`` semi-decision procedure;
* the enumerator interpreter (``interp_enum``) as an ``E (option A)``;
* the generator interpreter (``interp_gen``) as a ``G (option A)``;
* the code generator (``codegen``) compiles it to Python source.

One :class:`Handler` per rule: the pattern match against the rule's
conclusion (input positions only), a sequence of :class:`Step`\\ s for
the premises, and the output expressions.  Step kinds mirror the
constructs of the paper's Figures 1 and 2 one-to-one — which is what
the validation layer's structural certificates walk (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from ..core.relations import Relation
from ..core.terms import Term
from ..core.types import TypeExpr
from .modes import Mode


@dataclass(frozen=True)
class SCheckCall:
    """``check top_size (Q e1 .. en) .&& ...`` — external checker call
    (also used for negated premises, with ``~`` applied)."""

    rel: str
    args: tuple[Term, ...]
    negated: bool = False

    def describe(self) -> str:
        neg = "~" if self.negated else ""
        return f"{neg}check {self.rel}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class SRecCheck:
    """``rec size' top_size e1 .. en .&& ...`` — recursive checker call
    (checker schedules only).

    ``rel`` is ``None`` for a plain self-call; for a *group* derivation
    (mutually inductive relations, the §8 extension) it names the
    sibling whose handlers the shared fixpoint dispatches to.
    """

    args: tuple[Term, ...]
    rel: str | None = None

    def describe(self) -> str:
        target = f"{self.rel}:" if self.rel else ""
        return f"rec({target}{', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class SEqCheck:
    """``check (t1 = t2)`` with both sides known — decidable equality."""

    lhs: Term
    rhs: Term
    negated: bool = False

    def describe(self) -> str:
        op = "<>" if self.negated else "="
        return f"check {self.lhs} {op} {self.rhs}"


@dataclass(frozen=True)
class SAssign:
    """``let var := t`` — an equality premise one side of which is an
    unknown bare variable; produces it deterministically."""

    var: str
    term: Term

    def describe(self) -> str:
        return f"let {self.var} := {self.term}"


@dataclass(frozen=True)
class SMatch:
    """Match the (known) value of *scrutinee* against *pattern*.

    Variables listed in *binds* are bound by the match; all other
    pattern variables are already known and act as equality
    constraints.  This is the construct the paper's TApp enumerator
    uses: ``match t12 with Arr t1' t2 => ...``.
    """

    scrutinee: Term
    pattern: Term
    binds: frozenset[str]

    def describe(self) -> str:
        return f"match {self.scrutinee} with {self.pattern}"


@dataclass(frozen=True)
class SProduce:
    """Call a producer for ``rel`` at ``mode``, binding the produced
    values to the fresh variables *binds* (one per output position).

    ``recursive`` marks a self-call at the very mode being derived
    (runs with ``size'``); otherwise the producer instance for
    ``(rel, mode)`` is resolved through the registry (``enumST`` /
    ``genST``, run with ``top_size``).  ``in_args`` are the argument
    terms at the producer's input positions, in position order.
    """

    rel: str
    mode: Mode
    in_args: tuple[Term, ...]
    binds: tuple[str, ...]
    recursive: bool = False

    def describe(self) -> str:
        how = "rec-produce" if self.recursive else "produce"
        outs = ", ".join(self.binds)
        ins = ", ".join(map(str, self.in_args))
        return f"{outs} <- {how} {self.rel}[{self.mode}]({ins})"


@dataclass(frozen=True)
class SInstantiate:
    """Bind *var* to an arbitrary inhabitant of *ty* via the
    unconstrained producer (enumeration / generation)."""

    var: str
    ty: TypeExpr

    def describe(self) -> str:
        return f"{self.var} <- arbitrary {self.ty}"


Step = Union[SCheckCall, SRecCheck, SEqCheck, SAssign, SMatch, SProduce, SInstantiate]


@dataclass(frozen=True)
class Handler:
    """The compiled form of one rule (the paper's per-constructor
    handler produced by CTR_LOOP)."""

    rule: str
    # Patterns for the *input* positions, in position order.
    in_patterns: tuple[Term, ...]
    steps: tuple[Step, ...]
    # Output expressions (conclusion terms at output positions).
    out_terms: tuple[Term, ...]
    # True when the rule mentions the relation itself (is_rec in
    # Algorithm 1): such handlers are skipped at size 0.
    recursive: bool

    def describe(self) -> str:
        lines = [f"handler {self.rule}{' (recursive)' if self.recursive else ''}:"]
        lines.append(
            "  match inputs with ("
            + ", ".join(map(str, self.in_patterns))
            + ")"
        )
        for step in self.steps:
            lines.append(f"  {step.describe()}")
        if self.out_terms:
            lines.append("  ret (" + ", ".join(map(str, self.out_terms)) + ")")
        else:
            lines.append("  ret true")
        return "\n".join(lines)


@dataclass(frozen=True)
class Schedule:
    """The derived program for ``(relation, mode)``."""

    rel: str
    mode: Mode
    handlers: tuple[Handler, ...]
    # Argument types at the output positions (for producers).
    out_types: tuple[TypeExpr, ...]
    # Which algorithm produced it ('core' = Algorithm 1, 'full').
    algorithm: str = "full"

    @property
    def base_handlers(self) -> tuple[Handler, ...]:
        return tuple(h for h in self.handlers if not h.recursive)

    @property
    def has_recursive_handlers(self) -> bool:
        return any(h.recursive for h in self.handlers)

    def describe(self) -> str:
        kind = "checker" if self.mode.is_checker else "producer"
        lines = [
            f"schedule for {self.rel} [{self.mode}] ({kind}, "
            f"algorithm={self.algorithm}):"
        ]
        for h in self.handlers:
            lines.append(_indent(h.describe(), 1))
        return "\n".join(lines)


def _indent(text: str, levels: int) -> str:
    pad = "  " * levels
    return "\n".join(pad + line for line in text.splitlines())
