"""Algorithm 1: the core checker derivation (Section 3).

The restricted baseline the paper evaluates against in Table 1.  It
targets relations over *constructor terms* only:

* every conclusion is a linear pattern — no repeated variables, no
  function calls;
* every universally quantified variable is bound in the conclusion
  (no existentials);
* premises are (non-negated) relation applications.

Within that class the derived checker is exactly the one the full
algorithm produces; the value of this module is the *predicate*
``algorithm1_supported`` (the Table 1 "Baseline" column) and an
independent, deliberately simple implementation of DERIVE_CHECKER /
CTR_LOOP to validate the full scheduler against.
"""

from __future__ import annotations

from ..core.context import Context
from ..core.errors import OutOfScopeError
from ..core.relations import EqPremise, Relation, RelPremise
from ..core.terms import contains_fun, is_linear
from .modes import Mode
from .schedule import Handler, SCheckCall, SRecCheck, Schedule
from .scheduler import check_in_scope


def algorithm1_unsupported_reasons(rel: Relation) -> list[str]:
    """Why Algorithm 1 cannot handle *rel* (empty list = supported)."""
    reasons: list[str] = []
    for rule in rel.rules:
        where = f"rule {rule.name!r}"
        if not is_linear(rule.conclusion):
            reasons.append(f"{where}: non-linear conclusion pattern")
        if any(contains_fun(t) for t in rule.conclusion):
            reasons.append(f"{where}: function call in conclusion")
        if rule.existential_variables():
            names = ", ".join(sorted(rule.existential_variables()))
            reasons.append(f"{where}: existential variables ({names})")
        for premise in rule.premises:
            if isinstance(premise, EqPremise):
                reasons.append(f"{where}: equality premise {premise}")
            elif premise.negated:
                reasons.append(f"{where}: negated premise {premise}")
            elif any(contains_fun(t) for t in premise.args):
                # Function calls in premises are fine for Algorithm 1
                # (they are simply evaluated), as the paper notes.
                pass
    return reasons


def algorithm1_supported(rel: Relation) -> bool:
    return not algorithm1_unsupported_reasons(rel)


def derive_checker_core(ctx: Context, rel_name: str) -> Schedule:
    """DERIVE_CHECKER (Algorithm 1), verbatim.

    Iterates the constructors, calls CTR_LOOP for each, and assembles
    the fixpoint structure.  Raises :class:`OutOfScopeError` outside
    the restricted class.
    """
    rel = ctx.relations.get(rel_name)
    check_in_scope(ctx, rel)
    reasons = algorithm1_unsupported_reasons(rel)
    if reasons:
        raise OutOfScopeError(
            f"Algorithm 1 cannot handle {rel_name!r}: " + "; ".join(reasons)
        )
    handlers = tuple(_ctr_loop(rel, rule) for rule in rel.rules)
    return Schedule(
        rel=rel_name,
        mode=Mode.checker(rel.arity),
        handlers=handlers,
        out_types=(),
        algorithm="core",
    )


def _ctr_loop(rel: Relation, rule) -> Handler:
    """CTR_LOOP: one pattern match over the conclusion, one check per
    premise (recursive for P itself, external otherwise)."""
    steps = []
    for premise in rule.premises:
        assert isinstance(premise, RelPremise) and not premise.negated
        if premise.rel == rel.name:
            steps.append(SRecCheck(premise.args))
        else:
            steps.append(SCheckCall(premise.rel, premise.args, False))
    return Handler(
        rule=rule.name,
        in_patterns=rule.conclusion,
        steps=tuple(steps),
        out_terms=(),
        recursive=rule.is_recursive_in(rel.name),
    )
