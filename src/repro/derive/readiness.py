"""Premise-readiness dataflow, shared by the scheduler and the linter.

The generalized derivation algorithm (Section 4) walks a rule's
premises maintaining a variable-knowledge map; whether a premise can
be processed yet — and which of its variables can never be bound by
matching — is pure dataflow over that map.  The scheduler
(:class:`repro.derive.scheduler._HandlerBuilder`) extends this class
with step emission; the static analyzer (:mod:`repro.analysis`) runs
the same dataflow *without* emitting steps, so its diagnostics are
guaranteed to describe exactly what the scheduler would do.
"""

from __future__ import annotations

from ..core.relations import Premise, Relation, RelPremise, Rule
from ..core.terms import Fun, Term, Var
from .modes import Mode, init_env


class RuleDataflow:
    """Variable-knowledge dataflow for one rule under one mode.

    Seeds the knowledge map from the conclusion's input-position
    patterns (Algorithm 2's INIT_ENV) and answers the readiness /
    matchability questions the scheduler asks while walking premises.
    """

    def __init__(self, rel: Relation, rule: Rule, mode: Mode) -> None:
        self.rel = rel
        self.rule = rule
        self.mode = mode
        self.vars = init_env(rule.conclusion, mode)

    # -- dataflow queries ---------------------------------------------------

    def funcall_blocked_vars(self, t: Term) -> list[str]:
        """Unknown variables occurring *under a function call* in *t* —
        these can never be bound by matching (compatibility's ⊥ case)
        and must be instantiated first."""
        out: list[str] = []

        def walk(node: Term, under_fun: bool) -> None:
            if isinstance(node, Var):
                if under_fun and not self.vars.is_known(node.name):
                    if node.name not in out:
                        out.append(node.name)
                return
            inside = under_fun or isinstance(node, Fun)
            for a in node.args:
                walk(a, inside)

        walk(t, False)
        return out

    def matchable(self, t: Term) -> bool:
        """Can *t* be used as a match pattern once funcall-blocked
        variables are instantiated?  (Any Fun subterm must then be
        fully known and is evaluated at match time.)"""
        return not self.funcall_blocked_vars(t)

    def premise_out_positions(self, premise: RelPremise) -> list[int]:
        """Argument positions of *premise* not yet fully known — the
        output positions of the producer mode a call would need at this
        point in the walk.  Shared by the scheduler (to pick the mode
        it emits) and the determinacy analysis (to name the mode whose
        functionality it certifies), so the two can never disagree
        about which mode a premise runs at."""
        return [
            i
            for i, arg in enumerate(premise.args)
            if not self.vars.term_known(arg)
        ]

    def premise_ready(self, premise: Premise) -> bool:
        """Equality premises wait until one side is computable; all
        other premises are handled in declaration order."""
        if isinstance(premise, RelPremise):
            return True
        lhs_known = self.vars.term_known(premise.lhs)
        rhs_known = self.vars.term_known(premise.rhs)
        if lhs_known and rhs_known:
            return True
        if premise.negated:
            return False
        if lhs_known and self.matchable(premise.rhs):
            return True
        if rhs_known and self.matchable(premise.lhs):
            return True
        return False
