"""Derivation engine: compile inductive relations into computations."""

from .api import derive, derive_checker, derive_enumerator, derive_generator
from .instances import (
    CHECKER,
    ENUM,
    GEN,
    Instance,
    register_checker,
    register_producer,
    resolve,
    resolve_checker,
)
from .interp_checker import DerivedChecker, HandwrittenChecker
from .interp_enum import DerivedEnumerator, HandwrittenEnumerator
from .interp_gen import DerivedGenerator, HandwrittenGenerator
from .memo import (
    clear_memo,
    derive_stats,
    disable_memoization,
    enable_memoization,
    memoization_enabled,
)
from .modes import Mode
from .plan import (
    Plan,
    PlanHandler,
    disable_functionalization,
    enable_functionalization,
    functionalization_enabled,
    lower_schedule,
)
from .stats import DeriveStats
from .trace import DeriveTrace, profile, trace_of
from .preprocess import preprocess_relation, preprocess_rule
from .schedule import Handler, Schedule
from .mutual import derive_mutual_checkers, mutual_components
from .scheduler import (
    DEFAULT_POLICY,
    PAPER_POLICY,
    DerivePolicy,
    build_schedule,
    required_instances,
)

__all__ = [
    "CHECKER",
    "DEFAULT_POLICY",
    "DerivePolicy",
    "DeriveStats",
    "DeriveTrace",
    "DerivedChecker",
    "DerivedEnumerator",
    "DerivedGenerator",
    "ENUM",
    "GEN",
    "Handler",
    "HandwrittenChecker",
    "HandwrittenEnumerator",
    "HandwrittenGenerator",
    "Instance",
    "Mode",
    "Plan",
    "PlanHandler",
    "Schedule",
    "build_schedule",
    "clear_memo",
    "derive",
    "derive_checker",
    "derive_enumerator",
    "derive_generator",
    "derive_mutual_checkers",
    "derive_stats",
    "disable_functionalization",
    "disable_memoization",
    "enable_functionalization",
    "enable_memoization",
    "functionalization_enabled",
    "lower_schedule",
    "memoization_enabled",
    "mutual_components",
    "PAPER_POLICY",
    "preprocess_relation",
    "preprocess_rule",
    "profile",
    "register_checker",
    "register_producer",
    "required_instances",
    "resolve",
    "resolve_checker",
    "trace_of",
]
