"""Derivation engine: compile inductive relations into computations."""

from .api import derive, derive_checker, derive_enumerator, derive_generator
from .instances import (
    CHECKER,
    ENUM,
    GEN,
    Instance,
    register_checker,
    register_producer,
    resolve,
    resolve_checker,
)
from .interp_checker import DerivedChecker
from .interp_enum import DerivedEnumerator
from .interp_gen import DerivedGenerator
from .modes import Mode
from .preprocess import preprocess_relation, preprocess_rule
from .schedule import Handler, Schedule
from .mutual import derive_mutual_checkers, mutual_components
from .scheduler import (
    DEFAULT_POLICY,
    PAPER_POLICY,
    DerivePolicy,
    build_schedule,
    required_instances,
)

__all__ = [
    "CHECKER",
    "DEFAULT_POLICY",
    "DerivePolicy",
    "DerivedChecker",
    "DerivedEnumerator",
    "DerivedGenerator",
    "ENUM",
    "GEN",
    "Handler",
    "Instance",
    "Mode",
    "Schedule",
    "build_schedule",
    "derive",
    "derive_checker",
    "derive_enumerator",
    "derive_generator",
    "derive_mutual_checkers",
    "mutual_components",
    "PAPER_POLICY",
    "preprocess_relation",
    "preprocess_rule",
    "register_checker",
    "register_producer",
    "required_instances",
    "resolve",
    "resolve_checker",
]
