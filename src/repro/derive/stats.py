"""Call-statistics instrumentation for derived computations.

A :class:`DeriveStats` object lives in ``ctx.caches['derive_stats']``
and counts what the derive hot path actually does: checker calls,
memo-table hits/misses, handler attempts, backtracks, fuel
exhaustions, and instance resolutions.  It is the observability half
of the memoization layer (:mod:`repro.derive.memo`); both are enabled
together by :func:`repro.derive.memo.enable_memoization`.

Zero-overhead disabled mode: when no stats object is installed, every
instrumentation site is a single ``ctx.caches.get(...)`` returning
``None`` followed by an ``is not None`` test — no counting, no wrapper
allocation.  Interpreters and the memo layer fetch the object through
:func:`stats_of` and guard each increment on it.
"""

from __future__ import annotations

from ..core.context import Context

STATS_KEY = "derive_stats"

#: counter name -> human description (drives as_dict/report ordering)
COUNTERS = (
    ("checker_calls", "top-level checker calls"),
    ("checker_cache_hits", "checker memo hits"),
    ("checker_cache_misses", "checker memo misses"),
    ("enum_calls", "external enumerator calls"),
    ("enum_cache_hits", "enumerator slice memo hits"),
    ("enum_cache_misses", "enumerator slice memo misses"),
    ("gen_calls", "external generator calls"),
    ("handler_attempts", "constructor handlers attempted"),
    ("backtracks", "handler attempts that failed (backtracking)"),
    ("fuel_exhaustions", "out-of-fuel answers observed"),
    ("external_resolutions", "instance registry resolutions"),
    ("analysis_runs", "static analysis gate runs"),
    ("invalidations", "memo-table invalidations (instance replaced)"),
    ("plan_lowerings", "schedules lowered to plans (cache misses)"),
    ("budget_trips", "resource-budget exhaustions (limit tripped)"),
    ("tainted_memo_skips", "memo writes skipped (exhaustion taint)"),
    ("cache_evictions", "memo entries evicted (cache-size cap)"),
    ("functionalized_calls", "functionalized premise evaluations (OP_EVALREL)"),
    ("inlined_frames", "premise call sites inlined by codegen (per compile)"),
)


class DeriveStats:
    """Mutable counters for one context's derived computations."""

    __slots__ = tuple(name for name, _ in COUNTERS)

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for name, _ in COUNTERS:
            setattr(self, name, 0)

    # -- aggregates -----------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        return self.checker_cache_hits + self.enum_cache_hits

    @property
    def cache_misses(self) -> int:
        return self.checker_cache_misses + self.enum_cache_misses

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    # -- reporting ------------------------------------------------------------

    def as_dict(self) -> dict[str, int]:
        out = {name: getattr(self, name) for name, _ in COUNTERS}
        out["cache_hits"] = self.cache_hits
        out["cache_misses"] = self.cache_misses
        return out

    def report(self) -> str:
        """A human-readable multi-line summary."""
        width = max(len(desc) for _, desc in COUNTERS)
        lines = ["DeriveStats:"]
        for name, desc in COUNTERS:
            lines.append(f"  {desc:<{width}}  {getattr(self, name):>10,}")
        total = self.cache_hits + self.cache_misses
        if total:
            lines.append(
                f"  {'memo hit rate':<{width}}  {self.hit_rate:>9.1%}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{name}={getattr(self, name)}"
            for name, _ in COUNTERS
            if getattr(self, name)
        )
        return f"DeriveStats({fields})"


def stats_of(ctx: Context) -> "DeriveStats | None":
    """The context's stats object, or ``None`` when instrumentation is
    disabled (the zero-overhead path)."""
    return ctx.caches.get(STATS_KEY)


def install_stats(ctx: Context) -> DeriveStats:
    """Install (or fetch) the context's stats object."""
    stats = ctx.caches.get(STATS_KEY)
    if stats is None:
        stats = ctx.caches[STATS_KEY] = DeriveStats()
    return stats


def remove_stats(ctx: Context) -> None:
    ctx.caches.pop(STATS_KEY, None)
