"""Derive-time profiling: per-handler execution traces.

:class:`DeriveStats` (:mod:`repro.derive.stats`) answers "how much work
happened"; this layer answers "*where*": per ``(backend, relation,
mode, rule)`` it counts handler attempts, successes, backtracks
(attempts that failed), and fuel-outs (attempts that ended
out-of-fuel).  That is the data needed to see which rule a generator
wastes its retries on, or which checker handler a dispatch index
should have filtered.

Zero overhead when off: every instrumentation site is one
``ctx.caches.get(TRACE_KEY)`` per ``rec`` level followed by ``is not
None`` guards — no wrappers, no allocation.  All four backends (the
three interpreters via :mod:`repro.derive.exec_core` and compiled code
via :mod:`repro.derive.codegen`) record into the same table, keyed the
same way, so traces from mixed-backend runs aggregate.

Usage::

    with profile(ctx) as tr:
        checker.decide(args)
    print(tr.report())
"""

from __future__ import annotations

from contextlib import contextmanager

from ..core.context import Context
from .stats import STATS_KEY, install_stats, remove_stats

TRACE_KEY = "derive_trace"

#: cache key of the span/metrics observer (owned by ``repro.observe``;
#: defined here so the executors need no import from that package)
OBSERVE_KEY = "derive_observe"

#: cache key of the resource budget (owned by ``repro.resilience``;
#: defined here, like OBSERVE_KEY, so the executors and the memo layer
#: can probe for an installed budget without importing that package)
BUDGET_KEY = "derive_budget"

#: per-entry counter layout
ATTEMPTS, SUCCESSES, BACKTRACKS, FUEL_OUTS = 0, 1, 2, 3

_FIELDS = ("attempts", "successes", "backtracks", "fuel_outs")


class DeriveTrace:
    """Mutable per-handler counters for one profiling session."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        # (backend, rel, mode_str, rule) -> [attempts, successes,
        #                                    backtracks, fuel_outs]
        self.entries: dict[tuple, list] = {}

    def record4(self, key: tuple, success: bool, fuel: bool) -> None:
        """Count one handler attempt.  *key* is the pre-merged
        ``(backend, rel, mode_str, rule)`` tuple — the lowered handler
        carries it (:attr:`~repro.derive.plan.PlanHandler.key_checker`
        and friends), so the hot path is a single dict lookup with no
        tuple allocation."""
        entry = self.entries.get(key)
        if entry is None:
            entry = self.entries[key] = [0, 0, 0, 0]
        entry[ATTEMPTS] += 1
        if success:
            entry[SUCCESSES] += 1
        else:
            entry[BACKTRACKS] += 1
        if fuel:
            entry[FUEL_OUTS] += 1

    def record(self, backend: str, key3: tuple, success: bool, fuel: bool) -> None:
        """Compatibility entry point merging the key per call; the
        executors use :meth:`record4` with pre-merged keys instead."""
        self.record4((backend, key3[0], key3[1], key3[2]), success, fuel)

    def reset(self) -> None:
        self.entries.clear()

    @property
    def total_attempts(self) -> int:
        return sum(e[ATTEMPTS] for e in self.entries.values())

    def as_dict(self) -> dict:
        """``{(backend, rel, mode, rule): {counter: n, ...}, ...}``"""
        return {
            key: dict(zip(_FIELDS, entry))
            for key, entry in self.entries.items()
        }

    def report(
        self,
        top: "int | None" = None,
        relation: "str | None" = None,
        stats=None,
    ) -> str:
        """A human-readable table, busiest handlers first.

        *top* keeps only the N busiest rows (with a "... more" footer);
        *relation* keeps rows of one relation — both matter for large
        corpora runs, where the full table runs to hundreds of rows.
        *stats* (a :class:`~repro.derive.stats.DeriveStats`, e.g. the
        one :func:`profile` installs) appends a footer with the
        transform counters the per-handler rows cannot show: premise
        evaluations functionalized away and call frames inlined by
        codegen.
        """
        rows = sorted(
            self.entries.items(), key=lambda kv: -kv[1][ATTEMPTS]
        )
        if relation is not None:
            rows = [kv for kv in rows if kv[0][1] == relation]
        if not rows:
            scope = f" for relation {relation!r}" if relation else ""
            empty = f"DeriveTrace: (no handler activity recorded{scope})"
            footer = self._stats_footer(stats)
            return "\n".join([empty, *footer]) if footer else empty
        hidden = 0
        if top is not None and top < len(rows):
            hidden = len(rows) - top
            rows = rows[:top]
        label_w = max(
            len(_label(key)) for key, _ in rows
        )
        lines = [
            "DeriveTrace (per handler):",
            f"  {'handler':<{label_w}} {'attempts':>9} {'success':>9}"
            f" {'backtrack':>9} {'fuel-out':>9}",
        ]
        for key, e in rows:
            lines.append(
                f"  {_label(key):<{label_w}} {e[ATTEMPTS]:>9,}"
                f" {e[SUCCESSES]:>9,} {e[BACKTRACKS]:>9,} {e[FUEL_OUTS]:>9,}"
            )
        if hidden:
            lines.append(f"  ... ({hidden} more handlers; pass top=None for all)")
        lines.extend(self._stats_footer(stats))
        return "\n".join(lines)

    @staticmethod
    def _stats_footer(stats) -> list[str]:
        """Transform-counter footer lines (empty without *stats*).

        These counters live on :class:`DeriveStats`, not in the
        per-handler table: a functionalized premise never reaches a
        handler (that is the point), and an inlined frame is a
        compile-time event with no runtime key to file it under.
        """
        if stats is None:
            return []
        return [
            f"  functionalized premise evaluations: "
            f"{stats.functionalized_calls:,}",
            f"  inlined premise frames (compile-time): "
            f"{stats.inlined_frames:,}",
        ]

    def __repr__(self) -> str:
        return (
            f"DeriveTrace({len(self.entries)} handlers, "
            f"{self.total_attempts} attempts)"
        )


def _label(key: tuple) -> str:
    backend, rel, mode, rule = key
    return f"{backend}:{rel}[{mode}].{rule}"


def trace_of(ctx: Context) -> "DeriveTrace | None":
    """The context's active trace, or ``None`` when profiling is off
    (the zero-overhead path)."""
    return ctx.caches.get(TRACE_KEY)


@contextmanager
def profile(ctx: Context):
    """Enable per-handler profiling for the dynamic extent of the
    ``with`` block; yields the :class:`DeriveTrace` being filled.

    Installs a :class:`~repro.derive.stats.DeriveStats` object too (the
    aggregate view) unless one is already installed — e.g. by
    :func:`~repro.derive.memo.enable_memoization` — in which case the
    existing object keeps counting and is left in place on exit.
    Nested ``profile`` blocks each get their own trace; the outer trace
    is restored (and misses the inner block's activity).
    """
    previous = ctx.caches.get(TRACE_KEY)
    trace = ctx.caches[TRACE_KEY] = DeriveTrace()
    installed_stats = ctx.caches.get(STATS_KEY) is None
    if installed_stats:
        install_stats(ctx)
    try:
        yield trace
    finally:
        if previous is None:
            ctx.caches.pop(TRACE_KEY, None)
        else:
            ctx.caches[TRACE_KEY] = previous
        if installed_stats:
            remove_stats(ctx)
