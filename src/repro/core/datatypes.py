"""Inductive datatype declarations.

A datatype declaration mirrors a Coq ``Inductive ... : Type`` command:

    Inductive type : Type :=
      | N : type
      | Arr : type -> type -> type.

Declarations may be polymorphic (``list A``).  The unconstrained
producers (``repro.producers.combinators``) consume these declarations
generically to enumerate or generate arbitrary inhabitants, and the
derivation engine uses constructor signatures to type the variables it
introduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from .errors import ArityError, DeclarationError, UnknownNameError
from .types import Ty, TypeExpr, TyVar, is_ground, subst_ty
from .values import Value


@dataclass(frozen=True)
class ConstructorSig:
    """One constructor of a datatype: name and argument types.

    ``arg_types`` may mention the datatype's parameters as
    :class:`TyVar`.  The result type is always the datatype applied to
    its parameters, so it is not stored.
    """

    name: str
    arg_types: tuple[TypeExpr, ...] = ()

    @property
    def arity(self) -> int:
        return len(self.arg_types)


@dataclass(frozen=True)
class DataType:
    """A (possibly polymorphic) inductive datatype declaration."""

    name: str
    params: tuple[str, ...] = ()
    constructors: tuple[ConstructorSig, ...] = ()

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for c in self.constructors:
            if c.name in seen:
                raise DeclarationError(
                    f"duplicate constructor {c.name!r} in datatype {self.name!r}"
                )
            seen.add(c.name)

    def constructor(self, name: str) -> ConstructorSig:
        for c in self.constructors:
            if c.name == name:
                return c
        raise UnknownNameError("constructor", name)

    def has_constructor(self, name: str) -> bool:
        return any(c.name == name for c in self.constructors)

    def constructor_arg_types(
        self, name: str, type_args: tuple[TypeExpr, ...] = ()
    ) -> tuple[TypeExpr, ...]:
        """Argument types of constructor *name* at the given instantiation
        of the datatype's parameters."""
        sig = self.constructor(name)
        if len(type_args) != len(self.params):
            raise ArityError(self.name, len(self.params), len(type_args))
        env: dict[str, TypeExpr] = dict(zip(self.params, type_args))
        return tuple(subst_ty(t, env) for t in sig.arg_types)

    def is_recursive_constructor(
        self, name: str
    ) -> bool:
        """True when the constructor mentions the datatype itself in one of
        its argument types (directly or under other type constructors)."""
        sig = self.constructor(name)
        return any(self._mentions_self(t) for t in sig.arg_types)

    def _mentions_self(self, t: TypeExpr) -> bool:
        if isinstance(t, TyVar):
            return False
        if t.name == self.name:
            return True
        return any(self._mentions_self(a) for a in t.args)

    @property
    def base_constructors(self) -> tuple[ConstructorSig, ...]:
        return tuple(
            c for c in self.constructors if not self.is_recursive_constructor(c.name)
        )

    @property
    def recursive_constructors(self) -> tuple[ConstructorSig, ...]:
        return tuple(
            c for c in self.constructors if self.is_recursive_constructor(c.name)
        )

    def applied(self, *type_args: TypeExpr) -> Ty:
        if len(type_args) != len(self.params):
            raise ArityError(self.name, len(self.params), len(type_args))
        return Ty(self.name, tuple(type_args))


class DataTypeRegistry:
    """Maps datatype names and constructor names to declarations."""

    def __init__(self) -> None:
        self._types: dict[str, DataType] = {}
        self._ctor_owner: dict[str, str] = {}

    def declare(self, dt: DataType) -> DataType:
        if dt.name in self._types:
            raise DeclarationError(f"datatype {dt.name!r} already declared")
        for c in dt.constructors:
            if c.name in self._ctor_owner:
                owner = self._ctor_owner[c.name]
                raise DeclarationError(
                    f"constructor {c.name!r} already declared by datatype {owner!r}"
                )
        self._types[dt.name] = dt
        for c in dt.constructors:
            self._ctor_owner[c.name] = dt.name
        return dt

    def get(self, name: str) -> DataType:
        try:
            return self._types[name]
        except KeyError:
            raise UnknownNameError("datatype", name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def is_constructor(self, name: str) -> bool:
        return name in self._ctor_owner

    def owner_of(self, ctor_name: str) -> DataType:
        try:
            return self._types[self._ctor_owner[ctor_name]]
        except KeyError:
            raise UnknownNameError("constructor", ctor_name) from None

    def constructor_sig(self, ctor_name: str) -> ConstructorSig:
        return self.owner_of(ctor_name).constructor(ctor_name)

    def __iter__(self) -> Iterator[DataType]:
        return iter(self._types.values())

    def names(self) -> list[str]:
        return sorted(self._types)

    # -- value checking -----------------------------------------------------

    def check_value(self, v: Value, expected: TypeExpr) -> bool:
        """Structurally check that value *v* inhabits ground type
        *expected*.  Used by validation to sanity-check produced data."""
        if not is_ground(expected) or isinstance(expected, TyVar):
            raise DeclarationError(f"cannot check value against open type {expected}")
        assert isinstance(expected, Ty)
        if expected.name not in self._types:
            raise UnknownNameError("datatype", expected.name)
        dt = self._types[expected.name]
        if not dt.has_constructor(v.ctor):
            return False
        arg_tys = dt.constructor_arg_types(v.ctor, expected.args)
        if len(arg_tys) != len(v.args):
            return False
        return all(self.check_value(a, t) for a, t in zip(v.args, arg_tys))


def datatype(name: str, params: tuple[str, ...] = (), **ctors: tuple[TypeExpr, ...]) -> DataType:
    """Convenience builder:

        datatype('type', N=(), Arr=(Ty('type'), Ty('type')))
    """
    sigs = tuple(ConstructorSig(c, tuple(ts)) for c, ts in ctors.items())
    return DataType(name, params, sigs)
