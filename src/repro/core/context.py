"""Declaration context: the "global environment" of a development.

A :class:`Context` bundles the datatype, function, and relation
registries plus an instance table (used by ``repro.derive.instances``
for typeclass-style resolution of checkers and producers).  Most public
APIs accept an explicit context; tests build isolated ones, while the
examples and the Software Foundations corpus share the default context
produced by :func:`~repro.stdlib.standard_context`.
"""

from __future__ import annotations

from typing import Any, Callable

from .datatypes import DataType, DataTypeRegistry
from .errors import DeclarationError
from .functions import FunctionDecl, FunctionRegistry
from .relations import Relation, RelationRegistry
from .types import TypeExpr


class Context:
    """A mutable collection of declarations."""

    def __init__(self) -> None:
        self.datatypes = DataTypeRegistry()
        self.functions = FunctionRegistry()
        self.relations = RelationRegistry()
        # (key -> instance); owned by repro.derive.instances.
        self.instances: dict[Any, Any] = {}
        # Caches keyed by arbitrary tokens (schedules, enum tables, ...).
        self.caches: dict[Any, Any] = {}

    # -- declaration helpers -------------------------------------------------

    def declare_datatype(self, dt: DataType) -> DataType:
        return self.datatypes.declare(dt)

    def declare_function(
        self,
        name: str,
        arg_types: tuple[TypeExpr, ...],
        result_type: TypeExpr,
        impl: Callable[..., Any],
    ) -> FunctionDecl:
        return self.functions.declare(
            FunctionDecl(name, tuple(arg_types), result_type, impl)
        )

    def declare_relation(self, rel: Relation, infer_types: bool = True) -> Relation:
        """Declare *rel*, running rule-variable type inference first
        (unless the caller supplies fully annotated rules)."""
        if infer_types:
            from .typecheck import infer_relation_types

            rel = infer_relation_types(rel, self)
        return self.relations.declare(rel)

    def classify_name(self, name: str) -> str:
        """Classify an identifier as 'constructor', 'function',
        'relation', or 'variable' — used by the surface parser."""
        if self.datatypes.is_constructor(name):
            return "constructor"
        if name in self.functions:
            return "function"
        if name in self.relations:
            return "relation"
        return "variable"

    def fork(self) -> "Context":
        """A shallow-ish copy sharing no registries with the original.

        Declarations present at fork time are visible in the copy;
        later declarations on either side are independent.  Instance
        and cache tables start empty in the copy (instances close over
        the context, so sharing them would be unsound).
        """
        child = Context()
        for dt in self.datatypes:
            child.datatypes.declare(dt)
        for fn in self.functions:
            child.functions.declare(fn)
        for rel in self.relations:
            child.relations.declare(rel)
        return child
