"""Declaration context: the "global environment" of a development.

A :class:`Context` bundles the datatype, function, and relation
registries plus an instance table (used by ``repro.derive.instances``
for typeclass-style resolution of checkers and producers).  Most public
APIs accept an explicit context; tests build isolated ones, while the
examples and the Software Foundations corpus share the default context
produced by :func:`~repro.stdlib.standard_context`.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from .datatypes import DataType, DataTypeRegistry
from .errors import DeclarationError
from .functions import FunctionDecl, FunctionRegistry
from .relations import Relation, RelationRegistry
from .session import Session, current_session, new_session_var, use_session
from .types import TypeExpr


class Context:
    """A mutable collection of declarations."""

    def __init__(self) -> None:
        self.datatypes = DataTypeRegistry()
        self.functions = FunctionRegistry()
        self.relations = RelationRegistry()
        # (key -> instance); owned by repro.derive.instances.
        self.instances: dict[Any, Any] = {}
        # Shared derived artifacts (schedules, lowered plans, analysis
        # reports, determinacy verdicts, ...): pure functions of the
        # declarations, computed once and shared by every session.
        self.artifacts: dict[Any, Any] = {}
        # Serializes first-use derivation on a shared context
        # (repro.derive.instances.resolve); lookups stay lock-free.
        self._derive_lock = threading.RLock()
        # Session routing: ``caches`` resolves to the current session's
        # state (see repro.core.session).  The default ambient session
        # keeps single-caller code working unchanged.
        self._default_session = Session(self, name="default")
        self._session_var = new_session_var()

    # -- session-scoped runtime state ----------------------------------------

    @property
    def caches(self) -> dict[Any, Any]:
        """The *current session's* runtime-state dict (memo tables,
        stats, budget, trace/observe hooks, resolve stack).

        Mutable per-run state only — derived artifacts live in
        :attr:`artifacts`.  Which session is current is a
        per-thread/per-task binding; see :mod:`repro.core.session`.
        """
        s = self._session_var.get()
        return (self._default_session if s is None else s).state

    @property
    def session(self) -> Session:
        """The current :class:`~repro.core.session.Session`."""
        return current_session(self)

    def new_session(self, name: "str | None" = None) -> Session:
        """A fresh, inactive session on this context (activate it with
        :func:`~repro.core.session.use_session`)."""
        return Session(self, name)

    def use_session(self, session: "Session | None" = None):
        """Shorthand for :func:`repro.core.session.use_session`."""
        return use_session(self, session)

    # -- declaration helpers -------------------------------------------------

    def declare_datatype(self, dt: DataType) -> DataType:
        return self.datatypes.declare(dt)

    def declare_function(
        self,
        name: str,
        arg_types: tuple[TypeExpr, ...],
        result_type: TypeExpr,
        impl: Callable[..., Any],
    ) -> FunctionDecl:
        return self.functions.declare(
            FunctionDecl(name, tuple(arg_types), result_type, impl)
        )

    def declare_relation(self, rel: Relation, infer_types: bool = True) -> Relation:
        """Declare *rel*, running rule-variable type inference first
        (unless the caller supplies fully annotated rules)."""
        if infer_types:
            from .typecheck import infer_relation_types

            rel = infer_relation_types(rel, self)
        return self.relations.declare(rel)

    def classify_name(self, name: str) -> str:
        """Classify an identifier as 'constructor', 'function',
        'relation', or 'variable' — used by the surface parser."""
        if self.datatypes.is_constructor(name):
            return "constructor"
        if name in self.functions:
            return "function"
        if name in self.relations:
            return "relation"
        return "variable"

    def fork(self) -> "Context":
        """A shallow-ish copy sharing no registries with the original.

        Declarations present at fork time are visible in the copy;
        later declarations on either side are independent.  Instance,
        artifact, and session state start empty in the copy (instances
        close over the context, so sharing them would be unsound).
        This is the cheap full-isolation path for per-worker contexts:
        forked workers share *nothing* mutable, so they need no
        sessions or locks between each other.
        """
        child = Context()
        for dt in self.datatypes:
            child.datatypes.declare(dt)
        for fn in self.functions:
            child.functions.declare(fn)
        for rel in self.relations:
            child.relations.declare(rel)
        return child
