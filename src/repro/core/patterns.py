"""Linear pattern matching of runtime values against terms.

After preprocessing (Section 3.1) every rule conclusion is a *linear
constructor pattern*: variables and constructor applications where each
variable occurs at most once and no function calls appear.  Matching a
tuple of input values against such patterns either fails or produces a
binding of pattern variables to sub-values — exactly the semantics of
the pattern matches the derived fixpoints perform.
"""

from __future__ import annotations

from typing import Mapping

from .errors import DeclarationError
from .terms import Ctor, Fun, Term, Var, free_vars
from .values import Value


def check_pattern(t: Term) -> None:
    """Raise :class:`DeclarationError` unless *t* is a valid pattern
    (no function calls; linearity is checked across tuples by callers)."""
    if isinstance(t, Fun):
        raise DeclarationError(f"function call {t} is not a valid pattern")
    if isinstance(t, Ctor):
        for a in t.args:
            check_pattern(a)


def match(pattern: Term, value: Value, binding: dict[str, Value]) -> bool:
    """Match *value* against *pattern*, extending *binding* in place.

    Returns False on mismatch; *binding* may then contain partial
    entries (callers discard it on failure).  Repeated variables are
    treated as equality constraints, so `match` is also correct on
    non-linear patterns — though the derivation pipeline never emits
    them (it normalizes to equality premises instead, which lets the
    validation layer compare both treatments).
    """
    if isinstance(pattern, Var):
        bound = binding.get(pattern.name)
        if bound is None:
            binding[pattern.name] = value
            return True
        return bound == value
    if isinstance(pattern, Fun):
        raise DeclarationError(f"function call {pattern} in pattern position")
    if pattern.name != value.ctor or len(pattern.args) != len(value.args):
        return False
    for sub_pattern, sub_value in zip(pattern.args, value.args):
        if not match(sub_pattern, sub_value, binding):
            return False
    return True


def match_all(
    patterns: tuple[Term, ...], values: tuple[Value, ...]
) -> dict[str, Value] | None:
    """Match a tuple of values against a tuple of patterns; return the
    binding on success, None on mismatch."""
    if len(patterns) != len(values):
        return None
    binding: dict[str, Value] = {}
    for p, v in zip(patterns, values):
        if not match(p, v, binding):
            return None
    return binding


def instantiate(pattern: Term, binding: Mapping[str, Value]) -> Value:
    """Build the value denoted by *pattern* under a complete binding.

    The inverse of :func:`match`; fails on unbound variables or
    function calls.
    """
    if isinstance(pattern, Var):
        try:
            return binding[pattern.name]
        except KeyError:
            raise DeclarationError(
                f"pattern variable {pattern.name!r} unbound at instantiation"
            ) from None
    if isinstance(pattern, Fun):
        raise DeclarationError(f"function call {pattern} in pattern position")
    return Value(pattern.name, tuple(instantiate(a, binding) for a in pattern.args))
