"""Runtime values: closed first-order constructor terms.

A :class:`Value` is an application of a datatype constructor to other
values — the runtime representation of Coq's canonical forms.  Values
are immutable, hashable, and structurally comparable, so they can be
used as dictionary keys (required by the memoizing enumerators and the
bounded proof-search tables).

Conversion helpers bridge the standard-library encodings (Peano
naturals, cons-lists, booleans, options, pairs) to native Python data.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator


class Value:
    """An application ``C v1 .. vn`` of constructor ``C`` to values."""

    __slots__ = ("ctor", "args", "_hash")

    def __init__(self, ctor: str, args: tuple["Value", ...] = ()) -> None:
        self.ctor = ctor
        self.args = args
        self._hash = hash((ctor, args))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Value):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.ctor == other.ctor
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Value({self!s})"

    def __str__(self) -> str:
        return render(self)

    def size(self) -> int:
        """Number of constructor nodes in the value."""
        total = 1
        for a in self.args:
            total += a.size()
        return total

    def depth(self) -> int:
        """Height of the value seen as a tree (leaf = 1)."""
        if not self.args:
            return 1
        return 1 + max(a.depth() for a in self.args)


def V(ctor: str, *args: Value) -> Value:
    """Shorthand constructor: ``V('S', V('O'))``."""
    return Value(ctor, tuple(args))


# ---------------------------------------------------------------------------
# Standard-library encodings.
# ---------------------------------------------------------------------------

TRUE = V("true")
FALSE = V("false")
TT = V("tt")
NIL = V("nil")
ZERO = V("O")


def from_bool(b: bool) -> Value:
    return TRUE if b else FALSE


def to_bool(v: Value) -> bool:
    if v.ctor == "true":
        return True
    if v.ctor == "false":
        return False
    raise ValueError(f"not a boolean value: {v}")


def from_int(n: int) -> Value:
    """Encode a non-negative Python int as a Peano natural."""
    if n < 0:
        raise ValueError(f"naturals are non-negative, got {n}")
    v = ZERO
    for _ in range(n):
        v = Value("S", (v,))
    return v


def to_int(v: Value) -> int:
    """Decode a Peano natural to a Python int."""
    n = 0
    while v.ctor == "S":
        n += 1
        v = v.args[0]
    if v.ctor != "O":
        raise ValueError(f"not a natural value: {v}")
    return n


def from_list(items: Iterable[Value]) -> Value:
    """Encode a Python iterable of values as a cons-list."""
    acc = NIL
    for item in reversed(list(items)):
        acc = Value("cons", (item, acc))
    return acc


def to_list(v: Value) -> list[Value]:
    """Decode a cons-list to a Python list."""
    out: list[Value] = []
    while v.ctor == "cons":
        out.append(v.args[0])
        v = v.args[1]
    if v.ctor != "nil":
        raise ValueError(f"not a list value: {v}")
    return out


def iter_list(v: Value) -> Iterator[Value]:
    while v.ctor == "cons":
        yield v.args[0]
        v = v.args[1]
    if v.ctor != "nil":
        raise ValueError(f"not a list value: {v}")


def from_option(v: Value | None) -> Value:
    return V("Some", v) if v is not None else V("None")


def to_option(v: Value) -> Value | None:
    if v.ctor == "Some":
        return v.args[0]
    if v.ctor == "None":
        return None
    raise ValueError(f"not an option value: {v}")


def from_pair(a: Value, b: Value) -> Value:
    return V("pair", a, b)


def to_pair(v: Value) -> tuple[Value, Value]:
    if v.ctor == "pair":
        return v.args[0], v.args[1]
    raise ValueError(f"not a pair value: {v}")


def nat_list(ns: Iterable[int]) -> Value:
    """Encode a Python iterable of ints as a ``list nat`` value."""
    return from_list([from_int(n) for n in ns])


def to_nat_list(v: Value) -> list[int]:
    return [to_int(x) for x in to_list(v)]


# ---------------------------------------------------------------------------
# Pretty printing.
# ---------------------------------------------------------------------------

def render(v: Value) -> str:
    """Human-readable rendering that folds standard encodings back into
    familiar notation (numerals, list brackets, booleans)."""
    folded = _render_special(v)
    if folded is not None:
        return folded
    if not v.args:
        return v.ctor
    parts = " ".join(_render_atom(a) for a in v.args)
    return f"{v.ctor} {parts}"


def _render_atom(v: Value) -> str:
    text = render(v)
    if v.args and _render_special(v) is None:
        return f"({text})"
    return text


def _render_special(v: Value) -> str | None:
    if v.ctor in ("O", "S"):
        try:
            return str(to_int(v))
        except ValueError:
            return None
    if v.ctor in ("nil", "cons"):
        try:
            items = to_list(v)
        except ValueError:
            return None
        return "[" + "; ".join(render(x) for x in items) + "]"
    if v.ctor == "pair" and len(v.args) == 2:
        return f"({render(v.args[0])}, {render(v.args[1])})"
    return None


def value_to_python(v: Value) -> Any:
    """Best-effort decoding of a value into native Python data
    (ints, bools, lists, tuples, None); falls back to the value itself."""
    if v.ctor in ("O", "S"):
        try:
            return to_int(v)
        except ValueError:
            return v
    if v.ctor in ("true", "false"):
        return to_bool(v)
    if v.ctor in ("nil", "cons"):
        try:
            return [value_to_python(x) for x in to_list(v)]
        except ValueError:
            return v
    if v.ctor == "pair" and len(v.args) == 2:
        return tuple(value_to_python(a) for a in v.args)
    if v.ctor == "Some" and len(v.args) == 1:
        return value_to_python(v.args[0])
    return v
