"""Type expressions for the first-order term language.

The paper targets relations whose arguments range over first-order
inductive datatypes (``nat``, ``list nat``, STLC ``type``/``term`` …).
Type expressions here are either applications of a named type
constructor to type arguments (:class:`Ty`) or type variables
(:class:`TyVar`) appearing in polymorphic datatype / relation
declarations.  Relations are monomorphized before derivation (see
``repro.core.relations.Relation.instantiate``), so the derivation engine
only ever sees ground types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Union

TypeExpr = Union["Ty", "TyVar"]


@dataclass(frozen=True)
class Ty:
    """Application of a type constructor: ``Ty('list', (Ty('nat'),))``."""

    name: str
    args: tuple[TypeExpr, ...] = ()

    def __str__(self) -> str:
        if not self.args:
            return self.name
        parts = " ".join(_atom_str(a) for a in self.args)
        return f"{self.name} {parts}"

    def __repr__(self) -> str:
        return f"Ty({str(self)!r})"


@dataclass(frozen=True)
class TyVar:
    """A type variable bound by a datatype or relation parameter list."""

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"TyVar({self.name!r})"


def _atom_str(t: TypeExpr) -> str:
    text = str(t)
    if isinstance(t, Ty) and t.args:
        return f"({text})"
    return text


def is_ground(t: TypeExpr) -> bool:
    """True when *t* contains no type variables."""
    if isinstance(t, TyVar):
        return False
    return all(is_ground(a) for a in t.args)


def free_tyvars(t: TypeExpr) -> Iterator[str]:
    """Yield the names of the type variables occurring in *t* (with
    repetitions, in left-to-right order)."""
    if isinstance(t, TyVar):
        yield t.name
        return
    for a in t.args:
        yield from free_tyvars(a)


def subst_ty(t: TypeExpr, env: Mapping[str, TypeExpr]) -> TypeExpr:
    """Substitute type variables in *t* according to *env*.

    Variables absent from *env* are left untouched.
    """
    if isinstance(t, TyVar):
        return env.get(t.name, t)
    if not t.args:
        return t
    return Ty(t.name, tuple(subst_ty(a, env) for a in t.args))


def mangle(t: TypeExpr) -> str:
    """A flat name for a ground type, used to key monomorphized
    relations and generic instances: ``list nat`` ↦ ``list<nat>``."""
    if isinstance(t, TyVar):
        return f"?{t.name}"
    if not t.args:
        return t.name
    inner = ",".join(mangle(a) for a in t.args)
    return f"{t.name}<{inner}>"


# Commonly used ground types, shared across the standard library.
NAT = Ty("nat")
BOOL = Ty("bool")
UNIT = Ty("unit")
PROP = Ty("Prop")


def list_of(t: TypeExpr) -> Ty:
    return Ty("list", (t,))


def option_of(t: TypeExpr) -> Ty:
    return Ty("option", (t,))


def pair_of(a: TypeExpr, b: TypeExpr) -> Ty:
    return Ty("prod", (a, b))
