"""Exception hierarchy for the repro library.

Every error raised by this library derives from :class:`ReproError`, so
downstream users can catch library failures without also catching Python
built-ins.  The sub-hierarchy mirrors the pipeline stages: declaring
datatypes and relations, parsing surface syntax, deriving computations,
and validating them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DeclarationError(ReproError):
    """An ill-formed datatype, function, or relation declaration."""


class UnknownNameError(DeclarationError):
    """A name (constructor, function, relation, datatype) is not in scope."""

    def __init__(self, kind: str, name: str) -> None:
        super().__init__(f"unknown {kind}: {name!r}")
        self.kind = kind
        self.name = name


class ArityError(DeclarationError):
    """A constructor, function, or relation applied to the wrong
    number of arguments."""

    def __init__(self, name: str, expected: int, got: int) -> None:
        super().__init__(f"{name!r} expects {expected} argument(s), got {got}")
        self.name = name
        self.expected = expected
        self.got = got


class TypeMismatchError(DeclarationError):
    """A term does not have the type its position requires."""


class ParseError(ReproError):
    """Surface-syntax parse failure, with location information."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class DerivationError(ReproError):
    """The derivation algorithm cannot handle the given relation/mode."""


class OutOfScopeError(DerivationError):
    """The relation is outside the class the algorithm targets
    (e.g. higher-order arguments, let-bound premises)."""


class UnsatisfiableModeError(DerivationError):
    """No schedule exists for the requested mode (e.g. a premise variable
    can never be instantiated)."""


class AnalysisError(DerivationError):
    """Static analysis (``repro.analysis``) rejected a relation/mode
    before derivation, carrying the structured diagnostics.

    Subclasses :class:`DerivationError` so callers that caught the old
    generic scheduling failures keep working; the ``diagnostics``
    attribute holds the :class:`repro.analysis.Diagnostic` objects and
    the message is their rendered text.
    """

    def __init__(self, message: str, diagnostics: tuple = ()) -> None:
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class InstanceNotFoundError(DerivationError):
    """Typeclass-style instance lookup failed and auto-derivation is off."""

    def __init__(self, key: object) -> None:
        super().__init__(f"no instance registered for {key}")
        self.key = key


class ValidationError(ReproError):
    """Translation validation found a discrepancy between a derived
    computation and its source relation."""


class EvaluationError(ReproError):
    """A registered function failed at runtime (e.g. partial function
    applied outside its domain)."""
