"""Open terms: the expression language of rule declarations.

Constructors of an inductive relation mention *terms* — variables,
constructor applications, and function calls — both in their premises
and in their conclusion (the paper's grammar, Section 1):

    Inductive P (A1 ... : Type) : T1 -> ... -> Prop :=
      | C1 : forall x1 ..., (Q1 e11 ...) -> ... -> P e1 ... en | ...

This module defines that term language together with the standard
operations the derivation engine needs: free variables, substitution,
ground evaluation, and conversion between terms and runtime values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Union

from .errors import EvaluationError
from .values import Value

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .context import Context

Term = Union["Var", "Ctor", "Fun"]


@dataclass(frozen=True)
class Var:
    """A term variable, bound by a rule's ``forall`` binder."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Ctor:
    """A fully applied datatype constructor."""

    name: str
    args: tuple[Term, ...] = ()

    def __str__(self) -> str:
        if not self.args:
            return self.name
        return f"{self.name} " + " ".join(_atom(a) for a in self.args)


@dataclass(frozen=True)
class Fun:
    """A fully applied (interpreted) function call, e.g. ``n * n``."""

    name: str
    args: tuple[Term, ...] = ()

    def __str__(self) -> str:
        if not self.args:
            return self.name
        return f"{self.name} " + " ".join(_atom(a) for a in self.args)


def _atom(t: Term) -> str:
    if isinstance(t, (Ctor, Fun)) and t.args:
        return f"({t})"
    return str(t)


def C(name: str, *args: Term) -> Ctor:
    """Shorthand: ``C('S', Var('n'))``."""
    return Ctor(name, tuple(args))


def F(name: str, *args: Term) -> Fun:
    return Fun(name, tuple(args))


# ---------------------------------------------------------------------------
# Structural queries.
# ---------------------------------------------------------------------------

def free_vars(t: Term) -> Iterator[str]:
    """Yield free variable names left-to-right, with repetitions.

    Repetitions matter: the preprocessing phase detects non-linear
    patterns by looking for duplicate occurrences.
    """
    if isinstance(t, Var):
        yield t.name
        return
    for a in t.args:
        yield from free_vars(a)


def var_set(t: Term) -> frozenset[str]:
    return frozenset(free_vars(t))


def var_set_all(ts: Iterable[Term]) -> frozenset[str]:
    names: set[str] = set()
    for t in ts:
        names.update(free_vars(t))
    return frozenset(names)


def is_constructor_term(t: Term) -> bool:
    """True when *t* consists only of variables and constructors — the
    restricted "core" class of Section 3 (no function calls)."""
    if isinstance(t, Var):
        return True
    if isinstance(t, Fun):
        return False
    return all(is_constructor_term(a) for a in t.args)


def is_linear(ts: Iterable[Term]) -> bool:
    """True when no variable occurs twice across the given terms."""
    seen: set[str] = set()
    for t in ts:
        for name in free_vars(t):
            if name in seen:
                return False
            seen.add(name)
    return True


def contains_fun(t: Term) -> bool:
    if isinstance(t, Fun):
        return True
    if isinstance(t, Var):
        return False
    return any(contains_fun(a) for a in t.args)


def term_size(t: Term) -> int:
    if isinstance(t, Var):
        return 1
    return 1 + sum(term_size(a) for a in t.args)


# ---------------------------------------------------------------------------
# Substitution and evaluation.
# ---------------------------------------------------------------------------

def subst(t: Term, env: Mapping[str, Term]) -> Term:
    """Capture-free substitution of variables (terms are binder-free)."""
    if isinstance(t, Var):
        return env.get(t.name, t)
    if isinstance(t, Ctor):
        return Ctor(t.name, tuple(subst(a, env) for a in t.args))
    return Fun(t.name, tuple(subst(a, env) for a in t.args))


def value_to_term(v: Value) -> Ctor:
    """Inject a runtime value back into the term language."""
    return Ctor(v.ctor, tuple(value_to_term(a) for a in v.args))


def term_to_value(t: Term) -> Value:
    """Project a ground, function-free term to a value.

    Raises :class:`EvaluationError` if the term has free variables or
    function calls (use :func:`evaluate` for those).
    """
    if isinstance(t, Var):
        raise EvaluationError(f"term has a free variable: {t.name}")
    if isinstance(t, Fun):
        raise EvaluationError(f"term has an unevaluated function call: {t}")
    return Value(t.name, tuple(term_to_value(a) for a in t.args))


def evaluate(t: Term, env: Mapping[str, Value], ctx: "Context") -> Value:
    """Evaluate *t* to a value under *env*, interpreting function calls
    through the context's function registry."""
    if isinstance(t, Var):
        try:
            return env[t.name]
        except KeyError:
            raise EvaluationError(f"unbound variable {t.name!r}") from None
    args = tuple(evaluate(a, env, ctx) for a in t.args)
    if isinstance(t, Ctor):
        return Value(t.name, args)
    fn = ctx.functions.get(t.name)
    if fn is None:
        raise EvaluationError(f"unknown function {t.name!r}")
    return fn.apply(args)


def try_evaluate(t: Term, env: Mapping[str, Value], ctx: "Context") -> Value | None:
    """Like :func:`evaluate` but returns ``None`` on failure (partial
    functions, unbound variables)."""
    try:
        return evaluate(t, env, ctx)
    except EvaluationError:
        return None
