"""Type inference for rule variables.

Surface declarations bind rule variables without annotations
(``forall n m, ...``), but the scheduler needs every variable's type:
existentially quantified variables may have to be instantiated by an
*unconstrained* producer for their type (Section 4).  This module
infers those types by unification, in the style of algorithm-W
restricted to our first-order setting:

* conclusion argument *i* has the relation's *i*-th argument type;
* each premise argument has the corresponding declared type;
* both sides of an equality premise share a type (recorded on the
  premise for the equality checker/producer to use);
* constructor and function applications propagate their signatures,
  instantiating datatype / function type parameters freshly per use.

Flexible unification variables are :class:`TyVar` with a ``?`` prefix;
rigid type variables (parameters of a polymorphic relation) never
unify with anything but themselves.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping

from .context import Context
from .errors import ArityError, TypeMismatchError, UnknownNameError
from .relations import EqPremise, Premise, Relation, RelPremise, Rule
from .terms import Ctor, Fun, Term, Var
from .types import Ty, TypeExpr, TyVar

TySubst = dict[str, TypeExpr]


class _MetaSupply:
    def __init__(self) -> None:
        self._next = 0

    def fresh(self) -> TyVar:
        self._next += 1
        return TyVar(f"?{self._next}")


def _is_flexible(t: TypeExpr) -> bool:
    return isinstance(t, TyVar) and t.name.startswith("?")


def ty_walk(t: TypeExpr, s: Mapping[str, TypeExpr]) -> TypeExpr:
    while _is_flexible(t):
        bound = s.get(t.name)  # type: ignore[union-attr]
        if bound is None:
            return t
        t = bound
    return t


def ty_resolve(t: TypeExpr, s: Mapping[str, TypeExpr]) -> TypeExpr:
    t = ty_walk(t, s)
    if isinstance(t, TyVar):
        return t
    if not t.args:
        return t
    return Ty(t.name, tuple(ty_resolve(a, s) for a in t.args))


def ty_unify(a: TypeExpr, b: TypeExpr, s: TySubst, where: str) -> None:
    """Destructively unify *a* and *b* in substitution *s*; raise
    :class:`TypeMismatchError` (mentioning *where*) on clash."""
    a = ty_walk(a, s)
    b = ty_walk(b, s)
    if isinstance(a, TyVar) and isinstance(b, TyVar) and a.name == b.name:
        return
    if _is_flexible(a):
        s[a.name] = b  # type: ignore[union-attr]
        return
    if _is_flexible(b):
        s[b.name] = a  # type: ignore[union-attr]
        return
    if isinstance(a, TyVar) or isinstance(b, TyVar):
        raise TypeMismatchError(f"{where}: cannot unify {a} with {b}")
    if a.name != b.name or len(a.args) != len(b.args):
        raise TypeMismatchError(f"{where}: cannot unify {a} with {b}")
    for x, y in zip(a.args, b.args):
        ty_unify(x, y, s, where)


def _instantiate_params(
    params: tuple[str, ...], tys: tuple[TypeExpr, ...], metas: _MetaSupply
) -> tuple[TypeExpr, ...]:
    """Replace datatype/function parameters with fresh metavariables."""
    if not params:
        return tys
    from .types import subst_ty

    env: dict[str, TypeExpr] = {p: metas.fresh() for p in params}
    return tuple(subst_ty(t, env) for t in tys)


class _RuleChecker:
    def __init__(self, rel: Relation, ctx: Context) -> None:
        self.rel = rel
        self.ctx = ctx
        self.metas = _MetaSupply()
        self.subst: TySubst = {}
        self.var_tys: dict[str, TypeExpr] = {}

    def var_type(self, name: str) -> TypeExpr:
        if name not in self.var_tys:
            self.var_tys[name] = self.metas.fresh()
        return self.var_tys[name]

    def check_term(self, t: Term, expected: TypeExpr, where: str) -> None:
        if isinstance(t, Var):
            ty_unify(self.var_type(t.name), expected, self.subst, where)
            return
        if isinstance(t, Ctor):
            if not self.ctx.datatypes.is_constructor(t.name):
                raise UnknownNameError("constructor", t.name)
            dt = self.ctx.datatypes.owner_of(t.name)
            sig = dt.constructor(t.name)
            if len(t.args) != sig.arity:
                raise ArityError(t.name, sig.arity, len(t.args))
            # Result type is dt applied to fresh metas; argument types
            # are the signature under the same instantiation.
            fresh = tuple(self.metas.fresh() for _ in dt.params)
            from .types import subst_ty

            env = dict(zip(dt.params, fresh))
            result = Ty(dt.name, fresh)
            ty_unify(result, expected, self.subst, where)
            for arg, arg_ty in zip(t.args, sig.arg_types):
                self.check_term(arg, subst_ty(arg_ty, env), where)
            return
        # Function call.
        decl = self.ctx.functions.get(t.name)
        if decl is None:
            raise UnknownNameError("function", t.name)
        if len(t.args) != decl.arity:
            raise ArityError(t.name, decl.arity, len(t.args))
        # Instantiate any type variables in the signature freshly.
        from .types import free_tyvars, subst_ty

        params = tuple(
            dict.fromkeys(
                name
                for sig_ty in (*decl.arg_types, decl.result_type)
                for name in free_tyvars(sig_ty)
            )
        )
        env = {p: self.metas.fresh() for p in params}
        ty_unify(subst_ty(decl.result_type, env), expected, self.subst, where)
        for arg, arg_ty in zip(t.args, decl.arg_types):
            self.check_term(arg, subst_ty(arg_ty, env), where)

    def premise_arg_types(self, p: RelPremise) -> tuple[TypeExpr, ...]:
        if p.rel == self.rel.name:
            target = self.rel
        else:
            target = self.ctx.relations.get(p.rel)
        if len(p.args) != target.arity:
            raise ArityError(p.rel, target.arity, len(p.args))
        return _instantiate_params(target.params, target.arg_types, self.metas)

    def check_rule(self, rule: Rule) -> Rule:
        where_base = f"{self.rel.name}.{rule.name}"
        eq_metas: list[tuple[EqPremise, TypeExpr]] = []
        new_premises: list[Premise] = []
        for i, p in enumerate(rule.premises):
            where = f"{where_base} premise {i + 1}"
            if isinstance(p, RelPremise):
                for arg, arg_ty in zip(p.args, self.premise_arg_types(p)):
                    self.check_term(arg, arg_ty, where)
                new_premises.append(p)
            else:
                shared = self.metas.fresh()
                self.check_term(p.lhs, shared, where)
                self.check_term(p.rhs, shared, where)
                eq_metas.append((p, shared))
                new_premises.append(p)  # placeholder, patched below
        where = f"{where_base} conclusion"
        if len(rule.conclusion) != self.rel.arity:
            raise ArityError(self.rel.name, self.rel.arity, len(rule.conclusion))
        for arg, arg_ty in zip(rule.conclusion, self.rel.arg_types):
            self.check_term(arg, arg_ty, where)

        # Resolve inferred variable types.
        resolved: dict[str, TypeExpr] = {}
        for name, meta in self.var_tys.items():
            ty = ty_resolve(meta, self.subst)
            if _has_flexible(ty):
                raise TypeMismatchError(
                    f"{where_base}: cannot infer the type of variable {name!r}"
                    f" (got {ty}); the rule is ambiguous"
                )
            resolved[name] = ty

        # Patch equality premises with their resolved shared type.
        patched: list[Premise] = []
        eq_index = 0
        for p in new_premises:
            if isinstance(p, EqPremise):
                _, shared = eq_metas[eq_index]
                eq_index += 1
                ty = ty_resolve(shared, self.subst)
                if _has_flexible(ty):
                    raise TypeMismatchError(
                        f"{where_base}: cannot infer the type of equality {p}"
                    )
                patched.append(replace(p, ty=ty))
            else:
                patched.append(p)
        return replace(rule, premises=tuple(patched), var_types=resolved)


def _has_flexible(t: TypeExpr) -> bool:
    if isinstance(t, TyVar):
        return t.name.startswith("?")
    return any(_has_flexible(a) for a in t.args)


def infer_relation_types(rel: Relation, ctx: Context) -> Relation:
    """Return *rel* with every rule's ``var_types`` filled in (and
    equality premises annotated), or raise on ill-typed rules."""
    new_rules = []
    for rule in rel.rules:
        checker = _RuleChecker(rel, ctx)
        new_rules.append(checker.check_rule(rule))
    return replace(rel, rules=tuple(new_rules))
