"""Session-scoped execution state: who owns the mutable half of a run.

A :class:`~repro.core.context.Context` holds two kinds of state that
``ctx.caches`` used to smuggle in one process-global dict:

* **Derived artifacts** — schedules, lowered plans, analysis reports,
  determinacy verdicts.  These are pure functions of the declarations:
  immutable once computed, safe (and profitable) to share between every
  caller of the context.  They now live in ``ctx.artifacts``.

* **Runtime state** — memo tables, :class:`~repro.derive.stats.
  DeriveStats`, the active budget, trace/observe hooks, and the
  ``resolve_stack`` cycle-detection list.  These are mutable per *run*:
  two concurrent callers sharing them corrupt each other's budgets,
  stats, and cycle detection.  They now live in a :class:`Session`.

``ctx.caches`` is still the executors' single window onto runtime
state, but it is a property now: it resolves to the **current
session's** state dict.  Which session is current is tracked with a
:class:`contextvars.ContextVar`, so the routing is correct under both
threads (each thread sees its own binding) and asyncio tasks (each
task inherits a copy of the caller's binding).  When no session has
been activated, a per-context **default ambient session** is used —
this is what keeps every pre-existing single-caller call site working
unchanged: ``profile(ctx)``, ``observe(ctx)``, ``install_budget``,
``enable_memoization`` all read and write ``ctx.caches`` exactly as
before, they just land in the default session's dict.

Concurrency model:

* One session must not be driven from two threads at once (budgets and
  stats are plain counters, not atomics).  One thread per session — or
  :func:`use_session` around each task — is the contract.
* Derivation on a *shared* context is serialized by
  ``ctx._derive_lock`` (see ``repro.derive.instances.resolve``), so
  concurrent first-use of the same relation computes the instance
  once.  Already-resolved lookups stay lock-free.
* ``Context.fork()`` remains the cheap full-isolation path: forked
  workers share no registries, artifacts, or sessions at all.

Usage::

    s1, s2 = Session(ctx, name="a"), Session(ctx, name="b")
    with use_session(ctx, s1):
        checker.decide(args)      # stats/memo/budget land in s1
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .context import Context


class Session:
    """One caller's mutable runtime state on a shared context.

    The ``state`` dict is keyed by the same string tokens the executors
    always used (``derive_stats``, ``derive_budget``, ``memo_checker``,
    ``resolve_stack``, ...), so everything written against
    ``ctx.caches`` works per-session without modification.
    """

    __slots__ = ("ctx", "name", "state")

    _counter = 0

    def __init__(self, ctx: "Context", name: "str | None" = None) -> None:
        self.ctx = ctx
        if name is None:
            Session._counter += 1
            name = f"session-{Session._counter}"
        self.name = name
        self.state: dict[Any, Any] = {}

    def reset(self) -> None:
        """Drop all runtime state (memo tables, stats, budget, hooks)."""
        self.state.clear()

    def __repr__(self) -> str:
        return f"Session({self.name!r}, {len(self.state)} keys)"


def current_session(ctx: "Context") -> Session:
    """The session ``ctx.caches`` currently resolves to (the default
    ambient session unless a :func:`use_session` block or an
    :func:`activate_session` call is in effect)."""
    s = ctx._session_var.get()
    return ctx._default_session if s is None else s


def activate_session(ctx: "Context", session: Session):
    """Bind *session* as current for this thread/task until the
    returned token is passed to :func:`deactivate_session`.

    This is the non-scoped variant :func:`use_session` wraps; worker
    threads that live exactly as long as their session (e.g.
    ``repro.serve`` workers) bind once at thread start instead of
    nesting a ``with`` around every query.
    """
    if session.ctx is not ctx:
        raise ValueError(
            f"session {session.name!r} belongs to a different context"
        )
    return ctx._session_var.set(session)


def deactivate_session(ctx: "Context", token) -> None:
    """Undo :func:`activate_session` (restores the previous binding)."""
    ctx._session_var.reset(token)


@contextmanager
def use_session(
    ctx: "Context", session: "Session | None" = None
) -> Iterator[Session]:
    """Route ``ctx.caches`` to *session* for the dynamic extent of the
    ``with`` block; yields the session (a fresh one if none given).

    Bindings nest: the previous session is restored on exit.  The
    binding is per-thread/per-task (``contextvars``), so concurrent
    workers each see only their own session.
    """
    if session is None:
        session = Session(ctx)
    token = activate_session(ctx, session)
    try:
        yield session
    finally:
        deactivate_session(ctx, token)


def new_session_var() -> "contextvars.ContextVar[Session | None]":
    """A fresh per-context session variable (factory used by
    ``Context.__init__``; one variable per context keeps two contexts'
    bindings independent even inside one thread)."""
    return contextvars.ContextVar("repro_session", default=None)
