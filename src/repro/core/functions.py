"""Interpreted function environment.

Relations in the target class may mention *function calls* in premises
and (after preprocessing) in equality premises — e.g. ``square_of``'s
``n * n`` or IMP's arithmetic.  In Coq these are Gallina fixpoints; here
each function is a registered total (or partial) Python interpretation
over :class:`~repro.core.values.Value`.

Partial functions signal failure with :class:`EvaluationError`; the
derived computations treat such failures as the premise not holding,
which matches extracting a partial Coq function through an option type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from .errors import ArityError, DeclarationError, EvaluationError, UnknownNameError
from .types import TypeExpr
from .values import Value


@dataclass(frozen=True)
class FunctionDecl:
    """A named function with a fixed signature and a Python interpretation."""

    name: str
    arg_types: tuple[TypeExpr, ...]
    result_type: TypeExpr
    impl: Callable[..., Value]

    @property
    def arity(self) -> int:
        return len(self.arg_types)

    def apply(self, args: tuple[Value, ...]) -> Value:
        if len(args) != self.arity:
            raise ArityError(self.name, self.arity, len(args))
        result = self.impl(*args)
        if not isinstance(result, Value):
            raise EvaluationError(
                f"function {self.name!r} returned non-Value {result!r}"
            )
        return result


class FunctionRegistry:
    """Maps function names to declarations."""

    def __init__(self) -> None:
        self._functions: dict[str, FunctionDecl] = {}

    def declare(self, decl: FunctionDecl) -> FunctionDecl:
        if decl.name in self._functions:
            raise DeclarationError(f"function {decl.name!r} already declared")
        self._functions[decl.name] = decl
        return decl

    def get(self, name: str) -> FunctionDecl | None:
        return self._functions.get(name)

    def require(self, name: str) -> FunctionDecl:
        decl = self._functions.get(name)
        if decl is None:
            raise UnknownNameError("function", name)
        return decl

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def __iter__(self) -> Iterator[FunctionDecl]:
        return iter(self._functions.values())

    def names(self) -> list[str]:
        return sorted(self._functions)
