"""Recursive-descent parser for the Coq-like surface syntax.

The parser declares datatypes and inductive relations directly into a
:class:`~repro.core.context.Context`::

    ctx = standard_context()
    parse_declarations(ctx, '''
        Inductive type : Type :=
        | N : type
        | Arr : type -> type -> type.

        Inductive le : nat -> nat -> Prop :=
        | le_n : forall n, le n n
        | le_S : forall n m, le n m -> le n (S m).
    ''')

Supported surface forms:

* datatype declarations (possibly polymorphic);
* relation declarations (possibly polymorphic), with premises that are
  relation applications, negated applications (``~ (Q x)``),
  equalities (``t = u``) and disequalities (``t <> u``);
* numeric literals (expanded to Peano naturals), list literals
  (``[1; 2; 3]``, ``[]``), pair literals (``(a, b)``), and the infix
  operators ``::  ++  +  -  *``;
* ``(* ... *)`` comments.

Identifier classification (constructor / function / relation /
variable) is resolved against the context, so order of declaration
matters — exactly like Coq.  ``let`` between premises is not supported,
mirroring the paper's Section 8 limitation.
"""

from __future__ import annotations

from .context import Context
from .errors import ParseError
from .lexer import EOF, IDENT, KEYWORDS, NUMBER, PUNCT, Token, tokenize
from .relations import EqPremise, Premise, Relation, RelPremise, Rule, Span
from .terms import Ctor, Fun, Term, Var
from .types import Ty, TypeExpr, TyVar
from .values import from_int
from .datatypes import ConstructorSig, DataType


class _RelApp:
    """A relation application — only valid in premise/conclusion
    position, never nested inside a term."""

    __slots__ = ("rel", "args")

    def __init__(self, rel: str, args: tuple[Term, ...]) -> None:
        self.rel = rel
        self.args = args


class Parser:
    def __init__(self, ctx: Context, text: str) -> None:
        self.ctx = ctx
        self.tokens = tokenize(text)
        self.pos = 0
        # Names visible while parsing the body of the declaration in
        # progress (the relation's own name, its type params, mutual
        # siblings).
        self.current_relations: set[str] = set()
        self.current_typarams: set[str] = set()
        # True while parsing a Fixpoint/Definition body, where `match`
        # expressions are allowed.
        self._fn_body = False

    # -- token plumbing ------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != EOF:
            self.pos += 1
        return tok

    def error(self, message: str) -> ParseError:
        tok = self.peek()
        return ParseError(f"{message} (found {tok!s})", tok.line, tok.column)

    def at(self, text: str) -> bool:
        tok = self.peek()
        return tok.kind == PUNCT and tok.text == text

    def at_ident(self, text: str | None = None) -> bool:
        tok = self.peek()
        if tok.kind != IDENT:
            return False
        return text is None or tok.text == text

    def expect(self, text: str) -> Token:
        if self.at(text) or self.at_ident(text):
            return self.advance()
        raise self.error(f"expected {text!r}")

    def expect_ident(self) -> str:
        tok = self.peek()
        if tok.kind != IDENT:
            raise self.error("expected an identifier")
        if tok.text in KEYWORDS:
            raise self.error(f"keyword {tok.text!r} cannot be used here")
        return self.advance().text

    # -- types ---------------------------------------------------------------

    def parse_type_atom(self) -> TypeExpr:
        if self.at("("):
            self.advance()
            ty = self.parse_type_app()
            self.expect(")")
            return ty
        if self.at_ident("Type") or self.at_ident("Prop"):
            return Ty(self.advance().text)
        name = self.expect_ident()
        if name in self.current_typarams:
            return TyVar(name)
        return Ty(name)

    def parse_type_app(self) -> TypeExpr:
        head = self.parse_type_atom()
        args: list[TypeExpr] = []
        while self.at("(") or (
            self.at_ident() and self.peek().text not in KEYWORDS
        ):
            args.append(self.parse_type_atom())
        if args:
            if isinstance(head, TyVar):
                raise self.error(f"type variable {head.name!r} cannot be applied")
            return Ty(head.name, tuple(args))
        return head

    def parse_arrow_type(self) -> list[TypeExpr]:
        """Parse ``T1 -> T2 -> ... -> Tk`` into a list of components."""
        parts = [self.parse_type_app()]
        while self.at("->"):
            self.advance()
            parts.append(self.parse_type_app())
        return parts

    # -- terms ---------------------------------------------------------------

    def classify(self, name: str) -> str:
        if name in self.current_relations:
            return "relation"
        return self.ctx.classify_name(name)

    def parse_term(self) -> Term:
        t = self.parse_cons()
        if isinstance(t, _RelApp):
            raise self.error(
                f"relation {t.rel!r} used in term position"
            )
        return t

    def parse_cons(self):
        left = self.parse_add()
        if self.at("::"):
            self.advance()
            right = self.parse_cons()
            return Ctor("cons", (self._as_term(left), self._as_term(right)))
        if self.at("++"):
            self.advance()
            right = self.parse_cons()
            return Fun("app", (self._as_term(left), self._as_term(right)))
        return left

    def parse_add(self):
        left = self.parse_mul()
        while self.at("+") or self.at("-"):
            op = self.advance().text
            right = self.parse_mul()
            fn = "plus" if op == "+" else "minus"
            left = Fun(fn, (self._as_term(left), self._as_term(right)))
        return left

    def parse_mul(self):
        left = self.parse_app()
        while self.at("*"):
            self.advance()
            right = self.parse_app()
            left = Fun("mult", (self._as_term(left), self._as_term(right)))
        return left

    def _as_term(self, t) -> Term:
        if isinstance(t, _RelApp):
            raise self.error(f"relation {t.rel!r} used in term position")
        return t

    def _at_atom_start(self) -> bool:
        tok = self.peek()
        if tok.kind == NUMBER:
            return True
        if tok.kind == IDENT and tok.text not in KEYWORDS:
            return True
        return self.at("(") or self.at("[")

    def parse_app(self):
        head_tok = self.peek()
        head = self.parse_atom()
        args: list[Term] = []
        while self._at_atom_start():
            arg = self.parse_atom()
            args.append(self._as_term(arg))
        if not args:
            return head
        if isinstance(head, _RelApp):
            if head.args:
                raise ParseError(
                    f"relation {head.rel!r} applied like a term",
                    head_tok.line,
                    head_tok.column,
                )
            return _RelApp(head.rel, tuple(args))
        if isinstance(head, Var):
            kind = self.classify(head.name)
            if kind == "relation":
                return _RelApp(head.name, tuple(args))
            if kind == "constructor":
                return Ctor(head.name, tuple(args))
            if kind == "function":
                return Fun(head.name, tuple(args))
            # An unknown applied identifier: defer as a relation
            # application.  Mutual blocks reference siblings declared
            # later in the same block; type inference reports unknown
            # relations if the name never materializes.
            return _RelApp(head.name, tuple(args))
        if isinstance(head, Ctor) and not head.args:
            return Ctor(head.name, tuple(args))
        if isinstance(head, Fun) and not head.args:
            return Fun(head.name, tuple(args))
        raise ParseError(
            "cannot apply a compound term", head_tok.line, head_tok.column
        )

    def parse_atom(self):
        if self._fn_body and self.at_ident("match"):
            return self.parse_match()
        tok = self.peek()
        if tok.kind == NUMBER:
            self.advance()
            return _nat_literal(int(tok.text))
        if self.at("["):
            self.advance()
            items: list[Term] = []
            if not self.at("]"):
                items.append(self.parse_term())
                while self.at(";"):
                    self.advance()
                    items.append(self.parse_term())
            self.expect("]")
            acc: Term = Ctor("nil", ())
            for item in reversed(items):
                acc = Ctor("cons", (item, acc))
            return acc
        if self.at("("):
            self.advance()
            inner = self.parse_cons()
            if self.at(","):
                self.advance()
                second = self.parse_term()
                self.expect(")")
                return Ctor("pair", (self._as_term(inner), second))
            self.expect(")")
            return inner
        name = self.expect_ident()
        kind = self.classify(name)
        if kind == "constructor":
            return Ctor(name, ())
        if kind == "function":
            return Fun(name, ())
        if kind == "relation":
            return _RelApp(name, ())
        return Var(name)

    # -- premises and rules ----------------------------------------------------

    def parse_premise_or_conclusion(self) -> Premise | _RelApp:
        # Remember where the construct starts: by the time a premise
        # turns out to be malformed, several tokens have already been
        # consumed and `self.error` would report the position *after*
        # it.
        start = self.peek()
        if self.at("~"):
            self.advance()
            inner = self.parse_premise_or_conclusion()
            if isinstance(inner, _RelApp):
                return RelPremise(inner.rel, inner.args, negated=True)
            if isinstance(inner, RelPremise):
                return RelPremise(inner.rel, inner.args, not inner.negated)
            if isinstance(inner, EqPremise):
                return EqPremise(inner.lhs, inner.rhs, not inner.negated)
            raise ParseError(
                "cannot negate this premise", start.line, start.column
            )
        t = self.parse_cons()
        if self.at("="):
            self.advance()
            rhs = self.parse_cons()
            return EqPremise(self._as_term(t), self._as_term(rhs))
        if self.at("<>"):
            self.advance()
            rhs = self.parse_cons()
            return EqPremise(self._as_term(t), self._as_term(rhs), negated=True)
        if isinstance(t, _RelApp):
            return t
        raise ParseError(
            f"expected a relation application or an (in)equality"
            f" (found {start!s})",
            start.line,
            start.column,
        )

    def parse_rule(self, rel_name: str) -> Rule:
        self.expect("|")
        name_tok = self.peek()
        name = self.expect_ident()
        self.expect(":")
        if self.at_ident("forall"):
            self.advance()
            # Binders: plain names (types are inferred).
            binders = [self.expect_ident()]
            while self.at_ident() and not self.at(","):
                binders.append(self.expect_ident())
            self.expect(",")
        part_starts = [self.peek()]
        parts: list[Premise | _RelApp] = [self.parse_premise_or_conclusion()]
        while self.at("->"):
            self.advance()
            part_starts.append(self.peek())
            parts.append(self.parse_premise_or_conclusion())
        conclusion = parts[-1]
        conclusion_tok = part_starts[-1]
        if isinstance(conclusion, RelPremise) and not conclusion.negated:
            conclusion = _RelApp(conclusion.rel, conclusion.args)
        if not isinstance(conclusion, _RelApp):
            raise ParseError(
                f"rule {name!r}: conclusion must be an application of"
                f" {rel_name!r}",
                conclusion_tok.line,
                conclusion_tok.column,
            )
        if conclusion.rel != rel_name:
            raise ParseError(
                f"rule {name!r}: conclusion applies {conclusion.rel!r},"
                f" expected {rel_name!r}",
                conclusion_tok.line,
                conclusion_tok.column,
            )
        premises: list[Premise] = []
        for part in parts[:-1]:
            if isinstance(part, _RelApp):
                premises.append(RelPremise(part.rel, part.args))
            else:
                premises.append(part)
        return Rule(
            name,
            tuple(premises),
            conclusion.args,
            span=Span(name_tok.line, name_tok.column),
        )

    # -- function definitions ------------------------------------------------------

    def parse_match(self):
        """``match <term> with | pat => body ... end`` (function bodies
        only)."""
        from .fndefs import FnMatch
        from .patterns import check_pattern

        self.expect("match")
        scrutinee = self.parse_cons()
        self.expect("with")
        branches = []
        while self.at("|"):
            self.advance()
            pattern = self.parse_cons()
            pattern = self._as_term(pattern)
            check_pattern(pattern)
            self.expect("=>")
            body = self.parse_cons()
            branches.append((pattern, self._as_term_or_match(body)))
        self.expect("end")
        if not branches:
            raise self.error("match needs at least one branch")
        return FnMatch(self._as_term_or_match(scrutinee), tuple(branches))

    def _as_term_or_match(self, t):
        from .fndefs import FnMatch

        if isinstance(t, FnMatch):
            return t
        return self._as_term(t)

    def parse_fn_params(self) -> list[tuple[str, TypeExpr]]:
        """``(a : nat) (xs : list nat)`` parameter groups."""
        params: list[tuple[str, TypeExpr]] = []
        while self.at("("):
            self.advance()
            names = [self.expect_ident()]
            while self.at_ident() and not self.at(":"):
                names.append(self.expect_ident())
            self.expect(":")
            ty = self.parse_type_app()
            self.expect(")")
            params.extend((n, ty) for n in names)
        return params

    def parse_function_decl(self):
        """``Fixpoint f (a : T) .. : R := body.`` (or ``Definition``)."""
        from .fndefs import FnDef, compile_fn

        recursive = self.at_ident("Fixpoint")
        self.advance()  # Fixpoint | Definition
        name = self.expect_ident()
        params = self.parse_fn_params()
        if not params:
            raise self.error(f"function {name!r} needs at least one parameter")
        self.expect(":")
        result_ty = self.parse_type_app()
        self.expect(":=")
        # Register the signature before parsing the body so recursive
        # occurrences classify as function calls; the implementation is
        # installed through a cell once the body is parsed.
        cell: dict = {}

        def trampoline(*args):
            return cell["impl"](*args)

        decl = self.ctx.declare_function(
            name, tuple(t for _, t in params), result_ty, trampoline
        )
        was_fn_body = self._fn_body
        self._fn_body = True
        try:
            body = self._as_term_or_match(self.parse_cons())
        finally:
            self._fn_body = was_fn_body
        self.expect(".")
        definition = FnDef(name, tuple(params), result_ty, body, recursive)
        cell["impl"] = compile_fn(self.ctx, definition)
        return definition

    # -- declarations ------------------------------------------------------------

    def parse_params(self) -> tuple[str, ...]:
        """Parse zero or more ``(A B : Type)`` parameter groups."""
        params: list[str] = []
        while self.at("("):
            self.advance()
            names = [self.expect_ident()]
            while self.at_ident() and not self.at(":"):
                names.append(self.expect_ident())
            self.expect(":")
            self.expect("Type")
            self.expect(")")
            params.extend(names)
        return tuple(params)

    def parse_declaration(self) -> list[object]:
        """Parse one ``Inductive`` declaration group (with ``with`` for
        mutual blocks) and declare it into the context."""
        self.expect("Inductive")
        declared: list[object] = []
        headers: list[tuple[str, tuple[str, ...], list[TypeExpr], Span]] = []
        bodies: list[list] = []

        while True:
            name_tok = self.peek()
            name = self.expect_ident()
            self.current_typarams = set()
            params = self.parse_params()
            self.current_typarams = set(params)
            self.expect(":")
            sig_tok = self.peek()
            sig = self.parse_arrow_type()
            self.expect(":=")
            headers.append(
                (name, params, sig, Span(name_tok.line, name_tok.column))
            )
            is_prop = (
                isinstance(sig[-1], Ty) and sig[-1].name == "Prop"
            )
            is_type = (
                isinstance(sig[-1], Ty) and sig[-1].name == "Type"
            )
            if not (is_prop or is_type):
                raise ParseError(
                    f"declaration {name!r} must end in Prop or Type",
                    sig_tok.line,
                    sig_tok.column,
                )
            if is_type and len(sig) > 1:
                raise self.error("indexed datatypes are not supported")
            if is_prop:
                # All relations in a mutual block are visible in bodies.
                self.current_relations.add(name)
                rules: list[Rule] = []
                while self.at("|"):
                    rules.append(self.parse_rule(name))
                bodies.append(rules)
            else:
                ctors: list[ConstructorSig] = []
                # For datatype bodies, constructors reference the type
                # being declared; temporarily classify it by declaring
                # a shell if needed.  We only need type-level parsing.
                while self.at("|"):
                    self.advance()
                    cname = self.expect_ident()
                    self.expect(":")
                    csig = self.parse_arrow_type()
                    result = csig[-1]
                    if not (
                        isinstance(result, Ty) and result.name == name
                    ):
                        raise self.error(
                            f"constructor {cname!r} must build {name!r}"
                        )
                    ctors.append(ConstructorSig(cname, tuple(csig[:-1])))
                bodies.append(ctors)
            if self.at_ident("with"):
                self.advance()
                continue
            break
        self.expect(".")

        if len(headers) > 1:
            kinds = {
                isinstance(sig[-1], Ty) and sig[-1].name == "Prop"
                for (_, _, sig, _) in headers
            }
            if kinds != {True}:
                raise self.error(
                    "mutual blocks are only supported for relations"
                )

        for (name, params, sig, span), body in zip(headers, bodies):
            result = sig[-1]
            assert isinstance(result, Ty)
            if result.name == "Type":
                dt = DataType(name, params, tuple(body))
                self.ctx.declare_datatype(dt)
                declared.append(dt)
            else:
                arg_types = tuple(sig[:-1])
                rel = Relation(name, arg_types, tuple(body), params, span=span)
                declared.append(rel)

        # Relations in a mutual block must be registered together so
        # type inference can see the siblings.
        rels = [d for d in declared if isinstance(d, Relation)]
        if rels:
            for rel in rels:
                self.ctx.relations.declare(rel)
            try:
                from .typecheck import infer_relation_types

                for i, rel in enumerate(rels):
                    inferred = infer_relation_types(rel, self.ctx)
                    self.ctx.relations.declare(inferred, allow_replace=True)
                    declared[declared.index(rel)] = inferred
            finally:
                self.current_relations.clear()
        return declared

    def parse_all(self) -> list[object]:
        declared: list[object] = []
        while self.peek().kind != EOF:
            if self.at_ident("Fixpoint") or self.at_ident("Definition"):
                declared.append(self.parse_function_decl())
            else:
                declared.extend(self.parse_declaration())
        return declared


def _nat_literal(n: int) -> Term:
    t: Term = Ctor("O", ())
    for _ in range(n):
        t = Ctor("S", (t,))
    return t


def parse_declarations(ctx: Context, text: str) -> list[object]:
    """Parse and declare every ``Inductive`` block in *text*.

    Returns the list of declared objects (:class:`DataType` /
    :class:`Relation`, in order).  Declarations are visible to later
    blocks in the same string.
    """
    return Parser(ctx, text).parse_all()


def parse_term_text(ctx: Context, text: str) -> Term:
    """Parse a standalone term (used by tests and examples)."""
    parser = Parser(ctx, text)
    term = parser.parse_term()
    if parser.peek().kind != EOF:
        raise parser.error("trailing input after term")
    return term
