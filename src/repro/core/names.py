"""Fresh-name supply.

The preprocessing phase (Section 3.1 of the paper) introduces fresh
variables when rewriting non-linear patterns and conclusion function
calls; the scheduler introduces fresh variables for producer results.
Names are made unique relative to a set of names already in scope.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class NameSupply:
    """Generates names that are fresh with respect to a base scope.

    Fresh names look like ``x'``, ``x''`` or ``x_1``: we append a numeric
    suffix to a stem until the result is unused.  The supply remembers
    everything it hands out, so successive requests never collide.
    """

    def __init__(self, in_scope: Iterable[str] = ()) -> None:
        self._used = set(in_scope)

    def reserve(self, name: str) -> None:
        """Mark *name* as taken without generating anything."""
        self._used.add(name)

    def reserve_all(self, names: Iterable[str]) -> None:
        for name in names:
            self.reserve(name)

    def fresh(self, stem: str = "x") -> str:
        """Return a name based on *stem* that has not been used before."""
        if stem not in self._used:
            self._used.add(stem)
            return stem
        counter = 1
        while True:
            candidate = f"{stem}_{counter}"
            if candidate not in self._used:
                self._used.add(candidate)
                return candidate
            counter += 1

    def fresh_many(self, count: int, stem: str = "x") -> list[str]:
        return [self.fresh(stem) for _ in range(count)]

    def __contains__(self, name: str) -> bool:
        return name in self._used

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._used))
