"""First-order unification over open terms.

The reference proof-search semantics (``repro.semantics.proof_search``)
is a bounded logic-programming engine: goals are relation applications
whose arguments are open terms (variables standing for unknowns), and
resolving a goal against a rule unifies the goal's arguments with the
rule's conclusion.  This module provides the substitution machinery.

Substitutions are *triangular*: a dict mapping variable names to terms
which may themselves contain bound variables; :func:`walk` and
:func:`resolve` chase bindings.  Function calls (:class:`Fun`) are not
unified structurally — they are evaluated when ground (the engine
arranges for that before unification) and treated as rigid otherwise.
"""

from __future__ import annotations

from typing import Mapping

from .terms import Ctor, Fun, Term, Var

Subst = dict[str, Term]


def walk(t: Term, s: Mapping[str, Term]) -> Term:
    """Chase variable bindings one level (until a non-variable or an
    unbound variable is reached)."""
    while isinstance(t, Var):
        bound = s.get(t.name)
        if bound is None:
            return t
        t = bound
    return t


def resolve(t: Term, s: Mapping[str, Term]) -> Term:
    """Apply substitution *s* deeply to *t*."""
    t = walk(t, s)
    if isinstance(t, Var):
        return t
    if isinstance(t, Ctor):
        return Ctor(t.name, tuple(resolve(a, s) for a in t.args))
    return Fun(t.name, tuple(resolve(a, s) for a in t.args))


def occurs(name: str, t: Term, s: Mapping[str, Term]) -> bool:
    t = walk(t, s)
    if isinstance(t, Var):
        return t.name == name
    return any(occurs(name, a, s) for a in t.args)


def is_ground_under(t: Term, s: Mapping[str, Term]) -> bool:
    """True when *t* has no unbound variables under *s*."""
    t = walk(t, s)
    if isinstance(t, Var):
        return False
    return all(is_ground_under(a, s) for a in t.args)


def unify(a: Term, b: Term, s: Subst) -> Subst | None:
    """Unify *a* and *b* under substitution *s*.

    Returns an extended substitution on success (the input dict is
    never mutated) or ``None`` on failure.  Function calls unify only
    syntactically (same function, unifiable arguments); the caller is
    expected to have evaluated ground calls beforehand.
    """
    a = walk(a, s)
    b = walk(b, s)
    if isinstance(a, Var) and isinstance(b, Var) and a.name == b.name:
        return s
    if isinstance(a, Var):
        if occurs(a.name, b, s):
            return None
        extended = dict(s)
        extended[a.name] = b
        return extended
    if isinstance(b, Var):
        if occurs(b.name, a, s):
            return None
        extended = dict(s)
        extended[b.name] = a
        return extended
    # Both are applications.  Ctor vs Fun never unify; a ground Fun
    # should have been evaluated away by the engine.
    if type(a) is not type(b) or a.name != b.name or len(a.args) != len(b.args):
        return None
    current: Subst | None = s
    for x, y in zip(a.args, b.args):
        current = unify(x, y, current)
        if current is None:
            return None
    return current


def unify_all(
    pairs: list[tuple[Term, Term]], s: Subst
) -> Subst | None:
    current: Subst | None = s
    for a, b in pairs:
        current = unify(a, b, current)
        if current is None:
            return None
    return current
