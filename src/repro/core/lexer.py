"""Lexer for the Coq-like surface syntax.

Tokenizes declarations such as::

    Inductive le : nat -> nat -> Prop :=
    | le_n : forall n, le n n
    | le_S : forall n m, le n m -> le n (S m).

Supports ``(* ... *)`` comments (nested, as in Coq), numeric literals,
and the operator set used by the Software Foundations relations.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ParseError

# Token kinds.
IDENT = "IDENT"
NUMBER = "NUMBER"
PUNCT = "PUNCT"
EOF = "EOF"

# Multi-character punctuation, longest first.
_PUNCTUATION = (
    ":=",
    "::",
    "++",
    "->",
    "=>",
    "<>",
    "(",
    ")",
    "[",
    "]",
    ",",
    ";",
    ".",
    "|",
    ":",
    "=",
    "~",
    "+",
    "-",
    "*",
)

KEYWORDS = frozenset({
    "Inductive", "Type", "Prop", "forall", "with",
    "Fixpoint", "Definition", "match", "end",
})


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return self.text if self.kind != EOF else "<eof>"


def _is_ident_start(c: str) -> bool:
    return c.isalpha() or c == "_"


def _is_ident_char(c: str) -> bool:
    return c.isalnum() or c in "_'"


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(text)

    def error(message: str) -> ParseError:
        return ParseError(message, line, col)

    while i < n:
        c = text[i]
        if c == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if c.isspace():
            i += 1
            col += 1
            continue
        if text.startswith("(*", i):
            depth = 1
            i += 2
            col += 2
            while i < n and depth:
                if text.startswith("(*", i):
                    depth += 1
                    i += 2
                    col += 2
                elif text.startswith("*)", i):
                    depth -= 1
                    i += 2
                    col += 2
                elif text[i] == "\n":
                    i += 1
                    line += 1
                    col = 1
                else:
                    i += 1
                    col += 1
            if depth:
                raise error("unterminated comment")
            continue
        if _is_ident_start(c):
            start = i
            start_col = col
            while i < n and _is_ident_char(text[i]):
                i += 1
                col += 1
            tokens.append(Token(IDENT, text[start:i], line, start_col))
            continue
        if c.isdigit():
            start = i
            start_col = col
            while i < n and text[i].isdigit():
                i += 1
                col += 1
            tokens.append(Token(NUMBER, text[start:i], line, start_col))
            continue
        for p in _PUNCTUATION:
            if text.startswith(p, i):
                tokens.append(Token(PUNCT, p, line, col))
                i += len(p)
                col += len(p)
                break
        else:
            raise error(f"unexpected character {c!r}")
    tokens.append(Token(EOF, "", line, col))
    return tokens
