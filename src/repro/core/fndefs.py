"""Interpreted function definitions from surface syntax.

Relations in the target class mention function calls (``n * n``, ``s1
++ s2``); in Coq those are Gallina fixpoints.  Besides registering
Python callables, functions can be *defined* in the surface syntax::

    Fixpoint double (n : nat) : nat :=
      match n with
      | O => O
      | S m => S (S (double m))
      end.

The body language is the term language plus ``match``; a definition is
compiled to an interpreter closure and registered in the context's
function registry (so the deriver, the reference search, and all
backends call it uniformly).

Totality is the author's obligation, as in Coq — except that here a
non-terminating fixpoint shows up as Python recursion exhaustion
rather than a rejected ``Fixpoint``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Union

from .errors import EvaluationError
from .patterns import match as match_pattern
from .terms import Ctor, Fun, Term, Var
from .types import TypeExpr
from .values import Value

if TYPE_CHECKING:  # pragma: no cover
    from .context import Context

FnExpr = Union["Term", "FnMatch"]


@dataclass(frozen=True)
class FnMatch:
    """``match scrutinee with | pat => body | ... end``."""

    scrutinee: FnExpr
    branches: tuple[tuple[Term, FnExpr], ...]

    def __str__(self) -> str:
        arms = " ".join(f"| {p} => {b}" for p, b in self.branches)
        return f"match {self.scrutinee} with {arms} end"


@dataclass(frozen=True)
class FnDef:
    """A parsed function definition (``Fixpoint`` / ``Definition``)."""

    name: str
    params: tuple[tuple[str, TypeExpr], ...]
    result_type: TypeExpr
    body: FnExpr
    recursive: bool


def eval_fn_expr(expr: FnExpr, env: Mapping[str, Value], ctx: "Context") -> Value:
    if isinstance(expr, Var):
        try:
            return env[expr.name]
        except KeyError:
            raise EvaluationError(f"unbound variable {expr.name!r}") from None
    if isinstance(expr, Ctor):
        return Value(
            expr.name, tuple(eval_fn_expr(a, env, ctx) for a in expr.args)
        )
    if isinstance(expr, Fun):
        args = tuple(eval_fn_expr(a, env, ctx) for a in expr.args)
        return ctx.functions.require(expr.name).apply(args)
    if isinstance(expr, FnMatch):
        scrutinee = eval_fn_expr(expr.scrutinee, env, ctx)
        for pattern, body in expr.branches:
            binding: dict[str, Value] = {}
            if match_pattern(pattern, scrutinee, binding):
                inner = dict(env)
                inner.update(binding)
                return eval_fn_expr(body, inner, ctx)
        raise EvaluationError(
            f"match on {scrutinee} fell through every branch"
        )
    raise AssertionError(f"not a function-body expression: {expr!r}")


def compile_fn(ctx: "Context", definition: FnDef):
    """Build the Python callable implementing *definition*."""
    names = [p for p, _ in definition.params]

    def impl(*args: Value) -> Value:
        if len(args) != len(names):
            raise EvaluationError(
                f"{definition.name!r} expects {len(names)} args, got {len(args)}"
            )
        return eval_fn_expr(definition.body, dict(zip(names, args)), ctx)

    impl.__name__ = definition.name
    impl.__fn_def__ = definition
    return impl
