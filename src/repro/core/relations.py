"""Inductive relation declarations.

This is the input language of the derivation algorithm — the paper's
target class (Section 1):

    Inductive P (A1 ... : Type) : T1 -> ... -> Tn -> Prop :=
      | C1 : forall x1 ...,  (Q1 e11 ...) -> ... -> P e1 ... en
      | ...

Each rule (constructor of the relation) has universally quantified
variables, a sequence of premises, and a conclusion ``P e1 .. en``.
Premises are applications of inductive relations (possibly negated) or
equalities between terms (the form non-linear patterns and conclusion
function calls are normalized into, Section 3.1).

Rules record per-variable types; these are usually *inferred* (see
``repro.core.typecheck``) rather than written by the user.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Mapping, Sequence, Union

from .errors import ArityError, DeclarationError, UnknownNameError
from .terms import Term, free_vars, subst, var_set_all
from .types import TypeExpr, TyVar, is_ground, mangle, subst_ty


@dataclass(frozen=True)
class Span:
    """A source position (1-based line/column) attached to parsed
    declarations so diagnostics can point back at the surface syntax.

    Spans are provenance, not meaning: they are excluded from equality
    so structurally identical declarations compare equal regardless of
    where they were written.
    """

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True)
class RelPremise:
    """A premise ``Q e1 .. en`` or its negation ``~ (Q e1 .. en)``."""

    rel: str
    args: tuple[Term, ...]
    negated: bool = False

    def __str__(self) -> str:
        app = self.rel + "".join(f" {a}" for a in self.args)
        return f"~ ({app})" if self.negated else app

    def map_args(self, f) -> "RelPremise":
        return RelPremise(self.rel, tuple(f(a) for a in self.args), self.negated)


@dataclass(frozen=True)
class EqPremise:
    """An equality premise ``lhs = rhs`` (or ``lhs <> rhs`` when negated).

    ``ty`` is the common type of both sides, filled in by type
    inference; equality checking/production is generic in it.
    """

    lhs: Term
    rhs: Term
    negated: bool = False
    ty: TypeExpr | None = None

    def __str__(self) -> str:
        op = "<>" if self.negated else "="
        return f"{self.lhs} {op} {self.rhs}"

    def map_args(self, f) -> "EqPremise":
        return EqPremise(f(self.lhs), f(self.rhs), self.negated, self.ty)


Premise = Union[RelPremise, EqPremise]


@dataclass(frozen=True)
class Rule:
    """One constructor of an inductive relation."""

    name: str
    premises: tuple[Premise, ...]
    conclusion: tuple[Term, ...]
    # Types of the forall-bound variables; populated by inference.
    var_types: Mapping[str, TypeExpr] = field(default_factory=dict)
    # Source position of the rule (parser-built rules only).
    span: Span | None = field(default=None, compare=False, repr=False)

    def __str__(self) -> str:
        binder = ""
        names = sorted(self.variables())
        if names:
            binder = "forall " + " ".join(names) + ", "
        parts = [str(p) for p in self.premises]
        parts.append("P " + " ".join(str(e) for e in self.conclusion))
        return f"{self.name} : {binder}" + " -> ".join(parts)

    def variables(self) -> frozenset[str]:
        """All variables mentioned anywhere in the rule."""
        names: set[str] = set()
        for p in self.premises:
            if isinstance(p, RelPremise):
                names.update(var_set_all(p.args))
            else:
                names.update(var_set_all((p.lhs, p.rhs)))
        names.update(var_set_all(self.conclusion))
        return frozenset(names)

    def conclusion_variables(self) -> frozenset[str]:
        return var_set_all(self.conclusion)

    def existential_variables(self) -> frozenset[str]:
        """Variables occurring in premises but not in the conclusion —
        the paper's "existentially quantified" variables."""
        return self.variables() - self.conclusion_variables()

    def is_recursive_in(self, rel_name: str) -> bool:
        return any(
            isinstance(p, RelPremise) and p.rel == rel_name for p in self.premises
        )

    def mentioned_relations(self) -> frozenset[str]:
        return frozenset(
            p.rel for p in self.premises if isinstance(p, RelPremise)
        )

    def subst_terms(self, env: Mapping[str, Term]) -> "Rule":
        """Substitute term variables throughout the rule (used by
        preprocessing when renaming apart)."""
        new_premises = tuple(p.map_args(lambda t: subst(t, env)) for p in self.premises)
        new_conclusion = tuple(subst(t, env) for t in self.conclusion)
        return replace(self, premises=new_premises, conclusion=new_conclusion)


@dataclass(frozen=True)
class Relation:
    """An inductive relation declaration.

    ``params`` are type parameters (``Inductive In (A : Type) : ...``);
    a relation must be monomorphized with :meth:`instantiate` before
    computations can be derived for it.
    """

    name: str
    arg_types: tuple[TypeExpr, ...]
    rules: tuple[Rule, ...]
    params: tuple[str, ...] = ()
    # Source position of the declaration (parser-built relations only).
    span: Span | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for r in self.rules:
            if r.name in seen:
                raise DeclarationError(
                    f"duplicate rule {r.name!r} in relation {self.name!r}"
                )
            seen.add(r.name)
            if len(r.conclusion) != self.arity:
                raise ArityError(self.name, self.arity, len(r.conclusion))

    @property
    def arity(self) -> int:
        return len(self.arg_types)

    def rule(self, name: str) -> Rule:
        for r in self.rules:
            if r.name == name:
                return r
        raise UnknownNameError("rule", name)

    @property
    def base_rules(self) -> tuple[Rule, ...]:
        return tuple(r for r in self.rules if not r.is_recursive_in(self.name))

    @property
    def recursive_rules(self) -> tuple[Rule, ...]:
        return tuple(r for r in self.rules if r.is_recursive_in(self.name))

    def is_monomorphic(self) -> bool:
        return not self.params and all(is_ground(t) for t in self.arg_types)

    def mentioned_relations(self) -> frozenset[str]:
        names: set[str] = set()
        for r in self.rules:
            names.update(r.mentioned_relations())
        return frozenset(names)

    def instantiate(self, *type_args: TypeExpr) -> "Relation":
        """Monomorphize a polymorphic relation, producing a fresh
        relation named ``P@ty1@ty2``.

        Rule variable types are substituted; term structure is
        unchanged (term-level polymorphism is parametric).
        """
        if len(type_args) != len(self.params):
            raise ArityError(self.name, len(self.params), len(type_args))
        if not self.params:
            return self
        for t in type_args:
            if not is_ground(t):
                raise DeclarationError(
                    f"instantiation of {self.name!r} requires ground types, got {t}"
                )
        env: dict[str, TypeExpr] = dict(zip(self.params, type_args))
        new_name = self.name + "".join("@" + mangle(t) for t in type_args)
        new_arg_types = tuple(subst_ty(t, env) for t in self.arg_types)
        new_rules = tuple(
            replace(
                r,
                var_types={
                    v: subst_ty(t, env) for v, t in r.var_types.items()
                },
            )
            for r in self.rules
        )
        return Relation(new_name, new_arg_types, new_rules, params=(), span=self.span)

    def __str__(self) -> str:
        header = f"Inductive {self.name}"
        if self.params:
            header += " (" + " ".join(self.params) + " : Type)"
        header += " : " + " -> ".join(str(t) for t in self.arg_types) + " -> Prop :="
        lines = [header]
        for r in self.rules:
            lines.append(f"  | {r}")
        return "\n".join(lines)


class RelationRegistry:
    """Maps relation names to declarations."""

    def __init__(self) -> None:
        self._relations: dict[str, Relation] = {}

    def declare(self, rel: Relation, allow_replace: bool = False) -> Relation:
        if rel.name in self._relations and not allow_replace:
            raise DeclarationError(f"relation {rel.name!r} already declared")
        self._relations[rel.name] = rel
        return rel

    def get(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownNameError("relation", name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def names(self) -> list[str]:
        return sorted(self._relations)


# ---------------------------------------------------------------------------
# Feature analysis — drives Table 1 and scheduler decisions.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RelationFeatures:
    """Syntactic features of a relation relevant to the derivation
    algorithms (Section 3.1 / Section 4)."""

    nonlinear_conclusions: bool
    function_calls_in_conclusions: bool
    existentials: bool
    negated_premises: bool
    equality_premises: bool
    external_relations: frozenset[str]

    @property
    def needs_preprocessing(self) -> bool:
        return self.nonlinear_conclusions or self.function_calls_in_conclusions

    @property
    def core_algorithm_suffices(self) -> bool:
        """True when the restricted Algorithm 1 (Section 3's core, the
        Table 1 baseline) can handle this relation as written."""
        return not (
            self.nonlinear_conclusions
            or self.function_calls_in_conclusions
            or self.existentials
            or self.negated_premises
            or self.equality_premises
        )


def analyze(rel: Relation) -> RelationFeatures:
    from .terms import contains_fun, is_linear

    nonlinear = any(not is_linear(r.conclusion) for r in rel.rules)
    funcalls = any(any(contains_fun(t) for t in r.conclusion) for r in rel.rules)
    existentials = any(r.existential_variables() for r in rel.rules)
    negated = any(
        getattr(p, "negated", False) for r in rel.rules for p in r.premises
    )
    equalities = any(
        isinstance(p, EqPremise) for r in rel.rules for p in r.premises
    )
    external = frozenset(rel.mentioned_relations() - {rel.name})
    return RelationFeatures(
        nonlinear_conclusions=nonlinear,
        function_calls_in_conclusions=funcalls,
        existentials=existentials,
        negated_premises=negated,
        equality_premises=equalities,
        external_relations=external,
    )
