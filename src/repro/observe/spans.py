"""Hierarchical spans: the call tree of derived computations.

A span is one fixpoint-level invocation of a derived computation — one
``run_checker`` / ``run_enum`` / ``run_gen`` call in the interpreters,
or one call of the compiled ``rec`` twin.  Spans nest: a checker that
enumerates witnesses for an existential opens an enumerator span under
its own, a generator that calls an external checker opens a checker
span, and so on across mutual groups and external instances.  The
executors open a span on entry (for an enumerator: at the first
``next``, when the generator body starts) and close it with its
outcome on exit.

Enumerator spans have one wrinkle: a consumer may abandon the
enumeration after the first accepted witness (``bindEC``), in which
case the generator body never resumes and the span's own ``end`` never
runs.  There is deliberately no ``try/finally`` in the executors —
that would close the span at GC time, which is nondeterministic —
instead, :meth:`SpanRecorder.end` force-closes any still-open
descendants when an ancestor ends, marking them ``abandoned``.  The
force-close is part of the span semantics, not an error path, and is
identical across backends.

Completed spans live in a ring buffer (:class:`collections.deque` with
``maxlen``) so long runs stay bounded; evictions are counted in
:attr:`SpanRecorder.dropped` and surfaced in reports rather than
silently losing history.

Timing uses :func:`time.perf_counter` (monotonic).  Everything else on
a span is deterministic, so :meth:`Span.identity` — the span minus its
timestamps — is byte-identical between interpreted and compiled runs
of the same workload.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Iterator

#: default ring-buffer capacity (completed spans retained)
DEFAULT_CAP = 65536

#: outcome of a span force-closed because an ancestor ended first
ABANDONED = "abandoned"

#: outcome of a span still open when the observation session closed
OPEN = "open"


class Span:
    """One fixpoint-level invocation of a derived computation.

    ``kind`` is the backend kind (``'checker'``/``'enum'``/``'gen'``) —
    the same key component the trace layer uses, shared by the
    interpreted and compiled implementations of each kind, so span
    trees aggregate across mixed-backend runs.  ``size`` is the fuel
    available at this level and ``top`` the top fuel of the enclosing
    fixpoint (``top - size`` is the recursion depth within it; a span
    with ``size == top`` is an entry-level call).

    ``consumed`` is the height of the span subtree below this span —
    the maximum nesting of derived computations opened beneath it.  For
    a purely recursive derivation that is exactly the fuel consumed;
    external instance calls restart their own fuel, so for them it
    counts levels rather than literal fuel units.  ``attempts`` counts
    the handler attempts recorded while this span was innermost.
    """

    __slots__ = (
        "sid",
        "parent",
        "depth",
        "kind",
        "rel",
        "mode",
        "size",
        "top",
        "outcome",
        "consumed",
        "attempts",
        "t0",
        "t1",
        "closed",
    )

    def __init__(
        self,
        sid: int,
        parent: int,
        depth: int,
        kind: str,
        rel: str,
        mode: str,
        size: int,
        top: int,
    ) -> None:
        self.sid = sid
        self.parent = parent
        self.depth = depth
        self.kind = kind
        self.rel = rel
        self.mode = mode
        self.size = size
        self.top = top
        self.outcome = OPEN
        self.consumed = 0
        self.attempts = 0
        self.t1 = 0.0
        self.closed = False
        self.t0 = perf_counter()

    @property
    def duration(self) -> float:
        """Wall-clock seconds (0.0 while still open)."""
        return max(0.0, self.t1 - self.t0)

    def identity(self) -> tuple:
        """The span with timing stripped: the deterministic part,
        identical across interpreted and compiled backends."""
        return (
            self.sid,
            self.parent,
            self.depth,
            self.kind,
            self.rel,
            self.mode,
            self.size,
            self.top,
            self.outcome,
            self.consumed,
            self.attempts,
        )

    def as_dict(self) -> dict:
        return {
            "sid": self.sid,
            "parent": self.parent,
            "depth": self.depth,
            "kind": self.kind,
            "rel": self.rel,
            "mode": self.mode,
            "size": self.size,
            "top": self.top,
            "outcome": self.outcome,
            "consumed": self.consumed,
            "attempts": self.attempts,
            "t0": self.t0,
            "t1": self.t1,
        }

    def __repr__(self) -> str:
        return (
            f"Span(#{self.sid} {self.kind}:{self.rel}[{self.mode}] "
            f"size={self.size}/{self.top} -> {self.outcome})"
        )


class SpanRecorder:
    """Collects the span tree of one observation session.

    The executors call :meth:`begin` / :meth:`end`; everything else is
    read-side.  Parentage comes from the open-span stack: the span open
    when another begins is its parent, which is exactly the dynamic
    call tree because every executor closes (or abandons) its span
    before its caller closes its own.
    """

    __slots__ = ("spans", "stack", "dropped", "_next")

    def __init__(self, cap: "int | None" = DEFAULT_CAP) -> None:
        #: completed spans, oldest evicted first once past *cap*
        self.spans: deque[Span] = deque(maxlen=cap)
        #: currently open spans, outermost first
        self.stack: list[Span] = []
        #: completed spans evicted by the ring-buffer cap
        self.dropped = 0
        self._next = 0

    @property
    def cap(self) -> "int | None":
        return self.spans.maxlen

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    # -- executor side -------------------------------------------------------

    def begin(
        self, kind: str, rel: str, mode: str, size: int, top: int
    ) -> Span:
        """Open a span under the currently innermost open span."""
        self._next += 1
        stack = self.stack
        parent = stack[-1].sid if stack else 0
        span = Span(self._next, parent, len(stack), kind, rel, mode, size, top)
        stack.append(span)
        return span

    def end(self, span: Span, outcome: str) -> None:
        """Close *span* with *outcome*, force-closing any still-open
        descendants as ``abandoned`` first (their wall-time ends when
        the ancestor's does).  A second ``end`` on an already-closed
        span — e.g. an abandoned enumerator later resumed and drained —
        is a no-op; the ``abandoned`` verdict stands."""
        if span.closed:
            return
        t1 = perf_counter()
        stack = self.stack
        while stack and stack[-1] is not span:
            child = stack.pop()
            child.t1 = t1
            child.outcome = ABANDONED
            self._complete(child)
        if stack:
            stack.pop()
        span.t1 = t1
        span.outcome = outcome
        self._complete(span)

    def close(self) -> None:
        """End of session: force-close anything still open (outcome
        ``open`` — distinct from ``abandoned``, these were live when
        observation stopped)."""
        t1 = perf_counter()
        while self.stack:
            span = self.stack.pop()
            span.t1 = t1
            self._complete(span)

    def _complete(self, span: Span) -> None:
        span.closed = True
        stack = self.stack
        if stack:
            parent = stack[-1]
            if span.consumed >= parent.consumed:
                parent.consumed = span.consumed + 1
        spans = self.spans
        if spans.maxlen is not None and len(spans) == spans.maxlen:
            self.dropped += 1
        spans.append(span)

    # -- read side -----------------------------------------------------------

    def identities(self) -> list[tuple]:
        """All completed spans, timing stripped — the backend-identity
        comparison view."""
        return [s.identity() for s in self.spans]

    def roots(self) -> list[Span]:
        """Completed spans whose parent is outside the recorded set
        (depth 0, or parent evicted by the ring cap)."""
        sids = {s.sid for s in self.spans}
        return [s for s in self.spans if s.parent not in sids]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent == span.sid]

    def tree(self, span: Span, _depth: int = 0) -> str:
        """Indented rendering of the subtree rooted at *span*."""
        lines = [
            "  " * _depth
            + f"{span.kind}:{span.rel}[{span.mode}] "
            f"size={span.size}/{span.top} -> {span.outcome} "
            f"(attempts={span.attempts})"
        ]
        for child in self.children(span):
            lines.append(self.tree(child, _depth + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"SpanRecorder({len(self.spans)} spans, "
            f"{len(self.stack)} open, {self.dropped} dropped)"
        )
