"""Dynamic rule coverage, and its diff against the static linter.

Coverage is *derived* from the per-handler trace
(:class:`~repro.derive.trace.DeriveTrace`) rather than counted at new
hook sites: a rule is **fired** for ``(relation, mode, kind)`` when its
handler recorded at least one success there, **attempted** when it
recorded any activity at all, and **unfired** otherwise.  Because the
trace contract is backend-identical (PR 3), so is coverage — an
interpreted and a compiled run of the same workload produce the same
table.

The interesting read is the diff against the static linter
(:mod:`repro.analysis`): REL004 marks rules that can *never* succeed
(statically dead).  :func:`coverage_diff` joins the two verdicts per
rule:

* statically dead, unfired — expected; the linter already told you;
* statically live, fired — healthy;
* **statically live, never fired** — the flag this module exists for:
  the rule is reachable in principle but the workload (or the
  generator's distribution) never exercised it;
* statically dead, fired — a linter false negative; surfaced loudly
  since one of the two verdicts is wrong.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.context import Context
from ..derive.trace import ATTEMPTS, SUCCESSES, DeriveTrace


class RuleCoverage:
    """``(rel, mode, kind) -> {rule: (attempts, successes)}``."""

    __slots__ = ("table",)

    def __init__(
        self, table: "dict[tuple[str, str, str], dict[str, tuple[int, int]]]"
    ) -> None:
        self.table = table

    @staticmethod
    def from_trace(trace: DeriveTrace) -> "RuleCoverage":
        table: dict = {}
        for (kind, rel, mode, rule), entry in trace.entries.items():
            group = table.setdefault((rel, mode, kind), {})
            att, succ = group.get(rule, (0, 0))
            group[rule] = (att + entry[ATTEMPTS], succ + entry[SUCCESSES])
        return RuleCoverage(table)

    # -- queries -------------------------------------------------------------

    def groups(
        self, relation: "str | None" = None
    ) -> "list[tuple[str, str, str]]":
        keys = sorted(self.table)
        if relation is not None:
            keys = [k for k in keys if k[0] == relation]
        return keys

    def fired(
        self,
        relation: str,
        mode: "str | None" = None,
        kind: "str | None" = None,
    ) -> set[str]:
        """Rules with at least one success, unioned over the matching
        ``(mode, kind)`` groups (``None`` matches any)."""
        out: set[str] = set()
        for (rel, m, k), rules in self.table.items():
            if rel != relation:
                continue
            if mode is not None and m != mode:
                continue
            if kind is not None and k != kind:
                continue
            out.update(r for r, (_, succ) in rules.items() if succ > 0)
        return out

    def attempted(
        self,
        relation: str,
        mode: "str | None" = None,
        kind: "str | None" = None,
    ) -> set[str]:
        out: set[str] = set()
        for (rel, m, k), rules in self.table.items():
            if rel != relation:
                continue
            if mode is not None and m != mode:
                continue
            if kind is not None and k != kind:
                continue
            out.update(r for r, (att, _) in rules.items() if att > 0)
        return out

    def as_dict(self) -> dict:
        return {
            f"{rel}[{mode}]/{kind}": {
                rule: {"attempts": att, "successes": succ}
                for rule, (att, succ) in sorted(rules.items())
            }
            for (rel, mode, kind), rules in sorted(self.table.items())
        }

    # -- rendering -----------------------------------------------------------

    def report(
        self,
        ctx: "Context | None" = None,
        top: "int | None" = None,
        relation: "str | None" = None,
    ) -> str:
        """The coverage table, one block per ``(rel, mode, kind)``.

        With a *ctx*, rules the workload never even attempted are
        listed too (the trace alone cannot know they exist).  *top*
        keeps the N busiest groups; *relation* filters to one
        relation.
        """
        keys = self.groups(relation)
        if not keys:
            scope = f" for relation {relation!r}" if relation else ""
            return f"RuleCoverage: (no rule activity recorded{scope})"
        keys.sort(
            key=lambda k: -sum(att for att, _ in self.table[k].values())
        )
        hidden = 0
        if top is not None and top < len(keys):
            hidden = len(keys) - top
            keys = keys[:top]
        lines = ["RuleCoverage (per relation/mode/kind):"]
        for key in keys:
            rel, mode, kind = key
            rules = dict(self.table[key])
            if ctx is not None and rel in ctx.relations:
                for r in ctx.relations.get(rel).rules:
                    rules.setdefault(r.name, (0, 0))
            n_fired = sum(1 for _, succ in rules.values() if succ > 0)
            lines.append(
                f"  {rel} [{mode}] {kind}: {n_fired}/{len(rules)} rules fired"
            )
            width = max(len(r) for r in rules)
            for rule in sorted(rules):
                att, succ = rules[rule]
                if succ > 0:
                    status = "fired"
                elif att > 0:
                    status = "NEVER FIRED"
                else:
                    status = "NEVER ATTEMPTED"
                lines.append(
                    f"    {rule:<{width}} {att:>9,} attempts"
                    f" {succ:>9,} successes  {status}"
                )
        if hidden:
            lines.append(f"  ... ({hidden} more groups; pass top=None for all)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"RuleCoverage({len(self.table)} groups)"


# ---------------------------------------------------------------------------
# Diff against the static linter.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CoverageDiffRow:
    rule: str
    statically_dead: bool
    attempts: int
    successes: int

    @property
    def fired(self) -> bool:
        return self.successes > 0

    @property
    def live_unfired(self) -> bool:
        """The flag: statically reachable, dynamically never fired."""
        return not self.statically_dead and not self.fired

    @property
    def dead_fired(self) -> bool:
        """A contradiction: the linter called it dead, yet it fired."""
        return self.statically_dead and self.fired

    @property
    def verdict(self) -> str:
        if self.dead_fired:
            return "FIRED despite static dead verdict (linter bug?)"
        if self.live_unfired:
            return "statically live but NEVER FIRED"
        if self.statically_dead:
            return "dead (static), unfired (dynamic)"
        return "live and fired"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "statically_dead": self.statically_dead,
            "attempts": self.attempts,
            "successes": self.successes,
        }

    @staticmethod
    def from_dict(d: dict) -> "CoverageDiffRow":
        return CoverageDiffRow(
            rule=d["rule"],
            statically_dead=d["statically_dead"],
            attempts=d["attempts"],
            successes=d["successes"],
        )


@dataclass(frozen=True)
class CoverageDiff:
    relation: str
    mode: str
    kind: str
    rows: tuple[CoverageDiffRow, ...]

    @property
    def live_unfired(self) -> tuple[CoverageDiffRow, ...]:
        return tuple(r for r in self.rows if r.live_unfired)

    @property
    def dead_fired(self) -> tuple[CoverageDiffRow, ...]:
        return tuple(r for r in self.rows if r.dead_fired)

    @property
    def clean(self) -> bool:
        """No statically-live-but-unfired rules and no contradictions."""
        return not self.live_unfired and not self.dead_fired

    def render(self) -> str:
        head = (
            f"Coverage vs. static linter (REL004) for "
            f"{self.relation} [{self.mode}] {self.kind}:"
        )
        if not self.rows:
            return head + "\n  (relation has no rules)"
        width = max(len(r.rule) for r in self.rows)
        lines = [head]
        for r in self.rows:
            lines.append(
                f"  {r.rule:<{width}} {r.attempts:>9,} attempts"
                f" {r.successes:>9,} successes  {r.verdict}"
            )
        n = len(self.live_unfired)
        if n:
            lines.append(
                f"  => {n} statically-live rule(s) this workload never fired"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """Plain-dict shape for the JSONL dump (``type: "diff"``)."""
        return {
            "relation": self.relation,
            "mode": self.mode,
            "kind": self.kind,
            "rows": [r.as_dict() for r in self.rows],
        }

    @staticmethod
    def from_dict(d: dict) -> "CoverageDiff":
        return CoverageDiff(
            relation=d["relation"],
            mode=d["mode"],
            kind=d["kind"],
            rows=tuple(CoverageDiffRow.from_dict(r) for r in d["rows"]),
        )


def coverage_diff(
    ctx: Context,
    coverage: "RuleCoverage | DeriveTrace",
    relation: str,
    mode: "str | None" = None,
    *,
    kind: "str | None" = None,
) -> CoverageDiff:
    """Join dynamic coverage with the linter's REL004 verdicts for one
    ``(relation, mode, kind)``.

    *coverage* may be a :class:`RuleCoverage` or a raw trace.  *mode*
    ``None`` means the checker mode (matching
    :func:`repro.analysis.analyze`); *kind* defaults the same way the
    linter defaults its artifact kind.
    """
    from ..analysis import analyze
    from ..derive.modes import Mode

    if isinstance(coverage, DeriveTrace):
        coverage = RuleCoverage.from_trace(coverage)
    rel = ctx.relations.get(relation)
    mode_obj = (
        Mode.checker(rel.arity) if mode is None else Mode.for_relation(rel, mode)
    )
    mode_str = str(mode_obj)
    if kind is None:
        kind = "checker" if mode_obj.is_checker else "enum"

    report = analyze(ctx, relation, mode, kind=kind)
    dead = {d.rule for d in report.by_code("REL004") if d.rule is not None}

    dynamic = coverage.table.get((relation, mode_str, kind), {})
    rows = tuple(
        CoverageDiffRow(
            rule=r.name,
            statically_dead=r.name in dead,
            attempts=dynamic.get(r.name, (0, 0))[0],
            successes=dynamic.get(r.name, (0, 0))[1],
        )
        for r in rel.rules
    )
    return CoverageDiff(relation, mode_str, kind, rows)
