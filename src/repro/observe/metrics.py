"""Metrics: histogram and counter primitives behind one registry.

Histograms answer distribution questions the paper's throughput
numbers hide — how much fuel answers actually need, how large
generated values are, how deep enumerator slices go, how many retries
a generator burns per level.  Buckets are exact below 16 and
power-of-two floors above (16–31, 32–63, ...), so the table stays
small at any scale while the head of the distribution — where
QuickChick-style generators live — stays exact.

:class:`TimeHistogram` reuses the same bucket ladder over
**microseconds** for wall-clock latencies (service time, queue wait):
a query taking 3.2 ms lands in the 2048–4095 µs bucket, and the
cumulative bucket walk recovers p50/p90/p99 to within one power of
two — the resolution any latency SLO conversation actually runs at.
Totals and min/max stay exact float seconds, so means are unbucketed.

:class:`Metrics` is the registry: histograms, counters, and gauges by
name, plus an optional binding to the context's
:class:`~repro.derive.stats.DeriveStats` so one snapshot carries both
the observation-layer distributions and the derive-layer counters
(``stats.*``) without duplicating the counting sites.
"""

from __future__ import annotations


def bucket_floor(value: int) -> int:
    """The histogram bucket holding *value*: exact below 16,
    power-of-two floor above, negatives clamped to 0."""
    if value < 16:
        return value if value > 0 else 0
    return 1 << (value.bit_length() - 1)


def bucket_label(floor: int) -> str:
    if floor < 16:
        return str(floor)
    return f"{floor}-{floor * 2 - 1}"


def bucket_upper(floor: int) -> int:
    """Exclusive upper edge of the bucket whose floor is *floor* —
    the ``le`` bound a cumulative (Prometheus-style) exposition needs."""
    if floor < 16:
        return floor + 1
    return floor * 2


class Histogram:
    """Counts of observations per bucket, with exact count/total/
    min/max on the side (the bucketing loses only the shape)."""

    __slots__ = ("name", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min: "int | None" = None
        self.max: "int | None" = None

    def observe(self, value: int) -> None:
        b = bucket_floor(value)
        self.buckets[b] = self.buckets.get(b, 0) + 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    def render(self, width: int = 40) -> str:
        """One text block: header plus a bar per bucket."""
        head = (
            f"{self.name}: n={self.count} mean={self.mean:.2f}"
            f" min={self.min} max={self.max}"
        )
        if not self.count:
            return f"{self.name}: (no observations)"
        peak = max(self.buckets.values())
        lines = [head]
        label_w = max(len(bucket_label(b)) for b in self.buckets)
        for b in sorted(self.buckets):
            n = self.buckets[b]
            bar = "#" * max(1, round(n * width / peak))
            lines.append(f"  {bucket_label(b):>{label_w}} | {n:>7,} {bar}")
        return "\n".join(lines)

    def observe_n(self, value: int, n: int) -> None:
        """Record *n* observations of the same value in one bucket
        update — the batched-dispatch fast path (one lock hold, one
        bucket increment for a whole check batch)."""
        if n <= 0:
            return
        b = bucket_floor(value)
        self.buckets[b] = self.buckets.get(b, 0) + n
        self.count += n
        self.total += value * n
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """The *q*-quantile estimated from the bucket table: the upper
        edge of the bucket where the cumulative count crosses
        ``q * count``, clamped to the exact observed [min, max].  Off
        by at most one power of two — latency-report resolution, not
        benchmark resolution."""
        if not self.count:
            return 0.0
        target = max(1, -(-int(q * self.count * 1000) // 1000))  # ceil
        if target > self.count:
            target = self.count
        seen = 0
        for b in sorted(self.buckets):
            seen += self.buckets[b]
            if seen >= target:
                est = bucket_upper(b)
                return float(min(max(est, self.min), self.max))
        return float(self.max)

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count})"


def _fmt_seconds(s: "float | None") -> str:
    if s is None:
        return "-"
    if s < 1e-3:
        return f"{s * 1e6:.0f}µs"
    if s < 1.0:
        return f"{s * 1e3:.2f}ms"
    return f"{s:.3f}s"


class TimeHistogram(Histogram):
    """A :class:`Histogram` over wall-clock durations.

    Observations are **seconds** (floats); buckets are the same
    exact-below-16 / power-of-two ladder applied to the duration in
    integer **microseconds**, so the 1 µs–16 µs head (memo hits,
    batched point checks) stays exact while multi-second outliers
    still land in a bounded table.  ``total``/``min``/``max`` keep the
    exact float seconds; :meth:`quantile` answers in seconds.
    """

    __slots__ = ()

    #: Marks dumps/JSONL lines so readers rebuild the right class.
    unit = "seconds"

    def observe(self, seconds: float) -> None:  # type: ignore[override]
        b = bucket_floor(int(seconds * 1e6))
        self.buckets[b] = self.buckets.get(b, 0) + 1
        self.count += 1
        self.total += seconds
        if self.min is None or seconds < self.min:
            self.min = seconds
        if self.max is None or seconds > self.max:
            self.max = seconds

    def observe_n(self, seconds: float, n: int) -> None:  # type: ignore[override]
        if n <= 0:
            return
        b = bucket_floor(int(seconds * 1e6))
        self.buckets[b] = self.buckets.get(b, 0) + n
        self.count += n
        self.total += seconds * n
        if self.min is None or seconds < self.min:
            self.min = seconds
        if self.max is None or seconds > self.max:
            self.max = seconds

    def quantile(self, q: float) -> float:
        """The *q*-quantile in **seconds** (bucket upper edge, clamped
        to the exact observed range)."""
        if not self.count:
            return 0.0
        target = max(1, -(-int(q * self.count * 1000) // 1000))
        if target > self.count:
            target = self.count
        seen = 0
        for b in sorted(self.buckets):
            seen += self.buckets[b]
            if seen >= target:
                est = bucket_upper(b) / 1e6
                return min(max(est, self.min), self.max)
        return self.max

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p90(self) -> float:
        return self.quantile(0.90)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def as_dict(self) -> dict:
        d = super().as_dict()
        d["unit"] = self.unit
        d["p50"] = self.p50
        d["p90"] = self.p90
        d["p99"] = self.p99
        return d

    def render(self, width: int = 40) -> str:
        if not self.count:
            return f"{self.name}: (no observations)"
        head = (
            f"{self.name}: n={self.count} mean={_fmt_seconds(self.mean)}"
            f" p50={_fmt_seconds(self.p50)} p99={_fmt_seconds(self.p99)}"
            f" max={_fmt_seconds(self.max)}"
        )
        peak = max(self.buckets.values())
        lines = [head]
        labels = {b: _fmt_seconds(b / 1e6) for b in self.buckets}
        label_w = max(len(lbl) for lbl in labels.values())
        for b in sorted(self.buckets):
            n = self.buckets[b]
            bar = "#" * max(1, round(n * width / peak))
            lines.append(f"  {labels[b]:>{label_w}} | {n:>7,} {bar}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"TimeHistogram({self.name!r}, n={self.count})"


class Metrics:
    """The registry: named histograms, counters, and gauges, created
    on first use so instrumentation sites need no setup."""

    __slots__ = ("histograms", "counters", "gauges", "_stats")

    def __init__(self) -> None:
        self.histograms: dict[str, Histogram] = {}
        self.counters: dict[str, int] = {}
        # Gauges are last-written levels (queue depth, live workers),
        # not monotone counts; merges take the max, not the sum.
        self.gauges: dict[str, float] = {}
        self._stats = None

    def histogram(self, name: str, cls: type = Histogram) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = cls(name)
        return h

    def time_histogram(self, name: str) -> TimeHistogram:
        return self.histogram(name, TimeHistogram)

    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def bind_stats(self, stats) -> None:
        """Unify with a :class:`~repro.derive.stats.DeriveStats`: its
        counters appear in :meth:`counter_snapshot` as ``stats.<name>``
        (read at snapshot time — the stats object keeps counting at its
        own sites)."""
        self._stats = stats

    def counter_snapshot(self) -> dict[str, int]:
        out = dict(self.counters)
        stats = self._stats
        if stats is not None:
            for name, value in stats.as_dict().items():
                out[f"stats.{name}"] = value
        return out

    def as_dict(self) -> dict:
        return {
            "histograms": {
                name: h.as_dict() for name, h in sorted(self.histograms.items())
            },
            "counters": self.counter_snapshot(),
            "gauges": dict(sorted(self.gauges.items())),
        }

    def __repr__(self) -> str:
        return (
            f"Metrics({len(self.histograms)} histograms, "
            f"{len(self.counter_snapshot())} counters)"
        )
