"""Metrics: histogram and counter primitives behind one registry.

Histograms answer distribution questions the paper's throughput
numbers hide — how much fuel answers actually need, how large
generated values are, how deep enumerator slices go, how many retries
a generator burns per level.  Buckets are exact below 16 and
power-of-two floors above (16–31, 32–63, ...), so the table stays
small at any scale while the head of the distribution — where
QuickChick-style generators live — stays exact.

:class:`Metrics` is the registry: histograms and counters by name,
plus an optional binding to the context's
:class:`~repro.derive.stats.DeriveStats` so one snapshot carries both
the observation-layer distributions and the derive-layer counters
(``stats.*``) without duplicating the counting sites.
"""

from __future__ import annotations


def bucket_floor(value: int) -> int:
    """The histogram bucket holding *value*: exact below 16,
    power-of-two floor above, negatives clamped to 0."""
    if value < 16:
        return value if value > 0 else 0
    return 1 << (value.bit_length() - 1)


def bucket_label(floor: int) -> str:
    if floor < 16:
        return str(floor)
    return f"{floor}-{floor * 2 - 1}"


class Histogram:
    """Counts of observations per bucket, with exact count/total/
    min/max on the side (the bucketing loses only the shape)."""

    __slots__ = ("name", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min: "int | None" = None
        self.max: "int | None" = None

    def observe(self, value: int) -> None:
        b = bucket_floor(value)
        self.buckets[b] = self.buckets.get(b, 0) + 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    def render(self, width: int = 40) -> str:
        """One text block: header plus a bar per bucket."""
        head = (
            f"{self.name}: n={self.count} mean={self.mean:.2f}"
            f" min={self.min} max={self.max}"
        )
        if not self.count:
            return f"{self.name}: (no observations)"
        peak = max(self.buckets.values())
        lines = [head]
        label_w = max(len(bucket_label(b)) for b in self.buckets)
        for b in sorted(self.buckets):
            n = self.buckets[b]
            bar = "#" * max(1, round(n * width / peak))
            lines.append(f"  {bucket_label(b):>{label_w}} | {n:>7,} {bar}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count})"


class Metrics:
    """The registry: named histograms and counters, created on first
    use so instrumentation sites need no setup."""

    __slots__ = ("histograms", "counters", "_stats")

    def __init__(self) -> None:
        self.histograms: dict[str, Histogram] = {}
        self.counters: dict[str, int] = {}
        self._stats = None

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def bind_stats(self, stats) -> None:
        """Unify with a :class:`~repro.derive.stats.DeriveStats`: its
        counters appear in :meth:`counter_snapshot` as ``stats.<name>``
        (read at snapshot time — the stats object keeps counting at its
        own sites)."""
        self._stats = stats

    def counter_snapshot(self) -> dict[str, int]:
        out = dict(self.counters)
        stats = self._stats
        if stats is not None:
            for name, value in stats.as_dict().items():
                out[f"stats.{name}"] = value
        return out

    def as_dict(self) -> dict:
        return {
            "histograms": {
                name: h.as_dict() for name, h in sorted(self.histograms.items())
            },
            "counters": self.counter_snapshot(),
        }

    def __repr__(self) -> str:
        return (
            f"Metrics({len(self.histograms)} histograms, "
            f"{len(self.counter_snapshot())} counters)"
        )
