"""``repro.observe``: observability for derived computations.

The derive layer answers *what* (checkers decide, enumerators stream,
generators sample); this package answers *how it went*: the recursive
call tree as hierarchical spans, distributions as histograms, dynamic
rule coverage diffed against the static linter, all exportable as
JSON lines or Chrome trace events and renderable with
``python -m repro.observe``.

Everything hangs off one contextmanager::

    from repro.observe import observe

    with observe(ctx) as obs:
        checker.decide(args)
    print(obs.report())
    obs.export_jsonl("run.jsonl")

The hook sites live in :mod:`repro.derive.exec_core` and the compiled
twins from :mod:`repro.derive.codegen`; with no observation installed
they cost one dict read per fixpoint level (the bench_observe.py bar).
All four backends (three interpreters + compiled) feed identical span
trees and coverage — the timing-stripped views
(:meth:`~repro.observe.spans.Span.identity`,
:class:`~repro.observe.coverage.RuleCoverage`) compare equal across
them.
"""

from ..derive.trace import OBSERVE_KEY
from .coverage import CoverageDiff, CoverageDiffRow, RuleCoverage, coverage_diff
from .export import (
    Dump,
    read_jsonl,
    render_prometheus,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
    write_telemetry_jsonl,
)
from .merge import merge_metrics, merge_observations, merge_telemetry, merge_traces
from .metrics import Histogram, Metrics, TimeHistogram
from .report import render_dump, render_observation
from .session import Observation, ObserveTrace, observe
from .spans import DEFAULT_CAP, Span, SpanRecorder
from .telemetry import QueryEvent, Telemetry

__all__ = [
    "OBSERVE_KEY",
    "DEFAULT_CAP",
    "CoverageDiff",
    "CoverageDiffRow",
    "Dump",
    "Histogram",
    "Metrics",
    "Observation",
    "ObserveTrace",
    "QueryEvent",
    "RuleCoverage",
    "Span",
    "SpanRecorder",
    "Telemetry",
    "TimeHistogram",
    "coverage_diff",
    "merge_metrics",
    "merge_observations",
    "merge_telemetry",
    "merge_traces",
    "observe",
    "read_jsonl",
    "render_dump",
    "render_observation",
    "render_prometheus",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
    "write_telemetry_jsonl",
]
