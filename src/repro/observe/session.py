"""Observation sessions: wiring spans + metrics into the executors.

The executors (:mod:`repro.derive.exec_core` and the compiled twins
from :mod:`repro.derive.codegen`) look up ``caches.get(OBSERVE_KEY)``
once per fixpoint level; when it returns an :class:`Observation` they
call exactly four duck-typed hooks::

    span = obs.spans.begin(kind, rel, mode, size, top)
    obs.end_checker(span, option_bool)
    obs.end_enum(span, n_values, saw_fuel)
    obs.end_gen(span, result, attempts)

Everything else — outcome encoding, histogram updates, coverage — is
derived here, on the observe side, so the derive package never imports
this one and the hook sites stay one dict read + ``is not None`` when
observation is off.

:func:`observe` installs the session.  It also installs the session's
:class:`ObserveTrace` at ``TRACE_KEY`` (a
:class:`~repro.derive.trace.DeriveTrace` that additionally attributes
handler attempts to the innermost open span) and a
:class:`~repro.derive.stats.DeriveStats` if none is active — so an
``Observation`` always implies an active trace, which the coverage
layer reads.  The outcome encodings:

=========  =======================================================
kind       outcomes
=========  =======================================================
checker    ``true`` / ``false`` / ``fuel`` (indefinite ``None``)
enum       ``{n}v`` (n values, complete) / ``{n}v+fuel``
gen        ``value`` / ``fail`` / ``fuel``
any        ``abandoned`` (ancestor ended first) / ``open``
           (session closed first)
=========  =======================================================
"""

from __future__ import annotations

from contextlib import contextmanager

from ..core.context import Context
from ..core.values import Value
from ..derive.stats import STATS_KEY, install_stats, remove_stats
from ..derive.trace import OBSERVE_KEY, TRACE_KEY, DeriveTrace
from ..producers.option_bool import NONE_OB, SOME_TRUE
from ..producers.outcome import FAIL, OUT_OF_FUEL
from .coverage import RuleCoverage
from .metrics import Metrics
from .spans import DEFAULT_CAP, SpanRecorder


class ObserveTrace(DeriveTrace):
    """The per-handler trace of an observation session: the ordinary
    :class:`~repro.derive.trace.DeriveTrace` counters, plus attempt
    attribution to the innermost open span.  (An attempt recorded
    while an abandoned-but-unclosed enumerator span is innermost
    attributes to that span — both backends leave the stack in the
    same state, so attribution is backend-identical too.)"""

    __slots__ = ("_spans",)

    def __init__(self, spans: SpanRecorder) -> None:
        super().__init__()
        self._spans = spans

    def record4(self, key: tuple, success: bool, fuel: bool) -> None:
        entry = self.entries.get(key)
        if entry is None:
            entry = self.entries[key] = [0, 0, 0, 0]
        entry[0] += 1
        if success:
            entry[1] += 1
        else:
            entry[2] += 1
        if fuel:
            entry[3] += 1
        stack = self._spans.stack
        if stack:
            stack[-1].attempts += 1


class Observation:
    """One observability session: spans + metrics + trace, with the
    hook methods the executors call."""

    __slots__ = ("spans", "metrics", "trace")

    def __init__(self, span_cap: "int | None" = DEFAULT_CAP) -> None:
        self.spans = SpanRecorder(span_cap)
        self.metrics = Metrics()
        self.trace = ObserveTrace(self.spans)

    # -- executor hooks ------------------------------------------------------

    def end_checker(self, span, result) -> None:
        if result is SOME_TRUE:
            outcome = "true"
        elif result is NONE_OB:
            outcome = "fuel"
        else:
            outcome = "false"
        self.spans.end(span, outcome)
        if span.size == span.top and result is not NONE_OB:
            # Entry-level call with a definite answer: how much fuel
            # head-room it had (fuel in minus subtree height).
            self.metrics.histogram("checker.fuel_at_answer").observe(
                max(span.size - span.consumed, 0)
            )

    def end_enum(self, span, values: int, saw_fuel: bool) -> None:
        outcome = f"{values}v+fuel" if saw_fuel else f"{values}v"
        self.spans.end(span, outcome)
        self.metrics.histogram("enum.slice_depth").observe(
            span.top - span.size
        )

    def end_gen(self, span, result, attempts: int) -> None:
        if result is OUT_OF_FUEL:
            outcome = "fuel"
        elif result is FAIL:
            outcome = "fail"
        else:
            outcome = "value"
        self.spans.end(span, outcome)
        self.metrics.histogram("gen.retries").observe(attempts)
        if outcome == "value" and span.size == span.top:
            # Entry-level samples only: sub-results would double-count.
            for v in result:
                if isinstance(v, Value):
                    self.metrics.histogram("gen.value_size").observe(
                        v.size()
                    )

    # -- session lifecycle ---------------------------------------------------

    def close(self) -> None:
        """Force-close any spans still open (outcome ``open``)."""
        self.spans.close()

    # -- read side -----------------------------------------------------------

    def coverage(self) -> RuleCoverage:
        """Dynamic rule coverage, derived from the trace."""
        return RuleCoverage.from_trace(self.trace)

    def coverage_diffs(self, ctx: Context) -> list:
        """Static-vs-dynamic :func:`~repro.observe.coverage.coverage_diff`
        for every ``(relation, mode, kind)`` group this session
        exercised.  Groups the linter cannot analyze (polymorphic,
        unschedulable) are skipped; what remains is exactly the set of
        verdicts a dump can re-check offline, which is how stale REL004
        verdicts get caught by ``python -m repro.observe`` in CI."""
        from ..core.errors import ReproError
        from .coverage import coverage_diff

        cov = self.coverage()
        out = []
        for rel, mode, kind in cov.groups():
            if rel not in ctx.relations:
                continue
            try:
                out.append(coverage_diff(ctx, cov, rel, mode, kind=kind))
            except ReproError:
                continue
        return out

    def report(
        self, top: "int | None" = 10, relation: "str | None" = None
    ) -> str:
        """The full text report (top spans, coverage, histograms)."""
        from .report import render_observation

        return render_observation(self, top=top, relation=relation)

    def export_jsonl(self, path, *, ctx: "Context | None" = None) -> None:
        """Write the JSONL dump; with *ctx* it also carries the
        coverage-vs-linter diff lines (see :meth:`coverage_diffs`), so
        the report CLI can flag contradictions without the context."""
        from .export import write_jsonl

        write_jsonl(self, path, ctx=ctx)

    def export_chrome_trace(self, path) -> None:
        from .export import write_chrome_trace

        write_chrome_trace(self, path)

    def __repr__(self) -> str:
        return (
            f"Observation({len(self.spans)} spans, "
            f"{len(self.trace.entries)} handlers, {self.metrics!r})"
        )


@contextmanager
def observe(ctx: Context, *, span_cap: "int | None" = DEFAULT_CAP):
    """Enable full observation for the dynamic extent of the ``with``
    block; yields the :class:`Observation` being filled.

    Installs the observation at ``OBSERVE_KEY``, its
    :class:`ObserveTrace` at ``TRACE_KEY`` (replacing — and restoring
    on exit — any :func:`~repro.derive.trace.profile` trace), and a
    :class:`~repro.derive.stats.DeriveStats` if none is active, bound
    into the metrics registry.  On exit every still-open span is
    force-closed, so the yielded object is complete and stable after
    the block.

    Overhead contract: inside the block every fixpoint level pays for
    span bookkeeping (roughly profiling cost plus one object per
    level); outside, the executors' ``caches.get`` probes are the only
    trace left — the ``bench_observe.py`` bar holds that at noise.
    """
    caches = ctx.caches
    obs = Observation(span_cap)
    prev_obs = caches.get(OBSERVE_KEY)
    prev_trace = caches.get(TRACE_KEY)
    caches[OBSERVE_KEY] = obs
    caches[TRACE_KEY] = obs.trace
    installed_stats = caches.get(STATS_KEY) is None
    if installed_stats:
        install_stats(ctx)
    obs.metrics.bind_stats(caches.get(STATS_KEY))
    try:
        yield obs
    finally:
        obs.close()
        if prev_obs is None:
            caches.pop(OBSERVE_KEY, None)
        else:
            caches[OBSERVE_KEY] = prev_obs
        if prev_trace is None:
            caches.pop(TRACE_KEY, None)
        else:
            caches[TRACE_KEY] = prev_trace
        if installed_stats:
            remove_stats(ctx)
