"""Serving-layer telemetry: per-query events, latency histograms,
sampling policy — the feedback substrate under the engine and
parallel campaigns.

A :class:`Telemetry` object is a thread-safe recording surface shared
by every worker of one :class:`~repro.serve.engine.Engine` (or one
campaign shard).  Each served query contributes:

* one :class:`QueryEvent` in a bounded ring (query id, kind, relation,
  status, worker, queue wait, service time, batch size — and, for
  *sampled or slow* queries only, the full span tree of the execution);
* per-``(kind, relation)`` **service-time** and global **queue-wait**
  :class:`~repro.observe.metrics.TimeHistogram`\\ s (p50/p90/p99 read
  straight off the buckets), a **batch-size** histogram, and
  ``serve.*`` counters (ok / gave-up by reason / errors / batched /
  per-worker rows);
* **queue-depth** gauges updated at submit time.

Sampling keeps the overhead contract (``bench_telemetry.py``'s
≤1.05× bar): histograms and counters record *every* query — they are
a few dict updates — while span trees, the expensive part, attach only
to every *sample_every*-th query id, plus **latency-threshold
tracing**: when a query's service time exceeds *slow_seconds*, its
``(kind, relation)`` is flagged and the *next* query of that shape is
traced (spans cannot be recorded retroactively, so the threshold arms
a prospective trace on the offending shape).

Campaign shards record per-test events through :meth:`Telemetry.
record_test`; shard objects return over the fork pipe (the lock is
dropped on pickle and rebuilt on load) and merge via
:func:`repro.observe.merge.merge_telemetry` with shard-local query
ids renumbered exactly like span sids.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

from .metrics import Histogram, Metrics, TimeHistogram, _fmt_seconds

#: Default: attach a span tree to one query in 128.
DEFAULT_SAMPLE_EVERY = 128
#: Default ring size for retained query events.
DEFAULT_EVENT_CAP = 4096


class QueryEvent:
    """One served query (or campaign test), flattened for export.

    *spans* is ``None`` for unsampled queries; for sampled/slow ones
    it is the list of span dicts (:meth:`~repro.observe.spans.Span.
    as_dict`) recorded under the query's execution.  *shard* is
    ``None`` until a merge stamps the source shard's index.
    """

    __slots__ = (
        "qid", "kind", "rel", "mode", "status", "reason", "worker",
        "queue_seconds", "service_seconds", "batch", "spans", "shard",
    )

    def __init__(
        self, qid, kind, rel, mode, status, reason, worker,
        queue_seconds, service_seconds, batch, spans=None, shard=None,
    ):
        self.qid = qid
        self.kind = kind
        self.rel = rel
        self.mode = mode
        self.status = status
        self.reason = reason
        self.worker = worker
        self.queue_seconds = queue_seconds
        self.service_seconds = service_seconds
        self.batch = batch
        self.spans = spans
        self.shard = shard

    def as_dict(self) -> dict:
        return {
            "qid": self.qid,
            "kind": self.kind,
            "rel": self.rel,
            "mode": self.mode,
            "status": self.status,
            "reason": self.reason,
            "worker": self.worker,
            "queue_seconds": self.queue_seconds,
            "service_seconds": self.service_seconds,
            "batch": self.batch,
            "spans": self.spans,
            "shard": self.shard,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "QueryEvent":
        return cls(
            d["qid"], d["kind"], d["rel"], d.get("mode", ""),
            d["status"], d.get("reason"), d.get("worker"),
            d.get("queue_seconds", 0.0), d.get("service_seconds", 0.0),
            d.get("batch", 1), d.get("spans"), d.get("shard"),
        )

    def __repr__(self) -> str:
        return (
            f"QueryEvent(qid={self.qid}, {self.kind}:{self.rel}"
            f"[{self.mode}], {self.status}, "
            f"{_fmt_seconds(self.service_seconds)})"
        )


class Telemetry:
    """The shared recording surface (see the module docstring).

    *sample_every* = N attaches span trees to every Nth query id
    (1 = trace everything, 0/None = never sample); *slow_seconds*
    arms a prospective trace on any (kind, relation) whose last query
    exceeded it; *event_cap* bounds the event ring (evictions are
    counted in ``dropped_events``, never silent); *span_cap* bounds
    each sampled query's span buffer.
    """

    def __init__(
        self,
        *,
        sample_every: "int | None" = DEFAULT_SAMPLE_EVERY,
        slow_seconds: "float | None" = None,
        event_cap: "int | None" = DEFAULT_EVENT_CAP,
        span_cap: int = 2048,
    ) -> None:
        self.sample_every = sample_every or 0
        self.slow_seconds = slow_seconds
        self.event_cap = event_cap
        self.span_cap = span_cap
        self.metrics = Metrics()
        self.events: list[QueryEvent] = []
        self.dropped_events = 0
        self._next_qid = 0
        self._slow_armed: set = set()   # (kind, rel) shapes to trace next
        # Hot-path caches: (kind, rel) -> histogram / canonical names,
        # so per-query recording never builds f-strings.
        self._service: dict = {}
        self._queue_hist = self.metrics.time_histogram("serve.queue_seconds")
        self._batch_hist = self.metrics.histogram("serve.batch_size")
        self._worker_names: dict = {}
        self.lock = threading.Lock()

    # -- pickling (fork shards return over the pipe) ------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.lock = threading.Lock()

    # -- write side ---------------------------------------------------------

    def next_qid(self) -> int:
        """Allocate the next query id (1-based, campaign-unique)."""
        with self.lock:
            self._next_qid += 1
            return self._next_qid

    def should_trace(self, qid: int, kind: str, rel: str) -> bool:
        """Whether this query carries a full span tree: every
        *sample_every*-th id, or a shape armed by a slow predecessor."""
        if self.sample_every and (qid - 1) % self.sample_every == 0:
            return True
        return (kind, rel) in self._slow_armed

    def _service_hist(self, kind: str, rel: str) -> TimeHistogram:
        key = (kind, rel)
        h = self._service.get(key)
        if h is None:
            h = self.metrics.time_histogram(
                f"serve.service_seconds.{kind}.{rel}"
            )
            self._service[key] = h
        return h

    def _worker_row(self, worker: int) -> tuple:
        names = self._worker_names.get(worker)
        if names is None:
            prefix = f"serve.worker.{worker}."
            names = tuple(
                prefix + f for f in ("queries", "batched", "gave_up", "errors")
            )
            self._worker_names[worker] = names
        return names

    def _append_event(self, ev: QueryEvent) -> None:
        self.events.append(ev)
        cap = self.event_cap
        if cap is not None and len(self.events) > cap:
            drop = len(self.events) - cap
            del self.events[:drop]
            self.dropped_events += drop

    def record_query(
        self,
        *,
        qid: int,
        kind: str,
        rel: str,
        mode: str = "",
        status: str,
        reason: "str | None" = None,
        worker: "int | None" = None,
        queue_seconds: float = 0.0,
        service_seconds: float = 0.0,
        batch: int = 1,
        spans: "list | None" = None,
    ) -> None:
        """Record one served query: histograms + counters always, the
        event always (ring-bounded), spans only when the caller traced
        it.  One lock hold per call."""
        with self.lock:
            c = self.metrics.counters
            c["serve.queries"] = c.get("serve.queries", 0) + 1
            skey = f"serve.{status}"
            c[skey] = c.get(skey, 0) + 1
            if reason is not None:
                rkey = f"serve.gave_up.reason.{reason}"
                c[rkey] = c.get(rkey, 0) + 1
                gkey = f"serve.gave_up.{kind}.{rel}"
                c[gkey] = c.get(gkey, 0) + 1
            if batch > 1:
                c["serve.batched"] = c.get("serve.batched", 0) + 1
            if spans is not None:
                c["serve.traced"] = c.get("serve.traced", 0) + 1
            if worker is not None:
                wq, wb, wg, we = self._worker_row(worker)
                c[wq] = c.get(wq, 0) + 1
                if batch > 1:
                    c[wb] = c.get(wb, 0) + 1
                if status == "gave_up":
                    c[wg] = c.get(wg, 0) + 1
                elif status == "error":
                    c[we] = c.get(we, 0) + 1
            self._service_hist(kind, rel).observe(service_seconds)
            self._queue_hist.observe(queue_seconds)
            self._batch_hist.observe(batch)
            self._arm_slow(kind, rel, service_seconds, spans)
            self._append_event(
                QueryEvent(
                    qid, kind, rel, mode, status, reason, worker,
                    queue_seconds, service_seconds, batch, spans,
                )
            )

    def record_shed(
        self,
        *,
        qid: int,
        kind: str,
        rel: str,
        mode: str = "",
        reason: str,
        queue_seconds: float = 0.0,
    ) -> None:
        """Record one **shed** query — refused at admission, expired in
        queue, dropped by the overload ladder or a shape breaker, or
        flushed at shutdown (see :mod:`repro.serve.admission`).

        Sheds never executed: they count under the ``serve.shed.*``
        family (not ``serve.queries``), touch no service or queue-wait
        histogram (those describe queries that reached service), and
        land in the event ring with ``status="shed"`` so per-query
        traces show the refusal and its reason."""
        with self.lock:
            c = self.metrics.counters
            c["serve.shed"] = c.get("serve.shed", 0) + 1
            rkey = f"serve.shed.reason.{reason}"
            c[rkey] = c.get(rkey, 0) + 1
            skey = f"serve.shed.{kind}.{rel}"
            c[skey] = c.get(skey, 0) + 1
            self._append_event(
                QueryEvent(
                    qid, kind, rel, mode, "shed", reason, None,
                    queue_seconds, 0.0, 1,
                )
            )

    def record_batch(
        self,
        *,
        kind: str,
        rel: str,
        worker: "int | None",
        entries: "list[tuple]",
        service_seconds: float,
        statuses: "list[str]",
        reasons: "list[str | None]",
    ) -> None:
        """Record one served check batch in a single lock hold.

        *entries* is ``[(qid, queue_seconds), ...]`` in batch order;
        *service_seconds* is the per-query amortized service time (the
        batch wall time split evenly — the batch entry point answers
        all members together).
        """
        n = len(entries)
        with self.lock:
            c = self.metrics.counters
            c["serve.queries"] = c.get("serve.queries", 0) + n
            c["serve.batched"] = c.get("serve.batched", 0) + n
            for status in statuses:
                skey = f"serve.{status}"
                c[skey] = c.get(skey, 0) + 1
            gave_up = 0
            for reason in reasons:
                if reason is not None:
                    gave_up += 1
                    rkey = f"serve.gave_up.reason.{reason}"
                    c[rkey] = c.get(rkey, 0) + 1
            if gave_up:
                gkey = f"serve.gave_up.{kind}.{rel}"
                c[gkey] = c.get(gkey, 0) + gave_up
            if worker is not None:
                wq, wb, wg, we = self._worker_row(worker)
                c[wq] = c.get(wq, 0) + n
                c[wb] = c.get(wb, 0) + n
                if gave_up:
                    c[wg] = c.get(wg, 0) + gave_up
            hist = self._service_hist(kind, rel)
            hist.observe_n(service_seconds, n)
            self._batch_hist.observe_n(n, n)
            qh = self._queue_hist
            for (qid, queue_seconds), status, reason in zip(
                entries, statuses, reasons
            ):
                qh.observe(queue_seconds)
                self._append_event(
                    QueryEvent(
                        qid, kind, rel, "", status, reason, worker,
                        queue_seconds, service_seconds, n,
                    )
                )
            self._arm_slow(kind, rel, service_seconds, None)

    def _arm_slow(self, kind, rel, service_seconds, spans) -> None:
        # Must run under self.lock.  A slow query arms a prospective
        # trace for its shape (spans can't be captured after the
        # fact); the armed trace, once captured, disarms it.
        slow = self.slow_seconds
        if slow is None:
            return
        key = (kind, rel)
        if spans is not None:
            self._slow_armed.discard(key)
        elif service_seconds > slow:
            self._slow_armed.add(key)

    def record_test(
        self,
        rel: str,
        status: str,
        service_seconds: float,
        *,
        retries: int = 0,
    ) -> None:
        """Record one campaign test execution (*rel* is the property
        name).  *status* is ``"ok"`` / ``"discard"`` / ``"failed"`` /
        ``"gave_up"`` (budget-tripped past its retries)."""
        with self.lock:
            c = self.metrics.counters
            c["test.runs"] = c.get("test.runs", 0) + 1
            skey = f"test.{status}"
            c[skey] = c.get(skey, 0) + 1
            if retries:
                c["test.retries"] = c.get("test.retries", 0) + retries
            self._service_hist("test", rel).observe(service_seconds)
            self._next_qid += 1
            self._append_event(
                QueryEvent(
                    self._next_qid, "test", rel, "", status,
                    None, None, 0.0, service_seconds, 1,
                )
            )

    def observe_queue_depth(self, depth: int) -> None:
        """Update the queue-depth gauges.  Unlocked by design: a gauge
        is a single dict store (atomic under the GIL) and the submit
        path must not contend with the workers' recording lock."""
        g = self.metrics.gauges
        g["serve.queue_depth"] = depth
        if depth > g.get("serve.queue_depth.max", 0):
            g["serve.queue_depth.max"] = depth

    # -- read side ----------------------------------------------------------

    def query_table(self) -> "list[dict]":
        """One row per (kind, relation): count, give-ups, latency
        percentiles — the body of the ``--stats`` view."""
        with self.lock:
            counters = dict(self.metrics.counters)
            hists = [
                h for h in self.metrics.histograms.values()
                if h.name.startswith("serve.service_seconds.")
                or h.name.startswith("test.service_seconds.")
            ]
            rows = []
            for h in hists:
                prefix, _, rest = h.name.partition(".service_seconds.")
                if prefix == "test":
                    kind, rel = "test", rest
                else:
                    kind, _, rel = rest.partition(".")
                gave_up = counters.get(f"serve.gave_up.{kind}.{rel}", 0)
                rows.append(
                    {
                        "kind": kind,
                        "rel": rel,
                        "count": h.count,
                        "gave_up": gave_up,
                        "give_up_rate": gave_up / h.count if h.count else 0.0,
                        "mean_seconds": h.mean,
                        "p50_seconds": h.p50,
                        "p90_seconds": h.p90,
                        "p99_seconds": h.p99,
                        "max_seconds": h.max,
                    }
                )
        rows.sort(key=lambda r: (-r["count"], r["kind"], r["rel"]))
        return rows

    def snapshot(self) -> dict:
        """A JSON-ready point-in-time view: counters, gauges, the
        per-(kind, rel) latency table, queue-wait and batch-size
        summaries, event-ring occupancy."""
        table = self.query_table()
        with self.lock:
            qh, bh = self._queue_hist, self._batch_hist
            return {
                "counters": dict(self.metrics.counters),
                "gauges": dict(self.metrics.gauges),
                "queries": table,
                "queue_wait": {
                    "count": qh.count,
                    "p50_seconds": qh.p50,
                    "p99_seconds": qh.p99,
                    "max_seconds": qh.max,
                },
                "batch_size": {
                    "count": bh.count,
                    "mean": bh.mean,
                    "max": bh.max,
                },
                "events": len(self.events),
                "dropped_events": self.dropped_events,
                "traced": self.metrics.counters.get("serve.traced", 0),
            }

    def render(self, top: int = 12) -> str:
        """The ``top``-style text snapshot behind ``python -m
        repro.serve --stats``."""
        snap = self.snapshot()
        c = snap["counters"]
        served = c.get("serve.queries", 0)
        head = [
            "repro.serve telemetry",
            "=====================",
            (
                f"queries: {served}   ok: {c.get('serve.ok', 0)}"
                f"   gave_up: {c.get('serve.gave_up', 0)}"
                f"   errors: {c.get('serve.error', 0)}"
                f"   batched: {c.get('serve.batched', 0)}"
                f"   traced: {snap['traced']}"
            ),
            (
                f"queue: depth={snap['gauges'].get('serve.queue_depth', 0):g}"
                f" (max {snap['gauges'].get('serve.queue_depth.max', 0):g})"
                f"   wait p50={_fmt_seconds(snap['queue_wait']['p50_seconds'])}"
                f" p99={_fmt_seconds(snap['queue_wait']['p99_seconds'])}"
                f"   batch mean={snap['batch_size']['mean']:.1f}"
                f" max={snap['batch_size']['max'] or 0}"
            ),
            "",
        ]
        rows = snap["queries"][:top] if top else snap["queries"]
        if not rows:
            head.append("  (no queries recorded)")
            return "\n".join(head)
        label_w = max(len(f"{r['kind']}:{r['rel']}") for r in rows)
        label_w = max(label_w, len("query"))
        head.append(
            f"  {'query':<{label_w}} {'n':>8} {'give-up':>8} "
            f"{'p50':>9} {'p90':>9} {'p99':>9} {'max':>9}"
        )
        for r in rows:
            label = f"{r['kind']}:{r['rel']}"
            head.append(
                f"  {label:<{label_w}} {r['count']:>8,} "
                f"{100 * r['give_up_rate']:>7.1f}% "
                f"{_fmt_seconds(r['p50_seconds']):>9} "
                f"{_fmt_seconds(r['p90_seconds']):>9} "
                f"{_fmt_seconds(r['p99_seconds']):>9} "
                f"{_fmt_seconds(r['max_seconds']):>9}"
            )
        hidden = len(snap["queries"]) - len(rows)
        if hidden > 0:
            head.append(f"  ... ({hidden} more rows)")
        if snap["dropped_events"]:
            head.append(
                f"  [{snap['dropped_events']} events dropped by the "
                f"ring (cap {self.event_cap})]"
            )
        return "\n".join(head)

    def as_dict(self) -> dict:
        return {
            "sample_every": self.sample_every,
            "slow_seconds": self.slow_seconds,
            "snapshot": self.snapshot(),
        }

    def __repr__(self) -> str:
        served = self.metrics.counters.get("serve.queries", 0)
        tests = self.metrics.counters.get("test.runs", 0)
        return (
            f"Telemetry(queries={served}, tests={tests}, "
            f"events={len(self.events)})"
        )
