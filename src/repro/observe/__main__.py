"""Entry point for ``python -m repro.observe``."""

import sys

from .cli import main

sys.exit(main())
