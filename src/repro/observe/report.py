"""Text report rendering, from live observations or dump files.

One renderer serves both paths: :func:`render_observation` converts a
live :class:`~repro.observe.session.Observation` to the dump's plain
dict shapes and delegates to :func:`render_dump`, which is what
``python -m repro.observe`` calls on a JSON-lines file.  Sections:

* **summary** — span counts (completed / open / dropped by the ring);
* **top spans** — the N slowest completed spans, with kind, relation,
  mode, fuel, outcome, attempts;
* **rule coverage** — the per ``(relation, mode, kind)`` fired/unfired
  table derived from the handler entries;
* **histograms** — bucket bars for each registered distribution;
* **counters** — flat name/value list (``stats.*`` are the derive
  layer's counters; ``budget.*`` are resource-governance events —
  trips per limit, injected faults, evictions — recorded by
  :mod:`repro.resilience.budget`).
"""

from __future__ import annotations

from .coverage import CoverageDiff, RuleCoverage
from .export import Dump
from .metrics import Histogram


def _coverage_from_handlers(handlers: list) -> RuleCoverage:
    table: dict = {}
    for h in handlers:
        group = table.setdefault((h["rel"], h["mode"], h["kind"]), {})
        att, succ = group.get(h["rule"], (0, 0))
        group[h["rule"]] = (att + h["attempts"], succ + h["successes"])
    return RuleCoverage(table)


def _histogram_from_dict(d: dict) -> Histogram:
    h = Histogram(d["name"])
    h.count = d["count"]
    h.total = d["total"]
    h.min = d["min"]
    h.max = d["max"]
    h.buckets = {int(k): v for k, v in d["buckets"].items()}
    return h


def _render_top_spans(
    spans: list, top: "int | None", relation: "str | None"
) -> list[str]:
    rows = spans
    if relation is not None:
        rows = [s for s in rows if s["rel"] == relation]
    if not rows:
        scope = f" for relation {relation!r}" if relation else ""
        return [f"  (no spans recorded{scope})"]
    rows = sorted(rows, key=lambda s: -(s["t1"] - s["t0"]))
    hidden = 0
    if top is not None and top < len(rows):
        hidden = len(rows) - top
        rows = rows[:top]
    label_w = max(
        len(f"{s['kind']}:{s['rel']}[{s['mode']}]") for s in rows
    )
    lines = [
        f"  {'span':<{label_w}} {'ms':>9} {'fuel':>7} {'outcome':>12}"
        f" {'attempts':>9} {'sid':>7}"
    ]
    for s in rows:
        label = f"{s['kind']}:{s['rel']}[{s['mode']}]"
        ms = max(s["t1"] - s["t0"], 0.0) * 1e3
        lines.append(
            f"  {label:<{label_w}} {ms:>9.3f} {s['size']:>3}/{s['top']:<3}"
            f" {s['outcome']:>12} {s['attempts']:>9,} {s['sid']:>7}"
        )
    if hidden:
        lines.append(f"  ... ({hidden} more spans; pass --top 0 for all)")
    return lines


def render_dump(
    dump: Dump, top: "int | None" = 10, relation: "str | None" = None
) -> str:
    """The full text report for a parsed dump."""
    meta = dump.meta
    sections = [
        "repro.observe report",
        "====================",
        f"format: {dump.format}   spans: {meta.get('spans', len(dump.spans))}"
        f"   open: {meta.get('open_spans', 0)}"
        f"   dropped: {meta.get('dropped_spans', 0)}",
        "",
        f"Top spans by wall-time{f' ({relation})' if relation else ''}:",
        *_render_top_spans(dump.spans, top, relation),
        "",
        _coverage_from_handlers(dump.handlers).report(
            top=top, relation=relation
        ),
    ]
    diffs = dump.diffs
    if relation is not None:
        diffs = [d for d in diffs if d["relation"] == relation]
    if diffs:
        sections.append("")
        sections.append("Coverage vs. static linter (from dump diff lines):")
        for d in diffs:
            block = CoverageDiff.from_dict(d).render()
            sections.extend("  " + line for line in block.splitlines())
        bad = [
            r
            for d in diffs
            for r in d["rows"]
            if r["statically_dead"] and r["successes"] > 0
        ]
        if bad:
            sections.append(
                f"  => {len(bad)} dead-but-fired contradiction(s): a REL004 "
                "verdict is stale (exit 1 in the CLI)"
            )
    if dump.histograms:
        sections.append("")
        sections.append("Histograms:")
        for d in sorted(dump.histograms, key=lambda d: d["name"]):
            block = _histogram_from_dict(d).render()
            sections.extend("  " + line for line in block.splitlines())
    if dump.counters:
        sections.append("")
        sections.append("Counters:")
        width = max(len(n) for n in dump.counters)
        for name in sorted(dump.counters):
            sections.append(f"  {name:<{width}} {dump.counters[name]:>12,}")
    return "\n".join(sections)


def render_observation(
    obs, top: "int | None" = 10, relation: "str | None" = None
) -> str:
    """Render a live observation (same output as dumping to JSONL and
    rendering the file)."""
    from .export import _handler_lines

    dump = Dump(
        meta={
            "format": "repro.observe/v1",
            "spans": len(obs.spans),
            "open_spans": len(obs.spans.stack),
            "dropped_spans": obs.spans.dropped,
        },
        spans=[s.as_dict() for s in obs.spans],
        handlers=_handler_lines(obs),
        histograms=[h.as_dict() for h in obs.metrics.histograms.values()],
        counters=obs.metrics.counter_snapshot(),
    )
    return render_dump(dump, top=top, relation=relation)
