"""Text report rendering, from live observations or dump files.

One renderer serves both paths: :func:`render_observation` converts a
live :class:`~repro.observe.session.Observation` to the dump's plain
dict shapes and delegates to :func:`render_dump`, which is what
``python -m repro.observe`` calls on a JSON-lines file.  Sections:

* **summary** — span counts (completed / open / dropped by the ring);
* **top spans** — the N slowest completed spans, with kind, relation,
  mode, fuel, outcome, attempts;
* **rule coverage** — the per ``(relation, mode, kind)`` fired/unfired
  table derived from the handler entries;
* **histograms** — bucket bars for each registered distribution;
* **queries** — per-(kind, relation) latency/give-up table, present
  when the dump carries serving-layer ``query`` lines
  (:func:`~repro.observe.export.write_telemetry_jsonl`);
* **counters** — flat name/value list.

Counter-name table (who records what):

=========================  ===============================================
prefix                     recorded by
=========================  ===============================================
``stats.*``                the derive layer's ``DeriveStats`` (calls,
                           memo hits, codegen events), materialized at
                           snapshot time
``budget.*``               resource governance — trips per limit,
                           injected faults, evictions
                           (:mod:`repro.resilience.budget`)
``serve.*``                the serving engine via ``Telemetry`` —
                           ``serve.queries`` / ``serve.ok`` /
                           ``serve.gave_up`` / ``serve.error`` /
                           ``serve.batched`` totals,
                           ``serve.gave_up.reason.<reason>`` and
                           ``serve.gave_up.<kind>.<rel>`` breakdowns,
                           ``serve.traced`` sampled span trees, and
                           ``serve.worker.<i>.*`` per-worker rows
                           (the locked registry behind
                           ``Engine.stats()``)
``test.*``                 campaign telemetry — ``test.runs`` /
                           ``test.ok`` / ``test.discard`` /
                           ``test.failed`` / ``test.gave_up`` /
                           ``test.retries`` per executed test
                           (:meth:`~repro.observe.telemetry.Telemetry.
                           record_test`)
=========================  ===============================================

Telemetry gauges (``serve.queue_depth``, ``serve.queue_depth.max``)
and time histograms (``serve.service_seconds.<kind>.<rel>``,
``serve.queue_seconds``, ``serve.batch_size``,
``test.service_seconds.<prop>``) ride in the same dump vocabulary.
"""

from __future__ import annotations

from .coverage import CoverageDiff, RuleCoverage
from .export import Dump
from .metrics import Histogram, TimeHistogram, _fmt_seconds


def _coverage_from_handlers(handlers: list) -> RuleCoverage:
    table: dict = {}
    for h in handlers:
        group = table.setdefault((h["rel"], h["mode"], h["kind"]), {})
        att, succ = group.get(h["rule"], (0, 0))
        group[h["rule"]] = (att + h["attempts"], succ + h["successes"])
    return RuleCoverage(table)


def _histogram_from_dict(d: dict) -> Histogram:
    # Time-valued histograms mark themselves with unit="seconds" so
    # the rebuilt object renders µs/ms and answers percentiles.
    cls = TimeHistogram if d.get("unit") == "seconds" else Histogram
    h = cls(d["name"])
    h.count = d["count"]
    h.total = d["total"]
    h.min = d["min"]
    h.max = d["max"]
    h.buckets = {int(k): v for k, v in d["buckets"].items()}
    return h


def _render_top_spans(
    spans: list, top: "int | None", relation: "str | None"
) -> list[str]:
    rows = spans
    if relation is not None:
        rows = [s for s in rows if s["rel"] == relation]
    if not rows:
        scope = f" for relation {relation!r}" if relation else ""
        return [f"  (no spans recorded{scope})"]
    rows = sorted(rows, key=lambda s: -(s["t1"] - s["t0"]))
    hidden = 0
    if top is not None and top < len(rows):
        hidden = len(rows) - top
        rows = rows[:top]
    label_w = max(
        len(f"{s['kind']}:{s['rel']}[{s['mode']}]") for s in rows
    )
    lines = [
        f"  {'span':<{label_w}} {'ms':>9} {'fuel':>7} {'outcome':>12}"
        f" {'attempts':>9} {'sid':>7}"
    ]
    for s in rows:
        label = f"{s['kind']}:{s['rel']}[{s['mode']}]"
        ms = max(s["t1"] - s["t0"], 0.0) * 1e3
        lines.append(
            f"  {label:<{label_w}} {ms:>9.3f} {s['size']:>3}/{s['top']:<3}"
            f" {s['outcome']:>12} {s['attempts']:>9,} {s['sid']:>7}"
        )
    if hidden:
        lines.append(f"  ... ({hidden} more spans; pass --top 0 for all)")
    return lines


def _render_queries(queries: list, top: "int | None") -> list[str]:
    """The per-(kind, rel) latency table aggregated from query lines
    (the dump-side analogue of ``Telemetry.query_table``)."""
    by_key: dict = {}
    for q in queries:
        row = by_key.setdefault(
            (q["kind"], q["rel"]),
            {"count": 0, "gave_up": 0, "total": 0.0, "worst": 0.0,
             "traced": 0},
        )
        row["count"] += 1
        row["total"] += q.get("service_seconds", 0.0)
        row["worst"] = max(row["worst"], q.get("service_seconds", 0.0))
        if q["status"] == "gave_up":
            row["gave_up"] += 1
        if q.get("spans"):
            row["traced"] += 1
    rows = sorted(by_key.items(), key=lambda kv: (-kv[1]["count"], kv[0]))
    hidden = 0
    if top is not None and top and top < len(rows):
        hidden = len(rows) - top
        rows = rows[:top]
    label_w = max(len(f"{k}:{r}") for (k, r), _ in rows)
    label_w = max(label_w, len("query"))
    lines = [
        f"  {'query':<{label_w}} {'n':>8} {'gave_up':>8} {'mean':>9}"
        f" {'max':>9} {'traced':>7}"
    ]
    for (kind, rel), row in rows:
        mean = row["total"] / row["count"] if row["count"] else 0.0
        lines.append(
            f"  {f'{kind}:{rel}':<{label_w}} {row['count']:>8,}"
            f" {row['gave_up']:>8,} {_fmt_seconds(mean):>9}"
            f" {_fmt_seconds(row['worst']):>9} {row['traced']:>7}"
        )
    if hidden:
        lines.append(f"  ... ({hidden} more query shapes)")
    return lines


def render_dump(
    dump: Dump, top: "int | None" = 10, relation: "str | None" = None
) -> str:
    """The full text report for a parsed dump."""
    meta = dump.meta
    sections = [
        "repro.observe report",
        "====================",
        f"format: {dump.format}   spans: {meta.get('spans', len(dump.spans))}"
        f"   open: {meta.get('open_spans', 0)}"
        f"   dropped: {meta.get('dropped_spans', 0)}",
    ]
    # Telemetry dumps carry query events; a pure telemetry file has no
    # span forest, so the span/coverage sections only render when
    # there is (or could be) span data to show.
    if dump.spans or dump.handlers or not dump.queries:
        sections += [
            "",
            f"Top spans by wall-time{f' ({relation})' if relation else ''}:",
            *_render_top_spans(dump.spans, top, relation),
            "",
            _coverage_from_handlers(dump.handlers).report(
                top=top, relation=relation
            ),
        ]
    if dump.queries:
        queries = dump.queries
        if relation is not None:
            queries = [q for q in queries if q["rel"] == relation]
        sections.append("")
        sections.append(
            f"Queries ({len(queries)} events"
            f"{f', relation {relation!r}' if relation else ''}"
            f"{', ' + str(meta.get('dropped_events', 0)) + ' dropped' if meta.get('dropped_events') else ''}):"
        )
        if queries:
            sections.extend(_render_queries(queries, top))
        else:
            sections.append("  (no matching query events)")
    diffs = dump.diffs
    if relation is not None:
        diffs = [d for d in diffs if d["relation"] == relation]
    if diffs:
        sections.append("")
        sections.append("Coverage vs. static linter (from dump diff lines):")
        for d in diffs:
            block = CoverageDiff.from_dict(d).render()
            sections.extend("  " + line for line in block.splitlines())
        bad = [
            r
            for d in diffs
            for r in d["rows"]
            if r["statically_dead"] and r["successes"] > 0
        ]
        if bad:
            sections.append(
                f"  => {len(bad)} dead-but-fired contradiction(s): a REL004 "
                "verdict is stale (exit 1 in the CLI)"
            )
    if dump.histograms:
        sections.append("")
        sections.append("Histograms:")
        for d in sorted(dump.histograms, key=lambda d: d["name"]):
            block = _histogram_from_dict(d).render()
            sections.extend("  " + line for line in block.splitlines())
    if dump.counters:
        sections.append("")
        sections.append("Counters:")
        width = max(len(n) for n in dump.counters)
        for name in sorted(dump.counters):
            sections.append(f"  {name:<{width}} {dump.counters[name]:>12,}")
    if dump.gauges:
        sections.append("")
        sections.append("Gauges:")
        width = max(len(n) for n in dump.gauges)
        for name in sorted(dump.gauges):
            sections.append(f"  {name:<{width}} {dump.gauges[name]:>12g}")
    return "\n".join(sections)


def render_observation(
    obs, top: "int | None" = 10, relation: "str | None" = None
) -> str:
    """Render a live observation (same output as dumping to JSONL and
    rendering the file)."""
    from .export import _handler_lines

    dump = Dump(
        meta={
            "format": "repro.observe/v1",
            "spans": len(obs.spans),
            "open_spans": len(obs.spans.stack),
            "dropped_spans": obs.spans.dropped,
        },
        spans=[s.as_dict() for s in obs.spans],
        handlers=_handler_lines(obs),
        histograms=[h.as_dict() for h in obs.metrics.histograms.values()],
        counters=obs.metrics.counter_snapshot(),
        gauges=dict(obs.metrics.gauges),
    )
    return render_dump(dump, top=top, relation=relation)
