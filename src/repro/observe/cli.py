"""``python -m repro.observe``: render reports from dump files.

Usage::

    python -m repro.observe run.jsonl
    python -m repro.observe run.jsonl --top 25 --relation bst
    python -m repro.observe run.jsonl --top 0        # everything

Reads a JSON-lines dump written by
:meth:`~repro.observe.session.Observation.export_jsonl` and prints the
text report (top spans, rule coverage, histograms, counters).

Exit status: 0 on success, 1 when the dump's coverage-vs-linter diff
lines (exported with ``export_jsonl(path, ctx=ctx)``) contain a
dead-but-fired contradiction — a rule the static linter called dead
(REL004) that the recorded run nonetheless fired, meaning one of the
two verdicts is wrong — and 2 on an unreadable or non-dump file.
Dumps exported without a context carry no diff lines and can only
exit 0 or 2.
"""

from __future__ import annotations

import argparse
import json
import sys

from .export import read_jsonl
from .report import render_dump


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observe",
        description="Render a text report from a repro.observe JSONL dump.",
    )
    parser.add_argument("dump", help="JSON-lines dump file (export_jsonl)")
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="rows per section (0 = unlimited; default 10)",
    )
    parser.add_argument(
        "--relation",
        default=None,
        metavar="REL",
        help="restrict spans and coverage to one relation",
    )
    args = parser.parse_args(argv)

    try:
        dump = read_jsonl(args.dump)
    except OSError as exc:
        print(f"error: cannot read {args.dump}: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: {args.dump} is not a JSONL dump: {exc}", file=sys.stderr)
        return 2

    top = None if args.top == 0 else args.top
    try:
        print(render_dump(dump, top=top, relation=args.relation))
    except BrokenPipeError:
        # Piped into `head` and the pipe closed early — normal exit.
        sys.stderr.close()

    bad = dump.contradictions()
    for rel, mode, kind, rule in bad:
        print(
            f"error: rule {rule!r} of {rel} [{mode}] {kind} fired despite "
            "a static dead verdict (stale REL004: re-run the linter or "
            "fix the analysis)",
            file=sys.stderr,
        )
    return 1 if bad else 0
