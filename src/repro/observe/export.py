"""Exporters: JSON-lines dumps, Chrome traces, Prometheus text.

Three formats, three audiences:

* **JSON lines** (:func:`write_jsonl` / :func:`read_jsonl`) — the
  lossless dump: one ``meta`` line, then one line per span, handler
  entry, histogram, and counter.  ``python -m repro.observe`` renders
  text reports from these files, and :func:`read_jsonl` gives tests
  and notebooks the same data back as plain dicts (no live
  ``Observation`` needed).  :func:`write_telemetry_jsonl` dumps a
  serving-layer :class:`~repro.observe.telemetry.Telemetry` in the
  same envelope (``query``/``gauge`` lines join the vocabulary), so
  one reader and one report renderer serve both producers.
* **Chrome trace events** (:func:`write_chrome_trace`) — complete
  (``"ph": "X"``) events with microsecond timestamps, loadable in
  Perfetto / ``chrome://tracing`` for flame-chart inspection of the
  recursive call tree.  Spans all land on one track; nesting is
  recovered from containment, which holds by construction since child
  spans close before their parents.
* **Prometheus text exposition** (:func:`render_prometheus` /
  :func:`write_prometheus`) — counters, gauges, and cumulative-bucket
  histograms under the ``repro_`` prefix, scrape-ready.  Metric names
  translate dots to underscores; ``serve.service_seconds.<kind>.<rel>``
  becomes ``repro_serve_service_seconds{kind=...,rel=...}`` so one
  metric family carries every query shape.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .metrics import TimeHistogram, bucket_upper

FORMAT = "repro.observe/v1"
TELEMETRY_FORMAT = "repro.telemetry/v1"


def _span_lines(obs) -> "list[dict]":
    return [s.as_dict() for s in obs.spans]


def _handler_lines(obs) -> "list[dict]":
    out = []
    for (kind, rel, mode, rule), entry in sorted(obs.trace.entries.items()):
        out.append(
            {
                "kind": kind,
                "rel": rel,
                "mode": mode,
                "rule": rule,
                "attempts": entry[0],
                "successes": entry[1],
                "backtracks": entry[2],
                "fuel_outs": entry[3],
            }
        )
    return out


def dump_jsonl(obs, fp, *, ctx=None) -> None:
    """Write the observation to an open text file, one JSON object per
    line (``meta`` first; readers must tolerate unknown types).

    With a *ctx*, one ``diff`` line per exercised ``(relation, mode,
    kind)`` group records the static-vs-dynamic coverage join
    (:meth:`~repro.observe.session.Observation.coverage_diffs`), making
    dead-but-fired linter contradictions detectable from the dump
    alone."""
    meta = {
        "type": "meta",
        "format": FORMAT,
        "spans": len(obs.spans),
        "open_spans": len(obs.spans.stack),
        "dropped_spans": obs.spans.dropped,
        "span_cap": obs.spans.cap,
    }
    fp.write(json.dumps(meta) + "\n")
    for span in _span_lines(obs):
        span["type"] = "span"
        fp.write(json.dumps(span) + "\n")
    for handler in _handler_lines(obs):
        handler["type"] = "handler"
        fp.write(json.dumps(handler) + "\n")
    for hist in obs.metrics.histograms.values():
        d = hist.as_dict()
        d["type"] = "histogram"
        fp.write(json.dumps(d) + "\n")
    for name, value in sorted(obs.metrics.counter_snapshot().items()):
        fp.write(
            json.dumps({"type": "counter", "name": name, "value": value})
            + "\n"
        )
    if ctx is not None:
        for diff in obs.coverage_diffs(ctx):
            d = diff.as_dict()
            d["type"] = "diff"
            fp.write(json.dumps(d) + "\n")


def write_jsonl(obs, path, *, ctx=None) -> None:
    with open(path, "w", encoding="utf-8") as fp:
        dump_jsonl(obs, fp, ctx=ctx)


def write_telemetry_jsonl(telemetry, path) -> None:
    """Dump a :class:`~repro.observe.telemetry.Telemetry` as JSON
    lines in the observe envelope: a ``meta`` line, one ``query`` line
    per retained event (sampled events carry their span dicts inline),
    then ``histogram``/``counter``/``gauge`` lines.  ``python -m
    repro.observe`` renders the file like any other dump."""
    with telemetry.lock:
        events = [ev.as_dict() for ev in telemetry.events]
        hists = [h.as_dict() for h in telemetry.metrics.histograms.values()]
        counters = sorted(telemetry.metrics.counters.items())
        gauges = sorted(telemetry.metrics.gauges.items())
        dropped = telemetry.dropped_events
    with open(path, "w", encoding="utf-8") as fp:
        meta = {
            "type": "meta",
            "format": TELEMETRY_FORMAT,
            "queries": len(events),
            "dropped_events": dropped,
            "sample_every": telemetry.sample_every,
            "slow_seconds": telemetry.slow_seconds,
        }
        fp.write(json.dumps(meta) + "\n")
        for ev in events:
            ev["type"] = "query"
            fp.write(json.dumps(ev) + "\n")
        for d in hists:
            d["type"] = "histogram"
            fp.write(json.dumps(d) + "\n")
        for name, value in counters:
            fp.write(
                json.dumps({"type": "counter", "name": name, "value": value})
                + "\n"
            )
        for name, value in gauges:
            fp.write(
                json.dumps({"type": "gauge", "name": name, "value": value})
                + "\n"
            )


@dataclass
class Dump:
    """A JSON-lines dump read back: the report renderer's input."""

    meta: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)
    handlers: list = field(default_factory=list)
    histograms: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    diffs: list = field(default_factory=list)
    queries: list = field(default_factory=list)
    gauges: dict = field(default_factory=dict)

    def contradictions(self) -> "list[tuple[str, str, str, str]]":
        """``(relation, mode, kind, rule)`` for every dead-but-fired
        row in the dump's diff lines — the linter called the rule dead
        (REL004), yet the recorded run fired it.  One of the verdicts
        is wrong, so the report CLI treats any entry as failure."""
        return [
            (d["relation"], d["mode"], d["kind"], r["rule"])
            for d in self.diffs
            for r in d["rows"]
            if r["statically_dead"] and r["successes"] > 0
        ]

    @property
    def format(self) -> str:
        return self.meta.get("format", "?")


def read_jsonl(path) -> Dump:
    """Parse a dump file; unknown line types are skipped (forward
    compatibility), malformed lines raise."""
    dump = Dump()
    with open(path, "r", encoding="utf-8") as fp:
        for line in fp:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            kind = obj.pop("type", None)
            if kind == "meta":
                dump.meta = obj
            elif kind == "span":
                dump.spans.append(obj)
            elif kind == "handler":
                dump.handlers.append(obj)
            elif kind == "histogram":
                dump.histograms.append(obj)
            elif kind == "counter":
                dump.counters[obj["name"]] = obj["value"]
            elif kind == "diff":
                dump.diffs.append(obj)
            elif kind == "query":
                dump.queries.append(obj)
            elif kind == "gauge":
                dump.gauges[obj["name"]] = obj["value"]
    return dump


def write_chrome_trace(obs, path) -> None:
    """Write completed spans as Chrome trace-event JSON (open in
    Perfetto or ``chrome://tracing``)."""
    spans = list(obs.spans)
    t_base = min((s.t0 for s in spans), default=0.0)
    events = []
    for s in spans:
        events.append(
            {
                "name": f"{s.rel} [{s.mode}]",
                "cat": s.kind,
                "ph": "X",
                "ts": (s.t0 - t_base) * 1e6,
                "dur": max(s.t1 - s.t0, 0.0) * 1e6,
                "pid": 1,
                "tid": 1,
                "args": {
                    "sid": s.sid,
                    "parent": s.parent,
                    "size": s.size,
                    "top": s.top,
                    "outcome": s.outcome,
                    "attempts": s.attempts,
                    "consumed": s.consumed,
                },
            }
        )
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(
            {"traceEvents": events, "displayTimeUnit": "ms"}, fp, indent=None
        )


def _prom_name(name: str) -> "tuple[str, dict]":
    """Translate a registry name to (metric family, labels).

    ``serve.service_seconds.<kind>.<rel>``, ``serve.gave_up.
    <kind>.<rel>``, and ``serve.shed.<kind>.<rel>`` fold their
    trailing coordinates into labels so each family is one scrapeable
    series set; everything else maps dots to underscores under the
    ``repro_`` prefix."""
    for family in ("serve.service_seconds.", "serve.gave_up.", "serve.shed."):
        if name.startswith(family) and name.count(".") >= 3:
            rest = name[len(family):]
            kind, _, rel = rest.partition(".")
            if kind in ("check", "enum", "gen", "test") and rel:
                base = "repro_" + family[:-1].replace(".", "_")
                return base, {"kind": kind, "rel": rel}
    if name.startswith("test.service_seconds."):
        rel = name[len("test.service_seconds."):]
        return "repro_serve_service_seconds", {"kind": "test", "rel": rel}
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return "repro_" + safe, {}


def _prom_labels(labels: dict, extra: "dict | None" = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in merged.items())
    return "{" + body + "}"


def render_prometheus(source) -> str:
    """Prometheus text exposition (version 0.0.4) for a
    :class:`~repro.observe.metrics.Metrics` registry or anything with
    a ``.metrics`` attribute (a ``Telemetry``, an ``Observation``).

    Counters render as ``counter``, gauges as ``gauge``, histograms as
    cumulative ``le``-bucketed ``histogram`` families with ``_sum``
    and ``_count``; time histograms expose bucket edges in seconds
    (the Prometheus convention), int histograms in their raw unit.
    """
    metrics = getattr(source, "metrics", source)
    lines: list[str] = []
    seen_types: set = set()
    for name in sorted(metrics.counters):
        family, labels = _prom_name(name)
        if family not in seen_types:
            seen_types.add(family)
            lines.append(f"# TYPE {family} counter")
        lines.append(
            f"{family}{_prom_labels(labels)} {metrics.counters[name]}"
        )
    for name in sorted(metrics.gauges):
        family, labels = _prom_name(name)
        if family not in seen_types:
            seen_types.add(family)
            lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family}{_prom_labels(labels)} {metrics.gauges[name]:g}")
    for name in sorted(metrics.histograms):
        h = metrics.histograms[name]
        family, labels = _prom_name(name)
        timed = isinstance(h, TimeHistogram) or getattr(h, "unit", None) == (
            "seconds"
        )
        if family not in seen_types:
            seen_types.add(family)
            lines.append(f"# TYPE {family} histogram")
        cumulative = 0
        for b in sorted(h.buckets):
            cumulative += h.buckets[b]
            edge = bucket_upper(b) / 1e6 if timed else bucket_upper(b)
            le = f"{edge:g}"
            lines.append(
                f"{family}_bucket{_prom_labels(labels, {'le': le})} "
                f"{cumulative}"
            )
        lines.append(
            f"{family}_bucket{_prom_labels(labels, {'le': '+Inf'})} {h.count}"
        )
        total = h.total if timed else float(h.total)
        lines.append(f"{family}_sum{_prom_labels(labels)} {total:g}")
        lines.append(f"{family}_count{_prom_labels(labels)} {h.count}")
    return "\n".join(lines) + "\n"


def write_prometheus(source, path) -> None:
    with open(path, "w", encoding="utf-8") as fp:
        fp.write(render_prometheus(source))
