"""Exporters: JSON-lines dumps and Chrome trace-event files.

Two formats, two audiences:

* **JSON lines** (:func:`write_jsonl` / :func:`read_jsonl`) — the
  lossless dump: one ``meta`` line, then one line per span, handler
  entry, histogram, and counter.  ``python -m repro.observe`` renders
  text reports from these files, and :func:`read_jsonl` gives tests
  and notebooks the same data back as plain dicts (no live
  ``Observation`` needed).
* **Chrome trace events** (:func:`write_chrome_trace`) — complete
  (``"ph": "X"``) events with microsecond timestamps, loadable in
  Perfetto / ``chrome://tracing`` for flame-chart inspection of the
  recursive call tree.  Spans all land on one track; nesting is
  recovered from containment, which holds by construction since child
  spans close before their parents.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

FORMAT = "repro.observe/v1"


def _span_lines(obs) -> "list[dict]":
    return [s.as_dict() for s in obs.spans]


def _handler_lines(obs) -> "list[dict]":
    out = []
    for (kind, rel, mode, rule), entry in sorted(obs.trace.entries.items()):
        out.append(
            {
                "kind": kind,
                "rel": rel,
                "mode": mode,
                "rule": rule,
                "attempts": entry[0],
                "successes": entry[1],
                "backtracks": entry[2],
                "fuel_outs": entry[3],
            }
        )
    return out


def dump_jsonl(obs, fp, *, ctx=None) -> None:
    """Write the observation to an open text file, one JSON object per
    line (``meta`` first; readers must tolerate unknown types).

    With a *ctx*, one ``diff`` line per exercised ``(relation, mode,
    kind)`` group records the static-vs-dynamic coverage join
    (:meth:`~repro.observe.session.Observation.coverage_diffs`), making
    dead-but-fired linter contradictions detectable from the dump
    alone."""
    meta = {
        "type": "meta",
        "format": FORMAT,
        "spans": len(obs.spans),
        "open_spans": len(obs.spans.stack),
        "dropped_spans": obs.spans.dropped,
        "span_cap": obs.spans.cap,
    }
    fp.write(json.dumps(meta) + "\n")
    for span in _span_lines(obs):
        span["type"] = "span"
        fp.write(json.dumps(span) + "\n")
    for handler in _handler_lines(obs):
        handler["type"] = "handler"
        fp.write(json.dumps(handler) + "\n")
    for hist in obs.metrics.histograms.values():
        d = hist.as_dict()
        d["type"] = "histogram"
        fp.write(json.dumps(d) + "\n")
    for name, value in sorted(obs.metrics.counter_snapshot().items()):
        fp.write(
            json.dumps({"type": "counter", "name": name, "value": value})
            + "\n"
        )
    if ctx is not None:
        for diff in obs.coverage_diffs(ctx):
            d = diff.as_dict()
            d["type"] = "diff"
            fp.write(json.dumps(d) + "\n")


def write_jsonl(obs, path, *, ctx=None) -> None:
    with open(path, "w", encoding="utf-8") as fp:
        dump_jsonl(obs, fp, ctx=ctx)


@dataclass
class Dump:
    """A JSON-lines dump read back: the report renderer's input."""

    meta: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)
    handlers: list = field(default_factory=list)
    histograms: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    diffs: list = field(default_factory=list)

    def contradictions(self) -> "list[tuple[str, str, str, str]]":
        """``(relation, mode, kind, rule)`` for every dead-but-fired
        row in the dump's diff lines — the linter called the rule dead
        (REL004), yet the recorded run fired it.  One of the verdicts
        is wrong, so the report CLI treats any entry as failure."""
        return [
            (d["relation"], d["mode"], d["kind"], r["rule"])
            for d in self.diffs
            for r in d["rows"]
            if r["statically_dead"] and r["successes"] > 0
        ]

    @property
    def format(self) -> str:
        return self.meta.get("format", "?")


def read_jsonl(path) -> Dump:
    """Parse a dump file; unknown line types are skipped (forward
    compatibility), malformed lines raise."""
    dump = Dump()
    with open(path, "r", encoding="utf-8") as fp:
        for line in fp:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            kind = obj.pop("type", None)
            if kind == "meta":
                dump.meta = obj
            elif kind == "span":
                dump.spans.append(obj)
            elif kind == "handler":
                dump.handlers.append(obj)
            elif kind == "histogram":
                dump.histograms.append(obj)
            elif kind == "counter":
                dump.counters[obj["name"]] = obj["value"]
            elif kind == "diff":
                dump.diffs.append(obj)
    return dump


def write_chrome_trace(obs, path) -> None:
    """Write completed spans as Chrome trace-event JSON (open in
    Perfetto or ``chrome://tracing``)."""
    spans = list(obs.spans)
    t_base = min((s.t0 for s in spans), default=0.0)
    events = []
    for s in spans:
        events.append(
            {
                "name": f"{s.rel} [{s.mode}]",
                "cat": s.kind,
                "ph": "X",
                "ts": (s.t0 - t_base) * 1e6,
                "dur": max(s.t1 - s.t0, 0.0) * 1e6,
                "pid": 1,
                "tid": 1,
                "args": {
                    "sid": s.sid,
                    "parent": s.parent,
                    "size": s.size,
                    "top": s.top,
                    "outcome": s.outcome,
                    "attempts": s.attempts,
                    "consumed": s.consumed,
                },
            }
        )
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(
            {"traceEvents": events, "displayTimeUnit": "ms"}, fp, indent=None
        )
