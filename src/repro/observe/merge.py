"""Merging observations from sharded runs into one dump.

A parallel campaign (:func:`repro.resilience.parallel.
parallel_quick_check`) runs each shard under its own session, so each
worker fills an independent :class:`~repro.observe.session.Observation`.
This module folds them into one: trace entries and metrics sum
key-wise (they are plain counters), span trees concatenate with shard-
local ids renumbered so parent links stay intact, and the merged
object supports the same read side (``coverage()``, ``report()``,
``export_jsonl``) as a single-session observation.

What deliberately does *not* merge: the ``DeriveStats`` binding.  A
shard's ``stats.*`` counters are materialized into the merged metrics
counters at merge time (via ``counter_snapshot``), because the live
stats objects belong to sessions that no longer exist — often in
worker processes that have already exited.
"""

from __future__ import annotations

from typing import Iterable

from ..derive.trace import DeriveTrace
from .metrics import Histogram, Metrics
from .session import Observation
from .spans import Span


def merge_traces(traces: Iterable[DeriveTrace], into: DeriveTrace) -> DeriveTrace:
    """Sum per-handler counter rows key-wise into *into*."""
    entries = into.entries
    for tr in traces:
        for key, row in tr.entries.items():
            dst = entries.get(key)
            if dst is None:
                entries[key] = list(row)
            else:
                for i in range(4):
                    dst[i] += row[i]
    return into


def merge_metrics(metrics: Iterable[Metrics], into: Metrics) -> Metrics:
    """Sum histograms bucket-wise and counters key-wise into *into*;
    gauges (levels, not counts) merge by max.

    Counters come from each shard's ``counter_snapshot()``, so bound
    ``stats.*`` counters are carried over as materialized values.
    Histograms keep their concrete class (a shard's
    :class:`~repro.observe.metrics.TimeHistogram` merges into a
    ``TimeHistogram``, so percentiles survive the merge).
    """
    for m in metrics:
        for name, h in m.histograms.items():
            dst = into.histogram(name, type(h))
            for b, n in h.buckets.items():
                dst.buckets[b] = dst.buckets.get(b, 0) + n
            dst.count += h.count
            dst.total += h.total
            if h.min is not None and (dst.min is None or h.min < dst.min):
                dst.min = h.min
            if h.max is not None and (dst.max is None or h.max > dst.max):
                dst.max = h.max
        for name, n in m.counter_snapshot().items():
            into.counters[name] = into.counters.get(name, 0) + n
        for name, v in m.gauges.items():
            if v > into.gauges.get(name, float("-inf")):
                into.gauges[name] = v
    return into


def _copy_span(s: Span, offset: int) -> Span:
    c = Span.__new__(Span)
    c.sid = s.sid + offset
    c.parent = s.parent + offset if s.parent else 0
    c.depth = s.depth
    c.kind = s.kind
    c.rel = s.rel
    c.mode = s.mode
    c.size = s.size
    c.top = s.top
    c.outcome = s.outcome
    c.consumed = s.consumed
    c.attempts = s.attempts
    c.t0 = s.t0
    c.t1 = s.t1
    c.closed = s.closed
    return c


def merge_observations(
    observations: "list[Observation]", span_cap: "int | None" = None
) -> Observation:
    """One :class:`Observation` equivalent to the shards run back to
    back: summed trace (hence summed coverage), summed metrics, and the
    concatenated span forest with ids renumbered per shard.

    *span_cap* bounds the merged span buffer; ``None`` (the default)
    keeps every span the shards kept — their own caps already bounded
    each side.
    """
    merged = Observation(span_cap)
    merge_traces((o.trace for o in observations), merged.trace)
    merge_metrics((o.metrics for o in observations), merged.metrics)
    offset = 0
    recorder = merged.spans
    for o in observations:
        top = 0
        for s in o.spans:
            recorder.spans.append(_copy_span(s, offset))
            if s.sid > top:
                top = s.sid
        recorder.dropped += o.spans.dropped
        offset += top
    recorder._next = offset
    return merged


def merge_telemetry(telemetries: "list") -> "object":
    """One :class:`~repro.observe.telemetry.Telemetry` equivalent to
    the shards run back to back: metrics merge via
    :func:`merge_metrics` (histograms bucket-wise with their classes
    kept, counters summed, gauges by max), and the shard event logs
    concatenate in shard order with query ids renumbered by each
    shard's max id — the same offset scheme as span sids, so merged
    ids stay campaign-unique and shard-ordered.  Each copied event is
    stamped with its source shard's index (first stamp wins, so
    merging merges keeps the original coordinates).
    """
    from .telemetry import QueryEvent, Telemetry

    telemetries = list(telemetries)
    if not telemetries:
        raise ValueError("merge_telemetry() needs at least one Telemetry")
    first = telemetries[0]
    merged = Telemetry(
        sample_every=first.sample_every,
        slow_seconds=first.slow_seconds,
        event_cap=None,  # shards' own caps already bounded each side
        span_cap=first.span_cap,
    )
    merged.metrics = Metrics()
    merge_metrics((t.metrics for t in telemetries), merged.metrics)
    # merged's cached histogram handles must point into the merged
    # registry, not the empty ones built by __init__.
    merged._service = {}
    merged._queue_hist = merged.metrics.time_histogram("serve.queue_seconds")
    merged._batch_hist = merged.metrics.histogram("serve.batch_size")
    offset = 0
    for index, t in enumerate(telemetries):
        top = 0
        for ev in t.events:
            merged.events.append(
                QueryEvent(
                    ev.qid + offset, ev.kind, ev.rel, ev.mode, ev.status,
                    ev.reason, ev.worker, ev.queue_seconds,
                    ev.service_seconds, ev.batch, ev.spans,
                    ev.shard if ev.shard is not None else index,
                )
            )
            if ev.qid > top:
                top = ev.qid
        merged.dropped_events += t.dropped_events
        offset += max(top, t._next_qid)
    merged._next_qid = offset
    return merged
