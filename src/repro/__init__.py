"""repro: computing correctly with inductive relations, in Python.

A from-scratch reproduction of "Computing Correctly with Inductive
Relations" (Paraskevopoulou, Eline, Lampropoulos — PLDI 2022): derive
checkers, enumerators, and random generators from inductive relation
declarations, and validate each derived computation (soundness,
completeness, monotonicity) against a reference proof-search semantics.

Quickstart::

    from repro import standard_context, parse_declarations, derive_checker

    ctx = standard_context()
    parse_declarations(ctx, '''
        Inductive le : nat -> nat -> Prop :=
        | le_n : forall n, le n n
        | le_S : forall n m, le n m -> le n (S m).
    ''')
    le = derive_checker(ctx, 'le')
    le(10, from_int(2), from_int(5))   # Some true
"""

import sys as _sys

# Derived computations and the reference proof search recurse
# structurally over terms (Peano naturals, long lists); proving
# `Sorted (repeat 1 2000)` needs tens of thousands of Python frames.
if _sys.getrecursionlimit() < 300_000:
    _sys.setrecursionlimit(300_000)

from .analysis import (
    AnalysisError,
    Report,
    analyze,
    analyze_context,
    disable_analysis,
    enable_analysis,
)
from .core import (
    Context,
    ParseError,
    Relation,
    Value,
    from_bool,
    from_int,
    from_list,
    nat_list,
    parse_declarations,
    to_bool,
    to_int,
    to_list,
)
from .derive import (
    DeriveStats,
    DeriveTrace,
    Mode,
    clear_memo,
    derive,
    derive_checker,
    derive_enumerator,
    derive_generator,
    derive_stats,
    disable_memoization,
    enable_memoization,
    memoization_enabled,
    profile,
    trace_of,
)
from .core.session import Session, use_session
from .observe import Observation, RuleCoverage, coverage_diff, observe
from .quickchick import CheckReport, classify, collect, for_all, quick_check
from .resilience import (
    Budget,
    Exhausted,
    FaultPlan,
    budget_scope,
    parallel_quick_check,
    plan_shards,
)
from .serve import CheckQuery, Engine, EnumQuery, GenQuery
from .semantics import derivable, search_derivation
from .stdlib import standard_context
from .validation import (
    ValidationConfig,
    certify_checker,
    certify_enumerator,
    certify_generator,
)

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "Budget",
    "CheckQuery",
    "CheckReport",
    "Context",
    "Engine",
    "EnumQuery",
    "GenQuery",
    "Session",
    "DeriveStats",
    "DeriveTrace",
    "Exhausted",
    "FaultPlan",
    "Mode",
    "Observation",
    "ParseError",
    "Relation",
    "Report",
    "RuleCoverage",
    "ValidationConfig",
    "Value",
    "__version__",
    "analyze",
    "analyze_context",
    "budget_scope",
    "certify_checker",
    "certify_enumerator",
    "certify_generator",
    "classify",
    "clear_memo",
    "collect",
    "coverage_diff",
    "derivable",
    "derive",
    "derive_checker",
    "derive_enumerator",
    "derive_generator",
    "derive_stats",
    "disable_analysis",
    "disable_memoization",
    "enable_analysis",
    "enable_memoization",
    "for_all",
    "memoization_enabled",
    "observe",
    "parallel_quick_check",
    "plan_shards",
    "use_session",
    "from_bool",
    "from_int",
    "from_list",
    "nat_list",
    "parse_declarations",
    "profile",
    "quick_check",
    "search_derivation",
    "trace_of",
    "standard_context",
    "to_bool",
    "to_int",
    "to_list",
]
