"""Case study: information-flow control (Section 6.2, after [18, 19]).

A stack machine with labeled data in the style of "Testing
Noninterference, Quickly": atoms are values tagged L(ow) or H(igh),
instructions push/pop/add/load/store over a labeled memory, and the
security property is noninterference — two runs over indistinguishable
memories stay indistinguishable.

The inductive relations are atom/list indistinguishability; the
Figure 3 cells compare the handwritten checker/generator for
``indist_list`` against the derived ones.  The mutation suite injects
the classic label-propagation bugs (missing joins in Add/Load, missing
high-address check in Store).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..core.context import Context
from ..core.parser import parse_declarations
from ..core.values import V, Value, from_int, from_list, to_int, to_list
from ..derive import register_checker, register_producer
from ..derive.instances import GEN
from ..derive.modes import Mode
from ..producers.option_bool import SOME_FALSE, SOME_TRUE, OptionBool
from ..producers.outcome import FAIL
from ..quickchick.mutation import Mutant
from ..stdlib import standard_context

DECLARATIONS = """
Inductive label : Type :=
| Lo : label
| Hi : label.

Inductive atom : Type :=
| Atom : nat -> label -> atom.

Inductive indist_atom : atom -> atom -> Prop :=
| ia_high : forall v1 v2, indist_atom (Atom v1 Hi) (Atom v2 Hi)
| ia_low : forall v, indist_atom (Atom v Lo) (Atom v Lo).

Inductive indist_list : list atom -> list atom -> Prop :=
| il_nil : indist_list [] []
| il_cons : forall a1 a2 l1 l2,
    indist_atom a1 a2 -> indist_list l1 l2 ->
    indist_list (a1 :: l1) (a2 :: l2).
"""

LO = V("Lo")
HI = V("Hi")


def atom(value: int, label: Value) -> Value:
    return V("Atom", from_int(value), label)


def make_context() -> Context:
    ctx = standard_context()
    parse_declarations(ctx, DECLARATIONS)
    return ctx


# ---------------------------------------------------------------------------
# Handwritten checker and generator for indist_list.
# ---------------------------------------------------------------------------

def _atoms_indist(a: Value, b: Value) -> bool:
    v1, l1 = a.args
    v2, l2 = b.args
    if l1 != l2:
        return False
    return l1 == HI or v1 == v2


def handwritten_indist_check(fuel: int, args: tuple[Value, ...]) -> OptionBool:
    xs, ys = (to_list(v) for v in args)
    if len(xs) != len(ys):
        return SOME_FALSE
    for a, b in zip(xs, ys):
        if not _atoms_indist(a, b):
            return SOME_FALSE
    return SOME_TRUE


def handwritten_indist_gen(
    fuel: int, ins: tuple[Value, ...], rng: random.Random
):
    """Given one memory, build an indistinguishable variation: keep low
    atoms, re-randomize the values of high atoms."""
    (mem,) = ins
    out: list[Value] = []
    for a in to_list(mem):
        value, label = a.args
        if label == HI:
            out.append(atom(rng.randint(0, 2 + fuel), HI))
        else:
            out.append(a)
    return (from_list(out),)


def register_handwritten(ctx: Context) -> None:
    register_checker(ctx, "indist_list", handwritten_indist_check, replace=True)
    register_producer(
        ctx, GEN, "indist_list", Mode.from_string("io"),
        handwritten_indist_gen, replace=True,
    )


# ---------------------------------------------------------------------------
# The machine.
# ---------------------------------------------------------------------------

PUSH, POP, ADD, LOAD, STORE, NOOP = "push", "pop", "add", "load", "store", "noop"


@dataclass(frozen=True)
class Instr:
    op: str
    arg: tuple[int, str] | None = None  # PUSH (value, 'L'|'H')


@dataclass
class Machine:
    """pc + stack + memory; the program is shared between runs."""

    stack: list[tuple[int, str]]
    mem: list[tuple[int, str]]
    pc: int = 0
    halted: bool = False


def _join(a: str, b: str) -> str:
    return "H" if "H" in (a, b) else "L"


def step_machine(
    machine: Machine,
    program: list[Instr],
    add_label=_join,
    load_label=_join,
    store_checks_label: bool = True,
) -> None:
    """Execute one instruction with label propagation.

    The three injectable pieces are exactly the mutation sites: the
    label join for Add results, the join of address and cell labels for
    Load, and the halt-on-high-address rule for Store.
    """
    if machine.halted or machine.pc >= len(program):
        machine.halted = True
        return
    instr = program[machine.pc]
    machine.pc += 1
    stack = machine.stack
    if instr.op == PUSH:
        assert instr.arg is not None
        stack.append(instr.arg)
    elif instr.op == POP:
        if not stack:
            machine.halted = True
            return
        stack.pop()
    elif instr.op == ADD:
        if len(stack) < 2:
            machine.halted = True
            return
        v1, l1 = stack.pop()
        v2, l2 = stack.pop()
        stack.append((v1 + v2, add_label(l1, l2)))
    elif instr.op == LOAD:
        if not stack:
            machine.halted = True
            return
        addr, la = stack.pop()
        if addr >= len(machine.mem):
            machine.halted = True
            return
        v, lv = machine.mem[addr]
        stack.append((v, load_label(la, lv)))
    elif instr.op == STORE:
        if len(stack) < 2:
            machine.halted = True
            return
        addr, la = stack.pop()
        value, lv = stack.pop()
        if store_checks_label and la == "H":
            machine.halted = True
            return
        if addr >= len(machine.mem):
            machine.halted = True
            return
        machine.mem[addr] = (value, lv)
    # NOOP: nothing.


# -- value <-> python bridges -------------------------------------------------

def mem_to_value(mem: list[tuple[int, str]]) -> Value:
    return from_list([atom(v, HI if l == "H" else LO) for v, l in mem])


def value_to_mem(mem: Value) -> list[tuple[int, str]]:
    out = []
    for a in to_list(mem):
        v, l = a.args
        out.append((to_int(v), "H" if l == HI else "L"))
    return out


# ---------------------------------------------------------------------------
# Mutants.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StepConfig:
    add_label: Callable[[str, str], str]
    load_label: Callable[[str, str], str]
    store_checks_label: bool


CORRECT_STEP = StepConfig(_join, _join, True)

MUTANTS = [
    Mutant(
        "add_forgets_join",
        "Add keeps only the first operand's label",
        StepConfig(lambda a, b: a, _join, True),
    ),
    Mutant(
        "load_forgets_addr_label",
        "Load ignores the address label",
        StepConfig(_join, lambda la, lv: lv, True),
    ),
    Mutant(
        "store_allows_high_addr",
        "Store does not halt on high addresses",
        StepConfig(_join, _join, False),
    ),
]

CORRECT = Mutant("step_correct", "the unmutated machine", CORRECT_STEP)


def gen_program(size: int, rng: random.Random, mem_size: int) -> list[Instr]:
    program: list[Instr] = []
    for _ in range(size):
        op = rng.choice([PUSH, PUSH, ADD, LOAD, STORE, POP, NOOP])
        if op == PUSH:
            label = "H" if rng.random() < 0.4 else "L"
            program.append(Instr(PUSH, (rng.randint(0, mem_size - 1), label)))
        else:
            program.append(Instr(op))
    return program


def run_lockstep(
    program: list[Instr],
    mem1: list[tuple[int, str]],
    mem2: list[tuple[int, str]],
    config: StepConfig,
    steps: int,
) -> tuple[Machine, Machine]:
    """Run both machines in lockstep, stopping at the first halt of
    either (control flow is data-independent, so the machines stay
    aligned; halting together keeps the comparison fair)."""
    m1 = Machine(stack=[], mem=list(mem1))
    m2 = Machine(stack=[], mem=list(mem2))
    for _ in range(steps):
        step_machine(m1, program, config.add_label, config.load_label,
                     config.store_checks_label)
        step_machine(m2, program, config.add_label, config.load_label,
                     config.store_checks_label)
        if m1.halted or m2.halted:
            break
    return m1, m2


@dataclass
class IfcWorkload:
    ctx: Context
    mem_size: int = 4
    program_len: int = 10
    run_steps: int = 12

    def property_fn(self, gen_fn, check_fn, config: StepConfig, fuel: int = 8):
        """Noninterference: indistinguishable memories stay
        indistinguishable under the (possibly mutated) machine."""

        def gen(size: int, rng: random.Random):
            mem1 = [
                (rng.randint(0, self.mem_size), "H" if rng.random() < 0.5 else "L")
                for _ in range(self.mem_size)
            ]
            out = gen_fn(fuel, (mem_to_value(mem1),), rng)
            if not isinstance(out, tuple):
                return out
            mem2 = value_to_mem(out[0])
            program = gen_program(self.program_len, rng, self.mem_size)
            return (program, mem1, mem2)

        def predicate(case):
            program, mem1, mem2 = case
            m1, m2 = run_lockstep(program, mem1, mem2, config, self.run_steps)
            return check_fn(
                fuel, (mem_to_value(m1.mem), mem_to_value(m2.mem))
            )

        return gen, predicate
