"""Case study: STLC with de Bruijn indices (Section 6.2, after [15]).

The paper's running example at benchmark scale: the ``typing`` relation
(types ``N`` / ``Arr``, terms with constants, addition, variables,
application, abstraction), a handwritten type checker and a handwritten
generator of well-typed terms (the Figure 3 baselines), call-by-value
small-step evaluation via *lifting* and *substitution*, and the
mutation suite — bugs in substitution and lifting that break
preservation, as in the QuickChick benchmark.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..core.context import Context
from ..core.parser import parse_declarations
from ..core.values import V, Value, from_int, from_list, to_int, to_list
from ..derive import register_checker, register_producer
from ..derive.instances import GEN
from ..derive.modes import Mode
from ..producers.option_bool import SOME_FALSE, SOME_TRUE, OptionBool
from ..producers.outcome import FAIL
from ..quickchick.mutation import Mutant
from ..stdlib import standard_context

DECLARATIONS = """
Inductive type : Type :=
| N : type
| Arr : type -> type -> type.

Inductive term : Type :=
| Con : nat -> term
| Add : term -> term -> term
| Vart : nat -> term
| App : term -> term -> term
| Abs : type -> term -> term.

Inductive lookup : list type -> nat -> type -> Prop :=
| lookup_here : forall t G, lookup (t :: G) 0 t
| lookup_there : forall t t2 G n, lookup G n t -> lookup (t2 :: G) (S n) t.

Inductive typing : list type -> term -> type -> Prop :=
| TCon : forall G n, typing G (Con n) N
| TAdd : forall G e1 e2,
    typing G e1 N -> typing G e2 N -> typing G (Add e1 e2) N
| TAbs : forall G e t1 t2,
    typing (t1 :: G) e t2 -> typing G (Abs t1 e) (Arr t1 t2)
| TVar : forall G x t, lookup G x t -> typing G (Vart x) t
| TApp : forall G e1 e2 t1 t2,
    typing G e2 t1 -> typing G e1 (Arr t1 t2) -> typing G (App e1 e2) t2.
"""

N = V("N")


def arr(a: Value, b: Value) -> Value:
    return V("Arr", a, b)


def con(n: int) -> Value:
    return V("Con", from_int(n))


def var(n: int) -> Value:
    return V("Vart", from_int(n))


def app(f: Value, x: Value) -> Value:
    return V("App", f, x)


def abs_(ty: Value, body: Value) -> Value:
    return V("Abs", ty, body)


def add(a: Value, b: Value) -> Value:
    return V("Add", a, b)


def make_context() -> Context:
    ctx = standard_context()
    parse_declarations(ctx, DECLARATIONS)
    return ctx


# ---------------------------------------------------------------------------
# Handwritten checker (type inference) — the Figure 3 baseline.
# ---------------------------------------------------------------------------

def infer(env: list[Value], e: Value) -> Value | None:
    """Syntax-directed type inference; None when ill-typed."""
    head = e.ctor
    if head == "Con":
        return N
    if head == "Add":
        left = infer(env, e.args[0])
        if left != N:
            return None
        right = infer(env, e.args[1])
        return N if right == N else None
    if head == "Vart":
        index = to_int(e.args[0])
        if index < len(env):
            return env[index]
        return None
    if head == "Abs":
        annot, body = e.args
        body_ty = infer([annot] + env, body)
        if body_ty is None:
            return None
        return arr(annot, body_ty)
    if head == "App":
        fun_ty = infer(env, e.args[0])
        if fun_ty is None or fun_ty.ctor != "Arr":
            return None
        arg_ty = infer(env, e.args[1])
        if arg_ty != fun_ty.args[0]:
            return None
        return fun_ty.args[1]
    raise ValueError(f"not a term: {e}")


def handwritten_typing_check(fuel: int, args: tuple[Value, ...]) -> OptionBool:
    env_value, e, ty = args
    inferred = infer(to_list(env_value), e)
    return SOME_TRUE if inferred == ty else SOME_FALSE


# ---------------------------------------------------------------------------
# Handwritten generator of well-typed terms — the Figure 3 baseline.
# ---------------------------------------------------------------------------

def _gen_type(size: int, rng: random.Random) -> Value:
    if size == 0 or rng.random() < 0.6:
        return N
    return arr(_gen_type(size - 1, rng), _gen_type(size - 1, rng))


def _gen_term(env: list[Value], ty: Value, size: int, rng: random.Random):
    candidates: list[Callable[[], Value | None]] = []
    # Variables of the right type.
    hits = [i for i, t in enumerate(env) if t == ty]
    if hits:
        candidates.append(lambda: var(rng.choice(hits)))
    if ty == N:
        candidates.append(lambda: con(rng.randint(0, 9)))
        if size > 0:
            def gen_add():
                left = _gen_term(env, N, size - 1, rng)
                right = _gen_term(env, N, size - 1, rng)
                if left is None or right is None:
                    return None
                return add(left, right)

            candidates.append(gen_add)
    if ty.ctor == "Arr":
        def gen_abs():
            body = _gen_term([ty.args[0]] + env, ty.args[1], size - 1, rng)
            if body is None:
                return None
            return abs_(ty.args[0], body)

        candidates.append(gen_abs)
    if size > 0:
        def gen_app():
            arg_ty = _gen_type(1, rng)
            fun = _gen_term(env, arr(arg_ty, ty), size - 1, rng)
            if fun is None:
                return None
            argument = _gen_term(env, arg_ty, size - 1, rng)
            if argument is None:
                return None
            return app(fun, argument)

        candidates.append(gen_app)
    if not candidates:
        return None
    rng.shuffle(candidates)
    for candidate in candidates:
        result = candidate()
        if result is not None:
            return result
    return None


def handwritten_typing_gen(
    fuel: int, ins: tuple[Value, ...], rng: random.Random
):
    env_value, ty = ins
    term = _gen_term(to_list(env_value), ty, min(fuel, 6), rng)
    if term is None:
        return FAIL
    return (term,)


def register_handwritten(ctx: Context) -> None:
    register_checker(ctx, "typing", handwritten_typing_check, replace=True)
    register_producer(
        ctx, GEN, "typing", Mode.from_string("ioi"), handwritten_typing_gen,
        replace=True,
    )


# ---------------------------------------------------------------------------
# Lifting, substitution, call-by-value reduction — and their mutants.
# ---------------------------------------------------------------------------

def lift(cutoff: int, amount: int, e: Value) -> Value:
    head = e.ctor
    if head == "Con":
        return e
    if head == "Add":
        return add(lift(cutoff, amount, e.args[0]), lift(cutoff, amount, e.args[1]))
    if head == "Vart":
        index = to_int(e.args[0])
        return var(index + amount) if index >= cutoff else e
    if head == "App":
        return app(lift(cutoff, amount, e.args[0]), lift(cutoff, amount, e.args[1]))
    if head == "Abs":
        return abs_(e.args[0], lift(cutoff + 1, amount, e.args[1]))
    raise ValueError(f"not a term: {e}")


def subst(index: int, replacement: Value, e: Value) -> Value:
    head = e.ctor
    if head == "Con":
        return e
    if head == "Add":
        return add(
            subst(index, replacement, e.args[0]),
            subst(index, replacement, e.args[1]),
        )
    if head == "Vart":
        i = to_int(e.args[0])
        if i == index:
            return replacement
        if i > index:
            return var(i - 1)
        return e
    if head == "App":
        return app(
            subst(index, replacement, e.args[0]),
            subst(index, replacement, e.args[1]),
        )
    if head == "Abs":
        return abs_(
            e.args[0], subst(index + 1, lift(0, 1, replacement), e.args[1])
        )
    raise ValueError(f"not a term: {e}")


def is_value_term(e: Value) -> bool:
    # Variables count as (stuck) values: the benchmark reduces *open*
    # terms — that is what makes lifting/substitution bugs observable
    # (a closed replacement is invariant under lifting).
    return e.ctor in ("Con", "Abs", "Vart")


def step(e: Value, substitute=subst, lifting=lift) -> Value | None:
    """One call-by-value reduction step; None for normal forms.

    ``substitute``/``lifting`` are injectable so mutants can be run
    through the same evaluator.
    """
    head = e.ctor
    if head == "Add":
        left, right = e.args
        if left.ctor == "Con" and right.ctor == "Con":
            return con(to_int(left.args[0]) + to_int(right.args[0]))
        if not is_value_term(left):
            reduced = step(left, substitute, lifting)
            return None if reduced is None else add(reduced, right)
        reduced = step(right, substitute, lifting)
        return None if reduced is None else add(left, reduced)
    if head == "App":
        fun, argument = e.args
        if fun.ctor == "Abs" and is_value_term(argument):
            return substitute(0, argument, fun.args[1])
        if not is_value_term(fun):
            reduced = step(fun, substitute, lifting)
            return None if reduced is None else app(reduced, argument)
        reduced = step(argument, substitute, lifting)
        return None if reduced is None else app(fun, reduced)
    return None


# -- mutants (the QuickChick suite's substitution / lifting bugs) -----------

def subst_no_lift(index: int, replacement: Value, e: Value) -> Value:
    """Mutant: forgets to lift the replacement under binders."""
    head = e.ctor
    if head == "Con":
        return e
    if head == "Add":
        return add(
            subst_no_lift(index, replacement, e.args[0]),
            subst_no_lift(index, replacement, e.args[1]),
        )
    if head == "Vart":
        i = to_int(e.args[0])
        if i == index:
            return replacement
        if i > index:
            return var(i - 1)
        return e
    if head == "App":
        return app(
            subst_no_lift(index, replacement, e.args[0]),
            subst_no_lift(index, replacement, e.args[1]),
        )
    if head == "Abs":
        return abs_(e.args[0], subst_no_lift(index + 1, replacement, e.args[1]))
    raise ValueError(f"not a term: {e}")


def subst_no_unshift(index: int, replacement: Value, e: Value) -> Value:
    """Mutant: does not decrement variables above the substituted one."""
    head = e.ctor
    if head == "Con":
        return e
    if head == "Add":
        return add(
            subst_no_unshift(index, replacement, e.args[0]),
            subst_no_unshift(index, replacement, e.args[1]),
        )
    if head == "Vart":
        i = to_int(e.args[0])
        if i == index:
            return replacement
        return e  # BUG: i > index should become i - 1
    if head == "App":
        return app(
            subst_no_unshift(index, replacement, e.args[0]),
            subst_no_unshift(index, replacement, e.args[1]),
        )
    if head == "Abs":
        return abs_(
            e.args[0],
            subst_no_unshift(index + 1, lift(0, 1, replacement), e.args[1]),
        )
    raise ValueError(f"not a term: {e}")


def lift_no_cutoff_bump(cutoff: int, amount: int, e: Value) -> Value:
    """Mutant: forgets to raise the cutoff under binders."""
    head = e.ctor
    if head == "Con":
        return e
    if head == "Add":
        return add(
            lift_no_cutoff_bump(cutoff, amount, e.args[0]),
            lift_no_cutoff_bump(cutoff, amount, e.args[1]),
        )
    if head == "Vart":
        index = to_int(e.args[0])
        return var(index + amount) if index >= cutoff else e
    if head == "App":
        return app(
            lift_no_cutoff_bump(cutoff, amount, e.args[0]),
            lift_no_cutoff_bump(cutoff, amount, e.args[1]),
        )
    if head == "Abs":
        return abs_(e.args[0], lift_no_cutoff_bump(cutoff, amount, e.args[1]))
    raise ValueError(f"not a term: {e}")


def _subst_with_bad_lift(index: int, replacement: Value, e: Value) -> Value:
    head = e.ctor
    if head == "Con":
        return e
    if head == "Add":
        return add(
            _subst_with_bad_lift(index, replacement, e.args[0]),
            _subst_with_bad_lift(index, replacement, e.args[1]),
        )
    if head == "Vart":
        i = to_int(e.args[0])
        if i == index:
            return replacement
        if i > index:
            return var(i - 1)
        return e
    if head == "App":
        return app(
            _subst_with_bad_lift(index, replacement, e.args[0]),
            _subst_with_bad_lift(index, replacement, e.args[1]),
        )
    if head == "Abs":
        return abs_(
            e.args[0],
            _subst_with_bad_lift(
                index + 1, lift_no_cutoff_bump(0, 1, replacement), e.args[1]
            ),
        )
    raise ValueError(f"not a term: {e}")


MUTANTS = [
    Mutant("subst_no_lift", "no lifting under binders", subst_no_lift),
    Mutant("subst_no_unshift", "free variables not decremented", subst_no_unshift),
    Mutant("lift_no_cutoff", "lift ignores binders", _subst_with_bad_lift),
]

CORRECT = Mutant("subst_correct", "the unmutated substitution", subst)


# ---------------------------------------------------------------------------
# The benchmark property: preservation.
# ---------------------------------------------------------------------------

@dataclass
class StlcWorkload:
    ctx: Context
    type_size: int = 2

    def environment(self) -> Value:
        """Terms are generated in a non-empty context so reduction
        substitutes *open* replacements — the scenario in which the
        lifting/unshifting mutants are observable."""
        return from_list([N, arr(N, N), N])

    def property_fn(self, gen_fn, check_fn, substitute, fuel: int = 6,
                    check_fuel: int = 24):
        """forall (e : ty) from gen, if e steps then the reduct still
        has type ty (multi-step, a few steps deep)."""
        env = self.environment()

        def gen(size: int, rng: random.Random):
            ty = _gen_type(self.type_size, rng)
            out = gen_fn(fuel, (env, ty), rng)
            if not isinstance(out, tuple):
                return out
            return (ty, out[0])

        def predicate(case):
            ty, e = case
            current = e
            for _ in range(4):
                reduced = step(current, substitute)
                if reduced is None:
                    return True
                current = reduced
                verdict = check_fn(check_fuel, (env, current, ty))
                if verdict.is_false:
                    return False
                if verdict.is_none:
                    return None  # discard: checker out of fuel
            return True

        return gen, predicate
