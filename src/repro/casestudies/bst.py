"""Case study: binary search trees (Section 6.2, after [20]).

The QuickChick microbenchmark: the ``bst lo hi t`` bounded-invariant
relation, handcrafted checker and generator to serve as the Figure 3
baselines, the ``insert`` operation, and the mutation suite (buggy
insertions that sometimes violate the search-tree invariant).

Keys are Peano naturals; ``bst lo hi t`` requires every key strictly
between ``lo`` and ``hi`` — the standard formulation that makes the
generator derivable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.context import Context
from ..core.parser import parse_declarations
from ..core.values import V, Value, from_int, to_int
from ..derive import register_checker, register_producer
from ..derive.instances import ENUM, GEN
from ..derive.modes import Mode
from ..producers.option_bool import SOME_FALSE, SOME_TRUE, OptionBool
from ..producers.outcome import FAIL, OUT_OF_FUEL
from ..quickchick.mutation import Mutant
from ..stdlib import standard_context

DECLARATIONS = """
Inductive tree : Type :=
| Leaf : tree
| Node : tree -> nat -> tree -> tree.

Inductive lt : nat -> nat -> Prop :=
| lt_base : forall n, lt n (S n)
| lt_step : forall n m, lt n m -> lt n (S m).

Inductive bst : nat -> nat -> tree -> Prop :=
| bst_leaf : forall lo hi, bst lo hi Leaf
| bst_node : forall lo hi k l r,
    lt lo k -> lt k hi ->
    bst lo k l -> bst k hi r ->
    bst lo hi (Node l k r).
"""

LEAF = V("Leaf")


def node(left: Value, key: int, right: Value) -> Value:
    return V("Node", left, from_int(key), right)


def make_context() -> Context:
    ctx = standard_context()
    parse_declarations(ctx, DECLARATIONS)
    return ctx


# ---------------------------------------------------------------------------
# Handwritten checker and generator (the Figure 3 baselines).
# ---------------------------------------------------------------------------

def handwritten_bst_check(fuel: int, args: tuple[Value, ...]) -> OptionBool:
    """Direct bounds-checking recursion — the hand-optimized checker."""
    lo, hi, tree = args
    return _check(to_int(lo), to_int(hi), tree)


def _check(lo: int, hi: int, tree: Value) -> OptionBool:
    if tree.ctor == "Leaf":
        return SOME_TRUE
    left, key_value, right = tree.args
    key = to_int(key_value)
    if not (lo < key < hi):
        return SOME_FALSE
    left_ok = _check(lo, key, left)
    if not left_ok.is_true:
        return left_ok
    return _check(key, hi, right)


def handwritten_bst_gen(
    fuel: int, ins: tuple[Value, ...], rng: random.Random
):
    """Random BST between bounds, by recursive key splitting — the
    classic handcrafted generator from the benchmark suite."""
    lo, hi = (to_int(v) for v in ins)
    tree = _gen(lo, hi, fuel, rng)
    if tree is None:
        return FAIL
    return (tree,)


def _gen(lo: int, hi: int, size: int, rng: random.Random) -> Value | None:
    if size == 0 or hi - lo < 2:
        return LEAF
    if rng.random() < 0.25:
        return LEAF
    key = rng.randint(lo + 1, hi - 1)
    left = _gen(lo, key, size - 1, rng)
    right = _gen(key, hi, size - 1, rng)
    if left is None or right is None:
        return None
    return node(left, key, right)


def register_handwritten(ctx: Context) -> None:
    register_checker(ctx, "bst", handwritten_bst_check, replace=True)
    register_producer(
        ctx, GEN, "bst", Mode.from_string("iio"), handwritten_bst_gen,
        replace=True,
    )


# ---------------------------------------------------------------------------
# Insertion and its mutants.
# ---------------------------------------------------------------------------

def insert(key: int, tree: Value) -> Value:
    """Correct BST insertion."""
    if tree.ctor == "Leaf":
        return node(LEAF, key, LEAF)
    left, k_value, right = tree.args
    k = to_int(k_value)
    if key < k:
        return V("Node", insert(key, left), k_value, right)
    if key > k:
        return V("Node", left, k_value, insert(key, right))
    return tree


def insert_swapped(key: int, tree: Value) -> Value:
    """Mutant 1: comparison flipped — inserts into the wrong subtree."""
    if tree.ctor == "Leaf":
        return node(LEAF, key, LEAF)
    left, k_value, right = tree.args
    k = to_int(k_value)
    if key > k:  # BUG: should be <
        return V("Node", insert_swapped(key, left), k_value, right)
    if key < k:
        return V("Node", left, k_value, insert_swapped(key, right))
    return tree


def insert_no_recurse(key: int, tree: Value) -> Value:
    """Mutant 2: overwrites the root instead of recursing."""
    if tree.ctor == "Leaf":
        return node(LEAF, key, LEAF)
    left, _k_value, right = tree.args
    return V("Node", left, from_int(key), right)  # BUG


def insert_root_swap(key: int, tree: Value) -> Value:
    """Mutant 3: swaps the subtrees when rebuilding after a left
    insertion."""
    if tree.ctor == "Leaf":
        return node(LEAF, key, LEAF)
    left, k_value, right = tree.args
    k = to_int(k_value)
    if key < k:
        return V("Node", right, k_value, insert_root_swap(key, left))  # BUG
    if key > k:
        return V("Node", left, k_value, insert_root_swap(key, right))
    return tree


MUTANTS = [
    Mutant("insert_swapped", "inserts into the wrong subtree", insert_swapped),
    Mutant("insert_no_recurse", "overwrites the root key", insert_no_recurse),
    Mutant("insert_root_swap", "swaps subtrees on rebuild", insert_root_swap),
]

CORRECT = Mutant("insert_correct", "the unmutated insertion", insert)


# ---------------------------------------------------------------------------
# The benchmark property: insert preserves the invariant.
# ---------------------------------------------------------------------------

@dataclass
class BstWorkload:
    """Everything a Figure 3 cell needs: a tree source and an invariant
    checker, either handwritten or derived."""

    ctx: Context
    lo: int = 0
    hi: int = 16

    def bounds(self) -> tuple[Value, Value]:
        return from_int(self.lo), from_int(self.hi)

    def property_fn(self, gen_fn, check_fn, impl, fuel: int = 10,
                    check_fuel: int | None = None):
        """forall t from gen, forall k, bst (insert k t) — with *impl*
        the (possibly mutated) insertion."""
        lo_v, hi_v = self.bounds()
        # Checking `lt k hi` needs fuel proportional to the key range.
        if check_fuel is None:
            check_fuel = self.hi + 8

        def gen(size: int, rng: random.Random):
            out = gen_fn(fuel, (lo_v, hi_v), rng)
            if out is FAIL or out is OUT_OF_FUEL:
                return out
            key = rng.randint(self.lo + 1, self.hi - 1)
            return (key, out[0])

        def predicate(case):
            key, tree = case
            return check_fn(check_fuel, (lo_v, hi_v, impl(key, tree)))

        return gen, predicate
