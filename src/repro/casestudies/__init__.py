"""Evaluation case studies: BST, STLC, and IFC (Section 6.2)."""

from . import bst, ifc, stlc

__all__ = ["bst", "ifc", "stlc"]
