"""The derivation gate: run the linter before ``derive_*``.

``derive_checker`` / ``derive_enumerator`` / ``derive_generator`` call
:func:`check_before_derive` right before resolving an instance.  Error
diagnostics abort the derivation with an :class:`AnalysisError` whose
message names the blocking premise/variable — replacing the generic
failures that used to surface from deep inside scheduling.

Cost discipline:

* reports are cached per ``(rel, mode, kind)`` in ``ctx.artifacts``, so
  repeated derivations analyze once (and the schedules the analyzer
  builds are the ones derivation reuses);
* when an instance is already registered for the request, nothing is
  analyzed — there is nothing to derive;
* when gating is disabled (:func:`disable_analysis`), the entire gate
  is one dict lookup — no analyzer import, no report, no overhead.
"""

from __future__ import annotations

from ..core.context import Context
from ..core.errors import AnalysisError
from ..derive.instances import lookup
from ..derive.modes import Mode
from ..derive.stats import stats_of

_DISABLED_KEY = "analysis_disabled"
_REPORTS_KEY = "analysis_reports"


def disable_analysis(ctx: Context) -> None:
    """Skip the static-analysis gate for *ctx* (speed opt-out)."""
    ctx.artifacts[_DISABLED_KEY] = True


def enable_analysis(ctx: Context) -> None:
    """Re-enable the static-analysis gate for *ctx* (the default)."""
    ctx.artifacts.pop(_DISABLED_KEY, None)


def analysis_enabled(ctx: Context) -> bool:
    return not ctx.artifacts.get(_DISABLED_KEY)


def cached_report(ctx: Context, rel: str, mode: Mode, kind: str):
    """The memoized gate report for ``(rel, mode, kind)``, or None."""
    return ctx.artifacts.get(_REPORTS_KEY, {}).get((rel, str(mode), kind))


def check_before_derive(
    ctx: Context, rel: str, mode: Mode, kind: str, gate: bool = True
) -> None:
    """Raise :class:`AnalysisError` if the linter finds errors for
    ``(rel, mode)``; no-op when gating is off or *gate* is False."""
    if not gate or ctx.artifacts.get(_DISABLED_KEY):
        return
    if lookup(ctx, kind, rel, mode) is not None:
        return  # already registered: nothing will be derived
    reports = ctx.artifacts.setdefault(_REPORTS_KEY, {})
    key = (rel, str(mode), kind)
    report = reports.get(key)
    if report is None:
        from .checks import analyze

        report = analyze(ctx, rel, mode, kind=kind)
        reports[key] = report
        stats = stats_of(ctx)
        if stats is not None:
            stats.analysis_runs += 1
    if report.errors:
        first = report.errors[0]
        raise AnalysisError(
            f"static analysis rejected {rel!r} at mode {mode}: "
            f"{first.message}"
            + (f" [rule {first.rule}]" if first.rule else "")
            + f" ({first.code}; {len(report.errors)} error(s) total — "
            "see AnalysisError.diagnostics or run repro.analysis)",
            report.diagnostics,
        )
