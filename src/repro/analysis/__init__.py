"""Static relation/mode linter (``repro.analysis``).

Checks inductive relations for derivability and performance problems
*without executing* any checker or producer, reporting structured
diagnostics with stable codes::

    from repro.analysis import analyze, analyze_context

    report = analyze(ctx, 'typing', 'ioi')
    for d in report:
        print(d.render())

Command line::

    python -m repro.analysis file.v            # lint surface syntax
    python -m repro.analysis --corpus          # lint the sf corpus
    python -m repro.analysis file.v --mode 'square_of:oi'

The same checks gate ``derive_checker`` / ``derive_enumerator`` /
``derive_generator``: error diagnostics raise
:class:`~repro.core.errors.AnalysisError` before derivation starts.
Disable per call (``analysis=False``) or per context
(:func:`disable_analysis`).
"""

from ..core.errors import AnalysisError
from .checks import analyze, analyze_context
from .determinacy import (
    DetResult,
    Verdict,
    analyze_determinacy,
    relation_verdict,
)
from .diagnostics import CODES, Diagnostic, Report, Severity
from .gate import (
    analysis_enabled,
    cached_report,
    check_before_derive,
    disable_analysis,
    enable_analysis,
)

__all__ = [
    "AnalysisError",
    "CODES",
    "DetResult",
    "Diagnostic",
    "Report",
    "Severity",
    "Verdict",
    "analysis_enabled",
    "analyze",
    "analyze_context",
    "analyze_determinacy",
    "cached_report",
    "check_before_derive",
    "disable_analysis",
    "enable_analysis",
    "relation_verdict",
]
