"""Structured diagnostics for the relation/mode linter.

Every finding the analyzer produces is a :class:`Diagnostic` with a
stable code (``REL001`` .. ``REL009``), a severity, and enough
provenance (relation, rule, source span when the declaration came from
the surface parser) to render a rustc-style report::

    error[REL001]: 'foo' at mode ii: variable 'x' has no inferred type
      --> examples/foo.v:3:3 (rule mk_foo)
      = note: blocked at premise 'bar x y'

Codes are API: tests and CI allowlists match on them, so existing
codes never change meaning (new checks get new codes).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..core.relations import Span

#: code -> short human name (the linter's table of contents)
CODES = {
    "REL001": "mode consistency / derivability",
    "REL002": "negation stratification",
    "REL003": "unreachable or overlapping rules",
    "REL004": "dead rules / unproductive recursion",
    "REL005": "instance dependency closure",
    "REL006": "generate-and-test degradation (preprocessing)",
    "REL007": "functional relation mode (determinacy)",
    "REL008": "functional premise run by enumerate-then-check",
    "REL009": "overlapping conclusions defeat determinism",
}


class Severity(enum.IntEnum):
    """Ordered so that ``max(severities)`` is the worst finding."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    ``relation``/``rule`` locate the finding logically; ``span`` (when
    the declaration was parsed from surface syntax) locates it in the
    source text.  ``mode`` is the mode string the finding applies to,
    or ``None`` for mode-independent findings (e.g. stratification).
    """

    code: str
    severity: Severity
    message: str
    relation: str
    rule: str | None = None
    mode: str | None = None
    span: Span | None = None
    note: str | None = None

    def __post_init__(self) -> None:
        if self.code not in CODES:  # keep the code table authoritative
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    # -- rendering -----------------------------------------------------------

    def render(self, source: str | None = None) -> str:
        """Rustc-flavored multi-line rendering.

        ``source`` is an optional file/module label for the ``-->``
        location line.
        """
        where = self.relation
        if self.mode is not None:
            where += f" at mode {self.mode}"
        lines = [f"{self.severity}[{self.code}]: {where}: {self.message}"]
        loc_bits = []
        if source:
            loc_bits.append(source)
        if self.span is not None:
            loc_bits.append(str(self.span))
        loc = ":".join(loc_bits)
        if self.rule is not None:
            loc = f"{loc} (rule {self.rule})" if loc else f"rule {self.rule}"
        if loc:
            lines.append(f"  --> {loc}")
        if self.note:
            lines.append(f"  = note: {self.note}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "relation": self.relation,
            "rule": self.rule,
            "mode": self.mode,
            "line": self.span.line if self.span else None,
            "column": self.span.column if self.span else None,
            "note": self.note,
        }

    def __str__(self) -> str:
        return self.render()


def _sort_key(d: Diagnostic) -> tuple:
    return (-int(d.severity), d.relation, d.code, d.rule or "", d.message)


@dataclass(frozen=True)
class Report:
    """The analyzer's result: diagnostics, worst first.

    A report with no :attr:`errors` means derivation will not be
    rejected (warnings describe derivable-but-degenerate behavior,
    infos are observations).
    """

    diagnostics: tuple[Diagnostic, ...]

    @staticmethod
    def of(diags: Iterable[Diagnostic]) -> "Report":
        return Report(tuple(sorted(diags, key=_sort_key)))

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(
            d for d in self.diagnostics if d.severity is Severity.WARNING
        )

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.INFO)

    @property
    def ok(self) -> bool:
        """No errors (warnings/infos allowed)."""
        return not self.errors

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.code == code)

    def merge(self, other: "Report") -> "Report":
        """Combine two reports, dropping exact duplicates (context-wide
        analysis visits shared graph structure once per relation)."""
        seen: list[Diagnostic] = list(self.diagnostics)
        for d in other.diagnostics:
            if d not in seen:
                seen.append(d)
        return Report.of(seen)

    def render(self, source: str | None = None) -> str:
        if not self.diagnostics:
            return "no findings"
        blocks = [d.render(source) for d in self.diagnostics]
        counts = []
        for sev, found in (
            ("error", self.errors),
            ("warning", self.warnings),
            ("info", self.infos),
        ):
            if found:
                plural = "" if len(found) == 1 else "s"
                counts.append(f"{len(found)} {sev}{plural}")
        blocks.append(", ".join(counts))
        return "\n\n".join(blocks)

    def to_json(self) -> str:
        return json.dumps(
            [d.as_dict() for d in self.diagnostics], indent=2, sort_keys=True
        )

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)
