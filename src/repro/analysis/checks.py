"""The linter checks (REL001..REL009).

The analyzer answers, *without executing any derived computation*:
will deriving ``(rel, mode)`` work, and will the result behave the way
the paper's algorithms promise?  Each check maps to a concept in the
source material:

* **REL001** — mode consistency / derivability (Section 4).  Replays
  the scheduler's variable-knowledge dataflow per rule and reports
  which premise forces which variable into unconstrained
  instantiation (generate-and-test), or blocks derivation outright.
* **REL002** — negation stratification (Section 5.2.2).  A negated
  premise whose target is in the same recursive component as the
  negating relation makes the checker's fixpoint non-monotone.
* **REL003** — unreachable / overlapping rules.  A premise-free rule
  whose conclusion subsumes a later rule's makes the later rule
  unreachable for checkers (``backtracking`` short-circuits at the
  first success) or redundant for producers.
* **REL004** — dead rules / unproductive recursion.  A relation none
  of whose rules can ever succeed exhausts fuel on every query; a
  zero-rule relation is *decidably* empty (``backtracking([])`` is
  ``Some false``) and only worth an info.
* **REL005** — instance-dependency closure (Section 8's typeclass
  limitation).  Walks ``required_instances`` transitively, reporting
  missing relations, underivable dependencies, and cyclic instance
  needs as diagnostics instead of deep ``DerivationError``\\ s.
* **REL006** — preprocessing degradation (Section 3.1).  Warns when a
  conclusion function call or non-linear pattern is *not* absorbed by
  the schedule (the inserted equality never becomes directed and the
  scheduler falls back to generate-and-test).
* **REL007/REL008/REL009** — determinacy & functionality
  (:mod:`repro.analysis.determinacy`): modes proven to return at most
  one answer (info), functional premises left to enumerate-then-check
  when the functionalization pass is off (warning), and
  claimed-deterministic producer modes defeated by overlapping
  conclusions (warning).

The per-rule simulation is the real scheduler: ``_Probe`` subclasses
``_HandlerBuilder`` (which itself sits on the shared
:class:`~repro.derive.readiness.RuleDataflow`) and only overrides the
instantiation hook, so diagnostics can never drift from what
``build_schedule`` actually does.
"""

from __future__ import annotations

from ..core.context import Context
from ..core.errors import OutOfScopeError, ReproError
from ..core.relations import Relation, RelPremise, Rule
from ..core.terms import Fun, Term, Var, subst, var_set_all
from ..core.unify import unify
from ..derive.instances import CHECKER, ENUM, GEN, lookup
from ..derive.modes import Mode
from ..derive.preprocess import preprocess_relation
from ..derive.schedule import Schedule
from ..derive.scheduler import (
    DEFAULT_POLICY,
    _HandlerBuilder,
    build_schedule,
    check_in_scope,
    required_instances,
)
from .diagnostics import Diagnostic, Report, Severity


# ---------------------------------------------------------------------------
# REL001 / REL006: the scheduler probe
# ---------------------------------------------------------------------------

class _Probe(_HandlerBuilder):
    """Runs the real scheduler on one rule, recording every
    unconstrained instantiation (and its reason) instead of requiring
    the variable's type to be known."""

    def __init__(self, ctx: Context, rel: Relation, rule: Rule, mode: Mode) -> None:
        super().__init__(ctx, rel, rule, mode, DEFAULT_POLICY)
        #: (variable, reason kind, premise or None), in schedule order
        self.events: list = []

    def _instantiate(self, name, reason=None):
        kind, premise = reason if reason is not None else ("unconstrained", None)
        self.events.append((name, kind, premise))
        # Unlike the scheduler, don't demand a type: record and go on,
        # so one missing type doesn't hide later findings.
        self.vars.mark_known(name)


_REASON_TEXT = {
    "funcall": "it occurs under a function call in premise '{p}'",
    "negated": "negated premise '{p}' must be fully instantiated before checking",
    "recursive-input": "recursive premise '{p}' needs it at an input position",
    "producer-input": "premise '{p}' needs it at an input position",
    "forced-eq": "equality premise '{p}' never becomes directed",
    "unconstrained": "premise '{p}' is checked by brute force",
}


def _probe_rule(
    ctx: Context,
    pre: Relation,
    rule: Rule,
    orig: Rule,
    mode: Mode,
    diags: list,
):
    """REL001/REL006 for one preprocessed rule; returns the built
    handler, or None when the rule cannot be scheduled at all."""
    mode_str = str(mode)
    # Premises inserted by preprocessing sit in front of the original
    # ones; degradation through them is the conclusion's fault (REL006),
    # through user-written premises it is the mode's (REL001).
    n_syn = len(rule.premises) - len(orig.premises)
    synthetic = list(rule.premises[:n_syn])

    probe = _Probe(ctx, pre, rule, mode)
    try:
        handler = probe.build()
    except ReproError as exc:
        diags.append(
            Diagnostic(
                "REL001",
                Severity.ERROR,
                f"rule cannot be scheduled: {exc}",
                pre.name,
                rule.name,
                mode=mode_str,
                span=rule.span,
            )
        )
        return None

    for name, kind, premise in probe.events:
        note = None if premise is None else f"while processing '{premise}'"
        if name not in probe.var_types:
            blocker = (
                f"blocking premise: '{premise}'"
                if premise is not None
                else "needed for an unconstrained output position"
            )
            diags.append(
                Diagnostic(
                    "REL001",
                    Severity.ERROR,
                    f"variable {name!r} must be instantiated unconstrained "
                    "but has no inferred type ({})".format(blocker),
                    pre.name,
                    rule.name,
                    mode=mode_str,
                    span=rule.span,
                    note="was the relation declared without type inference?",
                )
            )
        elif premise is not None and premise in synthetic:
            cause = (
                "a function call in the conclusion"
                if isinstance(premise.lhs, Fun)
                else "a non-linear conclusion pattern"
            )
            diags.append(
                Diagnostic(
                    "REL006",
                    Severity.WARNING,
                    f"{cause} degrades to generate-and-test: variable "
                    f"{name!r} is enumerated unconstrained and filtered "
                    f"through '{premise}'",
                    pre.name,
                    rule.name,
                    mode=mode_str,
                    span=rule.span,
                )
            )
        elif kind == "output":
            diags.append(
                Diagnostic(
                    "REL001",
                    Severity.INFO,
                    f"output variable {name!r} is unconstrained by any "
                    "premise; producers sample it arbitrarily",
                    pre.name,
                    rule.name,
                    mode=mode_str,
                    span=rule.span,
                )
            )
        else:
            diags.append(
                Diagnostic(
                    "REL001",
                    Severity.WARNING,
                    f"variable {name!r} is bound by generate-and-test: "
                    + _REASON_TEXT[kind].format(p=premise),
                    pre.name,
                    rule.name,
                    mode=mode_str,
                    span=rule.span,
                    note=note,
                )
            )
    return handler


# ---------------------------------------------------------------------------
# REL002 / REL004: relation-graph checks
# ---------------------------------------------------------------------------

def _relation_graph(ctx: Context):
    """Call graph over declared relations, plus the negated edges."""
    edges: dict[str, set[str]] = {}
    negated: list[tuple[str, str, Rule, RelPremise]] = []
    for rel in ctx.relations:
        outs: set[str] = set()
        for rule in rel.rules:
            for p in rule.premises:
                if isinstance(p, RelPremise):
                    outs.add(p.rel)
                    if p.negated:
                        negated.append((rel.name, p.rel, rule, p))
        edges[rel.name] = outs
    return edges, negated


def _sccs(edges: dict[str, set[str]]):
    """Iterative Tarjan; returns (node -> component id, components)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    comp: dict[str, int] = {}
    comps: list[list[str]] = []
    counter = 0

    def succs(node: str):
        return iter(sorted(e for e in edges[node] if e in edges))

    for root in sorted(edges):
        if root in index:
            continue
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        work: list[tuple[str, object]] = [(root, succs(root))]
        while work:
            node, it = work[-1]
            pushed = False
            for nxt in it:  # type: ignore[union-attr]
                if nxt not in index:
                    index[nxt] = low[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, succs(nxt)))
                    pushed = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if pushed:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                members: list[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp[w] = len(comps)
                    members.append(w)
                    if w == node:
                        break
                comps.append(sorted(members))
    return comp, comps


def _reachable(edges: dict[str, set[str]], start: str) -> set[str]:
    seen = {start}
    todo = [start]
    while todo:
        node = todo.pop()
        for nxt in edges.get(node, ()):
            if nxt in edges and nxt not in seen:
                seen.add(nxt)
                todo.append(nxt)
    return seen


def _check_stratification(
    ctx: Context, scope: set[str], diags: list
) -> None:
    """REL002: a negated premise inside a recursive component."""
    edges, negated = _relation_graph(ctx)
    if not negated:
        return
    comp, comps = _sccs(edges)
    for src, dst, rule, premise in negated:
        if src not in scope:
            continue
        if dst in comp and comp[src] == comp[dst]:
            cycle = " <-> ".join(comps[comp[src]])
            diags.append(
                Diagnostic(
                    "REL002",
                    Severity.ERROR,
                    f"negated premise '{premise}' is not stratified: "
                    f"{dst!r} is defined mutually with {src!r} "
                    f"(component {cycle}), so the checker fixpoint is "
                    "non-monotone",
                    src,
                    rule.name,
                    span=rule.span,
                    note="negation requires the negated relation to be "
                    "decidable independently of the negating one "
                    "(Section 5.2.2)",
                )
            )


def _productive_relations(ctx: Context) -> set[str]:
    """Least fixpoint of 'has a rule all of whose positive relation
    premises are productive'."""
    grounded: set[str] = set()
    changed = True
    while changed:
        changed = False
        for rel in ctx.relations:
            if rel.name in grounded or not rel.rules:
                continue
            for rule in rel.rules:
                deps = [
                    p.rel
                    for p in rule.premises
                    if isinstance(p, RelPremise) and not p.negated
                ]
                if all(d in grounded for d in deps):
                    grounded.add(rel.name)
                    changed = True
                    break
    return grounded


def _check_productivity(
    ctx: Context, rel: Relation, grounded: set[str], diags: list
) -> None:
    """REL004 for one relation."""
    if not rel.rules:
        diags.append(
            Diagnostic(
                "REL004",
                Severity.INFO,
                "has no rules: decidably empty (checkers answer "
                "'Some false' without spending fuel)",
                rel.name,
                span=rel.span,
            )
        )
        return
    if rel.name not in grounded:
        diags.append(
            Diagnostic(
                "REL004",
                Severity.ERROR,
                "no rule can ever succeed: the recursion reaches no base "
                "case, so every derived computation exhausts its fuel",
                rel.name,
                span=rel.span,
                note="every rule's positive premises lead back into "
                "unproductive relations",
            )
        )
        return
    for rule in rel.rules:
        for p in rule.premises:
            if not isinstance(p, RelPremise) or p.negated:
                continue
            if p.rel not in ctx.relations or p.rel in grounded:
                continue
            dep = ctx.relations.get(p.rel)
            why = (
                f"premise relation {p.rel!r} is empty (has no rules)"
                if not dep.rules
                else f"premise relation {p.rel!r} never succeeds"
            )
            diags.append(
                Diagnostic(
                    "REL004",
                    Severity.WARNING,
                    f"rule can never succeed: {why}",
                    rel.name,
                    rule.name,
                    span=rule.span,
                )
            )
            break  # one finding per rule is enough


# ---------------------------------------------------------------------------
# REL003: rule overlap / unreachability
# ---------------------------------------------------------------------------

def _subsumes(
    general: tuple[Term, ...], specific: tuple[Term, ...], specific_vars: set[str]
) -> bool:
    """Does *general* match every instance of *specific*?  (One-way
    matching: unification succeeding without binding any
    *specific*-side variable.)"""
    s: dict = {}
    for g, t in zip(general, specific):
        nxt = unify(g, t, s)
        if nxt is None:
            return False
        s = nxt
    return all(name not in specific_vars for name in s)


def _check_overlap(pre: Relation, mode: Mode, diags: list) -> None:
    """REL003 over the *preprocessed* rules — synthetic equality
    premises count as constraints, so a non-linear base rule (e.g.
    ``le n n``) does not subsume everything."""
    mode_str = str(mode)
    for i, ri in enumerate(pre.rules):
        if ri.premises:
            continue  # only an unconditional rule always succeeds
        for rj in pre.rules[i + 1 :]:
            env = {v: Var(f"{v}#r3") for v in var_set_all(rj.conclusion)}
            renamed = tuple(subst(t, env) for t in rj.conclusion)
            spec_vars = {f"{v}#r3" for v in var_set_all(rj.conclusion)}
            if not _subsumes(ri.conclusion, renamed, spec_vars):
                continue
            if mode.is_checker:
                message = (
                    f"rule is unreachable at mode {mode_str}: premise-free "
                    f"rule {ri.name!r} already accepts every input this "
                    "rule matches, and the checker stops at the first "
                    "success"
                )
            else:
                message = (
                    f"rule is redundant at mode {mode_str}: every tuple it "
                    f"can produce is already produced by premise-free rule "
                    f"{ri.name!r}"
                )
            diags.append(
                Diagnostic(
                    "REL003",
                    Severity.WARNING,
                    message,
                    pre.name,
                    rj.name,
                    mode=mode_str,
                    span=rj.span,
                )
            )


# ---------------------------------------------------------------------------
# REL005: instance dependency closure
# ---------------------------------------------------------------------------

def _instance_requirements(ctx: Context, schedule: Schedule, kind: str):
    """``required_instances`` resolved to concrete (kind, rel, mode)
    triples, the way ``instances._resolve_dependencies`` maps them."""
    producer_kind = kind if kind != CHECKER else ENUM
    out = []
    for need_kind, need_rel, need_mode in required_instances(schedule):
        if need_kind == "checker":
            if need_rel in ctx.relations:
                need_mode = Mode.checker(ctx.relations.get(need_rel).arity)
            out.append((CHECKER, need_rel, need_mode))
        else:
            out.append((producer_kind, need_rel, need_mode))
    return out


def _check_instance_closure(
    ctx: Context,
    rel: Relation,
    mode: Mode,
    kind: str,
    root_schedule: Schedule,
    diags: list,
) -> None:
    """REL005: walk the dependency closure the way ``resolve`` would,
    but report problems instead of raising mid-derivation."""
    mode_str = str(mode)
    visited: set[tuple] = set()

    def report(severity: Severity, message: str, note: str | None = None):
        diags.append(
            Diagnostic(
                "REL005",
                severity,
                message,
                rel.name,
                mode=mode_str,
                span=rel.span,
                note=note,
            )
        )

    def visit(need_kind: str, need_rel: str, need_mode, chain: list) -> None:
        key = (need_kind, need_rel, str(need_mode))
        if key in chain:
            cycle = " -> ".join(
                f"{k}:{r}:{m}" for k, r, m in chain[chain.index(key) :] + [key]
            )
            report(
                Severity.ERROR,
                f"cyclic instance dependency ({cycle})",
                note="mutually recursive relations need "
                "repro.derive.mutual.derive_mutual",
            )
            return
        if key in visited:
            return
        visited.add(key)
        if need_rel not in ctx.relations:
            report(
                Severity.ERROR,
                f"required {need_kind} instance calls undeclared relation "
                f"{need_rel!r}",
            )
            return
        if lookup(ctx, need_kind, need_rel, need_mode) is not None:
            return  # a registered (possibly handwritten) instance: leaf
        try:
            schedule = build_schedule(ctx, need_rel, need_mode)
        except ReproError as exc:
            report(
                Severity.ERROR,
                f"required {need_kind} instance for {need_rel!r} at mode "
                f"{need_mode} cannot be derived: {exc}",
            )
            return
        for nk, nr, nm in _instance_requirements(ctx, schedule, need_kind):
            visit(nk, nr, nm, chain + [key])

    root_key = (kind, rel.name, mode_str)
    for nk, nr, nm in _instance_requirements(ctx, root_schedule, kind):
        visit(nk, nr, nm, [root_key])


def _check_determinacy(
    ctx: Context, rel: Relation, mode: Mode, diags: list
) -> None:
    """REL007/REL008/REL009: the determinacy & functionality analysis
    (:mod:`repro.analysis.determinacy`) surfaced as lint findings.

    * **REL007** (info) — a relation mode proven ``det``/``functional``:
      the analyzed mode itself when it is a producer mode, plus every
      mode derived for a premise produce loop (the backend rewrites
      those loops to direct evaluation).
    * **REL008** (warning) — a functional premise that *will* run by
      enumerate-then-check because functionalization is switched off.
      With the pass enabled (the default) the premise is computed
      directly and the warning does not apply.
    * **REL009** (warning) — a producer mode whose rules are all
      individually deterministic but whose conclusions definitely
      overlap on the input positions, defeating the claimed
      determinism (the paper's functionality precondition).
    """
    from ..derive.plan import functionalization_enabled
    from .determinacy import analyze_determinacy

    try:
        res = analyze_determinacy(ctx, rel.name, mode)
    except ReproError:
        return  # underivable modes are REL001/REL005 territory
    mode_str = str(mode)
    if not mode.is_checker:
        if res.verdict.at_most_one:
            diags.append(
                Diagnostic(
                    "REL007",
                    Severity.INFO,
                    f"proven {res.verdict} at producer mode {mode_str}",
                    rel.name,
                    mode=mode_str,
                    span=rel.span,
                    note="at most one answer per input: premise calls at "
                    "this mode are eligible for functionalization",
                )
            )
        elif res.definite_overlaps:
            a, b = res.definite_overlaps[0]
            diags.append(
                Diagnostic(
                    "REL009",
                    Severity.WARNING,
                    f"rules {a!r} and {b!r} have overlapping conclusions "
                    f"on the inputs of mode {mode_str}, so the mode can "
                    "yield duplicate answers",
                    rel.name,
                    rule=a,
                    mode=mode_str,
                    span=rel.span,
                    note="a single input matches both conclusions; "
                    "disjoint conclusions are a precondition for a "
                    "det/functional verdict",
                )
            )
    sites = res.functional_sites
    if not sites:
        return
    enabled = functionalization_enabled(ctx)
    seen: set[tuple[str, str]] = set()
    for site in sites:
        if not enabled:
            diags.append(
                Diagnostic(
                    "REL008",
                    Severity.WARNING,
                    f"premise {site.rel!r} is {site.verdict} at mode "
                    f"{site.mode_str} but runs by enumerate-then-check",
                    rel.name,
                    rule=site.rule,
                    mode=mode_str,
                    span=rel.span,
                    note="functionalization is disabled "
                    "(REPRO_NO_FUNCTIONALIZE / disable_functionalization); "
                    "enabling it computes this premise directly",
                )
            )
        key = (site.rel, site.mode_str)
        if key in seen:
            continue
        seen.add(key)
        target = ctx.relations.get(site.rel)
        diags.append(
            Diagnostic(
                "REL007",
                Severity.INFO,
                f"proven {site.verdict} at derived mode {site.mode_str}",
                site.rel,
                mode=site.mode_str,
                span=target.span,
                note=f"derived for a premise in rule {site.rule!r} of "
                f"{rel.name!r}",
            )
        )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def analyze(
    ctx: Context,
    rel_name: str,
    mode: "str | Mode | None" = None,
    *,
    kind: str | None = None,
) -> Report:
    """Lint ``(rel, mode)``; ``mode=None`` means the checker mode.

    ``kind`` (one of ``'checker'``/``'enum'``/``'gen'``) names the
    artifact whose dependency closure REL005 walks; it defaults to the
    checker for checker modes and the enumerator otherwise.
    """
    rel = ctx.relations.get(rel_name)
    mode_obj = (
        Mode.checker(rel.arity) if mode is None else Mode.for_relation(rel, mode)
    )
    if kind is None:
        kind = CHECKER if mode_obj.is_checker else ENUM
    if kind not in (CHECKER, ENUM, GEN):
        raise ValueError(f"bad instance kind {kind!r}")
    diags: list[Diagnostic] = []
    mode_str = str(mode_obj)

    try:
        check_in_scope(ctx, rel)
    except OutOfScopeError as exc:
        diags.append(
            Diagnostic(
                "REL001",
                Severity.ERROR,
                str(exc),
                rel.name,
                mode=mode_str,
                span=rel.span,
            )
        )
        return Report.of(diags)

    edges, _ = _relation_graph(ctx)
    scope = _reachable(edges, rel.name)
    _check_stratification(ctx, scope, diags)
    _check_productivity(ctx, rel, _productive_relations(ctx), diags)

    try:
        pre = preprocess_relation(rel, ctx)
    except ReproError as exc:
        diags.append(
            Diagnostic(
                "REL001",
                Severity.ERROR,
                f"preprocessing/type inference failed: {exc}",
                rel.name,
                mode=mode_str,
                span=rel.span,
            )
        )
        return Report.of(diags)

    _check_overlap(pre, mode_obj, diags)

    orig_by_name = {r.name: r for r in rel.rules}
    handlers = []
    schedulable = True
    for rule in pre.rules:
        handler = _probe_rule(
            ctx, pre, rule, orig_by_name[rule.name], mode_obj, diags
        )
        if handler is None:
            schedulable = False
        else:
            handlers.append(handler)

    if schedulable:
        out_types = tuple(rel.arg_types[i] for i in mode_obj.out_list)
        root = Schedule(rel.name, mode_obj, tuple(handlers), out_types)
        _check_instance_closure(ctx, rel, mode_obj, kind, root, diags)
        _check_determinacy(ctx, rel, mode_obj, diags)

    return Report.of(diags)


def analyze_context(
    ctx: Context,
    modes: "dict[str, list[str]] | None" = None,
) -> Report:
    """Lint every monomorphic relation in *ctx* at its checker mode,
    plus any extra ``{relation: [mode specs]}`` requested."""
    report = Report.of(())
    for rel in sorted(ctx.relations, key=lambda r: r.name):
        if not rel.is_monomorphic():
            continue  # nothing can be derived until it is instantiated
        report = report.merge(analyze(ctx, rel.name))
        for spec in (modes or {}).get(rel.name, ()):
            report = report.merge(analyze(ctx, rel.name, spec))
    return report
