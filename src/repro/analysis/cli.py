"""Command-line front end: ``python -m repro.analysis``.

Lints surface-syntax files or the built-in corpus::

    python -m repro.analysis examples/foo.v
    python -m repro.analysis foo.v --mode 'square_of:oi' --json
    python -m repro.analysis --corpus --allow ci/corpus_allowlist.txt

Exit codes: 0 = clean (infos never count, allowlisted findings are
reported but don't fail), 1 = errors or warnings found, 2 = usage or
parse failure.

Allowlist files contain one pattern per line (``#`` comments allowed):
``REL004`` silences a code everywhere, ``REL004:empty_relation``
silences it for one relation, ``REL004:empty_relation:rule_name`` for
one rule.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..core.errors import ReproError
from .checks import analyze, analyze_context
from .diagnostics import Diagnostic, Report, Severity

#: case-study modules linted by --corpus alongside the sf chapters
CASE_STUDY_MODULES = [
    "repro.casestudies.bst",
    "repro.casestudies.stlc",
    "repro.casestudies.ifc",
]


def load_allowlist(path: str) -> set[str]:
    patterns: set[str] = set()
    for raw in Path(path).read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            patterns.add(line)
    return patterns


def is_allowed(diag: Diagnostic, allow: set[str]) -> bool:
    keys = [diag.code, f"{diag.code}:{diag.relation}"]
    if diag.rule:
        keys.append(f"{diag.code}:{diag.relation}:{diag.rule}")
    return any(k in allow for k in keys)


def _parse_mode_args(specs: list[str]) -> dict[str, list[str]]:
    modes: dict[str, list[str]] = {}
    for spec in specs:
        if ":" not in spec:
            raise ValueError(
                f"bad --mode {spec!r}: expected 'relation:iospec' "
                "(e.g. 'square_of:oi')"
            )
        rel, _, mode = spec.partition(":")
        modes.setdefault(rel, []).append(mode)
    return modes


def _lint_sources(args) -> list[tuple[str, Report]]:
    """(label, report) per linted source, in lint order."""
    results: list[tuple[str, Report]] = []
    modes = _parse_mode_args(args.mode)

    if args.corpus:
        from ..sf.registry import CHAPTER_MODULES, load_chapter

        for module in CHAPTER_MODULES:
            chapter = load_chapter(module)
            results.append((module, analyze_context(chapter.ctx, modes)))
        import importlib

        for module in CASE_STUDY_MODULES:
            ctx = importlib.import_module(module).make_context()
            results.append((module, analyze_context(ctx, modes)))
        return results

    from ..core.parser import parse_declarations
    from ..stdlib import standard_context

    for filename in args.files:
        ctx = standard_context()
        parse_declarations(ctx, Path(filename).read_text())
        results.append((filename, analyze_context(ctx, modes)))
    return results


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="static linter for inductive relations (REL001..REL009)",
    )
    parser.add_argument("files", nargs="*", help="surface-syntax files to lint")
    parser.add_argument(
        "--corpus",
        action="store_true",
        help="lint the Software Foundations corpus and the case studies",
    )
    parser.add_argument(
        "--mode",
        action="append",
        default=[],
        metavar="REL:SPEC",
        help="additionally lint REL at mode SPEC (repeatable)",
    )
    parser.add_argument(
        "--allow", metavar="FILE", help="allowlist file (CODE[:relation[:rule]])"
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    args = parser.parse_args(argv)

    if not args.corpus and not args.files:
        parser.print_usage(sys.stderr)
        print("error: give files to lint or --corpus", file=sys.stderr)
        return 2

    allow: set[str] = set()
    if args.allow:
        try:
            allow = load_allowlist(args.allow)
        except OSError as exc:
            print(f"error: cannot read allowlist: {exc}", file=sys.stderr)
            return 2

    try:
        results = _lint_sources(args)
    except (ReproError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    failing = 0
    allowed = 0
    if args.json:
        payload = {
            label: [d.as_dict() for d in report] for label, report in results
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    for label, report in results:
        shown: list[str] = []
        for diag in report:
            if diag.severity is not Severity.INFO:
                if is_allowed(diag, allow):
                    allowed += 1
                else:
                    failing += 1
            if not args.json:
                suffix = " (allowlisted)" if is_allowed(diag, allow) else ""
                shown.append(diag.render(label) + suffix)
        if shown:
            print("\n\n".join(shown))
            print()
    if not args.json:
        summary = f"{failing} finding(s)"
        if allowed:
            summary += f", {allowed} allowlisted"
        print(summary)
    return 1 if failing else 0
