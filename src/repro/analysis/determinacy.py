"""Determinacy & functionality analysis over scheduled rules.

The mode framework (Section 4 of the paper) already decides *which*
argument positions a derived artifact consumes and produces; this pass
decides *how many* answers it can produce.  Per ``(relation, mode)``
it computes a verdict on a four-point lattice (join = max)::

    det  ⊑  functional  ⊑  semidet  ⊑  multi

* ``det`` — at most one answer, and every scheduled rule body is
  *loop-free*: no enumeration steps at all (only pattern tests,
  equality checks, checker calls and recursive self-checks).  For
  checker modes this is the inlining-grade verdict — the whole
  decision procedure is straight-line per fixpoint level, so a caller
  can splice it into its own dispatch (``repro.derive.codegen``).
* ``functional`` — the output slots are uniquely determined by the
  input slots (at most one answer per input tuple): rule conclusions
  are pairwise non-overlapping on the input positions, and every
  premise that binds an output is itself ``functional`` (or better) in
  the slots already known at that point.  Recursive self-premises are
  handled coinductively: the relation is *assumed* functional at the
  analyzed mode while its rules are verified under that assumption —
  sound because derivations are finite, so an actual double answer
  would have a minimal witness whose rule the verification would have
  rejected.  This is the functionalization-grade verdict consumed by
  :func:`repro.derive.plan.functionalize_plan`.
* ``semidet`` — every rule body yields at most one answer, but the
  conclusions *might* overlap on input positions (neither a rigid
  constructor mismatch proving disjointness nor a one-way match
  proving overlap): more than one rule may answer, so outputs cannot
  be claimed functional.
* ``multi`` — possibly many answers: some rule enumerates (an
  unbounded producer premise or a type instantiation), or two
  deterministic rules *definitely* overlap on input positions (the
  REL009 situation: per-rule determinism is ruined by the rule set).

Checker modes have no output slots — the "answer" is a boolean — so
``multi`` never applies there; an enumerate-then-check body caps the
verdict at ``semidet`` (a semi-decision procedure) instead.

The analysis runs over the *real* schedules
(:func:`repro.derive.scheduler.build_schedule`), so its verdicts
describe exactly the premise calls the backends will execute; the
overlap test reuses the REL003 one-way matcher discipline on
preprocessed conclusions restricted to input positions.  Verdicts are
cached per context under :data:`DETERMINACY_KEY`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

from ..core.context import Context
from ..core.errors import ReproError
from ..core.terms import Ctor, Term, Var, subst, var_set_all
from ..core.unify import unify
from ..core.values import Value
from ..derive.modes import Mode
from ..derive.preprocess import preprocess_relation
from ..derive.schedule import (
    SCheckCall,
    SInstantiate,
    SProduce,
    SRecCheck,
    Schedule,
)
from ..derive.scheduler import build_schedule

#: ``ctx.artifacts`` slot holding the ``{(rel, mode_str): Verdict}`` memo.
DETERMINACY_KEY = "determinacy"


class Verdict(IntEnum):
    """Answer-multiplicity lattice; ``max`` is the join."""

    DET = 0
    FUNCTIONAL = 1
    SEMIDET = 2
    MULTI = 3

    def __str__(self) -> str:  # 'det', not 'Verdict.DET' — for messages
        return self.name.lower()

    @property
    def at_most_one(self) -> bool:
        """At most one answer per input tuple?"""
        return self <= Verdict.FUNCTIONAL


# Pairwise conclusion-overlap classification (input positions only).
DISJOINT = "disjoint"  # rigid constructor mismatch at some input position
OVERLAPS = "overlaps"  # one-way match succeeded: definite overlap
POSSIBLE = "possible"  # variables block both proofs


@dataclass(frozen=True)
class ProduceSite:
    """One ``SProduce`` step: a premise executed by enumerate-then-check
    (or, when :attr:`verdict` is functional-grade, a candidate for the
    plan-level functionalization rewrite)."""

    rule: str
    rel: str
    mode_str: str
    recursive: bool
    verdict: Verdict


@dataclass
class DetResult:
    """Everything :func:`analyze_determinacy` learned about one
    ``(relation, mode)``."""

    rel: str
    mode_str: str
    verdict: Verdict
    rules: dict[str, Verdict] = field(default_factory=dict)
    overlaps: list[tuple[str, str, str]] = field(default_factory=list)
    produce_sites: list[ProduceSite] = field(default_factory=list)

    @property
    def functional_sites(self) -> list[ProduceSite]:
        """Non-recursive produce premises whose callee is proven
        functional — the functionalization opportunities (REL008 when
        the pass is off)."""
        return [
            s
            for s in self.produce_sites
            if not s.recursive and s.verdict.at_most_one
        ]

    @property
    def definite_overlaps(self) -> list[tuple[str, str]]:
        return [(a, b) for a, b, k in self.overlaps if k == OVERLAPS]


# ---------------------------------------------------------------------------
# Conclusion overlap on input positions
# ---------------------------------------------------------------------------

def _rigidly_disjoint(a: Term, b: Term) -> bool:
    """Can no instantiation make *a* and *b* equal?  True only on a
    rigid constructor/constant mismatch — a variable anywhere blocks
    the proof (conservative)."""
    if isinstance(a, Var) or isinstance(b, Var):
        return False
    if isinstance(a, Ctor) and isinstance(b, Ctor):
        if a.name != b.name or len(a.args) != len(b.args):
            return True
        return any(_rigidly_disjoint(x, y) for x, y in zip(a.args, b.args))
    if isinstance(a, Value) and isinstance(b, Value):
        return a != b
    # Fun applications (and Ctor-vs-Value shapes) are opaque here.
    return False


def _one_way_overlap(
    gen: tuple[Term, ...], spec: tuple[Term, ...]
) -> bool:
    """REL003's one-way matcher: does *gen* match every instance of
    *spec* (unification binding no *spec*-side variable)?  A success
    is a definite overlap witness."""
    env = {v: Var(f"{v}#det") for v in var_set_all(spec)}
    renamed = tuple(subst(t, env) for t in spec)
    rigid = {env[v].name for v in env}
    s: dict = {}
    for g, t in zip(gen, renamed):
        nxt = unify(g, t, s)
        if nxt is None:
            return False
        s = nxt
    return all(name not in rigid for name in s)


def _classify_overlap(ci: tuple[Term, ...], cj: tuple[Term, ...]) -> str:
    if any(_rigidly_disjoint(a, b) for a, b in zip(ci, cj)):
        return DISJOINT
    if _one_way_overlap(ci, cj) or _one_way_overlap(cj, ci):
        return OVERLAPS
    return POSSIBLE


# ---------------------------------------------------------------------------
# Per-(relation, mode) verdict with coinductive recursion
# ---------------------------------------------------------------------------

def _rule_verdict(
    ctx: Context,
    rel_name: str,
    mode: Mode,
    steps,
    pending: dict,
    used_pending: set,
    sites: "list[ProduceSite] | None",
    rule_name: str,
) -> Verdict:
    v = Verdict.DET
    for step in steps:
        if isinstance(step, (SCheckCall, SRecCheck)):
            continue  # boolean call: no bindings, no extra answers
        if isinstance(step, SInstantiate):
            v = max(v, Verdict.MULTI)  # type enumeration
        elif isinstance(step, SProduce):
            callee = _verdict(
                ctx, step.rel, step.mode, pending, used_pending
            )
            if sites is not None:
                sites.append(
                    ProduceSite(
                        rule_name,
                        step.rel,
                        str(step.mode),
                        step.recursive,
                        callee,
                    )
                )
            if callee.at_most_one:
                v = max(v, Verdict.FUNCTIONAL)  # loop draws ≤ 1 item
            else:
                v = max(v, Verdict.MULTI)
    return v


def _compute(
    ctx: Context,
    rel_name: str,
    mode: Mode,
    pending: dict,
    used_pending: set,
    result: "DetResult | None" = None,
) -> Verdict:
    relation = ctx.relations.get(rel_name)
    if relation is None:
        return Verdict.MULTI
    try:
        schedule: Schedule = build_schedule(ctx, rel_name, mode)
        pre = preprocess_relation(relation, ctx)
    except ReproError:
        return Verdict.MULTI  # unschedulable/ill-typed: assume the worst

    rule_vs: dict[str, Verdict] = {}
    sites = result.produce_sites if result is not None else None
    for handler in schedule.handlers:
        rule_vs[handler.rule] = _rule_verdict(
            ctx, rel_name, mode, handler.steps, pending, used_pending,
            sites, handler.rule,
        )
    if result is not None:
        result.rules = rule_vs

    worst_rule = max(rule_vs.values(), default=Verdict.DET)
    if mode.is_checker:
        # The answer is a boolean — never 'multi'; enumerate-then-check
        # bodies make the checker a semi-decision procedure at worst.
        return min(worst_rule, Verdict.SEMIDET)

    ins = mode.ins
    concl = {r.name: tuple(r.conclusion[i] for i in ins) for r in pre.rules}
    overlap = Verdict.DET
    for i, ri in enumerate(pre.rules):
        for rj in pre.rules[i + 1:]:
            kind = _classify_overlap(concl[ri.name], concl[rj.name])
            if result is not None and kind != DISJOINT:
                result.overlaps.append((ri.name, rj.name, kind))
            if kind == OVERLAPS:
                # Two rules answering the same inputs: even per-rule
                # determinism cannot keep the outputs functional.
                overlap = max(overlap, Verdict.MULTI)
            elif kind == POSSIBLE:
                overlap = max(overlap, Verdict.SEMIDET)
    if worst_rule >= Verdict.MULTI or overlap >= Verdict.MULTI:
        return Verdict.MULTI
    if overlap >= Verdict.SEMIDET:
        return Verdict.SEMIDET
    # Disjoint conclusions + deterministic bodies: outputs are a
    # partial function of the inputs.  Loop-free bodies on top of that
    # (no produce steps at all, not even assumed-functional recursive
    # ones) earn the full 'det'.
    return worst_rule if worst_rule == Verdict.DET else Verdict.FUNCTIONAL


def _verdict(
    ctx: Context,
    rel_name: str,
    mode: Mode,
    pending: dict,
    used_pending: set,
) -> Verdict:
    cache = ctx.artifacts.setdefault(DETERMINACY_KEY, {})
    key = (rel_name, str(mode))
    if key in cache:
        return cache[key]
    if key in pending:
        # Coinductive assumption for in-progress relations (recursive
        # and mutually recursive produce premises).
        used_pending.add(key)
        return pending[key]
    pending[key] = Verdict.DET
    used_here: set = set()
    while True:
        used_here.clear()
        v = _compute(ctx, rel_name, mode, pending, used_here)
        if v == pending[key] or key not in used_here:
            break
        pending[key] = v  # assumption raised; re-verify under it
    del pending[key]
    used_pending |= used_here - {key}
    if not (used_here - {key}) or not pending:
        # Safe to memoize: the verdict depended on no *other* relation
        # still being computed under an unsettled assumption.
        cache[key] = v
    return v


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------

def relation_verdict(ctx: Context, rel_name: str, mode: "Mode | str") -> Verdict:
    """The determinacy verdict for ``(rel_name, mode)`` (cached)."""
    rel = ctx.relations.get(rel_name)
    if rel is None:
        return Verdict.MULTI
    mode_obj = mode if isinstance(mode, Mode) else Mode.for_relation(rel, mode)
    return _verdict(ctx, rel_name, mode_obj, {}, set())


def analyze_determinacy(
    ctx: Context, rel_name: str, mode: "Mode | str | None" = None
) -> DetResult:
    """Full determinacy analysis for ``(rel_name, mode)``: the relation
    verdict plus per-rule verdicts, the conclusion-overlap table and
    every produce site (``mode=None`` analyzes the checker mode)."""
    rel = ctx.relations.get(rel_name)
    if rel is None:
        return DetResult(rel_name, str(mode or ""), Verdict.MULTI)
    if mode is None:
        mode_obj = Mode.checker(rel.arity)
    elif isinstance(mode, Mode):
        mode_obj = mode
    else:
        mode_obj = Mode.for_relation(rel, mode)
    result = DetResult(rel_name, str(mode_obj), Verdict.MULTI)
    pending: dict = {}
    # Seed the coinductive assumption for the analyzed pair itself so
    # the instrumented _compute below observes recursion the same way
    # _verdict would, then reconcile with the cached fixpoint verdict.
    result.verdict = _verdict(ctx, rel_name, mode_obj, pending, set())
    pending[(rel_name, str(mode_obj))] = result.verdict
    _compute(ctx, rel_name, mode_obj, pending, set(), result)
    return result
