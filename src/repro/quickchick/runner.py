"""The test runner: QuickChick's main loop, with throughput stats.

``quick_check`` runs a property for a number of tests (or until a
failure), tracking discards and wall-clock time; its report carries
``tests_per_second`` — the metric of the paper's Figure 3 — and
``tests_to_failure`` — the metric of the mutation study (Section 6.2).

Distribution visibility (the Beginner's-Luck concern): properties
labelled with :func:`~repro.quickchick.property.collect` /
``classify`` tally into the report's ``labels``; ``discard_rate``
quantifies precondition waste; and passing a context as ``observe=``
runs the whole loop under :func:`repro.observe.observe`, attaching the
full observation — spans, histograms, and the dynamic rule coverage of
the derived computations the property exercised — to the report.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from .property import DISCARD, FAILED, PASS, Property


@dataclass
class CheckReport:
    property_name: str
    tests_run: int = 0
    discards: int = 0
    failed: bool = False
    counterexample: object = None
    elapsed_seconds: float = 0.0
    gave_up: bool = False
    # Reproduction coordinates: the RNG seed and size this run used.
    seed: int | None = None
    size: int | None = None
    # Label distribution from collect/classify (executed tests only).
    labels: dict = field(default_factory=dict)
    # The repro.observe.Observation when run with observe=ctx.
    observation: object = None

    @property
    def tests_per_second(self) -> float:
        # A sub-resolution elapsed time carries no rate information;
        # 0.0 keeps the metric finite for aggregation (inf poisoned
        # Figure 3 averages on trivial properties).
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.tests_run / self.elapsed_seconds

    @property
    def tests_to_failure(self) -> int | None:
        return self.tests_run if self.failed else None

    @property
    def discard_rate(self) -> float:
        """Discards as a fraction of all generator draws."""
        drawn = self.tests_run + self.discards
        return self.discards / drawn if drawn else 0.0

    @property
    def coverage(self):
        """Dynamic rule coverage of the run (``None`` unless checked
        with ``observe=``)."""
        obs = self.observation
        return obs.coverage() if obs is not None else None

    def _label_lines(self) -> list[str]:
        if not self.labels or not self.tests_run:
            return []
        return [
            f"{100 * n / self.tests_run:5.1f}% {label}"
            for label, n in sorted(
                self.labels.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]

    def __str__(self) -> str:
        if self.failed:
            return (
                f"*** Failed after {self.tests_run} tests and "
                f"{self.discards} discards "
                f"(seed={self.seed}, size={self.size})\n"
                f"{self.counterexample}"
            )
        if self.gave_up:
            return (
                f"*** Gave up after {self.discards} discards "
                f"({self.tests_run} tests)"
            )
        head = (
            f"+++ Passed {self.tests_run} tests "
            f"({self.discards} discards, "
            f"{100 * self.discard_rate:.0f}% discard rate; "
            f"{self.tests_per_second:,.0f} tests/s)"
        )
        return "\n".join([head] + self._label_lines())


def quick_check(
    prop: Property,
    num_tests: int = 1000,
    size: int = 5,
    seed: int | None = None,
    max_discard_ratio: int = 10,
    stop_on_failure: bool = True,
    observe=None,
) -> CheckReport:
    """Run *prop* up to *num_tests* times at the given *size*.

    *observe* is a :class:`~repro.core.context.Context`: the loop then
    runs under :func:`repro.observe.observe` on that context and the
    report carries the resulting observation (``report.observation``,
    ``report.coverage``).  Observation changes throughput, not
    verdicts — seeds replay identically with it on or off.
    """
    if observe is not None:
        from ..observe import observe as _observe

        with _observe(observe) as obs:
            report = quick_check(
                prop,
                num_tests=num_tests,
                size=size,
                seed=seed,
                max_discard_ratio=max_discard_ratio,
                stop_on_failure=stop_on_failure,
            )
        report.observation = obs
        return report
    if seed is None:
        # Draw a concrete seed so a failure is reproducible from the
        # report alone (pass it back in to replay the exact run).
        seed = random.randrange(2**63)
    rng = random.Random(seed)
    report = CheckReport(property_name=prop.name, seed=seed, size=size)
    max_discards = max_discard_ratio * num_tests
    start = time.perf_counter()
    while report.tests_run < num_tests:
        case = prop.run(size, rng)
        if case.status == DISCARD:
            report.discards += 1
            if report.discards > max_discards:
                report.gave_up = True
                break
            continue
        report.tests_run += 1
        for label in case.labels:
            report.labels[label] = report.labels.get(label, 0) + 1
        if case.status == FAILED:
            report.failed = True
            report.counterexample = case.input
            if stop_on_failure:
                break
    report.elapsed_seconds = time.perf_counter() - start
    return report


def expect_failure(
    prop: Property,
    num_tests: int = 10000,
    size: int = 5,
    seed: int | None = None,
) -> CheckReport:
    """Run until the property fails (used by the mutation benches);
    ``gave_up``/non-failure means the mutant escaped."""
    return quick_check(prop, num_tests=num_tests, size=size, seed=seed)
