"""The test runner: QuickChick's main loop, with throughput stats.

``quick_check`` runs a property for a number of tests (or until a
failure), tracking discards and wall-clock time; its report carries
``tests_per_second`` — the metric of the paper's Figure 3 — and
``tests_to_failure`` — the metric of the mutation study (Section 6.2).

Distribution visibility (the Beginner's-Luck concern): properties
labelled with :func:`~repro.quickchick.property.collect` /
``classify`` tally into the report's ``labels``; ``discard_rate``
quantifies precondition waste; and passing a context as ``observe=``
runs the whole loop under :func:`repro.observe.observe`, attaching the
full observation — spans, histograms, and the dynamic rule coverage of
the derived computations the property exercised — to the report.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from .property import DISCARD, FAILED, PASS, Property

# Fallback campaign seeds come from the OS entropy pool, never from
# the process-global ``random`` module: user code calling
# ``random.seed(...)`` (common in test fixtures) would otherwise make
# every "fresh" campaign draw the same seed — silently re-running one
# input distribution while reporting it as independent runs.
_SEED_SOURCE = random.SystemRandom()


@dataclass
class CheckReport:
    property_name: str
    tests_run: int = 0
    discards: int = 0
    failed: bool = False
    counterexample: object = None
    elapsed_seconds: float = 0.0
    gave_up: bool = False
    # Reproduction coordinates: the RNG seed and size this run used.
    seed: int | None = None
    size: int | None = None
    # Label distribution from collect/classify (executed tests only).
    labels: dict = field(default_factory=dict)
    # The repro.observe.Observation when run with observe=ctx.
    observation: object = None
    # Resilience accounting (populated by budgeted runs — see
    # repro.resilience.campaign): why the campaign stopped early
    # (None = ran to its natural end), how many tests tripped their
    # per-test budget, how many budget retries were spent, and the
    # last per-test Exhausted outcome observed.
    stopped_reason: str | None = None
    budget_trips: int = 0
    budget_retries: int = 0
    exhausted: object = None
    # Seeds of the per-shard reports this report was merged from, in
    # shard order (None for a directly-run report).  A merged campaign
    # has no single replay seed; these are its reproduction
    # coordinates instead.
    shard_seeds: list | None = None
    # The repro.observe.Telemetry when run with telemetry=; merged
    # reports carry the shard telemetries folded by merge_telemetry
    # (renumbered event ids, summed histograms).
    telemetry: object = None

    @classmethod
    def merge(cls, reports, property_name: "str | None" = None) -> "CheckReport":
        """Combine per-shard reports of one partitioned campaign.

        Deterministic given the shard order: counts, labels, and
        budget counters sum; ``failed``/``gave_up`` are any-of, with
        the counterexample and its replay coordinates (seed, size)
        taken from the *first* failed shard; ``stopped_reason`` (and
        its ``exhausted`` diagnosis) from the first shard that stopped
        early.  ``elapsed_seconds`` is the max over shards — the
        wall-clock of a parallel run — so ``tests_per_second`` reports
        aggregate parallel throughput.  When every shard carries an
        observation, the merged report carries
        :func:`repro.observe.merge_observations` of them (summed
        coverage and metrics, concatenated span forest).
        """
        reports = list(reports)
        if not reports:
            raise ValueError("CheckReport.merge() needs at least one report")
        merged = cls(
            property_name=property_name or reports[0].property_name,
            size=reports[0].size,
        )
        for r in reports:
            merged.tests_run += r.tests_run
            merged.discards += r.discards
            merged.budget_trips += r.budget_trips
            merged.budget_retries += r.budget_retries
            for label, n in r.labels.items():
                merged.labels[label] = merged.labels.get(label, 0) + n
            if r.elapsed_seconds > merged.elapsed_seconds:
                merged.elapsed_seconds = r.elapsed_seconds
            merged.gave_up = merged.gave_up or r.gave_up
        for r in reports:
            if r.failed:
                merged.failed = True
                merged.counterexample = r.counterexample
                merged.seed = r.seed
                merged.size = r.size
                break
        for r in reports:
            if r.stopped_reason is not None:
                merged.stopped_reason = r.stopped_reason
                merged.exhausted = r.exhausted
                break
        else:
            for r in reports:
                if r.exhausted is not None:
                    merged.exhausted = r.exhausted
        merged.shard_seeds = [r.seed for r in reports]
        observations = [r.observation for r in reports]
        if observations and all(o is not None for o in observations):
            from ..observe.merge import merge_observations

            merged.observation = merge_observations(observations)
        telemetries = [r.telemetry for r in reports]
        if telemetries and all(t is not None for t in telemetries):
            from ..observe.merge import merge_telemetry

            merged.telemetry = merge_telemetry(telemetries)
        return merged

    @property
    def tests_per_second(self) -> float:
        # A sub-resolution elapsed time carries no rate information;
        # 0.0 keeps the metric finite for aggregation (inf poisoned
        # Figure 3 averages on trivial properties).
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.tests_run / self.elapsed_seconds

    @property
    def tests_to_failure(self) -> int | None:
        return self.tests_run if self.failed else None

    @property
    def discard_rate(self) -> float:
        """Discards as a fraction of all generator draws."""
        drawn = self.tests_run + self.discards
        return self.discards / drawn if drawn else 0.0

    @property
    def coverage(self):
        """Dynamic rule coverage of the run (``None`` unless checked
        with ``observe=``)."""
        obs = self.observation
        return obs.coverage() if obs is not None else None

    def _label_lines(self) -> list[str]:
        if not self.labels or not self.tests_run:
            return []
        return [
            f"{100 * n / self.tests_run:5.1f}% {label}"
            for label, n in sorted(
                self.labels.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]

    def _resilience_lines(self) -> list[str]:
        lines = []
        if self.stopped_reason:
            lines.append(f"*** Stopped early: {self.stopped_reason}")
        if self.budget_trips:
            lines.append(
                f"    {self.budget_trips} budget-tripped tests "
                f"({self.budget_retries} retries)"
            )
        if self.exhausted is not None:
            lines.append(str(self.exhausted))
        return lines

    def __str__(self) -> str:
        if self.failed:
            return "\n".join(
                [
                    f"*** Failed after {self.tests_run} tests and "
                    f"{self.discards} discards "
                    f"(seed={self.seed}, size={self.size})\n"
                    f"{self.counterexample}"
                ]
                + self._resilience_lines()
            )
        if self.gave_up:
            # Reproduction coordinates here too: a gave-up run is a
            # distribution problem you debug by replaying it.
            return "\n".join(
                [
                    f"*** Gave up after {self.discards} discards "
                    f"({self.tests_run} tests; "
                    f"seed={self.seed}, size={self.size})"
                ]
                + self._resilience_lines()
            )
        if not self.tests_run:
            # Nothing executed (e.g. a campaign deadline fired before
            # the first test): rendering "+++ Passed 0 tests (0%
            # discard rate)" would read as a clean green run.  Say
            # what happened instead — no percentages, no rate.
            head = (
                f"*** No tests run ({self.discards} discards; "
                f"seed={self.seed}, size={self.size})"
            )
            return "\n".join([head] + self._resilience_lines())
        head = (
            f"+++ Passed {self.tests_run} tests "
            f"({self.discards} discards, "
            f"{100 * self.discard_rate:.0f}% discard rate; "
            f"{self.tests_per_second:,.0f} tests/s)"
        )
        return "\n".join([head] + self._label_lines() + self._resilience_lines())

    def to_dict(self) -> dict:
        """A JSON-ready dict (the JSONL export consumed by
        ``python -m repro.resilience``)."""
        exhausted = self.exhausted
        return {
            "kind": "check_report",
            "property_name": self.property_name,
            "tests_run": self.tests_run,
            "discards": self.discards,
            "failed": self.failed,
            "counterexample": (
                repr(self.counterexample)
                if self.counterexample is not None
                else None
            ),
            "elapsed_seconds": self.elapsed_seconds,
            # Derived metrics are exported pre-computed so consumers
            # never re-derive them with their own (possibly dividing-
            # by-zero) formulas; both are well-defined at tests_run==0.
            "tests_per_second": self.tests_per_second,
            "discard_rate": self.discard_rate,
            "gave_up": self.gave_up,
            "seed": self.seed,
            "size": self.size,
            "labels": dict(self.labels),
            "stopped_reason": self.stopped_reason,
            "shard_seeds": self.shard_seeds,
            "budget_trips": self.budget_trips,
            "budget_retries": self.budget_retries,
            "exhausted": (
                exhausted.as_dict()
                if hasattr(exhausted, "as_dict")
                else exhausted
            ),
        }


def quick_check(
    prop: Property,
    num_tests: int = 1000,
    size: int = 5,
    seed: int | None = None,
    max_discard_ratio: int = 10,
    stop_on_failure: bool = True,
    observe=None,
    deadline_seconds: float | None = None,
    budget=None,
    campaign_deadline_seconds: float | None = None,
    budget_retries: int = 1,
    budget_backoff: float = 2.0,
    ctx=None,
    telemetry=None,
    progress=None,
) -> CheckReport:
    """Run *prop* up to *num_tests* times at the given *size*.

    *observe* is a :class:`~repro.core.context.Context`: the loop then
    runs under :func:`repro.observe.observe` on that context and the
    report carries the resulting observation (``report.observation``,
    ``report.coverage``).  Observation changes throughput, not
    verdicts — seeds replay identically with it on or off.

    *telemetry* is a :class:`~repro.observe.telemetry.Telemetry`: the
    loop then records one per-test event (status + wall time) and a
    ``test.service_seconds.<property>`` latency histogram, and the
    report carries it (``report.telemetry``; merged across shards by
    :meth:`CheckReport.merge`).  *progress* is a callable invoked with
    the live report after every test or discard — the hook parallel
    campaigns use for mid-run shard counters (:class:`~repro.
    resilience.parallel.CampaignProgress`).  Both record, never steer:
    verdicts and seed replay are unchanged.

    Resource governance (see :mod:`repro.resilience.campaign`):
    *deadline_seconds* bounds each individual test (a per-test
    :class:`~repro.resilience.budget.Budget`), or pass a prebuilt
    *budget* as the per-test template; *campaign_deadline_seconds*
    bounds the whole run.  Budget-tripped tests are retried with a
    reseeded draw and an exponentially scaled budget (*budget_retries*
    × *budget_backoff*), then skipped; a circuit breaker aborts the
    campaign on a step-rate blowup, recording
    ``report.stopped_reason``.  *ctx* names the context the budget
    governs (defaults to ``budget.ctx`` or *observe*).  A budget that
    never trips replays seeds identically to an unbudgeted run.
    """
    if deadline_seconds is not None or budget is not None or (
        campaign_deadline_seconds is not None
    ):
        from ..resilience.campaign import run_campaign

        return run_campaign(
            prop,
            num_tests=num_tests,
            size=size,
            seed=seed,
            max_discard_ratio=max_discard_ratio,
            stop_on_failure=stop_on_failure,
            observe=observe,
            deadline_seconds=deadline_seconds,
            budget=budget,
            campaign_deadline_seconds=campaign_deadline_seconds,
            retries=budget_retries,
            backoff=budget_backoff,
            ctx=ctx,
            telemetry=telemetry,
            progress=progress,
        )
    if observe is not None:
        from ..observe import observe as _observe

        with _observe(observe) as obs:
            report = quick_check(
                prop,
                num_tests=num_tests,
                size=size,
                seed=seed,
                max_discard_ratio=max_discard_ratio,
                stop_on_failure=stop_on_failure,
                telemetry=telemetry,
                progress=progress,
            )
        report.observation = obs
        return report
    if seed is None:
        # Draw a concrete seed so a failure is reproducible from the
        # report alone (pass it back in to replay the exact run).
        seed = _SEED_SOURCE.randrange(2**63)
    rng = random.Random(seed)
    report = CheckReport(
        property_name=prop.name, seed=seed, size=size, telemetry=telemetry
    )
    max_discards = max_discard_ratio * num_tests
    start = time.perf_counter()
    while report.tests_run < num_tests:
        if telemetry is not None:
            t0 = time.perf_counter()
            case = prop.run(size, rng)
            dt = time.perf_counter() - t0
            status = (
                "discard" if case.status == DISCARD
                else "failed" if case.status == FAILED
                else "ok"
            )
            telemetry.record_test(prop.name, status, dt)
        else:
            case = prop.run(size, rng)
        if case.status == DISCARD:
            report.discards += 1
            if progress is not None:
                progress(report)
            if report.discards > max_discards:
                report.gave_up = True
                break
            continue
        report.tests_run += 1
        for label in case.labels:
            report.labels[label] = report.labels.get(label, 0) + 1
        if progress is not None:
            progress(report)
        if case.status == FAILED:
            report.failed = True
            report.counterexample = case.input
            if stop_on_failure:
                break
    report.elapsed_seconds = time.perf_counter() - start
    return report


def expect_failure(
    prop: Property,
    num_tests: int = 10000,
    size: int = 5,
    seed: int | None = None,
) -> CheckReport:
    """Run until the property fails (used by the mutation benches);
    ``gave_up``/non-failure means the mutant escaped."""
    return quick_check(prop, num_tests=num_tests, size=size, seed=seed)
