"""Mutation testing harness (Section 6.2's second experiment).

QuickChick's microbenchmark suite injects bugs — into BST insertion,
STLC substitution/lifting, IFC label propagation — and measures the
*mean number of tests to failure* for different generators.  The paper
reports that handwritten and derived generators are indistinguishable
on this metric.

A :class:`Mutant` names a buggy variant of an operation; case-study
modules build their properties parameterized by the operation, so a
mutant is applied simply by passing its implementation.  The harness
runs each (generator × mutant) cell several times with different seeds
and reports mean tests-to-failure.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Any, Callable

from .property import Property
from .runner import expect_failure


@dataclass(frozen=True)
class Mutant:
    """A named buggy implementation of an operation."""

    name: str
    description: str
    impl: Callable[..., Any]


@dataclass
class MutationCell:
    """Results for one (generator, mutant) pair."""

    generator: str
    mutant: str
    tests_to_failure: list[int]
    escaped: int  # runs where the mutant was not caught

    @property
    def mean(self) -> float | None:
        if not self.tests_to_failure:
            return None
        return statistics.mean(self.tests_to_failure)

    @property
    def median(self) -> float | None:
        if not self.tests_to_failure:
            return None
        return statistics.median(self.tests_to_failure)

    def __str__(self) -> str:
        if self.mean is None:
            return f"{self.generator} vs {self.mutant}: never caught"
        note = f" ({self.escaped} escapes)" if self.escaped else ""
        return (
            f"{self.generator} vs {self.mutant}: mean {self.mean:.1f} "
            f"median {self.median:.1f} tests to failure{note}"
        )


def mean_tests_to_failure(
    make_property: Callable[[Mutant], Property],
    mutants: list[Mutant],
    generator_name: str,
    runs: int = 10,
    num_tests: int = 20000,
    size: int = 5,
    seed: int = 0,
) -> list[MutationCell]:
    """Run each mutant *runs* times; collect tests-to-failure."""
    cells: list[MutationCell] = []
    for mutant in mutants:
        failures: list[int] = []
        escaped = 0
        for run in range(runs):
            prop = make_property(mutant)
            report = expect_failure(
                prop, num_tests=num_tests, size=size, seed=seed + 7919 * run
            )
            if report.failed:
                failures.append(report.tests_run)
            else:
                escaped += 1
        cells.append(
            MutationCell(generator_name, mutant.name, failures, escaped)
        )
    return cells
