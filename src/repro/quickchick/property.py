"""Properties: the testable units of the QuickChick-style runner.

A property is a function from a size and an RNG to a single
:class:`TestCase` outcome: pass, fail (with a counterexample), or
discard (the generator failed to produce an input, or a precondition
was not met).  ``for_all`` builds one from a generator and a predicate;
predicates may return ``bool``, :class:`OptionBool` (``None`` counts as
a discard), or ``None`` (discard).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable

from ..producers.option_bool import OptionBool
from ..producers.outcome import FAIL, OUT_OF_FUEL, is_value

PASS = "pass"
FAILED = "fail"
DISCARD = "discard"


@dataclass
class TestCase:
    # Not a pytest test class, despite the name (silences pytest's
    # collection warning when this module is imported from tests).
    __test__ = False

    status: str
    input: Any = None
    detail: str = ""
    # Labels attached by collect/classify; the runner tallies them
    # into the report's label distribution.
    labels: tuple = ()


class Property:
    """A named, runnable property."""

    def __init__(
        self, run: Callable[[int, random.Random], TestCase], name: str = "property"
    ) -> None:
        self._run = run
        self.name = name

    def run(self, size: int, rng: random.Random) -> TestCase:
        return self._run(size, rng)


def _judge(verdict: Any, value: Any) -> TestCase:
    if verdict is None:
        return TestCase(DISCARD, value)
    if isinstance(verdict, OptionBool):
        if verdict.is_true:
            return TestCase(PASS, value)
        if verdict.is_false:
            return TestCase(FAILED, value)
        return TestCase(DISCARD, value, "checker out of fuel")
    if isinstance(verdict, TestCase):
        return verdict
    if isinstance(verdict, bool):
        return TestCase(PASS if verdict else FAILED, value)
    raise TypeError(f"property returned {verdict!r}; expected bool/OptionBool")


def for_all(
    gen: Callable[[int, random.Random], Any],
    predicate: Callable[[Any], Any],
    name: str = "property",
) -> Property:
    """∀ x drawn from *gen*, *predicate* x.

    *gen* follows the producer convention: it may return ``FAIL`` or
    ``OUT_OF_FUEL``, which count as discards.
    """

    def run(size: int, rng: random.Random) -> TestCase:
        value = gen(size, rng)
        if not is_value(value):
            return TestCase(
                DISCARD,
                None,
                "generator fuel exhausted" if value is OUT_OF_FUEL else "generator failed",
            )
        return _judge(predicate(value), value)

    return Property(run, name)


def implies(precondition: Callable[[Any], bool], predicate: Callable[[Any], Any]):
    """QuickCheck's ``==>``: discard inputs failing the precondition."""

    def judged(value: Any) -> Any:
        if not precondition(value):
            return None
        return predicate(value)

    return judged


def collect(label_of: Any, predicate: Callable[[Any], Any]):
    """QuickChick's ``collect``: label every executed test case.

    *label_of* is a function of the generated value (e.g. its size) or
    a constant; the resulting labels are tallied into the report's
    distribution — the tool for spotting the skew the derived
    generators are supposed to avoid.  Nests freely with ``classify``
    and ``implies``; discards keep their labels out of the tally (the
    runner only counts executed tests).
    """

    def judged(value: Any) -> TestCase:
        case = _judge(predicate(value), value)
        label = label_of(value) if callable(label_of) else label_of
        case.labels = case.labels + (str(label),)
        return case

    return judged


def classify(
    condition: Callable[[Any], bool], label: str, predicate: Callable[[Any], Any]
):
    """QuickChick's ``classify``: label the cases where *condition*
    holds (``collect`` with a predicate instead of a projection)."""

    def judged(value: Any) -> TestCase:
        case = _judge(predicate(value), value)
        if condition(value):
            case.labels = case.labels + (str(label),)
        return case

    return judged
