"""QuickChick-style property-based testing substrate."""

from .mutation import MutationCell, Mutant, mean_tests_to_failure
from .property import (
    DISCARD,
    FAILED,
    PASS,
    Property,
    TestCase,
    classify,
    collect,
    for_all,
    implies,
)
from .runner import CheckReport, expect_failure, quick_check

__all__ = [
    "CheckReport",
    "DISCARD",
    "FAILED",
    "Mutant",
    "MutationCell",
    "PASS",
    "Property",
    "TestCase",
    "classify",
    "collect",
    "expect_failure",
    "for_all",
    "implies",
    "mean_tests_to_failure",
    "quick_check",
]
