"""Random generators: the randomized producers (Section 4).

The paper's type is::

    Inductive G A := MkGen : (nat -> Rand -> A) -> G A.

A :class:`Generator` wraps a function from a size and an RNG to a
single outcome: a proper value, :data:`FAIL` (``failG``), or
:data:`OUT_OF_FUEL` (``fuelG``).  Monadic structure mirrors the
enumerators exactly — the derivation engine swaps one for the other
without touching the schedule (Section 4, "Sequencing computations,
generically").

Randomness is explicit: every run takes a :class:`random.Random`, and
all entry points accept seeds, so generation is reproducible.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterator, Sequence

from .outcome import FAIL, OUT_OF_FUEL, is_value


class Generator:
    """A sized random producer of values."""

    __slots__ = ("_run",)

    def __init__(self, run: Callable[[int, random.Random], Any]) -> None:
        self._run = run

    def run(self, size: int, rng: random.Random) -> Any:
        return self._run(size, rng)

    # -- consumers -------------------------------------------------------------

    def sample(
        self, size: int, count: int, seed: int | None = None
    ) -> list[Any]:
        """Draw *count* outcomes (values and markers) at *size*."""
        rng = random.Random(seed)
        return [self.run(size, rng) for _ in range(count)]

    def sample_values(
        self, size: int, count: int, seed: int | None = None
    ) -> list[Any]:
        """Draw until *count* proper values were produced (markers are
        discarded); gives up after ``20 * count`` attempts."""
        rng = random.Random(seed)
        out: list[Any] = []
        attempts = 0
        limit = 20 * count
        while len(out) < count and attempts < limit:
            attempts += 1
            x = self.run(size, rng)
            if is_value(x):
                out.append(x)
        return out

    def outcomes(self, size: int, samples: int, seed: int | None = None) -> set[Any]:
        """Sampled approximation of the set-of-outcomes semantics."""
        return {x for x in self.sample(size, samples, seed) if is_value(x)}

    # -- monadic interface ---------------------------------------------------------

    @staticmethod
    def ret(value: Any) -> "Generator":
        return Generator(lambda _size, _rng: value)

    @staticmethod
    def fail() -> "Generator":
        return Generator(lambda _size, _rng: FAIL)

    @staticmethod
    def fuel() -> "Generator":
        return Generator(lambda _size, _rng: OUT_OF_FUEL)

    def bind(self, k: Callable[[Any], "Generator"]) -> "Generator":
        def run(size: int, rng: random.Random) -> Any:
            x = self.run(size, rng)
            if not is_value(x):
                return x
            return k(x).run(size, rng)

        return Generator(run)

    def map(self, f: Callable[[Any], Any]) -> "Generator":
        def run(size: int, rng: random.Random) -> Any:
            x = self.run(size, rng)
            return f(x) if is_value(x) else x

        return Generator(run)

    def guard(self, keep: Callable[[Any], bool]) -> "Generator":
        def run(size: int, rng: random.Random) -> Any:
            x = self.run(size, rng)
            if is_value(x) and not keep(x):
                return FAIL
            return x

        return Generator(run)

    def resize(self, new_size: int) -> "Generator":
        return Generator(lambda _size, rng: self.run(new_size, rng))

    def retry(self, attempts: int) -> "Generator":
        """Re-run on FAIL up to *attempts* times (fuel is not retried:
        it signals a size problem, not bad luck)."""

        def run(size: int, rng: random.Random) -> Any:
            for _ in range(attempts):
                x = self.run(size, rng)
                if x is not FAIL:
                    return x
            return FAIL

        return Generator(run)


# ---------------------------------------------------------------------------
# Choice combinators.
# ---------------------------------------------------------------------------

def oneof(options: Sequence[Callable[[], Generator]]) -> Generator:
    """Uniform choice among thunked generators (no backtracking)."""
    if not options:
        return Generator.fail()

    def run(size: int, rng: random.Random) -> Any:
        return options[rng.randrange(len(options))]().run(size, rng)

    return Generator(run)


def frequency(weighted: Sequence[tuple[int, Callable[[], Generator]]]) -> Generator:
    """Weighted choice among thunked generators (no backtracking)."""
    live = [(w, g) for (w, g) in weighted if w > 0]
    if not live:
        return Generator.fail()
    total = sum(w for w, _ in live)

    def run(size: int, rng: random.Random) -> Any:
        pick = rng.randrange(total)
        for w, g in live:
            if pick < w:
                return g().run(size, rng)
            pick -= w
        raise AssertionError("unreachable")

    return Generator(run)


def backtrack(
    weighted: Sequence[tuple[int, Callable[[], Generator]]],
    retries_per_option: int = 1,
) -> Generator:
    """QuickChick's ``backtrack``: weighted choice with backtracking.

    Repeatedly picks an option by weight and runs it; on :data:`FAIL`
    or :data:`OUT_OF_FUEL` the option is discarded (after
    *retries_per_option* runs) and another is tried.  Returns the first
    proper value; if every option is exhausted, returns
    :data:`OUT_OF_FUEL` when any discarded option signalled fuel
    exhaustion and :data:`FAIL` otherwise — the G-side analogue of the
    ``backtracking`` checker combinator's ``None``/``Some false``
    distinction.
    """

    def run(size: int, rng: random.Random) -> Any:
        remaining = [
            [w, g, retries_per_option] for (w, g) in weighted if w > 0
        ]
        saw_fuel = False
        while remaining:
            total = sum(entry[0] for entry in remaining)
            pick = rng.randrange(total)
            chosen = None
            for entry in remaining:
                if pick < entry[0]:
                    chosen = entry
                    break
                pick -= entry[0]
            assert chosen is not None
            x = chosen[1]().run(size, rng)
            if is_value(x):
                return x
            if x is OUT_OF_FUEL:
                saw_fuel = True
            chosen[2] -= 1
            if chosen[2] <= 0:
                remaining.remove(chosen)
        return OUT_OF_FUEL if saw_fuel else FAIL

    return Generator(run)


def choose_nat(lo: int, hi: int) -> Generator:
    """Uniform Python-int choice in ``[lo, hi]`` (helper for
    handwritten generators)."""

    def run(_size: int, rng: random.Random) -> Any:
        return rng.randint(lo, hi)

    return Generator(run)


def sized(make: Callable[[int], Generator]) -> Generator:
    return Generator(lambda size, rng: make(size).run(size, rng))
