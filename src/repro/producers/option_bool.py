"""Three-valued checker results: ``option bool`` (Section 2).

A derived checker returns one of three values:

* :data:`SOME_TRUE` — the relation definitely holds;
* :data:`SOME_FALSE` — the relation definitely does not hold;
* :data:`NONE_OB` — out of fuel; a larger size parameter is needed.

This module also provides the paper's combinators on that type: the
optional conjunction ``.&&`` (:func:`and_then`), negation ``~``
(:func:`negate`), and the :func:`backtracking` combinator used to try
each constructor handler in turn.
"""

from __future__ import annotations

from typing import Callable, Iterable


class OptionBool:
    """One of the three checker outcomes; use the module singletons."""

    __slots__ = ("_tag",)
    _instances: dict[str, "OptionBool"] = {}

    def __new__(cls, tag: str) -> "OptionBool":
        existing = cls._instances.get(tag)
        if existing is not None:
            return existing
        obj = super().__new__(cls)
        obj._tag = tag
        cls._instances[tag] = obj
        return obj

    @property
    def tag(self) -> str:
        return self._tag

    @property
    def is_true(self) -> bool:
        return self._tag == "some_true"

    @property
    def is_false(self) -> bool:
        return self._tag == "some_false"

    @property
    def is_none(self) -> bool:
        return self._tag == "none"

    def __repr__(self) -> str:
        return {
            "some_true": "Some true",
            "some_false": "Some false",
            "none": "None",
        }[self._tag]

    def __bool__(self) -> bool:
        raise TypeError(
            "OptionBool is three-valued; use .is_true / .is_false / .is_none"
        )


SOME_TRUE = OptionBool("some_true")
SOME_FALSE = OptionBool("some_false")
NONE_OB = OptionBool("none")


def from_bool(b: bool) -> OptionBool:
    return SOME_TRUE if b else SOME_FALSE


def and_then(a: OptionBool, b: Callable[[], OptionBool]) -> OptionBool:
    """The paper's ``.&&``:  short-circuiting optional conjunction.

        a .&& b = match a with
                  | Some false => Some false
                  | None       => None
                  | Some true  => b
    """
    if a.is_false:
        return SOME_FALSE
    if a.is_none:
        return NONE_OB
    return b()


def negate(a: OptionBool) -> OptionBool:
    """The paper's ``~``: swaps the definite answers, keeps ``None``."""
    if a.is_true:
        return SOME_FALSE
    if a.is_false:
        return SOME_TRUE
    return NONE_OB


def backtracking(options: Iterable[Callable[[], OptionBool]]) -> OptionBool:
    """Try thunked checker options in order (Section 2 / Algorithm 1).

    Specification (Section 5.2): returns ``Some true`` iff some option
    does; ``Some false`` iff all options do; ``None`` otherwise.
    Options are thunked to avoid unnecessary evaluation, and evaluation
    stops at the first ``Some true``.
    """
    saw_none = False
    for option in options:
        result = option()
        if result.is_true:
            return SOME_TRUE
        if result.is_none:
            saw_none = True
    return NONE_OB if saw_none else SOME_FALSE
