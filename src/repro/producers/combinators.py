"""Cross-monad combinators and unconstrained datatype producers.

Two ingredients of Section 4 live here:

1. **Mixed binds** — sequencing computations in different monads:
   ``bind_EC`` runs a checker continuation over an enumeration (used
   when a checker needs an existential witness), ``bind_CE`` /
   ``bind_CG`` guard a producer with a checker result (used when a
   producer premise is fully instantiated).

2. **Unconstrained producers** — for any declared first-order datatype,
   a generic sized enumerator and random generator of *arbitrary*
   inhabitants (QuickChick's ``Enum``/``Gen`` typeclass instances,
   derived from the datatype declaration).  These instantiate
   existential variables whose values no premise constrains.

Size discipline: a value produced at size ``s`` has constructor depth
at most ``s + 1``; both producers emit :data:`OUT_OF_FUEL` when the
size-``s`` slice of the type is not exhaustive, which is what keeps
derived checkers from turning an incomplete search into a definitive
``Some false``.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable, Iterator

from ..core.context import Context
from ..core.datatypes import DataType
from ..core.errors import DeclarationError
from ..core.types import Ty, TypeExpr, TyVar
from ..core.values import Value
from .enumerators import Enumerator
from .generators import Generator
from .option_bool import NONE_OB, SOME_FALSE, SOME_TRUE, OptionBool
from .outcome import FAIL, OUT_OF_FUEL, is_value

# ---------------------------------------------------------------------------
# Mixed binds.
# ---------------------------------------------------------------------------

def bind_EC(
    items: "Iterable[Any]",
    k: Callable[[Any], OptionBool],
) -> OptionBool:
    """``bindEC : E (option A) -> (A -> option bool) -> option bool``.

    Iterate an enumeration (an iterable of values and ``OUT_OF_FUEL``
    markers — e.g. ``enum.run(size)``); return ``Some true`` on the
    first witness accepted by *k*.  If the enumeration finished with no
    witness, return ``Some false`` only when the search was complete
    (no fuel marker seen and no continuation answered ``None``);
    otherwise ``None``.
    """
    incomplete = False
    for x in items:
        if not is_value(x):
            incomplete = True
            continue
        result = k(x)
        if result.is_true:
            return SOME_TRUE
        if result.is_none:
            incomplete = True
    return NONE_OB if incomplete else SOME_FALSE


def bind_CE(ob: OptionBool, k: Callable[[], Enumerator]) -> Enumerator:
    """``bindCE``: guard an enumerator with a checker result."""
    if ob.is_true:
        return k()
    if ob.is_false:
        return Enumerator.fail()
    return Enumerator.fuel()


def bind_CG(ob: OptionBool, k: Callable[[], Generator]) -> Generator:
    """``bindCG``: guard a generator with a checker result."""
    if ob.is_true:
        return k()
    if ob.is_false:
        return Generator.fail()
    return Generator.fuel()


# ---------------------------------------------------------------------------
# Unconstrained datatype producers.
# ---------------------------------------------------------------------------

def _require_datatype(ctx: Context, ty: TypeExpr) -> tuple[DataType, tuple[TypeExpr, ...]]:
    if isinstance(ty, TyVar):
        raise DeclarationError(f"cannot produce values of open type {ty}")
    dt = ctx.datatypes.get(ty.name)
    if len(ty.args) != len(dt.params):
        raise DeclarationError(f"type {ty} applies {dt.name!r} at wrong arity")
    return dt, ty.args


def slice_exhaustive(ctx: Context, ty: TypeExpr, size: int) -> bool:
    """True when the depth-bounded slice of *ty* at *size* contains
    every inhabitant of *ty*."""
    return _slice_exhaustive(ctx, ty, size, frozenset())


def _slice_exhaustive(
    ctx: Context, ty: TypeExpr, size: int, visiting: frozenset
) -> bool:
    dt, ty_args = _require_datatype(ctx, ty)
    key = (ty, size)
    cache = ctx.artifacts.setdefault("slice_exhaustive", {})
    if key in cache:
        return cache[key]
    if ty in visiting:
        # Recursive type: no finite depth exhausts it.
        cache[key] = False
        return False
    visiting = visiting | {ty}
    result = True
    for ctor in dt.constructors:
        arg_tys = dt.constructor_arg_types(ctor.name, ty_args)
        if size == 0 and arg_tys:
            result = False
            break
        if any(
            not _slice_exhaustive(ctx, at, size - 1, visiting) for at in arg_tys
        ):
            result = False
            break
    cache[key] = result
    return result


def enum_datatype(ctx: Context, ty: TypeExpr) -> Enumerator:
    """Sized exhaustive enumerator of the inhabitants of *ty*.

    At size ``s`` it yields every value of depth at most ``s + 1``
    (nullary constructors at every size, other constructors only when
    ``s > 0``, arguments at size ``s - 1``), followed by a single
    ``OUT_OF_FUEL`` marker when the slice is not exhaustive.
    """
    dt, ty_args = _require_datatype(ctx, ty)

    def run(size: int) -> Iterator[Any]:
        yield from _enum_values(ctx, ty, size)
        if not slice_exhaustive(ctx, ty, size):
            yield OUT_OF_FUEL

    return Enumerator(run)


def _enum_values(ctx: Context, ty: TypeExpr, size: int) -> Iterator[Value]:
    dt, ty_args = _require_datatype(ctx, ty)
    for ctor in dt.constructors:
        arg_tys = dt.constructor_arg_types(ctor.name, ty_args)
        if not arg_tys:
            yield Value(ctor.name)
            continue
        if size == 0:
            continue
        yield from (
            Value(ctor.name, args)
            for args in _enum_products(ctx, arg_tys, size - 1)
        )


def _enum_products(
    ctx: Context, arg_tys: tuple[TypeExpr, ...], size: int
) -> Iterator[tuple[Value, ...]]:
    if not arg_tys:
        yield ()
        return
    head_ty, rest = arg_tys[0], arg_tys[1:]
    for head in _enum_values(ctx, head_ty, size):
        for tail in _enum_products(ctx, rest, size):
            yield (head, *tail)


def gen_datatype(ctx: Context, ty: TypeExpr) -> Generator:
    """Sized random generator of inhabitants of *ty*.

    Mirrors QuickChick's derived ``GenSized``: at size 0 only nullary
    constructors are candidates; otherwise all constructors, with
    arguments generated at size − 1.  Returns ``OUT_OF_FUEL`` when no
    constructor is available at this size (but the type is inhabited
    at larger sizes), and ``FAIL`` for genuinely empty types.
    """
    dt, ty_args = _require_datatype(ctx, ty)

    def run(size: int, rng: random.Random) -> Any:
        return _gen_value(ctx, ty, size, rng)

    return Generator(run)


def _gen_value(ctx: Context, ty: TypeExpr, size: int, rng: random.Random) -> Any:
    dt, ty_args = _require_datatype(ctx, ty)
    if size == 0:
        candidates = [c for c in dt.constructors if not c.arg_types]
    else:
        candidates = list(dt.constructors)
    if not candidates:
        return OUT_OF_FUEL if dt.constructors else FAIL
    # Retry within the candidate set: an inner OUT_OF_FUEL (an argument
    # type with no small inhabitants) discards that constructor.
    options = list(candidates)
    saw_fuel = False
    while options:
        ctor = options[rng.randrange(len(options))]
        arg_tys = dt.constructor_arg_types(ctor.name, ty_args)
        args = []
        failed = False
        for at in arg_tys:
            sub = _gen_value(ctx, at, size - 1, rng)
            if not is_value(sub):
                saw_fuel = saw_fuel or sub is OUT_OF_FUEL
                failed = True
                break
            args.append(sub)
        if not failed:
            return Value(ctor.name, tuple(args))
        options.remove(ctor)
    return OUT_OF_FUEL if saw_fuel else FAIL
