"""Set-of-outcomes semantics for producers (Section 5.1).

The paper reasons about producers *possibilistically*: ``[prod]_s`` is
the set of values a producer can yield at size ``s``, and
``[prod] = ⋃_s [prod]_s``.  Enumerator outcome sets are computed
exactly; generator outcome sets are approximated by sampling.  The
helpers here state the producer laws as reusable predicates — the
validation layer and the property-based tests both use them.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable

from .enumerators import Enumerator
from .generators import Generator
from .outcome import OUT_OF_FUEL, is_value


def enum_outcomes(enum: Enumerator, size: int) -> set[Any]:
    """``[e]_size`` for an enumerator: exact."""
    return enum.outcomes(size)


def enum_outcomes_upto(enum: Enumerator, max_size: int) -> set[Any]:
    """``⋃_{s ≤ max} [e]_s`` — the bounded unrolling of ``[e]``."""
    out: set[Any] = set()
    for s in range(max_size + 1):
        out |= enum.outcomes(s)
    return out


def gen_outcomes(
    gen: Generator, size: int, samples: int = 500, seed: int | None = 0
) -> set[Any]:
    """Sampled approximation of ``[g]_size`` for a generator."""
    rng = random.Random(seed)
    return {x for x in (gen.run(size, rng) for _ in range(samples)) if is_value(x)}


def size_monotonic(
    enum: Enumerator, sizes: Iterable[int]
) -> tuple[bool, tuple[int, int] | None]:
    """Check ``s1 ≤ s2 → [e]_s1 ⊆ [e]_s2`` along the given size chain;
    returns (ok, offending pair)."""
    previous: set[Any] | None = None
    previous_size: int | None = None
    for s in sorted(sizes):
        current = enum.outcomes(s)
        if previous is not None and not previous <= current:
            return False, (previous_size, s)  # type: ignore[return-value]
        previous, previous_size = current, s
    return True, None


def sound_for(
    enum: Enumerator, size: int, holds: Callable[[Any], bool]
) -> list[Any]:
    """Values in ``[e]_size`` violating *holds* (empty = sound)."""
    return [x for x in enum.outcomes(size) if not holds(x)]


def complete_for(
    enum: Enumerator, size: int, witnesses: Iterable[Any]
) -> list[Any]:
    """Witnesses missing from ``[e]_size`` (meaningful when the
    enumeration at *size* is exhaustive — no fuel marker)."""
    outcomes = enum.outcomes(size)
    return [w for w in witnesses if w not in outcomes]


def gen_within_enum(
    gen: Generator,
    enum: Enumerator,
    size: int,
    samples: int = 300,
    seed: int | None = 0,
) -> list[Any]:
    """Generator/enumerator coherence: sampled generator outcomes that
    the enumerator cannot produce at the same size (empty = coherent).
    Derived producers share one schedule, so this should always be
    empty — it is the cross-backend law the paper's unification
    implies."""
    allowed = enum.outcomes(size)
    return [x for x in gen_outcomes(gen, size, samples, seed) if x not in allowed]
