"""Memoized lazy lists.

The paper's enumerator type ``E A`` wraps ``nat -> List A`` where the
list is *lazy*: only the prefix a consumer demands is computed, and a
shared stream is computed at most once.  This module implements such
streams; ``repro.producers.enumerators`` builds on them.

The implementation is a classic thunk/cons design: a :class:`LazyList`
is either known-empty, a known cons cell, or a suspended computation
that is forced (and cached) on first access.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterable, Iterator, TypeVar

A = TypeVar("A")
B = TypeVar("B")


class LazyList(Generic[A]):
    """A memoized lazy list of ``A``."""

    __slots__ = ("_thunk", "_forced", "_head", "_tail", "_empty")

    def __init__(self, thunk: Callable[[], "tuple[A, LazyList[A]] | None"]) -> None:
        self._thunk = thunk
        self._forced = False
        self._head: A | None = None
        self._tail: LazyList[A] | None = None
        self._empty = False

    # -- construction ---------------------------------------------------------

    @staticmethod
    def empty() -> "LazyList[A]":
        cell: LazyList[A] = LazyList(lambda: None)
        cell._forced = True
        cell._empty = True
        return cell

    @staticmethod
    def cons(head: A, tail: "LazyList[A]") -> "LazyList[A]":
        cell: LazyList[A] = LazyList(lambda: None)
        cell._forced = True
        cell._head = head
        cell._tail = tail
        return cell

    @staticmethod
    def singleton(value: A) -> "LazyList[A]":
        return LazyList.cons(value, LazyList.empty())

    @staticmethod
    def from_iterable(items: Iterable[A]) -> "LazyList[A]":
        """Wrap an iterable lazily.  The iterable is consumed on demand
        and the results are memoized, so one-shot iterators are safe."""
        iterator = iter(items)

        def suspend() -> "LazyList[A]":
            def force() -> tuple[A, LazyList[A]] | None:
                try:
                    value = next(iterator)
                except StopIteration:
                    return None
                return value, suspend()

            return LazyList(force)

        return suspend()

    @staticmethod
    def defer(make: Callable[[], "LazyList[A]"]) -> "LazyList[A]":
        """Suspend the *construction* of a lazy list."""

        def force() -> tuple[A, LazyList[A]] | None:
            inner = make()
            if inner.is_empty():
                return None
            return inner.head(), inner.tail()

        return LazyList(force)

    # -- forcing ---------------------------------------------------------------

    def _force(self) -> None:
        if self._forced:
            return
        result = self._thunk()
        self._forced = True
        self._thunk = lambda: None  # drop the closure for gc
        if result is None:
            self._empty = True
        else:
            self._head, self._tail = result

    def is_empty(self) -> bool:
        self._force()
        return self._empty

    def head(self) -> A:
        self._force()
        if self._empty:
            raise IndexError("head of empty LazyList")
        return self._head  # type: ignore[return-value]

    def tail(self) -> "LazyList[A]":
        self._force()
        if self._empty:
            raise IndexError("tail of empty LazyList")
        assert self._tail is not None
        return self._tail

    # -- consumers ---------------------------------------------------------------

    def __iter__(self) -> Iterator[A]:
        node = self
        while not node.is_empty():
            yield node.head()
            node = node.tail()

    def take(self, n: int) -> list[A]:
        out: list[A] = []
        node = self
        while n > 0 and not node.is_empty():
            out.append(node.head())
            node = node.tail()
            n -= 1
        return out

    def to_list(self) -> list[A]:
        return list(self)

    # -- combinators ---------------------------------------------------------------

    def append(self, other: "LazyList[A]") -> "LazyList[A]":
        def force() -> tuple[A, LazyList[A]] | None:
            if self.is_empty():
                if other.is_empty():
                    return None
                return other.head(), other.tail()
            return self.head(), self.tail().append(other)

        return LazyList(force)

    def map(self, f: Callable[[A], B]) -> "LazyList[B]":
        def force() -> tuple[B, LazyList[B]] | None:
            if self.is_empty():
                return None
            return f(self.head()), self.tail().map(f)

        return LazyList(force)

    def filter(self, keep: Callable[[A], bool]) -> "LazyList[A]":
        def force() -> tuple[A, LazyList[A]] | None:
            node = self
            while not node.is_empty():
                if keep(node.head()):
                    return node.head(), node.tail().filter(keep)
                node = node.tail()
            return None

        return LazyList(force)

    def interleave(self, other: "LazyList[A]") -> "LazyList[A]":
        """Fair merge: alternate elements (New et al.'s fair
        enumeration, used by the fair-enumeration extension)."""

        def force() -> tuple[A, LazyList[A]] | None:
            if self.is_empty():
                if other.is_empty():
                    return None
                return other.head(), other.tail()
            return self.head(), other.interleave(self.tail())

        return LazyList(force)

    @staticmethod
    def concat(lists: "list[LazyList[A]]") -> "LazyList[A]":
        acc = LazyList.empty()
        for ll in reversed(lists):
            acc = ll.append(acc)
        return acc
