"""Enumerators: the deterministic producers (Section 4).

The paper's type is::

    Inductive E A := MkEnum : (nat -> List A) -> E A.

i.e. an enumerator maps a size to a lazy list of results.  Here an
:class:`Enumerator` wraps a function from a size to a fresh *iterator*
whose elements are either proper values or the :data:`OUT_OF_FUEL`
marker (the ``fuelE`` outcome).  ``failE`` is the empty enumeration.

Iterators are created fresh on every :meth:`run`, so enumerators are
re-runnable; :meth:`lazy` returns a memoized :class:`LazyList` when
sharing matters.

The monadic operations follow the paper's conventions:

* ``ret x``   — singleton enumeration;
* ``bind m k`` — for each value ``x`` of ``m``, all results of
  ``k(x)``; ``OUT_OF_FUEL`` elements propagate;
* ``failE``   — empty;
* ``fuelE``   — the single-element ``OUT_OF_FUEL`` enumeration.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from .lazylist import LazyList
from .outcome import FAIL, OUT_OF_FUEL, is_value


class Enumerator:
    """A sized, re-runnable enumeration of values."""

    __slots__ = ("_run",)

    def __init__(self, run: Callable[[int], Iterator[Any]]) -> None:
        self._run = run

    def run(self, size: int) -> Iterator[Any]:
        """A fresh iterator of the results at *size* (values and
        ``OUT_OF_FUEL`` markers)."""
        return self._run(size)

    def lazy(self, size: int) -> LazyList:
        return LazyList.from_iterable(self.run(size))

    # -- consumers -------------------------------------------------------------

    def values(self, size: int) -> Iterator[Any]:
        """Only the proper values at *size* (fuel markers skipped)."""
        return (x for x in self.run(size) if is_value(x))

    def outcomes(self, size: int) -> set[Any]:
        """The set-of-outcomes semantics ``[e]_size`` (Section 5.1):
        the set of values the enumerator can produce at *size*."""
        return set(self.values(size))

    def complete_at(self, size: int) -> bool:
        """True when no ``OUT_OF_FUEL`` marker appears at *size* — the
        enumeration is known to be exhaustive for this size."""
        return all(is_value(x) for x in self.run(size))

    def first_value(self, size: int) -> Any:
        """The first proper value, or ``OUT_OF_FUEL`` if the
        enumeration contains a fuel marker but no value, or ``FAIL``
        if it is definitively empty."""
        saw_fuel = False
        for x in self.run(size):
            if is_value(x):
                return x
            saw_fuel = True
        return OUT_OF_FUEL if saw_fuel else FAIL

    # -- monadic interface ---------------------------------------------------------

    @staticmethod
    def ret(value: Any) -> "Enumerator":
        return Enumerator(lambda _size: iter((value,)))

    @staticmethod
    def fail() -> "Enumerator":
        return Enumerator(lambda _size: iter(()))

    @staticmethod
    def fuel() -> "Enumerator":
        return Enumerator(lambda _size: iter((OUT_OF_FUEL,)))

    def bind(self, k: Callable[[Any], "Enumerator"]) -> "Enumerator":
        def run(size: int) -> Iterator[Any]:
            for x in self.run(size):
                if not is_value(x):
                    yield x
                    continue
                yield from k(x).run(size)

        return Enumerator(run)

    def map(self, f: Callable[[Any], Any]) -> "Enumerator":
        def run(size: int) -> Iterator[Any]:
            for x in self.run(size):
                yield f(x) if is_value(x) else x

        return Enumerator(run)

    def guard(self, keep: Callable[[Any], bool]) -> "Enumerator":
        """Keep only values satisfying *keep* (fuel markers pass)."""

        def run(size: int) -> Iterator[Any]:
            for x in self.run(size):
                if not is_value(x) or keep(x):
                    yield x

        return Enumerator(run)

    # -- structure ------------------------------------------------------------------

    @staticmethod
    def from_values(values: Sequence[Any]) -> "Enumerator":
        items = tuple(values)
        return Enumerator(lambda _size: iter(items))

    @staticmethod
    def from_sized(make: Callable[[int], Iterable[Any]]) -> "Enumerator":
        return Enumerator(lambda size: iter(make(size)))

    def resize(self, new_size: int) -> "Enumerator":
        return Enumerator(lambda _size: self.run(new_size))

    def with_size(self, adjust: Callable[[int], int]) -> "Enumerator":
        return Enumerator(lambda size: self.run(adjust(size)))


def enumerating(options: Sequence[Callable[[], Enumerator]]) -> Enumerator:
    """The paper's ``enumerating`` combinator: concatenate the results
    of all (thunked) options, in order.  The E-side analogue of the
    checker's ``backtracking``."""

    def run(size: int) -> Iterator[Any]:
        for option in options:
            yield from option().run(size)

    return Enumerator(run)


def interleaving(options: Sequence[Callable[[], Enumerator]]) -> Enumerator:
    """Fair variant of :func:`enumerating` (round-robin across the
    options) — the "fair enumeration combinators" extension."""

    def run(size: int) -> Iterator[Any]:
        iterators = [option().run(size) for option in options]
        while iterators:
            still_live = []
            for it in iterators:
                try:
                    yield next(it)
                except StopIteration:
                    continue
                still_live.append(it)
            iterators = still_live

    return Enumerator(run)
