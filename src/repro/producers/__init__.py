"""Producers: three-valued checkers, enumerators, and random generators."""

from .combinators import (
    bind_CE,
    bind_CG,
    bind_EC,
    enum_datatype,
    gen_datatype,
    slice_exhaustive,
)
from .enumerators import Enumerator, enumerating, interleaving
from .generators import (
    Generator,
    backtrack,
    choose_nat,
    frequency,
    oneof,
    sized,
)
from .lazylist import LazyList
from .option_bool import (
    NONE_OB,
    SOME_FALSE,
    SOME_TRUE,
    OptionBool,
    and_then,
    backtracking,
    from_bool,
    negate,
)
from .outcome import FAIL, OUT_OF_FUEL, is_value

__all__ = [
    "FAIL",
    "Enumerator",
    "Generator",
    "LazyList",
    "NONE_OB",
    "OUT_OF_FUEL",
    "OptionBool",
    "SOME_FALSE",
    "SOME_TRUE",
    "and_then",
    "backtrack",
    "backtracking",
    "bind_CE",
    "bind_CG",
    "bind_EC",
    "choose_nat",
    "enum_datatype",
    "enumerating",
    "frequency",
    "from_bool",
    "gen_datatype",
    "interleaving",
    "is_value",
    "negate",
    "oneof",
    "sized",
    "slice_exhaustive",
]
