"""Shared outcome markers for producers.

Producers work on ``option A`` (Section 4): besides proper values they
can signal two distinct kinds of non-value:

* :data:`FAIL` — this producer has *no* inhabitant to offer
  (``failE`` / ``failG``); and
* :data:`OUT_OF_FUEL` — the producer ran out of fuel before it could
  decide (``fuelE`` / ``fuelG``); a larger size might produce more.

Keeping the two apart is what makes derived computations *complete*:
``FAIL`` is definitive, ``OUT_OF_FUEL`` is not (compare ``Some false``
vs ``None`` for checkers).
"""

from __future__ import annotations


class _Marker:
    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:
        return self._name


FAIL = _Marker("FAIL")
OUT_OF_FUEL = _Marker("OUT_OF_FUEL")


def is_value(x: object) -> bool:
    return x is not FAIL and x is not OUT_OF_FUEL
