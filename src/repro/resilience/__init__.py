"""Resource-governed execution: budgets, cancellation, fault injection.

The package makes every derived computation *interruptible* without
weakening the paper's three-valued soundness contract:

* :mod:`~repro.resilience.budget` — a cooperative :class:`Budget`
  (wall-clock deadline, op budget, recursion-depth cap, cache cap)
  installed at ``ctx.caches[BUDGET_KEY]``; exhaustion unwinds every
  executor to its indefinite outcome and is diagnosed by a structured
  :class:`Exhausted`;
* :mod:`~repro.resilience.campaign` — budgeted ``quick_check``
  campaigns: per-test and whole-campaign deadlines, retry with
  backoff, a :class:`CircuitBreaker` against step-rate blowup;
* :mod:`~repro.resilience.faults` — deterministic :class:`FaultPlan`
  schedules driving the interruption-soundness differential suite.

``python -m repro.resilience report.jsonl`` renders exported campaign
reports, with the exit code distinguishing clean / gave-up / exhausted.
"""

from .budget import (
    BUDGET_KEY,
    Budget,
    Exhausted,
    budget_of,
    budget_scope,
    install_budget,
    remove_budget,
)
from .campaign import CircuitBreaker, run_campaign, write_report_jsonl
from .faults import FAULT_KINDS, WORKER_FAULT_KINDS, FaultPlan, WorkerFaultPlan
from .parallel import (
    CampaignProgress,
    Shard,
    parallel_quick_check,
    plan_shards,
)

__all__ = [
    "BUDGET_KEY",
    "Budget",
    "Exhausted",
    "budget_of",
    "budget_scope",
    "install_budget",
    "remove_budget",
    "CampaignProgress",
    "CircuitBreaker",
    "Shard",
    "parallel_quick_check",
    "plan_shards",
    "run_campaign",
    "write_report_jsonl",
    "FAULT_KINDS",
    "FaultPlan",
    "WORKER_FAULT_KINDS",
    "WorkerFaultPlan",
]
